//! Property-based tests (proptest) of core invariants across the
//! workspace: QoE algebra, player dynamics, trace cursors, the offline
//! optimum, the packet simulator, and the policy heads.

use abr::{qoe_chunk, windowed_optimal_qoe, FixedConditions, Player, QoeParams, Video};
use proptest::prelude::*;
use traces::{Segment, Trace, TraceCursor};

proptest! {
    /// QoE is monotone: more rebuffering never increases it.
    #[test]
    fn qoe_monotone_in_rebuffer(
        bitrate in 0.3_f64..4.3,
        prev in 0.3_f64..4.3,
        r1 in 0.0_f64..30.0,
        extra in 0.0_f64..30.0,
    ) {
        let p = QoeParams::default();
        let a = qoe_chunk(&p, bitrate, Some(prev), r1);
        let b = qoe_chunk(&p, bitrate, Some(prev), r1 + extra);
        prop_assert!(b <= a + 1e-12);
    }

    /// QoE switching penalty is symmetric and zero at no-switch.
    #[test]
    fn qoe_switch_symmetry(a in 0.3_f64..4.3, b in 0.3_f64..4.3) {
        let p = QoeParams::default();
        let ab = qoe_chunk(&p, a, Some(b), 0.0) - a;
        let ba = qoe_chunk(&p, b, Some(a), 0.0) - b;
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((qoe_chunk(&p, a, Some(a), 0.0) - a).abs() < 1e-12);
    }

    /// The player conserves time: wall clock equals the sum of per-chunk
    /// download and sleep times; buffer stays within [0, cap].
    #[test]
    fn player_time_conservation(
        bw in 0.5_f64..20.0,
        latency_ms in 0.0_f64..500.0,
        quality in 0_usize..6,
    ) {
        let video = Video::cbr();
        let mut net = FixedConditions::new(bw, latency_ms);
        let mut player = Player::new(&video, QoeParams::default());
        let mut total = 0.0;
        while !player.finished() {
            let o = player.step(quality, &mut net);
            total += o.download_s + o.sleep_s;
            prop_assert!(player.buffer_s() >= 0.0);
            prop_assert!(player.buffer_s() <= abr::player::BUFFER_CAP_S + 1e-9);
            prop_assert!(o.rebuffer_s >= 0.0);
        }
        prop_assert!((player.time_s() - total).abs() < 1e-6);
    }

    /// Download time through a trace cursor equals bytes/рate integrated:
    /// total transferred bits == integral of bandwidth over busy time.
    #[test]
    fn cursor_download_conserves_bits(
        bw1 in 0.5_f64..10.0,
        bw2 in 0.5_f64..10.0,
        dur1 in 0.5_f64..5.0,
        dur2 in 0.5_f64..5.0,
        bytes in 1_000.0_f64..5_000_000.0,
    ) {
        let t = Trace::new("p", vec![Segment::bw(dur1, bw1, 0.0), Segment::bw(dur2, bw2, 0.0)]);
        let mut c = TraceCursor::new(t.clone());
        let dt = c.download(bytes);
        // integrate bandwidth over [0, dt) with the cyclic trace
        let steps = 20_000;
        let mut bits = 0.0;
        for k in 0..steps {
            let tm = (k as f64 + 0.5) / steps as f64 * dt;
            bits += t.bandwidth_at(tm) * 1e6 * (dt / steps as f64);
        }
        let expect = bytes * 8.0;
        prop_assert!(
            (bits - expect).abs() / expect < 0.01,
            "transferred {expect} bits but integral says {bits}"
        );
    }

    /// The windowed optimum dominates any constant-quality plan on the
    /// same window (optimality), and never goes below the all-lowest plan.
    #[test]
    fn windowed_optimum_dominates(
        bw in proptest::collection::vec(0.8_f64..4.8, 4),
        buffer in 0.0_f64..30.0,
        prev_q in 0_usize..6,
    ) {
        let video = Video::cbr();
        let qoe = QoeParams::default();
        let opt = windowed_optimal_qoe(&video, &qoe, 0, &bw, 0.08, buffer, Some(prev_q));
        for q in 0..6 {
            // constant-quality rollout
            let mut buf = buffer;
            let mut prev = Some(prev_q);
            let mut total = 0.0;
            for (k, b) in bw.iter().enumerate() {
                let size = video.size_bytes(k, q);
                let dl = 0.08 + size * 8.0 / (b * 1e6);
                let rebuf = (dl - buf).max(0.0);
                buf = (buf - dl).max(0.0) + video.chunk_seconds();
                buf = buf.min(abr::player::BUFFER_CAP_S);
                total += qoe_chunk(&qoe, video.bitrate_mbps(q),
                    prev.map(|p| video.bitrate_mbps(p)), rebuf);
                prev = Some(q);
            }
            prop_assert!(opt >= total - 1e-9, "q={q}: opt {opt} < const plan {total}");
        }
    }

    /// Trace stats are sane for arbitrary valid traces.
    #[test]
    fn trace_stats_bounds(
        segs in proptest::collection::vec((0.1_f64..10.0, 0.1_f64..50.0, 0.0_f64..200.0, 0.0_f64..0.5), 1..20)
    ) {
        let t = Trace::new(
            "s",
            segs.iter()
                .map(|&(d, b, l, p)| Segment { duration_s: d, bandwidth_mbps: b, latency_ms: l, loss_rate: p })
                .collect(),
        );
        let st = traces::TraceStats::of(&t);
        prop_assert!(st.min_bandwidth <= st.mean_bandwidth + 1e-12);
        prop_assert!(st.mean_bandwidth <= st.max_bandwidth + 1e-12);
        prop_assert!(st.std_bandwidth >= 0.0);
        prop_assert!((0.0..=0.5).contains(&st.mean_loss));
        prop_assert!(st.duration_s > 0.0);
    }

    /// JSON round-trips preserve traces exactly.
    #[test]
    fn trace_json_roundtrip(
        segs in proptest::collection::vec((0.1_f64..10.0, 0.1_f64..50.0, 0.0_f64..200.0, 0.0_f64..1.0), 1..10)
    ) {
        let t = Trace::new(
            "rt",
            segs.iter()
                .map(|&(d, b, l, p)| Segment { duration_s: d, bandwidth_mbps: b, latency_ms: l, loss_rate: p })
                .collect(),
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Categorical policies put probability exactly 1 across actions and
    /// log-probs agree with probabilities, for random nets and inputs.
    #[test]
    fn categorical_policy_consistency(
        seed in 0_u64..1000,
        obs in proptest::collection::vec(-3.0_f64..3.0, 4),
    ) {
        use rand::SeedableRng;
        use rl::PolicyHead;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = rl::CategoricalPolicy::new(&[4, 8, 5], &mut rng);
        let probs = p.probs(&obs);
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (i, pr) in probs.iter().enumerate() {
            let lp = p.log_prob(&obs, &rl::Action::Discrete(i));
            prop_assert!((lp.exp() - pr).abs() < 1e-9);
        }
        let h = p.entropy(&obs);
        prop_assert!(h >= -1e-12 && h <= (5.0_f64).ln() + 1e-9);
    }

    /// Gaussian log-probs integrate (via sampling) to a proper density:
    /// mode has the highest density of any sampled point.
    #[test]
    fn gaussian_mode_maximizes_density(
        seed in 0_u64..500,
        obs in proptest::collection::vec(-2.0_f64..2.0, 3),
    ) {
        use rand::SeedableRng;
        use rl::PolicyHead;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = rl::GaussianPolicy::new(&[3, 6, 2], 0.5, &mut rng);
        let mode = p.mode(&obs);
        let lp_mode = p.log_prob(&obs, &mode);
        for _ in 0..16 {
            let (a, lp) = p.sample(&obs, &mut rng);
            prop_assert!(lp <= lp_mode + 1e-9, "sample {a:?} denser than mode");
        }
    }

    /// GAE with γ=λ=1 and zero values reduces to reward-to-go.
    #[test]
    fn gae_reduces_to_reward_to_go(
        rewards in proptest::collection::vec(-5.0_f64..5.0, 1..30)
    ) {
        let n = rewards.len();
        let values = vec![0.0; n];
        let mut dones = vec![false; n];
        dones[n - 1] = true;
        let (adv, ret) = rl::gae(&rewards, &values, &dones, 0.0, 1.0, 1.0);
        let mut suffix = 0.0;
        for i in (0..n).rev() {
            suffix += rewards[i];
            prop_assert!((adv[i] - suffix).abs() < 1e-9);
            prop_assert!((ret[i] - suffix).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The packet simulator never creates bytes: delivered ≤ sent, and a
    /// sender at any rate cannot exceed capacity on a clean link.
    #[test]
    fn netsim_conservation(
        bw in 6.0_f64..24.0,
        lat in 15.0_f64..60.0,
        rate in 1.0_f64..40.0,
    ) {
        use netsim::{FlowSim, LinkParams, SimConfig, SEC};
        let mut sim = FlowSim::new(
            Box::new(netsim::sim::FixedRateCc { rate_bps: rate * 1e6, cwnd: 1e9 }),
            LinkParams::new(bw, lat, 0.0),
            SimConfig::default(),
        );
        sim.run_for(SEC);
        let st = sim.run_for(3 * SEC);
        prop_assert!(st.packets_delivered <= st.packets_sent + 200,
            "delivered {} > sent {} (+inflight margin)", st.packets_delivered, st.packets_sent);
        prop_assert!(st.utilization <= 1.0 + 1e-9);
        prop_assert!(st.throughput_mbps <= bw * 1.02 + 0.1);
    }
}
