//! Property-based tests of the neural-network substrate: the analytic
//! gradients must match finite differences for *arbitrary* small
//! architectures, inputs, and seeds — the foundation everything else
//! (PPO, the adversaries, Pensieve) rests on.

use nn::{Activation, Matrix, Mlp, MlpGrads};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn loss(net: &Mlp, x: &[f64], coeffs: &[f64]) -> f64 {
    net.forward(x).iter().zip(coeffs.iter()).map(|(y, c)| y * c).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// dL/dW matches central finite differences on random nets/inputs.
    #[test]
    fn gradient_check_random_architectures(
        seed in 0_u64..10_000,
        n_in in 1_usize..6,
        n_hidden in 1_usize..10,
        n_out in 1_usize..4,
        use_relu in any::<bool>(),
        x_scale in 0.1_f64..2.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let act = if use_relu { Activation::Relu } else { Activation::Tanh };
        let net = Mlp::new(&[n_in, n_hidden, n_out], act, &mut rng);
        let x: Vec<f64> = (0..n_in).map(|i| x_scale * ((i as f64) + 0.37).sin()).collect();
        let coeffs: Vec<f64> = (0..n_out).map(|i| 1.0 - 0.4 * i as f64).collect();

        let mut cache = net.new_cache();
        net.forward_cached(&x, &mut cache);
        let mut grads = MlpGrads::zeros_like(&net);
        net.backward(&cache, &coeffs, &mut grads);

        let h = 1e-6;
        // spot-check one weight per layer (ReLU kinks make exact equality
        // impossible at z == 0; tolerate those rare cases with a loose bound)
        for li in 0..net.layers().len() {
            let mut plus = net.clone();
            let v = plus.layers()[li].w.get(0, 0);
            plus.layers_mut()[li].w.set(0, 0, v + h);
            let mut minus = net.clone();
            minus.layers_mut()[li].w.set(0, 0, v - h);
            let fd = (loss(&plus, &x, &coeffs) - loss(&minus, &x, &coeffs)) / (2.0 * h);
            let an = grads.w[li].get(0, 0);
            prop_assert!(
                (fd - an).abs() < 1e-4 * (1.0 + an.abs()) + 1e-6,
                "layer {li}: fd={fd} analytic={an}"
            );
        }
    }

    /// Forward passes are deterministic and serde round-trips exact.
    #[test]
    fn forward_deterministic_and_serializable(
        seed in 0_u64..10_000,
        dims in proptest::collection::vec(1_usize..8, 2..4),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&dims, Activation::Tanh, &mut rng);
        let x: Vec<f64> = (0..dims[0]).map(|i| (i as f64 * 0.7).cos()).collect();
        let y1 = net.forward(&x);
        let y2 = net.forward(&x);
        prop_assert_eq!(&y1, &y2);
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(y1, back.forward(&x));
    }

    /// Gradient clipping: post-clip norm never exceeds the cap, direction
    /// is preserved (scaled, not truncated).
    #[test]
    fn clip_preserves_direction(
        seed in 0_u64..10_000,
        max_norm in 0.01_f64..5.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[3, 5, 2], Activation::Tanh, &mut rng);
        let mut g = MlpGrads::zeros_like(&net);
        let mut cache = net.new_cache();
        net.forward_cached(&[1.0, -2.0, 0.5], &mut cache);
        net.backward(&cache, &[3.0, -7.0], &mut g);
        let before: Vec<f64> = g.w[0].as_slice().to_vec();
        let pre_norm = g.sq_norm().sqrt();
        g.clip_global_norm(max_norm);
        let post_norm = g.sq_norm().sqrt();
        prop_assert!(post_norm <= max_norm + 1e-9);
        if pre_norm > max_norm {
            // scaled uniformly: ratios preserved
            let scale = post_norm / pre_norm;
            for (a, b) in before.iter().zip(g.w[0].as_slice()) {
                prop_assert!((a * scale - b).abs() < 1e-9);
            }
        }
    }

    /// Batched forward is bit-identical to per-sample forwards for
    /// arbitrary architectures, batch sizes, activations, and seeds —
    /// the invariant that lets PPO switch to matrix–matrix kernels
    /// without perturbing training trajectories.
    #[test]
    fn forward_batch_bit_identical_to_per_sample(
        seed in 0_u64..10_000,
        dims in proptest::collection::vec(1_usize..8, 2..5),
        batch in 1_usize..9,
        use_relu in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let act = if use_relu { Activation::Relu } else { Activation::Tanh };
        let net = Mlp::new(&dims, act, &mut rng);
        let n_in = dims[0];
        let mut data = Vec::with_capacity(batch * n_in);
        for s in 0..batch {
            for i in 0..n_in {
                data.push(((s * 31 + i) as f64 * 0.37).sin() * 2.0);
            }
        }
        let x = Matrix::from_vec(batch, n_in, data);
        let y = net.forward_batch(&x);
        for s in 0..batch {
            let per = net.forward(x.row(s));
            // bit equality, not approximate
            prop_assert_eq!(y.row(s), per.as_slice());
        }
    }

    /// Batched backward accumulates gradients bit-identically to the
    /// serial per-sample forward/backward loop over the same samples in
    /// the same order.
    #[test]
    fn grads_batch_bit_identical_to_serial_loop(
        seed in 0_u64..10_000,
        dims in proptest::collection::vec(1_usize..8, 2..5),
        batch in 1_usize..9,
        use_relu in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let act = if use_relu { Activation::Relu } else { Activation::Tanh };
        let net = Mlp::new(&dims, act, &mut rng);
        let (n_in, n_out) = (dims[0], *dims.last().unwrap());
        let mut xdata = Vec::with_capacity(batch * n_in);
        let mut ddata = Vec::with_capacity(batch * n_out);
        for s in 0..batch {
            for i in 0..n_in {
                xdata.push(((s * 13 + i) as f64 * 0.53).cos());
            }
            for o in 0..n_out {
                ddata.push(((s * 7 + o) as f64 * 0.91).sin());
            }
        }
        let x = Matrix::from_vec(batch, n_in, xdata);
        let dl = Matrix::from_vec(batch, n_out, ddata);

        let mut serial = MlpGrads::zeros_like(&net);
        let mut cache = net.new_cache();
        for s in 0..batch {
            net.forward_cached(x.row(s), &mut cache);
            net.backward(&cache, dl.row(s), &mut serial);
        }

        let mut batched = MlpGrads::zeros_like(&net);
        let mut bcache = net.new_batch_cache(batch);
        net.forward_batch_cached(&x, &mut bcache);
        net.grads_batch(&bcache, &dl, &mut batched);

        prop_assert_eq!(serial, batched);
    }

    /// softmax/log_softmax agree and are shift-invariant.
    #[test]
    fn softmax_shift_invariance(
        xs in proptest::collection::vec(-30.0_f64..30.0, 1..10),
        shift in -100.0_f64..100.0,
    ) {
        let p1 = nn::ops::softmax(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let p2 = nn::ops::softmax(&shifted);
        for (a, b) in p1.iter().zip(p2.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        prop_assert!((p1.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// percentile is bounded by min/max and monotone in p.
    #[test]
    fn percentile_monotone(
        xs in proptest::collection::vec(-100.0_f64..100.0, 1..50),
        p1 in 0.0_f64..100.0,
        p2 in 0.0_f64..100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = nn::ops::percentile(&xs, lo);
        let b = nn::ops::percentile(&xs, hi);
        prop_assert!(a <= b + 1e-12);
        let mn = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let mx = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= mn - 1e-12 && b <= mx + 1e-12);
    }
}
