//! End-to-end crash safety of the adversary training stack.
//!
//! `crates/rl/tests/checkpoint_resume.rs` proves the kill/resume contract
//! on a toy environment; these tests close the loop on the real adversary
//! environments, whose `Snapshot` implementations replay recorded actions
//! through the actual simulators:
//!
//! * killing `try_train_abr_adversary` mid-run — via the structured
//!   `ADVNET_FAULT_PLAN` grammar (`panic@ppo.iter:<n>`) or its legacy
//!   `ADVNET_FAULT_ITER` alias — and re-invoking it resumes from the
//!   checkpoint and finishes bit-identical to an uninterrupted run,
//!   including with vectorized (`n_envs > 1`) collection;
//! * a truncated checkpoint file surfaces as `TrainError::Corrupt`
//!   through the adversary entry point instead of silently restarting;
//! * vectorized CC adversary training (per-worker decorrelated simulator
//!   seeds) is reproducible run to run;
//! * the simulator's own fault points (`netsim.enqueue`: corrupt = forced
//!   bottleneck drop; `netsim.event`: panic = crash mid-event-loop) reach
//!   the packet level and leave no state behind after `fault::clear`.

use abr::{BufferBased, Video};
use adversary::{
    try_train_abr_adversary, try_train_cc_adversary, AbrAdversaryConfig, AbrAdversaryEnv,
    AdversaryTrainConfig, CcAdversaryConfig, CcAdversaryEnv,
};
use cc::Bbr;
use rl::{Ppo, TrainError, TrainReport};
use std::path::PathBuf;

/// The fault plan (`ADVNET_FAULT_PLAN` / legacy `ADVNET_FAULT_ITER`) is
/// process-global and every checkpointed training run reads it (via
/// `Checkpointer::new`), so tests that set either variable or start
/// checkpointed runs serialize on this lock.
static FAULT_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn ckpt_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("advnet-fault-tolerance-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn abr_env() -> AbrAdversaryEnv<BufferBased> {
    AbrAdversaryEnv::new(
        BufferBased::pensieve_defaults(),
        Video::cbr(),
        AbrAdversaryConfig::default(),
    )
}

/// Three small 96-step iterations, vectorized over two env clones so the
/// slot snapshot/restore path of the real ABR adversary env is exercised.
fn abr_cfg(path: Option<PathBuf>) -> AdversaryTrainConfig {
    AdversaryTrainConfig {
        total_steps: 3 * 96,
        ppo: rl::PpoConfig {
            n_steps: 96,
            minibatch_size: 48,
            epochs: 2,
            seed: 11,
            n_envs: 2,
            ..rl::PpoConfig::default()
        },
        init_std: 0.6,
        checkpoint_path: path,
        checkpoint_every: 1,
    }
}

/// Bit-exact signature of a finished run: full trainer state (weights,
/// Adam moments, RNG streams, normalizers) as JSON plus the deterministic
/// report fields, floats as bits.
fn run_sig(ppo: &Ppo, reports: &[TrainReport]) -> (String, Vec<(usize, u64, u64, u64)>) {
    (
        serde_json::to_string(&ppo.to_train_state()).unwrap(),
        reports
            .iter()
            .map(|r| {
                (
                    r.total_steps,
                    r.mean_step_reward.to_bits(),
                    r.policy_loss.to_bits(),
                    r.value_loss.to_bits(),
                )
            })
            .collect(),
    )
}

/// Kill training at iteration 2 of 3 by arming `env_var=env_value`, then
/// resume with the variable unset and check the finished run against the
/// uninterrupted reference. Shared by both fault-plan spellings.
fn kill_and_resume_with(tag: &str, env_var: &str, env_value: &str) {
    let _guard = FAULT_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Reference: uninterrupted run (checkpointed, so the code path is the
    // same one the crashed run takes).
    let ref_path = ckpt_path(&format!("abr-ref-{tag}.ckpt"));
    std::fs::remove_file(&ref_path).ok();
    let mut env = abr_env();
    let (ref_ppo, ref_reports) =
        try_train_abr_adversary(&mut env, &abr_cfg(Some(ref_path.clone()))).unwrap();
    let reference = run_sig(&ref_ppo, &ref_reports);
    std::fs::remove_file(&ref_path).ok();

    // Crash at iteration 2 of 3 via the documented fault-injection hook.
    let path = ckpt_path(&format!("abr-kill-{tag}.ckpt"));
    std::fs::remove_file(&path).ok();
    std::env::set_var(env_var, env_value);
    let crash_path = path.clone();
    let crashed = std::panic::catch_unwind(move || {
        let mut env = abr_env();
        let _ = try_train_abr_adversary(&mut env, &abr_cfg(Some(crash_path)));
    });
    std::env::remove_var(env_var);
    assert!(crashed.is_err(), "the injected fault should have crashed training");
    assert!(path.exists(), "the pre-crash checkpoint should have survived");

    // Resume: fresh env, fresh trainer, same config — must finish
    // bit-identical to the uninterrupted reference.
    let mut env = abr_env();
    let (ppo, reports) = try_train_abr_adversary(&mut env, &abr_cfg(Some(path.clone()))).unwrap();
    assert_eq!(run_sig(&ppo, &reports), reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn abr_adversary_kill_and_resume_is_bit_identical() {
    // legacy spelling: bare iteration number
    kill_and_resume_with("iter", "ADVNET_FAULT_ITER", "2");
}

#[test]
fn abr_adversary_kill_and_resume_via_fault_plan() {
    // structured spelling: same fault through the plan grammar
    kill_and_resume_with("plan", "ADVNET_FAULT_PLAN", "panic@ppo.iter:2");
}

#[test]
fn truncated_adversary_checkpoint_is_rejected() {
    let _guard = FAULT_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = ckpt_path("abr-truncated.ckpt");
    std::fs::remove_file(&path).ok();
    let mut env = abr_env();
    try_train_abr_adversary(&mut env, &abr_cfg(Some(path.clone()))).unwrap();

    // Simulate the torn write the atomic tmp+rename protocol prevents.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();

    let mut env = abr_env();
    match try_train_abr_adversary(&mut env, &abr_cfg(Some(path.clone()))) {
        Err(TrainError::Corrupt(msg)) => assert!(msg.contains("truncated"), "{msg}"),
        other => panic!("expected TrainError::Corrupt, got {:?}", other.map(|_| ())),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn nan_poisoned_batched_gradients_trip_the_guard() {
    // DESIGN.md §10, row `nn.grads_batch`: poisoning the batched-path
    // minibatch gradients with NaN must be absorbed by the same
    // divergence guard (skip + rollback) as the per-sample `nn.grads`
    // point, leaving the finished adversary finite.
    let _guard = FAULT_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::install(fault::FaultPlan::parse("nan@nn.grads_batch:1").unwrap());
    let mut env = abr_env();
    let result = try_train_abr_adversary(&mut env, &abr_cfg(None));
    fault::clear();
    let (ppo, reports) = result.expect("one poisoned minibatch is within the guard budget");
    assert!(reports[0].policy_loss.is_nan(), "poisoned iteration's update must be skipped");
    assert_eq!(reports[0].guard_trips, 1);
    assert_eq!(reports.last().unwrap().guard_trips, 1, "no further trips");
    assert!(reports.last().unwrap().policy_loss.is_finite());
    let probe = vec![0.0; rl::Env::obs_dim(&env)];
    assert!(ppo.policy.mode(&probe).vector().iter().all(|v| v.is_finite()));
}

/// Bit-exact signature of a short single-flow run (floats as bits).
fn netsim_run_sig(plan: Option<&str>) -> Vec<u64> {
    if let Some(p) = plan {
        fault::install(fault::FaultPlan::parse(p).unwrap());
    }
    let mut sim = netsim::FlowSim::new(
        Box::new(Bbr::new()),
        netsim::LinkParams::new(12.0, 20.0, 0.0),
        netsim::SimConfig::default(),
    );
    let mut out = Vec::new();
    for _ in 0..20 {
        let s = sim.run_for(100 * netsim::MS);
        out.push(s.delivered_bytes);
        out.push(s.packets_sent);
        out.push(s.packets_lost_overflow);
        out.push(s.utilization.to_bits());
    }
    fault::clear();
    out
}

#[test]
fn netsim_enqueue_corruption_forces_a_counted_drop() {
    // DESIGN.md §10, row `netsim.enqueue`: `corrupt` force-drops one
    // admission at the bottleneck, surfacing as a counted overflow loss in
    // the interval stats — on an otherwise clean link where no genuine
    // overflow occurs.
    let _guard = FAULT_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let clean = netsim_run_sig(None);
    let clean_drops: u64 = clean.chunks(4).map(|c| c[2]).sum();
    assert_eq!(clean_drops, 0, "clean link must not overflow");

    let faulted = netsim_run_sig(Some("corrupt@netsim.enqueue:40"));
    let faulted_drops: u64 = faulted.chunks(4).map(|c| c[2]).sum();
    assert_eq!(faulted_drops, 1, "exactly the one injected drop");
    assert_ne!(clean, faulted, "the dropped packet must perturb the trajectory");
}

#[test]
fn netsim_event_panic_crashes_the_run_and_leaves_no_residue() {
    // DESIGN.md §10, row `netsim.event`: `panic` kills the simulation at
    // the nth event pop (a crash mid-event-loop). A fresh run after
    // `fault::clear` must match a never-faulted run bit for bit.
    let _guard = FAULT_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reference = netsim_run_sig(None);

    fault::install(fault::FaultPlan::parse("panic@netsim.event:100").unwrap());
    let crashed = std::panic::catch_unwind(|| {
        let mut sim = netsim::FlowSim::new(
            Box::new(Bbr::new()),
            netsim::LinkParams::new(12.0, 20.0, 0.0),
            netsim::SimConfig::default(),
        );
        sim.run_for(2 * netsim::SEC);
    });
    fault::clear();
    assert!(crashed.is_err(), "the injected event-loop fault should have crashed the run");

    assert_eq!(netsim_run_sig(None), reference, "no fault state may leak into later runs");
}

#[test]
fn cc_adversary_vectorized_training_is_reproducible() {
    // Two env clones collect in parallel with decorrelated simulator
    // seeds (`Env::decorrelate` + `exec::split_seed`); the merged run must
    // still be bit-reproducible across invocations.
    let cfg = AdversaryTrainConfig {
        total_steps: 100,
        ppo: rl::PpoConfig {
            n_steps: 50,
            minibatch_size: 25,
            epochs: 2,
            seed: 7,
            n_envs: 2,
            ..rl::PpoConfig::default()
        },
        init_std: 0.8,
        checkpoint_path: None,
        checkpoint_every: 1,
    };
    let cc_cfg =
        CcAdversaryConfig { episode_steps: 25, action_repeat: 2, ..CcAdversaryConfig::default() };
    let run = || {
        let mut env = CcAdversaryEnv::new(Box::new(|| Box::new(Bbr::new())), cc_cfg.clone());
        let (ppo, reports) = try_train_cc_adversary(&mut env, &cfg).unwrap();
        run_sig(&ppo, &reports)
    };
    assert_eq!(run(), run());
}
