//! End-to-end tests of the `advnet` command-line tool (Cargo builds the
//! binary for integration tests and exposes its path via
//! `CARGO_BIN_EXE_advnet`).

use std::process::Command;

fn advnet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_advnet"))
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("advnet-cli-{tag}"));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = advnet().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = advnet().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn gen_corpus_and_stats_roundtrip() {
    let dir = tmpdir("corpus");
    let path = dir.join("hsdpa.json");
    let out =
        advnet().args(["gen-corpus", "hsdpa", "4", path.to_str().unwrap(), "7"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(path.exists());

    let out = advnet().args(["stats", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hsdpa-like-7"));
    assert!(stdout.contains("(4 traces)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_reports_per_trace_qoe() {
    let dir = tmpdir("replay");
    let path = dir.join("random.json");
    advnet().args(["gen-corpus", "random", "3", path.to_str().unwrap(), "1"]).status().unwrap();
    let out = advnet().args(["replay-abr", "mpc", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("QoE/chunk"));
    assert!(stdout.contains("mpc over 3 traces"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cem_attack_writes_a_trace() {
    let dir = tmpdir("cem");
    let path = dir.join("cem.json");
    // tiny search so the test stays fast
    let out =
        advnet().args(["attack-cem", "bb", path.to_str().unwrap(), "3", "5"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let traces = traces::io::load_traces(&path).unwrap();
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].segments.len(), 48);
    // every bandwidth inside the adversary's action space
    assert!(traces[0].segments.iter().all(|s| (0.8..=4.8).contains(&s.bandwidth_mbps)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_rejects_missing_file() {
    let out = advnet().args(["stats", "/nonexistent/nowhere.json"]).output().unwrap();
    assert!(!out.status.success());
}
