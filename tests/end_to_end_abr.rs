//! Cross-crate integration: the full ABR adversarial loop through the
//! public API — train a small adversary, record traces, replay them, and
//! check the framework's core promises.

use abr::{optimal_qoe_dp, BufferBased, Mpc, QoeParams, Video};
use adversary::{
    generate_abr_traces, random_abr_traces, replay_abr_trace, train_abr_adversary,
    AbrAdversaryConfig, AbrAdversaryEnv, AdversaryTrainConfig,
};
use rl::PpoConfig;

fn small_train_cfg(steps: usize, seed: u64) -> AdversaryTrainConfig {
    AdversaryTrainConfig {
        total_steps: steps,
        ppo: PpoConfig {
            n_steps: 960,
            minibatch_size: 96,
            epochs: 5,
            lr: 1e-3,
            seed,
            ..PpoConfig::default()
        },
        ..AdversaryTrainConfig::default()
    }
}

/// The paper's central claim, end to end: an adversarially generated trace
/// hurts the target protocol more than random traces do, while an optimal
/// protocol could still have done well (the gap term of Eq. 1).
#[test]
fn adversarial_traces_beat_random_traces_against_bb() {
    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();
    let mut env =
        AbrAdversaryEnv::new(BufferBased::pensieve_defaults(), video.clone(), cfg.clone());
    let (adv, _) = train_abr_adversary(&mut env, &small_train_cfg(24_000, 5));

    let adv_traces = generate_abr_traces(&mut env, &adv, 8, false, 11);
    let rnd_traces = random_abr_traces(8, video.n_chunks(), 11);

    let qoe_on = |traces: &[Vec<f64>]| -> f64 {
        let mut bb = BufferBased::pensieve_defaults();
        traces.iter().map(|t| replay_abr_trace(t, &mut bb, &video, &cfg)).sum::<f64>()
            / traces.len() as f64
    };
    let adv_qoe = qoe_on(&adv_traces);
    let rnd_qoe = qoe_on(&rnd_traces);
    assert!(
        adv_qoe < rnd_qoe - 0.2,
        "adversarial traces ({adv_qoe:.3}) must hurt BB more than random ({rnd_qoe:.3})"
    );

    // the conditions are not trivially hostile: the offline optimum still
    // achieves a clearly positive QoE on the adversary's trace
    let qoe_params = QoeParams::default();
    let (opt, _) = optimal_qoe_dp(&video, &qoe_params, &adv_traces[0], cfg.latency_ms / 1000.0);
    let opt_per_chunk = opt / video.n_chunks() as f64;
    assert!(
        opt_per_chunk > 0.5,
        "the optimum must remain viable on adversarial traces: {opt_per_chunk:.3}"
    );
    assert!(
        opt_per_chunk > adv_qoe + 0.5,
        "optimum ({opt_per_chunk:.3}) must clearly beat the exploited target ({adv_qoe:.3})"
    );
}

/// Replaying a recorded adversarial trace is exactly reproducible — the
/// property the paper contrasts against its nondeterministic Mahimahi runs.
#[test]
fn trace_replay_is_bit_exact() {
    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();
    let mut env = AbrAdversaryEnv::new(Mpc::default(), video.clone(), cfg.clone());
    let (adv, _) = train_abr_adversary(&mut env, &small_train_cfg(4_000, 3));
    let traces = generate_abr_traces(&mut env, &adv, 2, true, 7);
    // deterministic policy + deterministic env → identical traces per seed
    let traces2 = generate_abr_traces(&mut env, &adv, 2, true, 7);
    assert_eq!(traces, traces2);
    for t in &traces {
        let a = replay_abr_trace(t, &mut Mpc::default(), &video, &cfg);
        let b = replay_abr_trace(t, &mut Mpc::default(), &video, &cfg);
        assert_eq!(a, b, "replay must be bit-exact");
    }
}

/// Traces can round-trip through the common `traces::Trace` JSON format and
/// still replay identically (the framework's persistence story).
#[test]
fn traces_roundtrip_through_json() {
    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();
    let raw = random_abr_traces(3, video.n_chunks(), 21);
    let corpus = adversary::abr_traces_to_corpus(&raw, &video, cfg.latency_ms, "t");

    let dir = std::env::temp_dir().join("e2e-abr-roundtrip");
    let path = dir.join("traces.json");
    traces::io::save_traces(&path, &corpus).unwrap();
    let loaded = traces::io::load_traces(&path).unwrap();
    assert_eq!(corpus, loaded);

    // replay through the chunk-indexed view: segment k's bandwidth is the
    // bandwidth of chunk k
    let recovered: Vec<f64> = loaded[0].segments.iter().map(|s| s.bandwidth_mbps).collect();
    assert_eq!(recovered, raw[0]);
    std::fs::remove_dir_all(&dir).ok();
}

/// The adversary environment's reward really is Eq. 1: when the protocol
/// plays optimally over the window, the gap term vanishes and only the
/// smoothing penalty remains.
#[test]
fn eq1_reward_vanishes_for_optimal_play() {
    use abr::{AbrPolicy, Mpc};
    use rand::SeedableRng;
    use rl::Env;

    // an "oracle" protocol that plays the DP-optimal schedule for the
    // constant-bandwidth trace we are about to feed
    #[derive(Clone)]
    struct Oracle {
        schedule: Vec<usize>,
        i: usize,
    }
    impl AbrPolicy for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn select(&mut self, _obs: &abr::AbrObservation) -> usize {
            let q = self.schedule[self.i.min(self.schedule.len() - 1)];
            self.i += 1;
            q
        }
        fn reset(&mut self) {
            self.i = 0;
        }
        fn clone_box(&self) -> Box<dyn AbrPolicy + Send> {
            Box::new(self.clone())
        }
    }

    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();
    let qoe = QoeParams::default();
    let bw = 2.5;
    let (_, schedule) =
        optimal_qoe_dp(&video, &qoe, &vec![bw; video.n_chunks()], cfg.latency_ms / 1000.0);
    let mut env = AbrAdversaryEnv::new(Oracle { schedule, i: 0 }, video, cfg);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    env.reset(&mut rng);
    let action = adversary::abr_env::action_for_bandwidth(bw);
    let mut rewards = Vec::new();
    loop {
        let s = env.step(&action, &mut rng);
        rewards.push(s.reward);
        if s.done {
            break;
        }
    }
    // The windowed r_opt is an oracle upper bound (it re-optimizes each
    // 4-chunk window in hindsight), so even globally optimal causal play
    // leaves a residual — but it must be small compared to the gap an
    // actually weak protocol leaves under identical conditions.
    let oracle_gap = nn::ops::mean(&rewards);
    assert!(oracle_gap > -0.1, "gap term is an upper bound: {oracle_gap:.3}");

    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();
    let mut bb_env = AbrAdversaryEnv::new(BufferBased::pensieve_defaults(), video, cfg);
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(0);
    bb_env.reset(&mut rng2);
    let mut bb_rewards = Vec::new();
    loop {
        let s = bb_env.step(&action, &mut rng2);
        bb_rewards.push(s.reward);
        if s.done {
            break;
        }
    }
    let bb_gap = nn::ops::mean(&bb_rewards);
    assert!(
        oracle_gap < bb_gap - 0.3,
        "optimal play ({oracle_gap:.3}) must leave a far smaller Eq.-1 gap than BB ({bb_gap:.3})"
    );
    let _ = Mpc::default();
}
