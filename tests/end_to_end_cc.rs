//! Cross-crate integration: the congestion-control adversarial loop —
//! BBR inside the packet simulator, driven by the adversary environment,
//! trace recording and replay.

use adversary::{CcActionSpace, CcAdversaryConfig, CcAdversaryEnv};
use cc::{Bbr, Cubic};
use netsim::{CongestionControl, FlowSim, LinkParams, SimConfig, MS, SEC};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::Env;

fn bbr_env(steps: usize) -> CcAdversaryEnv {
    CcAdversaryEnv::new(
        Box::new(|| Box::new(Bbr::new())),
        CcAdversaryConfig { episode_steps: steps, ..CcAdversaryConfig::default() },
    )
}

/// Replay a recorded CcTrace against a fresh protocol and return mean
/// utilization.
fn replay(trace: &adversary::CcTrace, make: impl Fn() -> Box<dyn CongestionControl>) -> f64 {
    let first = trace.params[0];
    let mut sim = FlowSim::new(make(), first, SimConfig::default());
    let mut delivered = 0.0;
    let mut capacity = 0.0;
    for p in &trace.params {
        sim.set_link(*p);
        let st = sim.run_for(30 * MS);
        delivered += st.delivered_bytes as f64;
        capacity += st.capacity_bytes;
    }
    delivered / capacity
}

/// A hand-scripted probing attack (the mechanism the paper's adversary
/// learns) must beat both the benign baseline and uniform-random traces.
#[test]
fn scripted_probe_attack_reduces_bbr_utilization() {
    let space = CcActionSpace::default();
    let mut env = bbr_env(600);
    let mut rng = StdRng::seed_from_u64(1);

    // benign: constant mid-range conditions
    env.reset(&mut rng);
    let mut benign_util = Vec::new();
    for _ in 0..600 {
        let s = env.step(&space.action_for(15.0, 30.0, 0.0), &mut rng);
        benign_util.push(s.obs[0]);
    }
    let benign = nn::ops::mean(&benign_util[200..]);

    // attack: periodically pin RTprop low, otherwise inflate latency
    env.reset(&mut rng);
    let mut attack_util = Vec::new();
    for i in 0..600 {
        let a = if i % 100 < 2 {
            space.action_for(24.0, 15.0, 0.0)
        } else {
            space.action_for(24.0, 60.0, 0.0)
        };
        let s = env.step(&a, &mut rng);
        attack_util.push(s.obs[0]);
    }
    let attacked = nn::ops::mean(&attack_util[200..]);

    assert!(benign > 0.85, "benign utilization {benign:.3}");
    assert!(
        attacked < benign - 0.3,
        "probing attack must slash utilization: {attacked:.3} vs benign {benign:.3}"
    );
}

/// Recorded CC traces replay deterministically with the same seeds and
/// produce the same utilization profile within stochastic-loss tolerance.
#[test]
fn cc_trace_replay_reproduces_shape() {
    let space = CcActionSpace::default();
    let mut env = bbr_env(400);
    let mut rng = StdRng::seed_from_u64(9);
    env.reset(&mut rng);
    for i in 0..400 {
        let a = if i % 100 < 2 {
            space.action_for(24.0, 15.0, 0.0)
        } else {
            space.action_for(24.0, 60.0, 0.0)
        };
        env.step(&a, &mut rng);
    }
    let trace = env.episode_trace().clone();
    assert_eq!(trace.len(), 400);
    let recorded = trace.mean_utilization();

    let replayed = replay(&trace, || Box::new(Bbr::new()));
    assert!(
        (replayed - recorded).abs() < 0.15,
        "replayed utilization {replayed:.3} should match recorded {recorded:.3}"
    );
}

/// The adversary framework is protocol-generic: the same environment runs
/// Cubic, and conditions that merely include mild loss (which barely dent
/// BBR) wreck it — protocol-specific weaknesses, as the paper stresses.
#[test]
fn conditions_are_protocol_specific() {
    let loss_params = LinkParams::new(12.0, 25.0, 0.02);
    let run = |cc: Box<dyn CongestionControl>| {
        let mut sim = FlowSim::new(cc, loss_params, SimConfig::default());
        sim.run_for(5 * SEC);
        sim.run_for(10 * SEC).utilization
    };
    let bbr = run(Box::new(Bbr::new()));
    let cubic = run(Box::new(Cubic::new()));
    assert!(bbr > cubic + 0.25, "2% loss should split BBR ({bbr:.3}) from Cubic ({cubic:.3})");

    // and the environment happily drives Cubic too
    let mut env = CcAdversaryEnv::new(
        Box::new(|| Box::new(Cubic::new())),
        CcAdversaryConfig { episode_steps: 50, ..CcAdversaryConfig::default() },
    );
    let mut rng = StdRng::seed_from_u64(3);
    env.reset(&mut rng);
    let space = CcActionSpace::default();
    for _ in 0..50 {
        env.step(&space.action_for(12.0, 30.0, 0.01), &mut rng);
    }
    assert_eq!(env.episode_trace().len(), 50);
}

/// The reward respects the paper's anti-triviality principle: max loss is
/// charged to the adversary, so nuking the link is not free reward.
#[test]
fn reward_charges_for_loss() {
    let space = CcActionSpace::default();
    let mut env = bbr_env(100);
    let mut rng = StdRng::seed_from_u64(5);
    env.reset(&mut rng);
    let mut clean = 0.0;
    for _ in 0..50 {
        clean += env.step(&space.action_for(24.0, 30.0, 0.0), &mut rng).reward;
    }
    env.reset(&mut rng);
    let mut nuked = 0.0;
    for _ in 0..50 {
        nuked += env.step(&space.action_for(6.0, 30.0, 0.10), &mut rng).reward;
    }
    // nuking gets U≈low but pays L=0.1 every step; at minimum the margin
    // between the two must be far smaller than the naive 1-U difference
    let naive_gap = 50.0 * 0.9;
    assert!(
        nuked - clean < naive_gap * 0.7,
        "loss term must tax the trivial strategy: clean {clean:.1} nuked {nuked:.1}"
    );
}
