//! Telemetry must be purely observational: flipping `ADVNET_TELEMETRY`
//! cannot change a single bit of a training run. This suite trains the
//! same PPO configuration with telemetry disabled and enabled and
//! compares the full serialized `TrainState` — weights, Adam moments,
//! observation statistics, and RNG state all round-trip bit-exactly
//! through the JSON form, so string equality is bit equality.
//!
//! (The byte-identity of *result CSVs* under telemetry is covered by
//! `crates/bench/tests/telemetry_manifest.rs`, which runs the smoke
//! pipeline both ways; the train-report CSV is excluded here because it
//! legitimately carries wall-clock columns that differ between any two
//! runs, instrumented or not.)

use rand::rngs::StdRng;
use rand::Rng;
use rl::{Action, ActionSpace, Env, Ppo, PpoConfig, Step};

/// Telemetry state is process-global; serialize tests that toggle it.
static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Continuous control: chase a drifting target (same environment shape
/// as the update-equivalence suite).
#[derive(Clone)]
struct Walk {
    pos: f64,
    t: usize,
}

impl Env for Walk {
    fn obs_dim(&self) -> usize {
        2
    }
    fn action_space(&self) -> ActionSpace {
        ActionSpace::Continuous { low: vec![-2.0], high: vec![2.0] }
    }
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.t = 0;
        self.pos = rng.gen_range(-1.0..1.0);
        vec![self.pos, 0.0]
    }
    fn step(&mut self, action: &Action, rng: &mut StdRng) -> Step {
        let a = self.action_space().clip(action.vector())[0];
        let reward = -(a - self.pos) * (a - self.pos);
        self.t += 1;
        self.pos = (self.pos + rng.gen_range(-0.3..0.3)).clamp(-1.0, 1.0);
        Step { obs: vec![self.pos, self.t as f64 / 8.0], reward, done: self.t >= 8 }
    }
}

fn config(n_envs: usize, grad_workers: usize) -> PpoConfig {
    PpoConfig {
        n_steps: 64,
        minibatch_size: 32,
        epochs: 2,
        seed: 97,
        n_envs,
        grad_workers,
        ..PpoConfig::default()
    }
}

/// Train three iterations and return the serialized trainer state.
fn train_state(n_envs: usize, grad_workers: usize) -> String {
    let mut env = Walk { pos: 0.0, t: 0 };
    let mut ppo = Ppo::new_gaussian(2, 1, &[4], 0.5, config(n_envs, grad_workers));
    ppo.try_train_vec(&mut env, 3 * 64).unwrap();
    serde_json::to_string(&ppo.to_train_state()).unwrap()
}

/// The tentpole guarantee: serial and exec-parallel training runs are
/// bit-identical with telemetry off and on — and the instrumented run
/// really did record (spans, counters, FLOPs), so the equality is not
/// vacuous.
#[test]
fn telemetry_on_off_train_states_are_bit_identical() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (n_envs, grad_workers) in [(1, 1), (2, 2)] {
        telemetry::set_enabled(false);
        telemetry::reset();
        let off = train_state(n_envs, grad_workers);

        telemetry::set_enabled(true);
        telemetry::reset();
        let on = train_state(n_envs, grad_workers);
        let snap = telemetry::snapshot();
        telemetry::set_enabled(false);
        telemetry::reset();

        assert_eq!(
            on, off,
            "telemetry changed the TrainState bits (n_envs={n_envs}, grad_workers={grad_workers})"
        );
        // the instrumented run must actually have instrumented
        assert_eq!(snap.counters["rl.iterations"], 3);
        assert!(snap.counters["nn.flops"] > 0, "batched kernels recorded no FLOPs");
        assert!(snap.spans.contains_key("train.rollout"));
        assert!(snap.spans.contains_key("train.update"));
        assert_eq!(snap.spans["train.update"].count, 3);
        if n_envs > 1 {
            assert!(snap.spans.contains_key("exec.slots"), "vectorized rollout missing exec span");
        }
        if grad_workers > 1 {
            assert!(snap.counters["rl.grad.fanout.samples"] > 0);
            assert_eq!(snap.gauges["rl.grad.workers"], grad_workers as f64);
        }
    }
}

/// Toggling telemetry *mid-run* is also invisible to training: a run
/// that flips recording on between iterations matches an untouched one.
#[test]
fn telemetry_toggle_mid_run_is_invisible() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(false);
    telemetry::reset();
    let reference = train_state(1, 1);

    telemetry::set_enabled(false);
    telemetry::reset();
    let mut env = Walk { pos: 0.0, t: 0 };
    let mut ppo = Ppo::new_gaussian(2, 1, &[4], 0.5, config(1, 1));
    ppo.try_train_vec(&mut env, 64).unwrap();
    telemetry::set_enabled(true); // flip on for the middle iteration
    ppo.try_train_vec(&mut env, 64).unwrap();
    telemetry::set_enabled(false); // and off again for the last
    ppo.try_train_vec(&mut env, 64).unwrap();
    let toggled = serde_json::to_string(&ppo.to_train_state()).unwrap();
    telemetry::reset();

    assert_eq!(toggled, reference, "mid-run telemetry toggle perturbed training");
}
