//! Properties of the deterministic parallel execution engine.
//!
//! The contract under test (see `crates/exec`):
//! * `Ppo::train_vec` with `n_envs = 1` is bit-identical to the serial
//!   `Ppo::train` — same reports, same weights, same normalizer state;
//! * `n_envs > 1` training is reproducible: two invocations with the same
//!   seed produce bit-identical reports and weights regardless of thread
//!   scheduling;
//! * `exec::par_map` returns exactly what a serial map returns, in order,
//!   for any worker count.

use abr::{BufferBased, Video};
use adversary::{AbrAdversaryConfig, AbrAdversaryEnv};
use proptest::prelude::*;
use rl::{Ppo, PpoConfig, TrainReport};

fn env() -> AbrAdversaryEnv<BufferBased> {
    AbrAdversaryEnv::new(
        BufferBased::pensieve_defaults(),
        Video::cbr(),
        AbrAdversaryConfig::default(),
    )
}

fn cfg(seed: u64, n_envs: usize) -> PpoConfig {
    PpoConfig { n_steps: 96, minibatch_size: 48, epochs: 2, seed, n_envs, ..PpoConfig::default() }
}

fn trainer(seed: u64, n_envs: usize) -> Ppo {
    Ppo::new_gaussian(adversary::abr_env::OBS_DIM, 1, &[8, 4], 0.8, cfg(seed, n_envs))
}

/// Everything deterministic in a report, floats as bits (timing fields are
/// wall-clock and excluded by construction).
fn report_sig(r: &TrainReport) -> (usize, usize, u64, u64, usize, u64, u64, u64, usize) {
    (
        r.iteration,
        r.total_steps,
        r.mean_step_reward.to_bits(),
        r.mean_episode_reward.to_bits(),
        r.episodes_completed,
        r.entropy.to_bits(),
        r.policy_loss.to_bits(),
        r.value_loss.to_bits(),
        r.n_envs,
    )
}

fn weights_json(ppo: &Ppo) -> String {
    let policy = serde_json::to_string(&ppo.policy).expect("serialize policy");
    let norm = serde_json::to_string(&ppo.obs_norm).expect("serialize obs_norm");
    format!("{policy}|{norm}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `train_vec` with one env is the serial path, bit for bit.
    #[test]
    fn train_vec_single_env_matches_serial(seed in 0u64..1_000_000) {
        let mut serial = trainer(seed, 1);
        let serial_reports = serial.train(&mut env(), 192);

        let mut vec1 = trainer(seed, 1);
        let vec_reports = vec1.train_vec(&mut env(), 192);

        let a: Vec<_> = serial_reports.iter().map(report_sig).collect();
        let b: Vec<_> = vec_reports.iter().map(report_sig).collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(weights_json(&serial), weights_json(&vec1));
    }

    /// Four-worker training is reproducible across invocations.
    #[test]
    fn train_vec_four_envs_reproducible(seed in 0u64..1_000_000) {
        let run = || {
            let mut ppo = trainer(seed, 4);
            let reports = ppo.train_vec(&mut env(), 192);
            let sigs: Vec<_> = reports.iter().map(report_sig).collect();
            (sigs, weights_json(&ppo))
        };
        let (sigs_a, weights_a) = run();
        let (sigs_b, weights_b) = run();
        prop_assert_eq!(sigs_a.clone(), sigs_b);
        prop_assert_eq!(weights_a, weights_b);
        // and the parallel path actually split the rollout
        prop_assert!(sigs_a.iter().all(|s| s.8 == 4));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `par_map` is a map: same values, same order, any worker count.
    #[test]
    fn par_map_matches_serial_map(
        items in proptest::collection::vec(-1_000i64..1_000, 0..40),
        workers in 1usize..9,
    ) {
        let expect: Vec<i64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as i64).collect();
        let got = exec::par_map(items, workers, |i, x| x * 3 + i as i64);
        prop_assert_eq!(got, expect);
    }

    /// Seed-splitting yields distinct streams for distinct workers.
    #[test]
    fn split_seed_streams_are_distinct(seed in proptest::prelude::any::<u64>()) {
        let streams: Vec<u64> = (0..16).map(|w| exec::split_seed(seed, w)).collect();
        for i in 0..streams.len() {
            for j in (i + 1)..streams.len() {
                prop_assert_ne!(streams[i], streams[j]);
            }
        }
    }
}
