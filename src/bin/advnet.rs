//! `advnet` — command-line front end to the adversarial-networking
//! framework. Hand-rolled argument parsing (no CLI dependency) with one
//! subcommand per workflow:
//!
//! ```text
//! advnet gen-corpus  <fcc|hsdpa|random> <count> <out.json> [seed]
//! advnet stats       <traces.json>
//! advnet attack-abr  <bb|rate|mpc> <n_traces> <out.json> [train_steps] [seed]
//! advnet replay-abr  <bb|rate|mpc> <traces.json>
//! advnet attack-cem  <bb|rate|mpc> <out.json> [generations] [seed]
//! ```
//!
//! Fault injection: set `ADVNET_FAULT_PLAN` (e.g.
//! `panic@ppo.update:3,nan@nn.grads:5`) to arm deterministic faults for
//! crash-recovery testing; see the `fault` crate docs for the plan grammar.

use abr::{AbrPolicy, BufferBased, Mpc, RateBased, Video};
use adversary::{
    cem_search, generate_abr_traces, replay_abr_trace, try_train_abr_adversary, AbrAdversaryConfig,
    AbrAdversaryEnv, AdversaryTrainConfig, CemConfig,
};
use std::process::ExitCode;
use traces::{GenConfig, Trace};

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  advnet gen-corpus  <fcc|hsdpa|random> <count> <out.json> [seed]
  advnet stats       <traces.json>
  advnet attack-abr  <bb|rate|mpc> <n_traces> <out.json> [train_steps] [seed]
  advnet replay-abr  <bb|rate|mpc> <traces.json>
  advnet attack-cem  <bb|rate|mpc> <out.json> [generations] [seed]"
    );
    ExitCode::from(2)
}

fn protocol(name: &str) -> Option<Box<dyn AbrPolicy>> {
    match name {
        "bb" => Some(Box::new(BufferBased::pensieve_defaults())),
        "rate" => Some(Box::new(RateBased::default())),
        "mpc" => Some(Box::new(Mpc::default())),
        _ => None,
    }
}

/// Closed-world protocol selection for workflows that need a `Clone + Send`
/// target (adversary training fans the env out across rollout workers).
#[derive(Clone)]
enum Proto {
    Bb(BufferBased),
    Rate(RateBased),
    Mpc(Mpc),
}

impl Proto {
    fn parse(name: &str) -> Option<Self> {
        match name {
            "bb" => Some(Proto::Bb(BufferBased::pensieve_defaults())),
            "rate" => Some(Proto::Rate(RateBased::default())),
            "mpc" => Some(Proto::Mpc(Mpc::default())),
            _ => None,
        }
    }
}

impl AbrPolicy for Proto {
    fn name(&self) -> &str {
        match self {
            Proto::Bb(p) => p.name(),
            Proto::Rate(p) => p.name(),
            Proto::Mpc(p) => p.name(),
        }
    }
    fn select(&mut self, obs: &abr::AbrObservation) -> usize {
        match self {
            Proto::Bb(p) => p.select(obs),
            Proto::Rate(p) => p.select(obs),
            Proto::Mpc(p) => p.select(obs),
        }
    }
    fn reset(&mut self) {
        match self {
            Proto::Bb(p) => p.reset(),
            Proto::Rate(p) => p.reset(),
            Proto::Mpc(p) => p.reset(),
        }
    }
    fn clone_box(&self) -> Box<dyn AbrPolicy + Send> {
        Box::new(self.clone())
    }
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, default: T) -> T {
    args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() -> ExitCode {
    // arm the fault plan (if any) before any subsystem runs, so triggers
    // count from the very first fault point the workflow passes
    match fault::reload_from_env() {
        Ok(Some(plan)) => eprintln!("[advnet] fault plan armed: {plan}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("invalid ADVNET_FAULT_PLAN: {e}");
            return ExitCode::from(2);
        }
    }
    // arm telemetry the same way: one env read up front, so every
    // subsystem's counters land in this process's registry
    telemetry::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let code = match cmd.as_str() {
        "gen-corpus" => gen_corpus(&args),
        "stats" => stats(&args),
        "attack-abr" => attack_abr(&args),
        "replay-abr" => replay_abr(&args),
        "attack-cem" => attack_cem(&args),
        _ => usage(),
    };
    // flush the metric registry as a checksummed run manifest (no-op
    // unless ADVNET_TELEMETRY=on)
    let config = [("command".to_string(), args.join(" "))];
    match telemetry::write_manifest_default(None, &config) {
        Ok(Some(path)) => eprintln!("[advnet] telemetry run manifest {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("[advnet] warning: could not write telemetry run manifest: {e}"),
    }
    code
}

fn gen_corpus(args: &[String]) -> ExitCode {
    let (Some(kind), Some(count), Some(out)) = (args.get(1), args.get(2), args.get(3)) else {
        return usage();
    };
    let count: usize = match count.parse() {
        Ok(c) => c,
        Err(_) => return usage(),
    };
    let seed: u64 = parse(args, 4, 0);
    let cfg = GenConfig::default();
    let corpus: Vec<Trace> = (0..count as u64)
        .map(|i| match kind.as_str() {
            "fcc" => traces::fcc_like(seed + i, &cfg),
            "hsdpa" => traces::hsdpa_like(seed + i, &cfg),
            "random" => traces::random_abr_trace(seed + i, 80, 4.0, cfg.latency_ms),
            other => {
                eprintln!("unknown corpus kind {other:?}");
                std::process::exit(2);
            }
        })
        .collect();
    if let Err(e) = traces::io::save_traces(out, &corpus) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {count} {kind} traces to {out}");
    ExitCode::SUCCESS
}

fn stats(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else { return usage() };
    let traces = match traces::io::load_traces(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:>24} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "name", "dur s", "mean bw", "min bw", "max bw", "jump", "loss"
    );
    for t in &traces {
        let s = traces::TraceStats::of(t);
        println!(
            "{:>24} {:>9.1} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.4}",
            t.name,
            s.duration_s,
            s.mean_bandwidth,
            s.min_bandwidth,
            s.max_bandwidth,
            s.mean_bw_jump,
            s.mean_loss
        );
    }
    println!("({} traces)", traces.len());
    ExitCode::SUCCESS
}

fn attack_abr(args: &[String]) -> ExitCode {
    let (Some(proto), Some(n), Some(out)) = (args.get(1), args.get(2), args.get(3)) else {
        return usage();
    };
    let n: usize = match n.parse() {
        Ok(n) => n,
        Err(_) => return usage(),
    };
    let steps: usize = parse(args, 4, 60_000);
    let seed: u64 = parse(args, 5, 0);
    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();
    let Some(target) = Proto::parse(proto) else { return usage() };

    eprintln!("training adversary vs {proto} for {steps} steps (seed {seed})...");
    let mut env = AbrAdversaryEnv::new(target, video.clone(), cfg.clone());
    // ADVNET_CHECKPOINT=<path> makes the run crash-safe: a checkpoint is
    // written there each iteration and a rerun resumes from it (delete the
    // file to start over).
    let tcfg = AdversaryTrainConfig {
        total_steps: steps,
        ppo: rl::PpoConfig { seed, ..AdversaryTrainConfig::default().ppo },
        checkpoint_path: std::env::var_os("ADVNET_CHECKPOINT").map(std::path::PathBuf::from),
        checkpoint_every: 1,
        ..AdversaryTrainConfig::default()
    };
    let (adv, reports) = match try_train_abr_adversary(&mut env, &tcfg) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("adversary training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "adversary reward {:.3} -> {:.3}",
        reports.first().map(|r| r.mean_step_reward).unwrap_or(f64::NAN),
        reports.last().map(|r| r.mean_step_reward).unwrap_or(f64::NAN)
    );
    let raw = generate_abr_traces(&mut env, &adv, n, false, seed ^ 0xabc);
    let corpus = adversary::abr_traces_to_corpus(&raw, &video, cfg.latency_ms, "adversarial");
    if let Err(e) = traces::io::save_traces(out, &corpus) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {n} adversarial traces (target {proto}) to {out}");
    ExitCode::SUCCESS
}

fn replay_abr(args: &[String]) -> ExitCode {
    let (Some(proto), Some(path)) = (args.get(1), args.get(2)) else { return usage() };
    let Some(mut target) = protocol(proto) else { return usage() };
    let loaded = match traces::io::load_traces(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();
    let mut qoes = Vec::new();
    for t in &loaded {
        let bws: Vec<f64> = t.segments.iter().map(|s| s.bandwidth_mbps).collect();
        let q = replay_abr_trace(&bws, target.as_mut(), &video, &cfg);
        println!("{:>24}: QoE/chunk {q:>8.3}", t.name);
        qoes.push(q);
    }
    // an empty or malformed trace file yields zero replays; report that
    // instead of panicking inside percentile
    let pct = |p: f64| nn::ops::try_percentile(&qoes, p).unwrap_or(f64::NAN);
    println!(
        "\n{proto} over {} traces: mean {:.3}, p5 {:.3}, median {:.3}",
        qoes.len(),
        nn::ops::mean(&qoes),
        pct(5.0),
        pct(50.0),
    );
    ExitCode::SUCCESS
}

fn attack_cem(args: &[String]) -> ExitCode {
    let (Some(proto), Some(out)) = (args.get(1), args.get(2)) else { return usage() };
    let Some(mut target) = protocol(proto) else { return usage() };
    let generations: usize = parse(args, 3, 30);
    let seed: u64 = parse(args, 4, 0);
    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();
    eprintln!("CEM search vs {proto} ({generations} generations, seed {seed})...");
    let outcome = cem_search(
        target.as_mut(),
        &video,
        &cfg,
        &CemConfig { generations, seed, ..CemConfig::default() },
    );
    println!("best score (opt-gap/chunk − smoothing): {:.3}", outcome.score);
    let corpus = adversary::abr_traces_to_corpus(&[outcome.trace], &video, cfg.latency_ms, "cem");
    if let Err(e) = traces::io::save_traces(out, &corpus) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote the trace to {out}");
    ExitCode::SUCCESS
}
