//! Render a telemetry run manifest (`results/runs/<run-id>.json`) as a
//! human-readable table, or diff two manifests for the CI perf gate.
//!
//! ```text
//! telemetry-report <manifest.json>
//! telemetry-report --diff <reference.json> <candidate.json> [--warn-pct <p>] [--fail]
//! telemetry-report --exec-table <BENCH_exec.json>
//! ```
//!
//! The diff aggregates span wall time per phase group (the first
//! dot-separated segment of the span name: `train.*`, `exec.*`, `sim.*`,
//! `bench.*`) and flags groups whose total regressed by more than
//! `--warn-pct` (default 20). Warnings are informational unless `--fail`
//! is passed, in which case any flagged `sim`/`train`/`exec` group makes
//! the process exit 3 — CI runs warn-only until a stable reference host
//! exists (see ROADMAP).
//!
//! Checksums are verified before anything is parsed: a manifest that
//! rotted on disk is rejected, same discipline as `rl::ckpt`.

use serde::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Phase groups the perf gate watches for regressions.
const GATED_GROUPS: [&str; 3] = ["sim", "train", "exec"];
/// Reference group totals under this many seconds are noise, not a baseline.
const MIN_GATE_SECONDS: f64 = 1e-3;

fn usage() -> ExitCode {
    eprintln!(
        "usage: telemetry-report <manifest.json>\n       telemetry-report --diff <reference.json> <candidate.json> [--warn-pct <p>] [--fail]\n       telemetry-report --exec-table <BENCH_exec.json>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let body = telemetry::manifest_body(text.trim_end()).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str::<Value>(body).map_err(|e| format!("{path}: parse: {e}"))
}

fn num(v: &Value) -> f64 {
    match v {
        Value::U64(n) => *n as f64,
        Value::I64(n) => *n as f64,
        Value::F64(n) => *n,
        _ => f64::NAN,
    }
}

/// `"counters"`/`"spans"`/… section of the manifest as name → value pairs.
fn section<'a>(doc: &'a Value, name: &str) -> Vec<(&'a str, &'a Value)> {
    doc.get(name)
        .and_then(|v| v.as_object())
        .map(|fields| fields.iter().map(|(k, v)| (k.as_str(), v)).collect())
        .unwrap_or_default()
}

fn field_f64(v: &Value, name: &str) -> f64 {
    v.get(name).map(num).unwrap_or(f64::NAN)
}

fn render(path: &str) -> Result<(), String> {
    let doc = load(path)?;
    let str_of = |k: &str| doc.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
    println!("run manifest {path}");
    println!("  run_id: {}", str_of("run_id"));
    match doc.get("seed") {
        Some(Value::Null) | None => println!("  seed:   (none)"),
        Some(v) => println!("  seed:   {}", num(v)),
    }
    if let Some(prov) = doc.get("provenance") {
        let p = |k: &str| prov.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
        println!(
            "  commit: {}  host: {} ({} cores)",
            p("commit"),
            p("hostname"),
            field_f64(prov, "cores")
        );
        println!("  rustc:  {}  os: {}", p("rustc"), p("os"));
    }
    let config = section(&doc, "config");
    if !config.is_empty() {
        println!("  config:");
        for (k, v) in config {
            println!("    {k} = {}", v.as_str().unwrap_or("?"));
        }
    }

    let spans = section(&doc, "spans");
    if !spans.is_empty() {
        println!(
            "\n  {:<28}{:>8}{:>12}{:>12}{:>12}{:>12}",
            "span", "count", "total_s", "mean_s", "min_s", "max_s"
        );
        for (name, s) in &spans {
            let count = field_f64(s, "count");
            let total = field_f64(s, "total_s");
            println!(
                "  {:<28}{:>8}{:>12.4}{:>12.6}{:>12.6}{:>12.6}",
                name,
                count,
                total,
                total / count.max(1.0),
                field_f64(s, "min_s"),
                field_f64(s, "max_s"),
            );
        }
    }

    let counters = section(&doc, "counters");
    if !counters.is_empty() {
        println!("\n  {:<40}{:>16}", "counter", "value");
        for (name, v) in &counters {
            println!("  {:<40}{:>16}", name, num(v));
        }
        // per-phase rollup, mirroring the span grouping: subsystem
        // counters (`arena.pool.insert`, `serve.decisions`, …) sum under
        // their first dot segment so a phase's activity reads at a glance
        let groups = counter_group_totals(&doc);
        if groups.len() > 1 {
            println!("\n  {:<40}{:>16}", "counter group", "total");
            for (g, total) in &groups {
                println!("  {:<40}{:>16}", g, total);
            }
        }
    }

    let gauges = section(&doc, "gauges");
    if !gauges.is_empty() {
        println!("\n  {:<40}{:>16}", "gauge", "value");
        for (name, v) in &gauges {
            println!("  {:<40}{:>16}", name, num(v));
        }
    }

    let hists = section(&doc, "histograms");
    if !hists.is_empty() {
        println!(
            "\n  {:<28}{:>8}{:>12}{:>12}{:>12}{:>12}",
            "histogram", "count", "sum", "mean", "min", "max"
        );
        for (name, h) in &hists {
            let count = field_f64(h, "count");
            let sum = field_f64(h, "sum");
            println!(
                "  {:<28}{:>8}{:>12.4}{:>12.6}{:>12.6}{:>12.6}",
                name,
                count,
                sum,
                sum / count.max(1.0),
                field_f64(h, "min"),
                field_f64(h, "max"),
            );
        }
    }
    Ok(())
}

/// Counter totals per phase group (first dot-separated name segment),
/// the counter analogue of [`group_totals`].
fn counter_group_totals(doc: &Value) -> BTreeMap<String, f64> {
    let mut groups: BTreeMap<String, f64> = BTreeMap::new();
    for (name, v) in section(doc, "counters") {
        let group = name.split('.').next().unwrap_or(name).to_string();
        *groups.entry(group).or_insert(0.0) += num(v);
    }
    groups
}

/// Span totals per phase group (first dot-separated name segment).
fn group_totals(doc: &Value) -> BTreeMap<String, f64> {
    let mut groups: BTreeMap<String, f64> = BTreeMap::new();
    for (name, s) in section(doc, "spans") {
        let group = name.split('.').next().unwrap_or(name).to_string();
        *groups.entry(group).or_insert(0.0) += field_f64(s, "total_s");
    }
    groups
}

fn pct(reference: f64, candidate: f64) -> f64 {
    if reference.abs() < f64::EPSILON {
        if candidate.abs() < f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (candidate - reference) / reference
    }
}

fn diff(ref_path: &str, cand_path: &str, warn_pct: f64, fail: bool) -> Result<ExitCode, String> {
    let reference = load(ref_path)?;
    let candidate = load(cand_path)?;
    let commit = |d: &Value| {
        d.get("provenance")
            .and_then(|p| p.get("commit"))
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    println!(
        "diff: {ref_path} (commit {}) -> {cand_path} (commit {})",
        commit(&reference),
        commit(&candidate)
    );

    // wall-time comparisons across hosts with different core counts are
    // apples-to-oranges for parallel phases — surface the parallelism of
    // both hosts and warn loudly when they differ
    let cores = |d: &Value| d.get("provenance").map(|p| field_f64(p, "cores")).unwrap_or(f64::NAN);
    let (ref_cores, cand_cores) = (cores(&reference), cores(&candidate));
    println!("  host_parallelism: ref {ref_cores} cores, candidate {cand_cores} cores");
    if ref_cores != cand_cores && !(ref_cores.is_nan() && cand_cores.is_nan()) {
        eprintln!(
            "warning: host_parallelism differs ({ref_cores} vs {cand_cores} cores) — \
             wall-time deltas for parallel phases are not comparable"
        );
    }

    // per-span wall time
    let ref_spans: BTreeMap<&str, f64> = section(&reference, "spans")
        .into_iter()
        .map(|(k, v)| (k, field_f64(v, "total_s")))
        .collect();
    let cand_spans: BTreeMap<&str, f64> = section(&candidate, "spans")
        .into_iter()
        .map(|(k, v)| (k, field_f64(v, "total_s")))
        .collect();
    let mut names: Vec<&str> = ref_spans.keys().chain(cand_spans.keys()).copied().collect();
    names.sort_unstable();
    names.dedup();
    if !names.is_empty() {
        println!("\n  {:<28}{:>12}{:>12}{:>10}", "span", "ref_s", "new_s", "delta");
        for name in names {
            let r = ref_spans.get(name).copied().unwrap_or(0.0);
            let c = cand_spans.get(name).copied().unwrap_or(0.0);
            println!("  {:<28}{:>12.4}{:>12.4}{:>+9.1}%", name, r, c, pct(r, c));
        }
    }

    // counter deltas (only changed ones — steady counters are noise here)
    let ref_ctrs: BTreeMap<&str, f64> =
        section(&reference, "counters").into_iter().map(|(k, v)| (k, num(v))).collect();
    let cand_ctrs: BTreeMap<&str, f64> =
        section(&candidate, "counters").into_iter().map(|(k, v)| (k, num(v))).collect();
    let mut cnames: Vec<&str> = ref_ctrs.keys().chain(cand_ctrs.keys()).copied().collect();
    cnames.sort_unstable();
    cnames.dedup();
    let changed: Vec<&str> = cnames
        .into_iter()
        .filter(|n| {
            ref_ctrs.get(*n).copied().unwrap_or(0.0) != cand_ctrs.get(*n).copied().unwrap_or(0.0)
        })
        .collect();
    if !changed.is_empty() {
        println!("\n  {:<40}{:>12}{:>12}", "counter (changed)", "ref", "new");
        for name in changed {
            println!(
                "  {:<40}{:>12}{:>12}",
                name,
                ref_ctrs.get(name).copied().unwrap_or(0.0),
                cand_ctrs.get(name).copied().unwrap_or(0.0)
            );
        }
    }

    // counter-group rollup (informational; counters measure work done,
    // not wall time, so they are never gated)
    let ref_cgroups = counter_group_totals(&reference);
    let cand_cgroups = counter_group_totals(&candidate);
    let mut cgroups: Vec<&String> = ref_cgroups.keys().chain(cand_cgroups.keys()).collect();
    cgroups.sort_unstable();
    cgroups.dedup();
    if !cgroups.is_empty() {
        println!("\n  {:<12}{:>14}{:>14}{:>10}", "counters", "ref", "new", "delta");
        for g in cgroups {
            let r = ref_cgroups.get(g).copied().unwrap_or(0.0);
            let c = cand_cgroups.get(g).copied().unwrap_or(0.0);
            println!("  {:<12}{:>14}{:>14}{:>+9.1}%", g, r, c, pct(r, c));
        }
    }

    // phase-group gate
    let ref_groups = group_totals(&reference);
    let cand_groups = group_totals(&candidate);
    let mut warnings = 0usize;
    println!(
        "\n  {:<12}{:>12}{:>12}{:>10}  gate(>{warn_pct:.0}%)",
        "group", "ref_s", "new_s", "delta"
    );
    let mut groups: Vec<&String> = ref_groups.keys().chain(cand_groups.keys()).collect();
    groups.sort_unstable();
    groups.dedup();
    for g in groups {
        let r = ref_groups.get(g).copied().unwrap_or(0.0);
        let c = cand_groups.get(g).copied().unwrap_or(0.0);
        let delta = pct(r, c);
        let gated = GATED_GROUPS.contains(&g.as_str());
        let verdict = if !gated {
            "-"
        } else if r < MIN_GATE_SECONDS {
            "skip (ref below noise floor)"
        } else if delta > warn_pct {
            warnings += 1;
            "WARN: regression"
        } else {
            "ok"
        };
        println!("  {:<12}{:>12.4}{:>12.4}{:>+9.1}%  {verdict}", g, r, c, delta);
    }
    if warnings > 0 {
        eprintln!(
            "warning: {warnings} phase group(s) regressed more than {warn_pct:.0}% vs {ref_path}"
        );
        if fail {
            return Ok(ExitCode::from(3));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Render `results/BENCH_exec.json` (the core-scaling sweep written by
/// the `exec_perf` bench) as a GitHub-flavored markdown table, for the CI
/// perf-gate job summary. Plain JSON, no checksum envelope — the bench
/// report is a measurement log, not a sealed manifest.
fn exec_table(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = serde_json::from_str::<Value>(text.trim_end())
        .map_err(|e| format!("{path}: parse: {e}"))?;
    let str_of = |k: &str| doc.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
    let host_par = field_f64(&doc, "host_parallelism");
    println!("### exec core-scaling sweep");
    println!();
    println!(
        "host `{}` — host_parallelism {}, commit `{}`, averaged over {} iterations of {} steps",
        str_of("hostname"),
        host_par,
        str_of("commit"),
        field_f64(&doc, "iterations_averaged"),
        field_f64(&doc, "n_steps"),
    );
    println!();
    let rows = |k: &str| doc.get(k).and_then(|v| v.as_array()).unwrap_or_default();
    let update = rows("update_fanout");
    if !update.is_empty() {
        println!("| grad_workers | update s/iter | speedup vs 1 |");
        println!("|---:|---:|---:|");
        for r in update {
            println!(
                "| {} | {:.4} | {:.2}× |",
                field_f64(r, "grad_workers"),
                field_f64(r, "update_wall_s"),
                field_f64(r, "speedup_vs_one"),
            );
        }
        println!();
    }
    let rollout = rows("rows");
    if !rollout.is_empty() {
        println!("| n_envs | rollout steps/s | speedup vs serial |");
        println!("|---:|---:|---:|");
        for r in rollout {
            println!(
                "| {} | {:.0} | {:.2}× |",
                field_f64(r, "n_envs"),
                field_f64(r, "steps_per_s"),
                field_f64(r, "speedup_vs_serial"),
            );
        }
        println!();
    }
    if host_par <= 1.0 {
        println!(
            "_single-core host: parallel rows cannot beat serial here; \
             the speedup column is informational only_"
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |r: Result<(), String>| match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("telemetry-report: {e}");
            ExitCode::from(2)
        }
    };
    match args.first().map(String::as_str) {
        Some("--diff") => {
            let (Some(a), Some(b)) = (args.get(1), args.get(2)) else { return usage() };
            let mut warn_pct = 20.0;
            let mut fail = false;
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--warn-pct" => {
                        let Some(p) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                            return usage();
                        };
                        warn_pct = p;
                        i += 2;
                    }
                    "--fail" => {
                        fail = true;
                        i += 1;
                    }
                    _ => return usage(),
                }
            }
            match diff(a, b, warn_pct, fail) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("telemetry-report: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("--exec-table") => {
            let Some(p) = args.get(1).filter(|_| args.len() == 2) else { return usage() };
            run(exec_table(p))
        }
        Some(path) if !path.starts_with('-') && args.len() == 1 => run(render(path)),
        _ => usage(),
    }
}
