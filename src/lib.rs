//! Umbrella crate re-exporting the whole adversarial-networking workspace.
//!
//! See README.md for the architecture overview and DESIGN.md for the
//! paper-to-module mapping.
//!
//! # Example: score a protocol on an adversarial-style trace
//!
//! ```
//! use adversarial_net::abr::{BufferBased, Video};
//! use adversarial_net::adversary::{replay_abr_trace, AbrAdversaryConfig};
//!
//! let video = Video::cbr();
//! let cfg = AbrAdversaryConfig::default();
//! // a hand-written bandwidth trace (Mbit/s per chunk)
//! let trace: Vec<f64> = (0..video.n_chunks())
//!     .map(|i| if i % 6 < 3 { 1.0 } else { 4.0 })
//!     .collect();
//! let qoe = replay_abr_trace(&trace, &mut BufferBased::pensieve_defaults(), &video, &cfg);
//! assert!(qoe.is_finite());
//! ```
//!
//! # Example: drive BBR through the packet simulator
//!
//! ```
//! use adversarial_net::cc::Bbr;
//! use adversarial_net::netsim::{FlowSim, LinkParams, SimConfig, SEC};
//!
//! let mut sim = FlowSim::new(
//!     Box::new(Bbr::new()),
//!     LinkParams::new(12.0, 25.0, 0.0),
//!     SimConfig::default(),
//! );
//! sim.run_for(3 * SEC);
//! let stats = sim.run_for(2 * SEC);
//! assert!(stats.utilization > 0.8);
//! ```

pub use abr;
pub use adversary;
pub use cc;
pub use exec;
pub use netsim;
pub use nn;
pub use rl;
pub use traces;
