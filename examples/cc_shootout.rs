//! Congestion-control shootout: BBR vs Cubic vs Reno across random-loss
//! rates — the paper's premise (§4) that loss-based TCP has a "trivial
//! weakness to packet loss even as low as 1 %" while BBR does not, which is
//! why the adversary must attack BBR's *probing* instead.
//!
//! ```sh
//! cargo run --release --example cc_shootout
//! ```

use cc::{Bbr, Copa, Cubic, Reno, Vivace};
use netsim::{CongestionControl, FlowSim, LinkParams, SimConfig, SEC};

fn measure(make: impl Fn() -> Box<dyn CongestionControl>, loss: f64) -> f64 {
    let params = LinkParams::new(12.0, 25.0, loss);
    let mut sim = FlowSim::new(make(), params, SimConfig::default());
    sim.run_for(5 * SEC); // warm-up
    sim.run_for(20 * SEC).utilization
}

fn main() {
    println!("== loss tolerance: modern vs loss-based CC (12 Mbit/s, 50 ms RTT) ==\n");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "loss %", "bbr", "copa", "vivace", "cubic", "reno"
    );
    for loss in [0.0, 0.005, 0.01, 0.02, 0.05, 0.10] {
        let bbr = measure(|| Box::new(Bbr::new()), loss);
        let copa = measure(|| Box::new(Copa::new()), loss);
        let vivace = measure(|| Box::new(Vivace::new()), loss);
        let cubic = measure(|| Box::new(Cubic::new()), loss);
        let reno = measure(|| Box::new(Reno::new()), loss);
        println!(
            "{:>8.1} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            loss * 100.0,
            bbr * 100.0,
            copa * 100.0,
            vivace * 100.0,
            cubic * 100.0,
            reno * 100.0
        );
    }
    println!("\nModern protocols (BBR, Copa, Vivace) shrug off random loss while");
    println!("Cubic/Reno halve their windows on every drop — hence the paper's");
    println!("adversary cannot beat BBR with loss alone and attacks its probing.");
}
