//! The paper's §2.3 robustification pipeline, end to end at small scale:
//! train Pensieve, pause at 90 %, train an adversary against the snapshot,
//! inject its traces, resume — then compare against the plain baseline on
//! held-out broadband and 3G-like corpora.
//!
//! (Figure 4 of the paper at full scale: `cargo run -p adv-bench --release
//! --bin fig4`, optionally with `FULL=1`.)
//!
//! ```sh
//! cargo run --release --example robust_pensieve
//! ```

use abr::{QoeParams, Video};
use adversary::robustify::eval_pensieve;
use adversary::{robustify_pensieve, AdversaryTrainConfig, RobustifyConfig};
use traces::{fcc_like, hsdpa_like, GenConfig, Trace};

fn main() {
    println!("== adversarial training of Pensieve (miniature Fig. 4) ==\n");
    let video = Video::cbr();
    let qoe = QoeParams::default();
    let gen_cfg = GenConfig::default();

    let train: Vec<Trace> = (0..24).map(|i| fcc_like(i, &gen_cfg)).collect();
    let test_bb: Vec<Trace> = (0..24).map(|i| fcc_like(500 + i, &gen_cfg)).collect();
    let test_3g: Vec<Trace> = (0..24).map(|i| hsdpa_like(500 + i, &gen_cfg)).collect();

    let cfg = RobustifyConfig {
        total_steps: 120_000,
        inject_at: 0.9,
        n_adv_traces: 24,
        adversary: AdversaryTrainConfig { total_steps: 30_000, ..Default::default() },
        ..Default::default()
    };
    println!(
        "training: {} steps, adversarial injection at {:.0}%, {} adversarial traces...",
        cfg.total_steps,
        cfg.inject_at * 100.0,
        cfg.n_adv_traces
    );
    let out = robustify_pensieve(train, video.clone(), qoe.clone(), &cfg);

    println!("\n{:>24} {:>12} {:>12} {:>10}", "test set [stat]", "baseline", "robust", "ratio");
    for (label, corpus) in [("broadband", &test_bb), ("3g", &test_3g)] {
        let base = eval_pensieve(&out.baseline, corpus, &video, &qoe);
        let robust = eval_pensieve(&out.robust, corpus, &video, &qoe);
        for (stat, b, r) in [
            ("mean", nn::ops::mean(&base), nn::ops::mean(&robust)),
            ("p5", nn::ops::percentile(&base, 5.0), nn::ops::percentile(&robust, 5.0)),
        ] {
            println!(
                "{:>24} {:>12.3} {:>12.3} {:>10.2}",
                format!("{label} [{stat}]"),
                b,
                r,
                if b.abs() > 1e-9 { r / b } else { f64::NAN }
            );
        }
    }
    println!(
        "\n({} adversarial traces were injected; at this miniature scale gains",
        out.adv_traces.len()
    );
    println!("are noisy — the fig4 binary runs the full experiment.)");
}
