//! Quickstart: train a small RL adversary against the Buffer-Based ABR
//! protocol, generate an adversarial trace, and show that it reproducibly
//! hurts BB while leaving headroom an optimal protocol could use.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use abr::{optimal_qoe_dp, BufferBased, Video};
use adversary::{
    generate_abr_traces, random_abr_traces, replay_abr_trace, train_abr_adversary,
    AbrAdversaryConfig, AbrAdversaryEnv, AdversaryTrainConfig,
};

fn main() {
    println!("== adversarial-net quickstart ==\n");
    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();

    // 1. an adversary environment around the target protocol
    let mut env =
        AbrAdversaryEnv::new(BufferBased::pensieve_defaults(), video.clone(), cfg.clone());

    // 2. train briefly (the paper trains for 600k steps; a few tens of
    //    thousands already find BB's buffer-band weakness)
    println!("training adversary vs BB (30k steps)...");
    let train_cfg = AdversaryTrainConfig { total_steps: 30_000, ..Default::default() };
    let (adversary, reports) = train_abr_adversary(&mut env, &train_cfg);
    println!(
        "adversary mean step reward: {:.3} -> {:.3}\n",
        reports.first().unwrap().mean_step_reward,
        reports.last().unwrap().mean_step_reward,
    );

    // 3. generate one deterministic adversarial trace
    let trace = generate_abr_traces(&mut env, &adversary, 1, true, 42).pop().unwrap();
    println!("adversarial bandwidth trace (Mbit/s, one value per chunk):");
    for row in trace.chunks(12) {
        println!("  {}", row.iter().map(|b| format!("{b:4.1}")).collect::<Vec<_>>().join(" "));
    }

    // 4. replay: the trace is a reproducible test case
    let mut bb = BufferBased::pensieve_defaults();
    let bb_qoe = replay_abr_trace(&trace, &mut bb, &video, &cfg);
    let (opt_total, _) = optimal_qoe_dp(&video, &cfg.qoe, &trace, cfg.latency_ms / 1000.0);
    let opt_qoe = opt_total / video.n_chunks() as f64;

    // compare with what random traces do
    let random = random_abr_traces(20, video.n_chunks(), 7);
    let rand_bb: f64 = random
        .iter()
        .map(|t| replay_abr_trace(t, &mut BufferBased::pensieve_defaults(), &video, &cfg))
        .sum::<f64>()
        / random.len() as f64;

    println!("\nper-chunk mean QoE:");
    println!("  BB on the adversarial trace : {bb_qoe:7.3}");
    println!("  offline optimum, same trace : {opt_qoe:7.3}");
    println!("  BB on random traces (mean)  : {rand_bb:7.3}");
    println!(
        "\nthe adversary opened a {:.2} QoE/chunk gap between BB and the optimum",
        opt_qoe - bb_qoe
    );
}
