//! Compare every built-in ABR protocol across three synthetic network
//! corpora: FCC-broadband-like, Norway-3G-like, and random traces spanning
//! the adversary's action space.
//!
//! ```sh
//! cargo run --release --example abr_showdown
//! ```

use abr::{
    mean_qoe, run_session, AbrPolicy, BufferBased, Mpc, QoeParams, RateBased, TraceNetwork, Video,
};
use traces::{fcc_like, hsdpa_like, GenConfig, Trace};

fn protocols() -> Vec<Box<dyn AbrPolicy>> {
    vec![
        Box::new(BufferBased::pensieve_defaults()),
        Box::new(RateBased::default()),
        Box::new(Mpc::default()),
    ]
}

fn eval_corpus(name: &str, corpus: &[Trace], video: &Video, qoe: &QoeParams) {
    println!("\n--- {name} ({} traces) ---", corpus.len());
    println!("{:>8} {:>8} {:>8} {:>8} {:>10}", "proto", "mean", "p5", "median", "rebuf s/vid");
    for mut proto in protocols() {
        let mut qoes = Vec::new();
        let mut rebuf = 0.0;
        for t in corpus {
            let mut net = TraceNetwork::new(t);
            let outcomes = run_session(video, proto.as_mut(), &mut net, qoe);
            qoes.push(mean_qoe(&outcomes));
            rebuf += outcomes.iter().map(|o| o.rebuffer_s).sum::<f64>();
        }
        println!(
            "{:>8} {:>8.3} {:>8.3} {:>8.3} {:>10.2}",
            proto.name(),
            nn::ops::mean(&qoes),
            nn::ops::percentile(&qoes, 5.0),
            nn::ops::percentile(&qoes, 50.0),
            rebuf / corpus.len() as f64,
        );
    }
}

fn main() {
    println!("== ABR protocol showdown over synthetic corpora ==");
    let video = Video::cbr();
    let qoe = QoeParams::default();
    let cfg = GenConfig::default();

    let broadband: Vec<Trace> = (0..40).map(|i| fcc_like(i, &cfg)).collect();
    let mobile: Vec<Trace> = (0..40).map(|i| hsdpa_like(i, &cfg)).collect();
    let random: Vec<Trace> = (0..40).map(|i| traces::random_abr_trace(i, 80, 4.0, 80.0)).collect();

    eval_corpus("FCC-broadband-like", &broadband, &video, &qoe);
    eval_corpus("Norway-3G-like", &mobile, &video, &qoe);
    eval_corpus("random (adversary action space)", &random, &video, &qoe);

    println!("\nNote: BB ignores throughput and pays in smoothness; MPC's lookahead");
    println!("usually wins, which is why the paper needs an *adversary* — not random");
    println!("traces — to expose conditions where MPC loses to others (Figs. 1-2).");
}
