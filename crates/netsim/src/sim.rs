//! The single-flow event loop: paced sending, bottleneck queueing, loss,
//! ACK clocking, duplicate-ACK loss detection, and RTO.

use crate::event::{EventKind, EventQueue};
use crate::link::{LinkParams, Packet, Queue};
use crate::{to_secs, Time, MTU_BYTES, SEC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Everything a congestion-control algorithm learns from one ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Simulation time of the ACK's arrival at the sender, seconds.
    pub now_s: f64,
    /// Round-trip time of the acked packet, seconds.
    pub rtt_s: f64,
    /// BBR-style delivery-rate sample in bits/s: bytes delivered between
    /// this packet's send and its ACK, over that wall-clock span.
    pub delivery_rate_bps: f64,
    /// Bytes newly acknowledged by this ACK.
    pub newly_acked_bytes: usize,
    /// Bytes still in flight after this ACK.
    pub inflight_bytes: usize,
    /// Sender's cumulative acknowledged-byte counter (Linux
    /// `tp->delivered`), used for round tracking.
    pub delivered_bytes: u64,
    /// Cumulative delivered bytes when the acked packet was sent (for
    /// round tracking).
    pub delivered_at_send: u64,
}

/// A congestion-control algorithm as the simulator drives it.
///
/// Implementations are pure state machines: the simulator calls the `on_*`
/// notifications and consults [`CongestionControl::pacing_rate_bps`] /
/// [`CongestionControl::cwnd_packets`] before each transmission. `Send` is
/// a supertrait so simulators (and the adversary environments that own
/// them) can move across `exec` rollout worker threads.
pub trait CongestionControl: Send {
    /// Short protocol name ("bbr", "cubic", "reno").
    fn name(&self) -> &str;

    /// An ACK arrived.
    fn on_ack(&mut self, ack: &AckEvent);

    /// `lost` packets were declared lost via duplicate-ACK detection.
    fn on_loss(&mut self, lost: usize, now_s: f64);

    /// Retransmission timeout fired: everything in flight was lost.
    fn on_rto(&mut self, now_s: f64);

    /// Current pacing rate in bits/s.
    fn pacing_rate_bps(&self) -> f64;

    /// Current congestion window in packets.
    fn cwnd_packets(&self) -> f64;
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Drop-tail queue capacity in bytes. Default: 150 kB (≈100 packets,
    /// between one and two BDPs across the Table 1 parameter ranges).
    pub queue_capacity_bytes: usize,
    /// Packet size in bytes.
    pub packet_bytes: usize,
    /// RNG seed for loss draws.
    pub seed: u64,
    /// Minimum retransmission timeout, seconds.
    pub min_rto_s: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queue_capacity_bytes: 100 * MTU_BYTES,
            packet_bytes: MTU_BYTES,
            seed: 0,
            min_rto_s: 0.25,
        }
    }
}

/// Per-interval link statistics — the adversary's observations.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntervalStats {
    pub duration_s: f64,
    /// Bytes handed to the receiver during the interval.
    pub delivered_bytes: u64,
    /// `bandwidth × duration` — what the link could have carried.
    pub capacity_bytes: f64,
    /// `delivered / capacity`, clamped to `[0, 1]`.
    pub utilization: f64,
    /// Achieved throughput in Mbit/s.
    pub throughput_mbps: f64,
    /// Mean RTT of ACKs in the interval, ms (0 when no ACKs).
    pub avg_rtt_ms: f64,
    /// Mean sojourn time at the bottleneck (queueing + serialization), ms.
    pub avg_queue_delay_ms: f64,
    pub packets_sent: u64,
    pub packets_delivered: u64,
    pub packets_lost_random: u64,
    pub packets_lost_overflow: u64,
}

/// The single-flow, single-bottleneck simulator.
pub struct FlowSim {
    now: Time,
    events: EventQueue,
    params: LinkParams,
    queue: Queue,
    serving: Option<Packet>,
    cc: Box<dyn CongestionControl>,
    cfg: SimConfig,
    rng: StdRng,

    next_seq: u64,
    outstanding: BTreeMap<u64, Packet>,
    inflight_bytes: usize,
    /// Receiver's cumulative delivered bytes (interval statistics).
    delivered_bytes: u64,
    /// Sender's cumulative acknowledged bytes (BBR-style rate samples and
    /// round tracking, mirroring Linux's `tp->delivered`).
    acked_bytes: u64,
    next_send_time: Time,
    send_scheduled: bool,
    srtt_s: f64,
    last_progress: Time,
    rto_armed_at: Time,
    /// Latest scheduled ACK arrival; the return path is FIFO, so ACKs never
    /// overtake each other even when the propagation delay drops between
    /// two deliveries (otherwise a latency decrease would masquerade as
    /// packet reordering and trip spurious loss detection).
    last_ack_arrival: Time,

    // interval accumulators (reset by `run_for`)
    acc: Accumulators,
}

#[derive(Debug, Default, Clone, Copy)]
struct Accumulators {
    delivered_bytes: u64,
    packets_delivered: u64,
    packets_sent: u64,
    lost_random: u64,
    lost_overflow: u64,
    rtt_sum_s: f64,
    rtt_samples: u64,
    sojourn_sum_s: f64,
    sojourn_samples: u64,
}

impl FlowSim {
    pub fn new(cc: Box<dyn CongestionControl>, params: LinkParams, cfg: SimConfig) -> Self {
        params.validate();
        let mut sim = FlowSim {
            now: 0,
            events: EventQueue::new(),
            queue: Queue::new(cfg.queue_capacity_bytes),
            serving: None,
            cc,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            params,
            next_seq: 0,
            outstanding: BTreeMap::new(),
            inflight_bytes: 0,
            delivered_bytes: 0,
            acked_bytes: 0,
            next_send_time: 0,
            send_scheduled: false,
            srtt_s: 0.0,
            last_progress: 0,
            rto_armed_at: 0,
            last_ack_arrival: 0,
            acc: Accumulators::default(),
        };
        sim.schedule_send();
        sim
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// Smoothed RTT estimate in seconds (0 before the first ACK).
    pub fn srtt_s(&self) -> f64 {
        self.srtt_s
    }

    /// Bytes currently unacknowledged.
    pub fn inflight_bytes(&self) -> usize {
        self.inflight_bytes
    }

    /// Instantaneous queue backlog in bytes.
    pub fn queue_bytes(&self) -> usize {
        self.queue.bytes()
    }

    /// Instantaneous queuing delay in ms: backlog divided by the current
    /// drain rate — one of the two adversary inputs in the paper.
    pub fn queue_delay_ms(&self) -> f64 {
        self.queue.bytes() as f64 * 8.0 / (self.params.bandwidth_mbps * 1e6) * 1e3
    }

    /// Change the link parameters (takes effect for future serializations,
    /// propagations, and loss draws; the packet currently being serialized
    /// keeps its scheduled completion, as in any event-based emulator).
    pub fn set_link(&mut self, params: LinkParams) {
        params.validate();
        self.params = params;
    }

    /// Access the congestion controller (for inspection in tests/benches).
    pub fn cc(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    /// Advance the simulation by `dt` and return what happened.
    pub fn run_for(&mut self, dt: Time) -> IntervalStats {
        let end = self.now + dt;
        self.acc = Accumulators::default();
        while let Some(t) = self.events.peek_time() {
            if t > end {
                break;
            }
            let (t, kind) = self.events.pop().expect("peeked event exists");
            debug_assert!(t >= self.now, "time must not go backwards");
            self.now = t;
            self.handle(kind);
        }
        self.now = end;
        let dt_s = to_secs(dt);
        let capacity = self.params.bandwidth_mbps * 1e6 / 8.0 * dt_s;
        let a = self.acc;
        IntervalStats {
            duration_s: dt_s,
            delivered_bytes: a.delivered_bytes,
            capacity_bytes: capacity,
            utilization: (a.delivered_bytes as f64 / capacity.max(1.0)).min(1.0),
            throughput_mbps: a.delivered_bytes as f64 * 8.0 / dt_s.max(1e-9) / 1e6,
            avg_rtt_ms: if a.rtt_samples > 0 {
                a.rtt_sum_s / a.rtt_samples as f64 * 1e3
            } else {
                0.0
            },
            avg_queue_delay_ms: if a.sojourn_samples > 0 {
                a.sojourn_sum_s / a.sojourn_samples as f64 * 1e3
            } else {
                0.0
            },
            packets_sent: a.packets_sent,
            packets_delivered: a.packets_delivered,
            packets_lost_random: a.lost_random,
            packets_lost_overflow: a.lost_overflow,
        }
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::SendReady => {
                self.send_scheduled = false;
                self.try_send();
            }
            EventKind::ServiceComplete => self.service_complete(),
            EventKind::AckArrival { seq, delivered } => self.ack_arrival(seq, delivered),
            EventKind::RtoCheck { armed_at } => self.rto_check(armed_at),
        }
    }

    /// Schedule a SendReady if sending is currently allowed and none is
    /// pending.
    fn schedule_send(&mut self) {
        if self.send_scheduled {
            return;
        }
        if (self.outstanding.len() as f64) < self.cc.cwnd_packets() {
            let at = self.next_send_time.max(self.now);
            self.events.push(at, EventKind::SendReady);
            self.send_scheduled = true;
        }
    }

    fn try_send(&mut self) {
        if (self.outstanding.len() as f64) >= self.cc.cwnd_packets() {
            return; // cwnd-limited: ACKs will restart sending
        }
        let size = self.cfg.packet_bytes;
        let pkt = Packet {
            seq: self.next_seq,
            size_bytes: size,
            sent_at: self.now,
            delivered_at_send: self.acked_bytes,
        };
        self.next_seq += 1;
        self.outstanding.insert(pkt.seq, pkt);
        self.inflight_bytes += size;
        self.acc.packets_sent += 1;
        self.arm_rto();

        // iid random loss at link ingress
        if self.rng.gen::<f64>() < self.params.loss_rate {
            self.acc.lost_random += 1;
        } else if self.queue.push(pkt) {
            if self.serving.is_none() {
                self.start_service();
            }
        } else {
            self.acc.lost_overflow += 1;
        }

        // pace the next transmission
        let pacing = self.cc.pacing_rate_bps().max(1e3);
        let gap = (size as f64 * 8.0 / pacing * SEC as f64).round() as Time;
        self.next_send_time = self.now + gap.max(1);
        self.schedule_send();
    }

    fn start_service(&mut self) {
        debug_assert!(self.serving.is_none());
        if let Some(pkt) = self.queue.pop() {
            let done = self.now + self.params.serialization_time(pkt.size_bytes);
            self.serving = Some(pkt);
            self.events.push(done, EventKind::ServiceComplete);
        }
    }

    fn service_complete(&mut self) {
        let pkt = self.serving.take().expect("service completion without a packet");
        // delivered to the receiver after propagation; the ACK crosses back
        // after another propagation delay
        self.delivered_bytes += pkt.size_bytes as u64;
        self.acc.delivered_bytes += pkt.size_bytes as u64;
        self.acc.packets_delivered += 1;
        self.acc.sojourn_sum_s += to_secs(self.now - pkt.sent_at);
        self.acc.sojourn_samples += 1;
        let ack_at = (self.now + 2 * self.params.propagation()).max(self.last_ack_arrival + 1);
        self.last_ack_arrival = ack_at;
        self.events
            .push(ack_at, EventKind::AckArrival { seq: pkt.seq, delivered: self.delivered_bytes });
        if !self.queue.is_empty() {
            self.start_service();
        }
    }

    fn ack_arrival(&mut self, seq: u64, _delivered: u64) {
        let Some(pkt) = self.outstanding.remove(&seq) else {
            return; // already declared lost via dup-ACK or RTO
        };
        self.inflight_bytes = self.inflight_bytes.saturating_sub(pkt.size_bytes);
        self.acked_bytes += pkt.size_bytes as u64;
        self.last_progress = self.now;

        let rtt_s = to_secs(self.now - pkt.sent_at);
        self.srtt_s = if self.srtt_s == 0.0 { rtt_s } else { 0.875 * self.srtt_s + 0.125 * rtt_s };
        self.acc.rtt_sum_s += rtt_s;
        self.acc.rtt_samples += 1;

        // loss detection on each ACK:
        // (a) duplicate-ACK style: anything more than 3 packets older than
        //     this ACK is gone;
        // (b) RACK-style time threshold: anything sent more than
        //     srtt × 1.5 before the packet this ACK confirms must have been
        //     lost (packets are delivered in order by the FIFO bottleneck).
        let rack_cutoff = pkt.sent_at.saturating_sub((0.5 * self.srtt_s * SEC as f64) as Time);
        let lost: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(s, p)| **s < seq.saturating_sub(3) || (**s < seq && p.sent_at < rack_cutoff))
            .map(|(s, _)| *s)
            .collect();
        for s in &lost {
            if let Some(p) = self.outstanding.remove(s) {
                self.inflight_bytes = self.inflight_bytes.saturating_sub(p.size_bytes);
            }
        }

        let span_s = to_secs(self.now - pkt.sent_at).max(1e-9);
        let ack = AckEvent {
            now_s: to_secs(self.now),
            rtt_s,
            delivery_rate_bps: (self.acked_bytes - pkt.delivered_at_send) as f64 * 8.0 / span_s,
            newly_acked_bytes: pkt.size_bytes,
            inflight_bytes: self.inflight_bytes,
            delivered_bytes: self.acked_bytes,
            delivered_at_send: pkt.delivered_at_send,
        };
        self.cc.on_ack(&ack);
        if !lost.is_empty() {
            self.cc.on_loss(lost.len(), to_secs(self.now));
        }
        self.arm_rto();
        self.schedule_send();
    }

    fn rto_duration(&self) -> Time {
        let rto_s = (4.0 * self.srtt_s).max(self.cfg.min_rto_s);
        (rto_s * SEC as f64) as Time
    }

    fn arm_rto(&mut self) {
        if self.outstanding.is_empty() {
            return;
        }
        self.rto_armed_at = self.now;
        self.events
            .push(self.now + self.rto_duration(), EventKind::RtoCheck { armed_at: self.now });
    }

    fn rto_check(&mut self, armed_at: Time) {
        if armed_at != self.rto_armed_at {
            return; // a newer arming superseded this timer
        }
        if self.outstanding.is_empty() || self.last_progress > armed_at {
            return; // progress since arming
        }
        // timeout: everything outstanding is presumed lost
        self.outstanding.clear();
        self.inflight_bytes = 0;
        self.cc.on_rto(to_secs(self.now));
        self.next_send_time = self.now;
        self.schedule_send();
    }
}

/// A trivial fixed-rate congestion controller, useful for testing the link
/// and as an oracle sender at exactly the link rate.
#[derive(Debug, Clone)]
pub struct FixedRateCc {
    /// Pacing rate, bits/s.
    pub rate_bps: f64,
    /// Window in packets.
    pub cwnd: f64,
}

impl CongestionControl for FixedRateCc {
    fn name(&self) -> &str {
        "fixed"
    }
    fn on_ack(&mut self, _ack: &AckEvent) {}
    fn on_loss(&mut self, _lost: usize, _now_s: f64) {}
    fn on_rto(&mut self, _now_s: f64) {}
    fn pacing_rate_bps(&self) -> f64 {
        self.rate_bps
    }
    fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(rate_mbps: f64, cwnd: f64, params: LinkParams, seed: u64) -> FlowSim {
        FlowSim::new(
            Box::new(FixedRateCc { rate_bps: rate_mbps * 1e6, cwnd }),
            params,
            SimConfig { seed, ..SimConfig::default() },
        )
    }

    #[test]
    fn paced_sender_matches_link_rate() {
        let params = LinkParams::new(12.0, 20.0, 0.0);
        let mut s = sim(12.0, 1e9, params, 0);
        s.run_for(SEC); // warmup
        let stats = s.run_for(5 * SEC);
        assert!(
            (stats.utilization - 1.0).abs() < 0.02,
            "sender at link rate must saturate: {}",
            stats.utilization
        );
        assert!((stats.throughput_mbps - 12.0).abs() < 0.5, "{}", stats.throughput_mbps);
    }

    #[test]
    fn slow_sender_underutilizes() {
        let params = LinkParams::new(12.0, 20.0, 0.0);
        let mut s = sim(6.0, 1e9, params, 0);
        s.run_for(SEC);
        let stats = s.run_for(5 * SEC);
        assert!((stats.utilization - 0.5).abs() < 0.03, "{}", stats.utilization);
    }

    #[test]
    fn rtt_equals_two_propagations_plus_serialization_when_unqueued() {
        let params = LinkParams::new(12.0, 30.0, 0.0);
        // very slow sender: no queueing
        let mut s = sim(1.0, 1e9, params, 0);
        s.run_for(SEC);
        let stats = s.run_for(2 * SEC);
        // 60 ms propagation + 1 ms serialization
        assert!((stats.avg_rtt_ms - 61.0).abs() < 1.0, "{}", stats.avg_rtt_ms);
    }

    #[test]
    fn overload_fills_queue_and_drops() {
        let params = LinkParams::new(6.0, 10.0, 0.0);
        let mut s = sim(24.0, 1e9, params, 0);
        s.run_for(SEC);
        let stats = s.run_for(2 * SEC);
        assert!(stats.packets_lost_overflow > 0, "4x overload must overflow the queue");
        assert!(stats.utilization > 0.98, "but the link stays saturated");
        assert!(
            stats.avg_queue_delay_ms > 100.0,
            "standing queue of 150 kB at 6 Mbit/s is 200 ms: {}",
            stats.avg_queue_delay_ms
        );
    }

    #[test]
    fn random_loss_rate_is_honoured() {
        let params = LinkParams::new(12.0, 10.0, 0.10);
        let mut s = sim(10.0, 1e9, params, 42);
        s.run_for(SEC);
        let stats = s.run_for(10 * SEC);
        let loss = stats.packets_lost_random as f64 / stats.packets_sent as f64;
        assert!((loss - 0.10).abs() < 0.02, "measured loss {loss}");
    }

    #[test]
    fn delivery_rate_samples_near_bottleneck() {
        struct Probe {
            inner: FixedRateCc,
            samples: Vec<f64>,
        }
        impl CongestionControl for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn on_ack(&mut self, ack: &AckEvent) {
                self.samples.push(ack.delivery_rate_bps);
            }
            fn on_loss(&mut self, _: usize, _: f64) {}
            fn on_rto(&mut self, _: f64) {}
            fn pacing_rate_bps(&self) -> f64 {
                self.inner.pacing_rate_bps()
            }
            fn cwnd_packets(&self) -> f64 {
                self.inner.cwnd_packets()
            }
        }
        let params = LinkParams::new(12.0, 20.0, 0.0);
        // overdriven sender: delivery-rate samples must reveal the true
        // bottleneck bandwidth (the basis of BBR)
        let mut s = FlowSim::new(
            Box::new(Probe { inner: FixedRateCc { rate_bps: 20e6, cwnd: 1e9 }, samples: vec![] }),
            params,
            SimConfig::default(),
        );
        s.run_for(3 * SEC);
        // can't reach into the box; rebuild with measurement instead
        // (covered by the utilization assertions elsewhere)
    }

    #[test]
    fn bandwidth_change_takes_effect() {
        let mut s = sim(24.0, 1e9, LinkParams::new(24.0, 10.0, 0.0), 0);
        s.run_for(SEC);
        let before = s.run_for(2 * SEC);
        s.set_link(LinkParams::new(6.0, 10.0, 0.0));
        s.run_for(SEC); // settle
        let after = s.run_for(2 * SEC);
        assert!(before.throughput_mbps > 20.0, "{}", before.throughput_mbps);
        assert!((after.throughput_mbps - 6.0).abs() < 0.5, "after cut: {}", after.throughput_mbps);
    }

    #[test]
    fn cwnd_limits_inflight() {
        let params = LinkParams::new(12.0, 50.0, 0.0);
        let mut s = sim(100.0, 4.0, params, 0);
        s.run_for(SEC);
        assert!(
            s.inflight_bytes() <= 4 * MTU_BYTES,
            "inflight {} exceeds 4-packet cwnd",
            s.inflight_bytes()
        );
        let stats = s.run_for(2 * SEC);
        // 4 pkts per RTT (~101 ms) ≈ 0.47 Mbit/s
        assert!(stats.throughput_mbps < 1.0, "{}", stats.throughput_mbps);
    }

    #[test]
    fn rto_recovers_from_total_loss() {
        // 100% loss for a while, then clean: the flow must resume
        let mut s = sim(12.0, 10.0, LinkParams::new(12.0, 10.0, 1.0), 7);
        let black = s.run_for(2 * SEC);
        assert_eq!(black.packets_delivered, 0);
        s.set_link(LinkParams::new(12.0, 10.0, 0.0));
        let recovered = s.run_for(3 * SEC);
        assert!(
            recovered.packets_delivered > 100,
            "flow must recover after blackout: {} delivered",
            recovered.packets_delivered
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = sim(10.0, 1e9, LinkParams::new(12.0, 20.0, 0.05), seed);
            let st = s.run_for(5 * SEC);
            (st.delivered_bytes, st.packets_lost_random)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).1, run(4).1);
    }

    #[test]
    fn queue_delay_probe_is_instantaneous() {
        let params = LinkParams::new(6.0, 10.0, 0.0);
        let mut s = sim(24.0, 1e9, params, 0);
        s.run_for(2 * SEC);
        // queue is full (150 kB at 6 Mbit/s = 200 ms)
        assert!(s.queue_delay_ms() > 150.0, "{}", s.queue_delay_ms());
    }

    #[test]
    fn acks_never_reorder_across_latency_drops() {
        // deliver packets under high latency, then slam latency down: the
        // FIFO return path must keep ACK arrival order = delivery order,
        // otherwise loss detection fires spuriously (a bug this test pins)
        let mut s = sim(24.0, 1e9, LinkParams::new(24.0, 60.0, 0.0), 0);
        s.run_for(SEC);
        s.set_link(LinkParams::new(24.0, 15.0, 0.0));
        let stats = s.run_for(2 * SEC);
        // no loss configured → nothing may be lost, spuriously or otherwise
        assert_eq!(stats.packets_lost_random, 0);
        assert_eq!(stats.packets_lost_overflow, 0);
        // and the flow keeps running at full rate
        assert!(stats.utilization > 0.9, "{}", stats.utilization);
    }

    #[test]
    fn queue_capacity_is_configurable() {
        let tiny = SimConfig { queue_capacity_bytes: 5 * MTU_BYTES, ..SimConfig::default() };
        let mut s = FlowSim::new(
            Box::new(FixedRateCc { rate_bps: 24e6, cwnd: 1e9 }),
            LinkParams::new(6.0, 10.0, 0.0),
            tiny,
        );
        s.run_for(SEC);
        let stats = s.run_for(SEC);
        assert!(stats.packets_lost_overflow > 0);
        // a 5-packet queue at 6 Mbit/s drains in 10 ms: sojourn stays small
        assert!(
            stats.avg_queue_delay_ms < 15.0,
            "tiny queue must bound delay: {}",
            stats.avg_queue_delay_ms
        );
    }

    #[test]
    fn zero_latency_link_works() {
        let mut s = sim(12.0, 1e9, LinkParams::new(12.0, 0.0, 0.0), 0);
        s.run_for(SEC);
        let stats = s.run_for(SEC);
        assert!(stats.utilization > 0.95);
        // RTT is pure serialization (1 ms per packet at 12 Mbit/s)
        assert!(stats.avg_rtt_ms < 5.0, "{}", stats.avg_rtt_ms);
    }

    #[test]
    fn utilization_counts_only_delivered() {
        let mut s = sim(24.0, 1e9, LinkParams::new(12.0, 10.0, 0.5), 1);
        s.run_for(SEC);
        let stats = s.run_for(4 * SEC);
        assert!(stats.utilization < 1.0);
        assert!(stats.packets_lost_random > 0);
    }
}
