//! The congestion-control interface and the legacy single-flow API.
//!
//! [`CongestionControl`] and [`AckEvent`] now speak typed units
//! ([`Bytes`], [`Nanosecs`], [`BitsPerSec`]) instead of loose `f64`s; the
//! `*_s`/`*_bps` accessor methods return exactly the values the old field
//! accesses did (same `f64` conversions), so protocol arithmetic is
//! untouched by the migration.
//!
//! [`FlowSim`] — the original single-flow simulator API — is a thin
//! wrapper over a 1-flow [`MultiFlowSim`]
//! with the drop-tail qdisc. The equivalence contract: its trajectories
//! are bit-identical to the pre-rewrite engine, which survives verbatim
//! as [`reference::RefFlowSim`](crate::reference::RefFlowSim) and is
//! property-tested against this wrapper for all five CC protocols in
//! `crates/cc/tests/single_flow_equivalence.rs`.

use crate::link::LinkParams;
use crate::multi::MultiFlowSim;
use crate::units::{BitsPerSec, Bytes, Nanosecs};
use crate::{Time, MTU_BYTES};

/// Everything a congestion-control algorithm learns from one ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Simulation time of the ACK's arrival at the sender.
    pub now: Nanosecs,
    /// Round-trip time of the acked packet.
    pub rtt: Nanosecs,
    /// BBR-style delivery-rate sample: bytes delivered between this
    /// packet's send and its ACK, over that wall-clock span.
    pub delivery_rate: BitsPerSec,
    /// Bytes newly acknowledged by this ACK.
    pub newly_acked: Bytes,
    /// Bytes still in flight after this ACK.
    pub inflight: Bytes,
    /// Sender's cumulative acknowledged-byte counter (Linux
    /// `tp->delivered`), used for round tracking.
    pub delivered: Bytes,
    /// Cumulative delivered bytes when the acked packet was sent (for
    /// round tracking).
    pub delivered_at_send: Bytes,
    /// ECN Congestion-Experienced echo: the acked packet was marked by an
    /// ECN-capable queue discipline. Always `false` under drop-tail.
    pub ecn: bool,
}

impl AckEvent {
    /// Build from the raw `f64`/integer values the old struct carried
    /// (positional order matches the old field order; `ecn` = false).
    /// Mostly useful in protocol unit tests.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw(
        now_s: f64,
        rtt_s: f64,
        delivery_rate_bps: f64,
        newly_acked_bytes: usize,
        inflight_bytes: usize,
        delivered_bytes: u64,
        delivered_at_send: u64,
    ) -> AckEvent {
        AckEvent {
            now: Nanosecs::from_secs_f64(now_s),
            rtt: Nanosecs::from_secs_f64(rtt_s),
            delivery_rate: BitsPerSec::from_bps(delivery_rate_bps),
            newly_acked: Bytes::new(newly_acked_bytes as u64),
            inflight: Bytes::new(inflight_bytes as u64),
            delivered: Bytes::new(delivered_bytes),
            delivered_at_send: Bytes::new(delivered_at_send),
            ecn: false,
        }
    }

    /// Arrival time in seconds (what the old `now_s` field held).
    #[inline]
    pub fn now_s(&self) -> f64 {
        self.now.as_secs_f64()
    }

    /// RTT in seconds (what the old `rtt_s` field held).
    #[inline]
    pub fn rtt_s(&self) -> f64 {
        self.rtt.as_secs_f64()
    }

    /// Delivery-rate sample in bits/s.
    #[inline]
    pub fn delivery_rate_bps(&self) -> f64 {
        self.delivery_rate.bps()
    }

    #[inline]
    pub fn newly_acked_bytes(&self) -> usize {
        self.newly_acked.as_usize()
    }

    #[inline]
    pub fn inflight_bytes(&self) -> usize {
        self.inflight.as_usize()
    }
}

/// A congestion-control algorithm as the simulator drives it.
///
/// Implementations are pure state machines: the simulator calls the `on_*`
/// notifications and consults [`CongestionControl::pacing_rate`] /
/// [`CongestionControl::cwnd_packets`] before each transmission. `Send` is
/// a supertrait so simulators (and the adversary environments that own
/// them) can move across `exec` rollout worker threads.
pub trait CongestionControl: Send {
    /// Short protocol name ("bbr", "cubic", "reno").
    fn name(&self) -> &str;

    /// An ACK arrived.
    fn on_ack(&mut self, ack: &AckEvent);

    /// `lost` packets were declared lost via duplicate-ACK detection.
    fn on_loss(&mut self, lost: usize, now: Nanosecs);

    /// Retransmission timeout fired: everything in flight was lost.
    fn on_rto(&mut self, now: Nanosecs);

    /// Current pacing rate.
    fn pacing_rate(&self) -> BitsPerSec;

    /// Current congestion window in packets.
    fn cwnd_packets(&self) -> f64;
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Drop-tail queue capacity in bytes. Default: 150 kB (≈100 packets,
    /// between one and two BDPs across the Table 1 parameter ranges).
    pub queue_capacity_bytes: usize,
    /// Packet size in bytes.
    pub packet_bytes: usize,
    /// RNG seed for loss draws.
    pub seed: u64,
    /// Minimum retransmission timeout, seconds.
    pub min_rto_s: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queue_capacity_bytes: 100 * MTU_BYTES,
            packet_bytes: MTU_BYTES,
            seed: 0,
            min_rto_s: 0.25,
        }
    }
}

impl SimConfig {
    /// Result-typed construction: reject degenerate queue/packet sizes and
    /// non-finite timeouts at the boundary.
    pub fn try_new(
        queue_capacity_bytes: usize,
        packet_bytes: usize,
        seed: u64,
        min_rto_s: f64,
    ) -> Result<SimConfig, String> {
        let cfg = SimConfig { queue_capacity_bytes, packet_bytes, seed, min_rto_s };
        cfg.try_validate()?;
        Ok(cfg)
    }

    /// Fallible validation for callers that handle bad input.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.packet_bytes == 0 {
            return Err("packet size must be positive".to_string());
        }
        if self.queue_capacity_bytes < self.packet_bytes {
            return Err(format!(
                "queue capacity {} smaller than one packet ({})",
                self.queue_capacity_bytes, self.packet_bytes
            ));
        }
        if self.queue_capacity_bytes < MTU_BYTES {
            return Err(format!(
                "queue must hold at least one MTU ({MTU_BYTES} B): {}",
                self.queue_capacity_bytes
            ));
        }
        if !self.min_rto_s.is_finite() || self.min_rto_s <= 0.0 {
            return Err(format!("min RTO must be finite and positive: {}", self.min_rto_s));
        }
        Ok(())
    }

    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// Per-interval link statistics — the adversary's observations.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntervalStats {
    pub duration_s: f64,
    /// Bytes handed to the receiver during the interval.
    pub delivered_bytes: u64,
    /// `bandwidth × duration` — what the link could have carried.
    pub capacity_bytes: f64,
    /// `delivered / capacity`, clamped to `[0, 1]`.
    pub utilization: f64,
    /// Achieved throughput in Mbit/s.
    pub throughput_mbps: f64,
    /// Mean RTT of ACKs in the interval, ms (0 when no ACKs).
    pub avg_rtt_ms: f64,
    /// Mean sojourn time at the bottleneck (queueing + serialization), ms.
    pub avg_queue_delay_ms: f64,
    pub packets_sent: u64,
    pub packets_delivered: u64,
    pub packets_lost_random: u64,
    pub packets_lost_overflow: u64,
}

/// The single-flow, single-bottleneck simulator: a 1-flow
/// [`MultiFlowSim`] behind the original API.
pub struct FlowSim {
    inner: MultiFlowSim,
}

impl FlowSim {
    pub fn new(cc: Box<dyn CongestionControl>, params: LinkParams, cfg: SimConfig) -> Self {
        let mut inner = MultiFlowSim::new(params, cfg);
        inner.add_flow(0, cc);
        FlowSim { inner }
    }

    pub fn now(&self) -> Time {
        self.inner.now()
    }

    pub fn params(&self) -> LinkParams {
        self.inner.params()
    }

    /// Smoothed RTT estimate in seconds (0 before the first ACK).
    pub fn srtt_s(&self) -> f64 {
        self.inner.flow_srtt_s(0)
    }

    /// Bytes currently unacknowledged.
    pub fn inflight_bytes(&self) -> usize {
        self.inner.flow_inflight_bytes(0)
    }

    /// Instantaneous queue backlog in bytes.
    pub fn queue_bytes(&self) -> usize {
        self.inner.queue_bytes()
    }

    /// Instantaneous queuing delay in ms: backlog divided by the current
    /// drain rate — one of the two adversary inputs in the paper.
    pub fn queue_delay_ms(&self) -> f64 {
        self.inner.queue_delay_ms()
    }

    /// Change the link parameters (takes effect for future serializations,
    /// propagations, and loss draws; the packet currently being serialized
    /// keeps its scheduled completion, as in any event-based emulator).
    pub fn set_link(&mut self, params: LinkParams) {
        self.inner.set_link(params);
    }

    /// Access the congestion controller (for inspection in tests/benches).
    pub fn cc(&self) -> &dyn CongestionControl {
        self.inner.cc(0)
    }

    /// Advance the simulation by `dt` and return what happened.
    pub fn run_for(&mut self, dt: Time) -> IntervalStats {
        let stats = self.inner.run_for(dt);
        debug_assert_eq!(stats.len(), 1);
        stats.into_iter().next().expect("wrapper owns exactly one flow").1
    }
}

/// A trivial fixed-rate congestion controller, useful for testing the link
/// and as an oracle sender at exactly the link rate.
#[derive(Debug, Clone)]
pub struct FixedRateCc {
    /// Pacing rate, bits/s.
    pub rate_bps: f64,
    /// Window in packets.
    pub cwnd: f64,
}

impl CongestionControl for FixedRateCc {
    fn name(&self) -> &str {
        "fixed"
    }
    fn on_ack(&mut self, _ack: &AckEvent) {}
    fn on_loss(&mut self, _lost: usize, _now: Nanosecs) {}
    fn on_rto(&mut self, _now: Nanosecs) {}
    fn pacing_rate(&self) -> BitsPerSec {
        BitsPerSec::from_bps(self.rate_bps)
    }
    fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MTU_BYTES, SEC};

    fn sim(rate_mbps: f64, cwnd: f64, params: LinkParams, seed: u64) -> FlowSim {
        FlowSim::new(
            Box::new(FixedRateCc { rate_bps: rate_mbps * 1e6, cwnd }),
            params,
            SimConfig { seed, ..SimConfig::default() },
        )
    }

    #[test]
    fn paced_sender_matches_link_rate() {
        let params = LinkParams::new(12.0, 20.0, 0.0);
        let mut s = sim(12.0, 1e9, params, 0);
        s.run_for(SEC); // warmup
        let stats = s.run_for(5 * SEC);
        assert!(
            (stats.utilization - 1.0).abs() < 0.02,
            "sender at link rate must saturate: {}",
            stats.utilization
        );
        assert!((stats.throughput_mbps - 12.0).abs() < 0.5, "{}", stats.throughput_mbps);
    }

    #[test]
    fn slow_sender_underutilizes() {
        let params = LinkParams::new(12.0, 20.0, 0.0);
        let mut s = sim(6.0, 1e9, params, 0);
        s.run_for(SEC);
        let stats = s.run_for(5 * SEC);
        assert!((stats.utilization - 0.5).abs() < 0.03, "{}", stats.utilization);
    }

    #[test]
    fn rtt_equals_two_propagations_plus_serialization_when_unqueued() {
        let params = LinkParams::new(12.0, 30.0, 0.0);
        // very slow sender: no queueing
        let mut s = sim(1.0, 1e9, params, 0);
        s.run_for(SEC);
        let stats = s.run_for(2 * SEC);
        // 60 ms propagation + 1 ms serialization
        assert!((stats.avg_rtt_ms - 61.0).abs() < 1.0, "{}", stats.avg_rtt_ms);
    }

    #[test]
    fn overload_fills_queue_and_drops() {
        let params = LinkParams::new(6.0, 10.0, 0.0);
        let mut s = sim(24.0, 1e9, params, 0);
        s.run_for(SEC);
        let stats = s.run_for(2 * SEC);
        assert!(stats.packets_lost_overflow > 0, "4x overload must overflow the queue");
        assert!(stats.utilization > 0.98, "but the link stays saturated");
        assert!(
            stats.avg_queue_delay_ms > 100.0,
            "standing queue of 150 kB at 6 Mbit/s is 200 ms: {}",
            stats.avg_queue_delay_ms
        );
    }

    #[test]
    fn random_loss_rate_is_honoured() {
        let params = LinkParams::new(12.0, 10.0, 0.10);
        let mut s = sim(10.0, 1e9, params, 42);
        s.run_for(SEC);
        let stats = s.run_for(10 * SEC);
        let loss = stats.packets_lost_random as f64 / stats.packets_sent as f64;
        assert!((loss - 0.10).abs() < 0.02, "measured loss {loss}");
    }

    #[test]
    fn bandwidth_change_takes_effect() {
        let mut s = sim(24.0, 1e9, LinkParams::new(24.0, 10.0, 0.0), 0);
        s.run_for(SEC);
        let before = s.run_for(2 * SEC);
        s.set_link(LinkParams::new(6.0, 10.0, 0.0));
        s.run_for(SEC); // settle
        let after = s.run_for(2 * SEC);
        assert!(before.throughput_mbps > 20.0, "{}", before.throughput_mbps);
        assert!((after.throughput_mbps - 6.0).abs() < 0.5, "after cut: {}", after.throughput_mbps);
    }

    #[test]
    fn cwnd_limits_inflight() {
        let params = LinkParams::new(12.0, 50.0, 0.0);
        let mut s = sim(100.0, 4.0, params, 0);
        s.run_for(SEC);
        assert!(
            s.inflight_bytes() <= 4 * MTU_BYTES,
            "inflight {} exceeds 4-packet cwnd",
            s.inflight_bytes()
        );
        let stats = s.run_for(2 * SEC);
        // 4 pkts per RTT (~101 ms) ≈ 0.47 Mbit/s
        assert!(stats.throughput_mbps < 1.0, "{}", stats.throughput_mbps);
    }

    #[test]
    fn rto_recovers_from_total_loss() {
        // 100% loss for a while, then clean: the flow must resume
        let mut s = sim(12.0, 10.0, LinkParams::new(12.0, 10.0, 1.0), 7);
        let black = s.run_for(2 * SEC);
        assert_eq!(black.packets_delivered, 0);
        s.set_link(LinkParams::new(12.0, 10.0, 0.0));
        let recovered = s.run_for(3 * SEC);
        assert!(
            recovered.packets_delivered > 100,
            "flow must recover after blackout: {} delivered",
            recovered.packets_delivered
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = sim(10.0, 1e9, LinkParams::new(12.0, 20.0, 0.05), seed);
            let st = s.run_for(5 * SEC);
            (st.delivered_bytes, st.packets_lost_random)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).1, run(4).1);
    }

    #[test]
    fn queue_delay_probe_is_instantaneous() {
        let params = LinkParams::new(6.0, 10.0, 0.0);
        let mut s = sim(24.0, 1e9, params, 0);
        s.run_for(2 * SEC);
        // queue is full (150 kB at 6 Mbit/s = 200 ms)
        assert!(s.queue_delay_ms() > 150.0, "{}", s.queue_delay_ms());
    }

    #[test]
    fn acks_never_reorder_across_latency_drops() {
        // deliver packets under high latency, then slam latency down: the
        // FIFO return path must keep ACK arrival order = delivery order,
        // otherwise loss detection fires spuriously (a bug this test pins)
        let mut s = sim(24.0, 1e9, LinkParams::new(24.0, 60.0, 0.0), 0);
        s.run_for(SEC);
        s.set_link(LinkParams::new(24.0, 15.0, 0.0));
        let stats = s.run_for(2 * SEC);
        // no loss configured → nothing may be lost, spuriously or otherwise
        assert_eq!(stats.packets_lost_random, 0);
        assert_eq!(stats.packets_lost_overflow, 0);
        // and the flow keeps running at full rate
        assert!(stats.utilization > 0.9, "{}", stats.utilization);
    }

    #[test]
    fn queue_capacity_is_configurable() {
        let tiny = SimConfig { queue_capacity_bytes: 5 * MTU_BYTES, ..SimConfig::default() };
        let mut s = FlowSim::new(
            Box::new(FixedRateCc { rate_bps: 24e6, cwnd: 1e9 }),
            LinkParams::new(6.0, 10.0, 0.0),
            tiny,
        );
        s.run_for(SEC);
        let stats = s.run_for(SEC);
        assert!(stats.packets_lost_overflow > 0);
        // a 5-packet queue at 6 Mbit/s drains in 10 ms: sojourn stays small
        assert!(
            stats.avg_queue_delay_ms < 15.0,
            "tiny queue must bound delay: {}",
            stats.avg_queue_delay_ms
        );
    }

    #[test]
    fn zero_latency_link_works() {
        let mut s = sim(12.0, 1e9, LinkParams::new(12.0, 0.0, 0.0), 0);
        s.run_for(SEC);
        let stats = s.run_for(SEC);
        assert!(stats.utilization > 0.95);
        // RTT is pure serialization (1 ms per packet at 12 Mbit/s)
        assert!(stats.avg_rtt_ms < 5.0, "{}", stats.avg_rtt_ms);
    }

    #[test]
    fn utilization_counts_only_delivered() {
        let mut s = sim(24.0, 1e9, LinkParams::new(12.0, 10.0, 0.5), 1);
        s.run_for(SEC);
        let stats = s.run_for(4 * SEC);
        assert!(stats.utilization < 1.0);
        assert!(stats.packets_lost_random > 0);
    }

    #[test]
    fn sim_config_try_new_rejects_bad_values() {
        assert!(SimConfig::try_new(150_000, 1500, 0, 0.25).is_ok());
        assert!(SimConfig::try_new(150_000, 0, 0, 0.25).is_err(), "zero packet");
        assert!(SimConfig::try_new(1000, 1500, 0, 0.25).is_err(), "queue < packet");
        assert!(SimConfig::try_new(1400, 1400, 0, 0.25).is_err(), "queue < MTU");
        assert!(SimConfig::try_new(150_000, 1500, 0, 0.0).is_err(), "zero RTO");
        assert!(SimConfig::try_new(150_000, 1500, 0, f64::NAN).is_err(), "NaN RTO");
        assert!(SimConfig::try_new(150_000, 1500, 0, f64::INFINITY).is_err(), "inf RTO");
    }

    #[test]
    fn ack_event_accessors_match_raw_values() {
        let ack = AckEvent::from_raw(2.5, 0.04, 12e6, 1500, 4500, 90_000, 60_000);
        assert_eq!(ack.now_s(), 2.5);
        assert_eq!(ack.rtt_s(), 0.04);
        assert_eq!(ack.delivery_rate_bps(), 12e6);
        assert_eq!(ack.newly_acked_bytes(), 1500);
        assert_eq!(ack.inflight_bytes(), 4500);
        assert_eq!(ack.delivered.get(), 90_000);
        assert_eq!(ack.delivered_at_send.get(), 60_000);
        assert!(!ack.ecn);
    }
}
