//! Pluggable queue disciplines for the shared bottleneck.
//!
//! The multi-flow engine consults a [`QDisc`] before every enqueue. The
//! discipline sees only the instantaneous backlog, the configured
//! capacity and the arriving packet's size, and returns a [`Verdict`]:
//!
//! * [`DropTail`] — FIFO drop-tail, byte-for-byte the legacy single-flow
//!   behavior (drop iff `backlog + size > capacity`). Never consults the
//!   RNG, so wiring it through the qdisc layer cannot perturb legacy
//!   trajectories.
//! * [`Red`] — RED-style probabilistic early drop: an EWMA of the backlog
//!   maps linearly from 0 at `min_th` to `max_p` at `max_th` (hard drop
//!   above `max_th` or on physical overflow).
//! * [`DctcpEcn`] — DCTCP-style marking: arrivals are ECN-marked whenever
//!   the instantaneous backlog exceeds the step threshold `K`; the mark is
//!   echoed on the ACK (`AckEvent::ecn`) so ECN-aware controllers can
//!   react without losing the packet.
//!
//! Disciplines draw randomness only from the engine's dedicated qdisc RNG
//! stream, never from the per-flow loss RNGs — AQM randomization cannot
//! shift any flow's iid loss draws.

use rand::rngs::StdRng;
use rand::Rng;

/// What the discipline decided for one arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Enqueue unmodified.
    Enqueue,
    /// Enqueue with the ECN Congestion-Experienced bit set.
    Mark,
    /// Drop at the bottleneck (counted as an overflow loss).
    Drop,
}

/// A queue discipline at the shared bottleneck.
///
/// `admit` is called once per arriving packet *before* it is enqueued,
/// with the pre-arrival backlog. Implementations must be deterministic
/// given their own state and the supplied RNG.
pub trait QDisc: Send {
    /// Short name ("droptail", "red", "dctcp") for labels and CSVs.
    fn name(&self) -> &'static str;

    /// Decide the fate of a `pkt_bytes`-sized arrival given the current
    /// backlog and configured capacity (both bytes).
    fn admit(
        &mut self,
        queue_bytes: usize,
        capacity_bytes: usize,
        pkt_bytes: usize,
        rng: &mut StdRng,
    ) -> Verdict;
}

/// FIFO drop-tail: the legacy behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropTail;

impl DropTail {
    pub fn new() -> DropTail {
        DropTail
    }
}

impl QDisc for DropTail {
    fn name(&self) -> &'static str {
        "droptail"
    }

    fn admit(
        &mut self,
        queue_bytes: usize,
        capacity_bytes: usize,
        pkt_bytes: usize,
        _rng: &mut StdRng,
    ) -> Verdict {
        // exact legacy comparison (Queue::push)
        if queue_bytes + pkt_bytes > capacity_bytes {
            Verdict::Drop
        } else {
            Verdict::Enqueue
        }
    }
}

/// RED-style probabilistic early drop (Floyd & Jacobson 1993, simplified:
/// no idle-time compensation, byte-mode thresholds as capacity fractions).
#[derive(Debug, Clone)]
pub struct Red {
    /// EWMA weight for the average-backlog estimate.
    pub weight: f64,
    /// Lower threshold as a fraction of capacity: below it, never drop.
    pub min_frac: f64,
    /// Upper threshold as a fraction of capacity: above it, always drop.
    pub max_frac: f64,
    /// Drop probability at the upper threshold.
    pub max_p: f64,
    avg_bytes: f64,
}

impl Red {
    pub fn new() -> Red {
        Red { weight: 0.002, min_frac: 0.15, max_frac: 0.5, max_p: 0.1, avg_bytes: 0.0 }
    }

    /// Current EWMA backlog estimate, bytes.
    pub fn avg_bytes(&self) -> f64 {
        self.avg_bytes
    }
}

impl Default for Red {
    fn default() -> Self {
        Red::new()
    }
}

impl QDisc for Red {
    fn name(&self) -> &'static str {
        "red"
    }

    fn admit(
        &mut self,
        queue_bytes: usize,
        capacity_bytes: usize,
        pkt_bytes: usize,
        rng: &mut StdRng,
    ) -> Verdict {
        if queue_bytes + pkt_bytes > capacity_bytes {
            return Verdict::Drop; // physical overflow
        }
        self.avg_bytes = (1.0 - self.weight) * self.avg_bytes + self.weight * queue_bytes as f64;
        let min_th = self.min_frac * capacity_bytes as f64;
        let max_th = self.max_frac * capacity_bytes as f64;
        if self.avg_bytes < min_th {
            Verdict::Enqueue
        } else if self.avg_bytes >= max_th {
            Verdict::Drop
        } else {
            let p = self.max_p * (self.avg_bytes - min_th) / (max_th - min_th);
            if rng.gen::<f64>() < p {
                Verdict::Drop
            } else {
                Verdict::Enqueue
            }
        }
    }
}

/// DCTCP-style ECN marking (Alizadeh et al. 2010): a single step threshold
/// `K`; arrivals with the instantaneous backlog at or above it are marked.
#[derive(Debug, Clone)]
pub struct DctcpEcn {
    /// Marking threshold `K` as a fraction of capacity.
    pub k_frac: f64,
}

impl DctcpEcn {
    pub fn new() -> DctcpEcn {
        DctcpEcn { k_frac: 0.2 }
    }
}

impl Default for DctcpEcn {
    fn default() -> Self {
        DctcpEcn::new()
    }
}

impl QDisc for DctcpEcn {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn admit(
        &mut self,
        queue_bytes: usize,
        capacity_bytes: usize,
        pkt_bytes: usize,
        _rng: &mut StdRng,
    ) -> Verdict {
        if queue_bytes + pkt_bytes > capacity_bytes {
            Verdict::Drop // ECN marks congestion, but a full queue still drops
        } else if queue_bytes as f64 >= self.k_frac * capacity_bytes as f64 {
            Verdict::Mark
        } else {
            Verdict::Enqueue
        }
    }
}

/// The built-in disciplines, nameable from CLI/env strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QdiscKind {
    DropTail,
    Red,
    DctcpEcn,
}

impl QdiscKind {
    pub const ALL: [QdiscKind; 3] = [QdiscKind::DropTail, QdiscKind::Red, QdiscKind::DctcpEcn];

    pub fn parse(s: &str) -> Result<QdiscKind, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "droptail" | "fifo" => Ok(QdiscKind::DropTail),
            "red" => Ok(QdiscKind::Red),
            "dctcp" | "ecn" => Ok(QdiscKind::DctcpEcn),
            other => Err(format!("unknown qdisc {other:?} (expected droptail|red|dctcp)")),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            QdiscKind::DropTail => "droptail",
            QdiscKind::Red => "red",
            QdiscKind::DctcpEcn => "dctcp",
        }
    }

    pub fn build(&self) -> Box<dyn QDisc> {
        match self {
            QdiscKind::DropTail => Box::new(DropTail::new()),
            QdiscKind::Red => Box::new(Red::new()),
            QdiscKind::DctcpEcn => Box::new(DctcpEcn::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn droptail_matches_legacy_comparison() {
        let mut q = DropTail::new();
        let mut r = rng();
        assert_eq!(q.admit(0, 3000, 1500, &mut r), Verdict::Enqueue);
        assert_eq!(q.admit(1500, 3000, 1500, &mut r), Verdict::Enqueue, "exactly full fits");
        assert_eq!(q.admit(1501, 3000, 1500, &mut r), Verdict::Drop);
    }

    #[test]
    fn red_never_drops_below_min_threshold() {
        let mut q = Red::new();
        let mut r = rng();
        for _ in 0..1000 {
            assert_eq!(q.admit(0, 150_000, 1500, &mut r), Verdict::Enqueue);
        }
    }

    #[test]
    fn red_drops_probabilistically_between_thresholds() {
        let mut q = Red::new();
        let mut r = rng();
        // drive the EWMA up to ~40% of capacity (between 15% and 50%)
        let backlog = 60_000;
        let mut drops = 0;
        for _ in 0..20_000 {
            if q.admit(backlog, 150_000, 1500, &mut r) == Verdict::Drop {
                drops += 1;
            }
        }
        assert!(drops > 0, "RED must early-drop with a standing queue");
        assert!(drops < 10_000, "but only probabilistically: {drops}/20000");
    }

    #[test]
    fn red_always_drops_on_overflow() {
        let mut q = Red::new();
        let mut r = rng();
        assert_eq!(q.admit(150_000, 150_000, 1500, &mut r), Verdict::Drop);
    }

    #[test]
    fn dctcp_marks_above_threshold_and_drops_on_overflow() {
        let mut q = DctcpEcn::new();
        let mut r = rng();
        assert_eq!(q.admit(0, 150_000, 1500, &mut r), Verdict::Enqueue);
        assert_eq!(q.admit(29_999, 150_000, 1500, &mut r), Verdict::Enqueue);
        assert_eq!(q.admit(30_000, 150_000, 1500, &mut r), Verdict::Mark, "K = 20% of capacity");
        assert_eq!(q.admit(149_000, 150_000, 1500, &mut r), Verdict::Drop);
    }

    #[test]
    fn kind_parse_and_labels_roundtrip() {
        for kind in QdiscKind::ALL {
            assert_eq!(QdiscKind::parse(kind.label()).unwrap(), kind);
            assert_eq!(kind.build().name(), kind.label());
        }
        assert_eq!(QdiscKind::parse("ECN").unwrap(), QdiscKind::DctcpEcn);
        assert!(QdiscKind::parse("codel").is_err());
    }
}
