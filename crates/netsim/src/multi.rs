//! The multi-flow engine: N senders sharing one bottleneck.
//!
//! Each flow owns its congestion controller, its sequence space, its loss
//! RNG and its RTO machinery; the bottleneck (queue + serializer + qdisc)
//! is shared. Determinism contract (DESIGN.md §16):
//!
//! * Events are keyed `(time, flow key, per-flow event seq)` in a
//!   [`FlowEventQueue`] — tie-breaks never depend on global insertion
//!   order, so results are invariant under flow-registration order.
//! * Flow `k`'s loss RNG is seeded `cfg.seed ^ k·φ64` (flow 0 gets
//!   exactly `cfg.seed`, preserving legacy draws); the qdisc has its own
//!   stream, so RED randomization cannot shift any flow's loss draws.
//! * With one flow and the [`DropTail`] qdisc the
//!   engine replays the legacy `FlowSim` trajectories bit-for-bit — the
//!   handlers below are line-by-line transcriptions of `reference.rs`
//!   with flow state indirected; keep them in sync.
//!
//! Observability: the engine counts `netsim.events` (events handled),
//! `netsim.drops` (bottleneck drops: overflow + AQM early drops) and
//! `netsim.ecn_marks`, flushed to `telemetry` once per [`MultiFlowSim::run_for`]
//! under a `netsim.run` span. Fault points `netsim.event` (per event pop:
//! panic/stall) and `netsim.enqueue` (per admission: corrupt = forced
//! drop, stall) let chaos schedules reach the simulator.

use crate::event::{EventKind, FlowEventQueue};
use crate::link::{LinkParams, Packet, Queue};
use crate::qdisc::{DropTail, QDisc, Verdict};
use crate::sim::{AckEvent, CongestionControl, IntervalStats, SimConfig};
use crate::units::{BitsPerSec, Bytes, Nanosecs};
use crate::{to_secs, Time, SEC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Golden-ratio mixing constant for per-flow RNG streams (flow 0 maps to
/// the bare seed, preserving the legacy single-flow loss sequence).
const FLOW_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;
/// Separate stream for qdisc randomness (RED drop draws).
const QDISC_SEED_MIX: u64 = 0xA076_1D64_78BD_642F;

#[derive(Debug, Default, Clone, Copy)]
struct Accumulators {
    delivered_bytes: u64,
    packets_delivered: u64,
    packets_sent: u64,
    lost_random: u64,
    lost_overflow: u64,
    rtt_sum_s: f64,
    rtt_samples: u64,
    sojourn_sum_s: f64,
    sojourn_samples: u64,
}

/// One sender: congestion controller plus all per-flow transport state.
struct FlowState {
    key: u64,
    cc: Box<dyn CongestionControl>,
    rng: StdRng,
    /// Monotone per-flow event counter — the heap tie-break key.
    event_seq: u64,

    next_seq: u64,
    outstanding: BTreeMap<u64, Packet>,
    inflight_bytes: usize,
    delivered_bytes: u64,
    acked_bytes: u64,
    next_send_time: Time,
    send_scheduled: bool,
    srtt_s: f64,
    last_progress: Time,
    rto_armed_at: Time,
    /// FIFO return path per flow: ACKs never overtake each other.
    last_ack_arrival: Time,

    acc: Accumulators,
}

impl FlowState {
    fn new(key: u64, cc: Box<dyn CongestionControl>, rng: StdRng) -> FlowState {
        FlowState {
            key,
            cc,
            rng,
            event_seq: 0,
            next_seq: 0,
            outstanding: BTreeMap::new(),
            inflight_bytes: 0,
            delivered_bytes: 0,
            acked_bytes: 0,
            next_send_time: 0,
            send_scheduled: false,
            srtt_s: 0.0,
            last_progress: 0,
            rto_armed_at: 0,
            last_ack_arrival: 0,
            acc: Accumulators::default(),
        }
    }
}

/// N flows crossing one bottleneck with a pluggable queue discipline.
pub struct MultiFlowSim {
    now: Time,
    events: FlowEventQueue,
    params: LinkParams,
    queue: Queue,
    serving: Option<Packet>,
    qdisc: Box<dyn QDisc>,
    qdisc_rng: StdRng,
    cfg: SimConfig,
    /// Sorted by key; events are dispatched via binary search.
    flows: Vec<FlowState>,

    // monotone counters (telemetry flushes per-run deltas)
    total_events: u64,
    total_drops: u64,
    total_ecn_marks: u64,
}

impl MultiFlowSim {
    /// A drop-tail bottleneck — the legacy discipline.
    pub fn new(params: LinkParams, cfg: SimConfig) -> Self {
        Self::with_qdisc(params, cfg, Box::new(DropTail::new()))
    }

    pub fn with_qdisc(params: LinkParams, cfg: SimConfig, qdisc: Box<dyn QDisc>) -> Self {
        params.validate();
        cfg.validate();
        let qdisc_rng = StdRng::seed_from_u64(cfg.seed ^ QDISC_SEED_MIX);
        MultiFlowSim {
            now: 0,
            events: FlowEventQueue::new(),
            queue: Queue::new(cfg.queue_capacity_bytes),
            serving: None,
            qdisc,
            qdisc_rng,
            cfg,
            params,
            flows: Vec::new(),
            total_events: 0,
            total_drops: 0,
            total_ecn_marks: 0,
        }
    }

    /// Register a sender under `key` (must be unique). The flow starts
    /// sending at the current simulation time.
    pub fn add_flow(&mut self, key: u64, cc: Box<dyn CongestionControl>) {
        let pos = match self.flows.binary_search_by_key(&key, |f| f.key) {
            Ok(_) => panic!("duplicate flow key {key}"),
            Err(pos) => pos,
        };
        let rng = StdRng::seed_from_u64(self.cfg.seed ^ key.wrapping_mul(FLOW_SEED_MIX));
        let mut f = FlowState::new(key, cc, rng);
        f.next_send_time = self.now;
        Self::schedule_send(&mut self.events, &mut f, self.now);
        self.flows.insert(pos, f);
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn params(&self) -> LinkParams {
        self.params
    }

    pub fn set_link(&mut self, params: LinkParams) {
        params.validate();
        self.params = params;
    }

    pub fn n_flows(&self) -> usize {
        self.flows.len()
    }

    /// Registered flow keys, ascending.
    pub fn flow_keys(&self) -> Vec<u64> {
        self.flows.iter().map(|f| f.key).collect()
    }

    pub fn queue_bytes(&self) -> usize {
        self.queue.bytes()
    }

    /// Instantaneous queuing delay in ms (backlog over drain rate).
    pub fn queue_delay_ms(&self) -> f64 {
        self.queue.bytes() as f64 * 8.0 / (self.params.bandwidth_mbps * 1e6) * 1e3
    }

    pub fn flow_srtt_s(&self, key: u64) -> f64 {
        self.flows[self.flow_index(key)].srtt_s
    }

    pub fn flow_inflight_bytes(&self, key: u64) -> usize {
        self.flows[self.flow_index(key)].inflight_bytes
    }

    /// Inspect a flow's congestion controller.
    pub fn cc(&self, key: u64) -> &dyn CongestionControl {
        self.flows[self.flow_index(key)].cc.as_ref()
    }

    /// Events handled since construction.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Bottleneck drops (overflow + AQM early drops) since construction.
    pub fn total_drops(&self) -> u64 {
        self.total_drops
    }

    /// ECN CE marks applied since construction.
    pub fn total_ecn_marks(&self) -> u64 {
        self.total_ecn_marks
    }

    fn flow_index(&self, key: u64) -> usize {
        self.flows.binary_search_by_key(&key, |f| f.key).expect("unknown flow key")
    }

    /// Advance all flows by `dt`; returns `(key, stats)` per flow,
    /// ascending by key. Per-flow `capacity_bytes`/`utilization` are
    /// against the full link capacity (so utilizations sum to ≤ 1 and
    /// flow 0's stats match the legacy single-flow numbers exactly).
    pub fn run_for(&mut self, dt: Time) -> Vec<(u64, IntervalStats)> {
        let _span = telemetry::span!("netsim.run");
        let end = self.now + dt;
        for f in &mut self.flows {
            f.acc = Accumulators::default();
        }
        let (ev0, dr0, ecn0) = (self.total_events, self.total_drops, self.total_ecn_marks);
        while let Some(t) = self.events.peek_time() {
            if t > end {
                break;
            }
            let (t, flow, kind) = self.events.pop().expect("peeked event exists");
            debug_assert!(t >= self.now, "time must not go backwards");
            self.now = t;
            self.total_events += 1;
            // Fault point `netsim.event`: panic fires inside check(); a
            // stall sleeps the simulation thread; NaN/corrupt have no
            // meaning for an event pop and are ignored.
            if fault::active() {
                if let Some(fault::Injection::Stall(d)) = fault::check("netsim.event") {
                    std::thread::sleep(d);
                }
            }
            let idx = self.flow_index(flow);
            self.handle(idx, kind);
        }
        self.now = end;

        if telemetry::enabled() {
            let events = self.total_events - ev0;
            let drops = self.total_drops - dr0;
            let marks = self.total_ecn_marks - ecn0;
            if events > 0 {
                telemetry::counter_add("netsim.events", events);
            }
            if drops > 0 {
                telemetry::counter_add("netsim.drops", drops);
            }
            if marks > 0 {
                telemetry::counter_add("netsim.ecn_marks", marks);
            }
        }

        let dt_s = to_secs(dt);
        let capacity = self.params.bandwidth_mbps * 1e6 / 8.0 * dt_s;
        self.flows
            .iter()
            .map(|f| {
                let a = f.acc;
                let stats = IntervalStats {
                    duration_s: dt_s,
                    delivered_bytes: a.delivered_bytes,
                    capacity_bytes: capacity,
                    utilization: (a.delivered_bytes as f64 / capacity.max(1.0)).min(1.0),
                    throughput_mbps: a.delivered_bytes as f64 * 8.0 / dt_s.max(1e-9) / 1e6,
                    avg_rtt_ms: if a.rtt_samples > 0 {
                        a.rtt_sum_s / a.rtt_samples as f64 * 1e3
                    } else {
                        0.0
                    },
                    avg_queue_delay_ms: if a.sojourn_samples > 0 {
                        a.sojourn_sum_s / a.sojourn_samples as f64 * 1e3
                    } else {
                        0.0
                    },
                    packets_sent: a.packets_sent,
                    packets_delivered: a.packets_delivered,
                    packets_lost_random: a.lost_random,
                    packets_lost_overflow: a.lost_overflow,
                };
                (f.key, stats)
            })
            .collect()
    }

    fn handle(&mut self, idx: usize, kind: EventKind) {
        match kind {
            EventKind::SendReady => {
                self.flows[idx].send_scheduled = false;
                self.try_send(idx);
            }
            EventKind::ServiceComplete => self.service_complete(),
            EventKind::AckArrival { seq, delivered } => self.ack_arrival(idx, seq, delivered),
            EventKind::RtoCheck { armed_at } => self.rto_check(idx, armed_at),
        }
    }

    /// Push an event for flow `f`, consuming its next event-seq number.
    fn push_event(events: &mut FlowEventQueue, f: &mut FlowState, at: Time, kind: EventKind) {
        let seq = f.event_seq;
        f.event_seq += 1;
        events.push(at, f.key, seq, kind);
    }

    fn schedule_send(events: &mut FlowEventQueue, f: &mut FlowState, now: Time) {
        if f.send_scheduled {
            return;
        }
        if (f.outstanding.len() as f64) < f.cc.cwnd_packets() {
            let at = f.next_send_time.max(now);
            Self::push_event(events, f, at, EventKind::SendReady);
            f.send_scheduled = true;
        }
    }

    fn arm_rto(events: &mut FlowEventQueue, f: &mut FlowState, now: Time, min_rto_s: f64) {
        if f.outstanding.is_empty() {
            return;
        }
        f.rto_armed_at = now;
        let rto_s = (4.0 * f.srtt_s).max(min_rto_s);
        let dur = (rto_s * SEC as f64) as Time;
        Self::push_event(events, f, now + dur, EventKind::RtoCheck { armed_at: now });
    }

    fn try_send(&mut self, idx: usize) {
        let now = self.now;
        let size = self.cfg.packet_bytes;
        let min_rto_s = self.cfg.min_rto_s;
        let loss_rate = self.params.loss_rate;
        let mut enqueued = false;
        {
            let f = &mut self.flows[idx];
            if (f.outstanding.len() as f64) >= f.cc.cwnd_packets() {
                return; // cwnd-limited: ACKs will restart sending
            }
            let mut pkt = Packet {
                flow: f.key,
                seq: f.next_seq,
                size_bytes: size,
                sent_at: now,
                delivered_at_send: f.acked_bytes,
                ecn: false,
            };
            f.next_seq += 1;
            f.outstanding.insert(pkt.seq, pkt);
            f.inflight_bytes += size;
            f.acc.packets_sent += 1;
            Self::arm_rto(&mut self.events, f, now, min_rto_s);

            // iid random loss at link ingress (per-flow RNG stream)
            if f.rng.gen::<f64>() < loss_rate {
                f.acc.lost_random += 1;
            } else {
                // Fault point `netsim.enqueue`: corrupt = force-drop this
                // admission (counted as overflow); stall sleeps; NaN has no
                // meaning here and is ignored.
                let mut forced_drop = false;
                if fault::active() {
                    match fault::check("netsim.enqueue") {
                        Some(fault::Injection::Corrupt) => forced_drop = true,
                        Some(fault::Injection::Stall(d)) => std::thread::sleep(d),
                        _ => {}
                    }
                }
                let verdict = if forced_drop {
                    Verdict::Drop
                } else {
                    self.qdisc.admit(
                        self.queue.bytes(),
                        self.queue.capacity_bytes,
                        size,
                        &mut self.qdisc_rng,
                    )
                };
                match verdict {
                    Verdict::Drop => {
                        self.queue.total_dropped_overflow += 1;
                        f.acc.lost_overflow += 1;
                        self.total_drops += 1;
                    }
                    Verdict::Mark | Verdict::Enqueue => {
                        if verdict == Verdict::Mark {
                            pkt.ecn = true;
                            self.total_ecn_marks += 1;
                            // the ACK echoes the mark: update the sender's
                            // in-flight copy too
                            if let Some(p) = f.outstanding.get_mut(&pkt.seq) {
                                p.ecn = true;
                            }
                        }
                        let pushed = self.queue.push(pkt);
                        debug_assert!(pushed, "qdisc admitted past capacity");
                        enqueued = pushed;
                    }
                }
            }
        }
        if enqueued && self.serving.is_none() {
            self.start_service();
        }

        // pace the next transmission
        let f = &mut self.flows[idx];
        let pacing = f.cc.pacing_rate().bps().max(1e3);
        let gap = (size as f64 * 8.0 / pacing * SEC as f64).round() as Time;
        f.next_send_time = now + gap.max(1);
        Self::schedule_send(&mut self.events, f, now);
    }

    fn start_service(&mut self) {
        debug_assert!(self.serving.is_none());
        if let Some(pkt) = self.queue.pop() {
            let done = self.now + self.params.serialization_time(pkt.size_bytes);
            let idx = self.flow_index(pkt.flow);
            self.serving = Some(pkt);
            Self::push_event(
                &mut self.events,
                &mut self.flows[idx],
                done,
                EventKind::ServiceComplete,
            );
        }
    }

    fn service_complete(&mut self) {
        let pkt = self.serving.take().expect("service completion without a packet");
        let idx = self.flow_index(pkt.flow);
        {
            let f = &mut self.flows[idx];
            f.delivered_bytes += pkt.size_bytes as u64;
            f.acc.delivered_bytes += pkt.size_bytes as u64;
            f.acc.packets_delivered += 1;
            f.acc.sojourn_sum_s += to_secs(self.now - pkt.sent_at);
            f.acc.sojourn_samples += 1;
            let ack_at = (self.now + 2 * self.params.propagation()).max(f.last_ack_arrival + 1);
            f.last_ack_arrival = ack_at;
            let delivered = f.delivered_bytes;
            Self::push_event(
                &mut self.events,
                f,
                ack_at,
                EventKind::AckArrival { seq: pkt.seq, delivered },
            );
        }
        if !self.queue.is_empty() {
            self.start_service();
        }
    }

    fn ack_arrival(&mut self, idx: usize, seq: u64, _delivered: u64) {
        let now = self.now;
        let min_rto_s = self.cfg.min_rto_s;
        let f = &mut self.flows[idx];
        let Some(pkt) = f.outstanding.remove(&seq) else {
            return; // already declared lost via dup-ACK or RTO
        };
        f.inflight_bytes = f.inflight_bytes.saturating_sub(pkt.size_bytes);
        f.acked_bytes += pkt.size_bytes as u64;
        f.last_progress = now;

        let rtt_s = to_secs(now - pkt.sent_at);
        f.srtt_s = if f.srtt_s == 0.0 { rtt_s } else { 0.875 * f.srtt_s + 0.125 * rtt_s };
        f.acc.rtt_sum_s += rtt_s;
        f.acc.rtt_samples += 1;

        // loss detection on each ACK: dup-ACK style (3-packet reorder
        // window) plus RACK-style time threshold — per flow, since the
        // FIFO bottleneck preserves each flow's internal order.
        let rack_cutoff = pkt.sent_at.saturating_sub((0.5 * f.srtt_s * SEC as f64) as Time);
        let lost: Vec<u64> = f
            .outstanding
            .iter()
            .filter(|(s, p)| **s < seq.saturating_sub(3) || (**s < seq && p.sent_at < rack_cutoff))
            .map(|(s, _)| *s)
            .collect();
        for s in &lost {
            if let Some(p) = f.outstanding.remove(s) {
                f.inflight_bytes = f.inflight_bytes.saturating_sub(p.size_bytes);
            }
        }

        let span_s = to_secs(now - pkt.sent_at).max(1e-9);
        let ack = AckEvent {
            now: Nanosecs::new(now),
            rtt: Nanosecs::new(now - pkt.sent_at),
            delivery_rate: BitsPerSec::from_bps(
                (f.acked_bytes - pkt.delivered_at_send) as f64 * 8.0 / span_s,
            ),
            newly_acked: Bytes::new(pkt.size_bytes as u64),
            inflight: Bytes::new(f.inflight_bytes as u64),
            delivered: Bytes::new(f.acked_bytes),
            delivered_at_send: Bytes::new(pkt.delivered_at_send),
            ecn: pkt.ecn,
        };
        f.cc.on_ack(&ack);
        if !lost.is_empty() {
            f.cc.on_loss(lost.len(), Nanosecs::new(now));
        }
        Self::arm_rto(&mut self.events, f, now, min_rto_s);
        Self::schedule_send(&mut self.events, f, now);
    }

    fn rto_check(&mut self, idx: usize, armed_at: Time) {
        let now = self.now;
        let f = &mut self.flows[idx];
        if armed_at != f.rto_armed_at {
            return; // a newer arming superseded this timer
        }
        if f.outstanding.is_empty() || f.last_progress > armed_at {
            return; // progress since arming
        }
        // timeout: everything outstanding is presumed lost
        f.outstanding.clear();
        f.inflight_bytes = 0;
        f.cc.on_rto(Nanosecs::new(now));
        f.next_send_time = now;
        Self::schedule_send(&mut self.events, f, now);
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`: 1 when all shares are equal,
/// `1/n` when one flow takes everything. Empty input → 0; all-zero → 1
/// (nobody got anything, which is perfectly fair).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// A fixed-window sender whose pacing rate is set externally through a
/// [`RateHandle`] — the adversary's cross-traffic knob. The handle is
/// `Send + Sync + Clone`, so the environment can keep it after moving the
/// controller into the simulator.
pub struct SharedRateCc {
    rate_bits: Arc<AtomicU64>,
    cwnd: f64,
}

/// Externally sets/reads a [`SharedRateCc`]'s pacing rate.
#[derive(Clone)]
pub struct RateHandle {
    rate_bits: Arc<AtomicU64>,
}

impl RateHandle {
    /// Set the pacing rate (validated finite and non-negative).
    pub fn set_rate(&self, rate: BitsPerSec) {
        self.rate_bits.store(rate.bps().to_bits(), Ordering::Relaxed);
    }

    pub fn set_rate_bps(&self, bps: f64) {
        self.set_rate(BitsPerSec::from_bps(bps));
    }

    pub fn rate_bps(&self) -> f64 {
        f64::from_bits(self.rate_bits.load(Ordering::Relaxed))
    }
}

impl SharedRateCc {
    pub fn new(initial: BitsPerSec, cwnd: f64) -> (SharedRateCc, RateHandle) {
        let rate_bits = Arc::new(AtomicU64::new(initial.bps().to_bits()));
        let handle = RateHandle { rate_bits: Arc::clone(&rate_bits) };
        (SharedRateCc { rate_bits, cwnd }, handle)
    }
}

impl CongestionControl for SharedRateCc {
    fn name(&self) -> &str {
        "xrate"
    }
    fn on_ack(&mut self, _ack: &AckEvent) {}
    fn on_loss(&mut self, _lost: usize, _now: Nanosecs) {}
    fn on_rto(&mut self, _now: Nanosecs) {}
    fn pacing_rate(&self) -> BitsPerSec {
        BitsPerSec::from_bps(f64::from_bits(self.rate_bits.load(Ordering::Relaxed)))
    }
    fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qdisc::{DctcpEcn, QdiscKind, Red};
    use crate::sim::FixedRateCc;
    use crate::MTU_BYTES;

    fn fixed(rate_mbps: f64) -> Box<dyn CongestionControl> {
        Box::new(FixedRateCc { rate_bps: rate_mbps * 1e6, cwnd: 1e9 })
    }

    #[test]
    fn two_equal_senders_saturate_the_link() {
        // Under drop-tail, two perfectly synchronized paced senders can
        // phase-lock (the classic drop-tail phase effect): one flow's
        // packets always hit a full queue. Only the aggregate is asserted
        // here; fairness is checked under RED below, which randomizes
        // drops precisely to break such synchronization.
        let mut sim = MultiFlowSim::new(LinkParams::new(12.0, 20.0, 0.0), SimConfig::default());
        sim.add_flow(0, fixed(12.0));
        sim.add_flow(1, fixed(12.0));
        sim.run_for(crate::SEC);
        let stats = sim.run_for(5 * crate::SEC);
        assert_eq!(stats.len(), 2);
        let total: f64 = stats.iter().map(|(_, s)| s.throughput_mbps).sum();
        assert!((total - 12.0).abs() < 0.5, "link saturated: {total}");
    }

    #[test]
    fn red_breaks_phase_lock_between_equal_senders() {
        let mut sim = MultiFlowSim::with_qdisc(
            LinkParams::new(12.0, 20.0, 0.0),
            SimConfig::default(),
            Box::new(Red::new()),
        );
        sim.add_flow(0, fixed(12.0));
        sim.add_flow(1, fixed(12.0));
        sim.run_for(crate::SEC);
        let stats = sim.run_for(5 * crate::SEC);
        let shares: Vec<f64> = stats.iter().map(|(_, s)| s.throughput_mbps).collect();
        let jain = jain_index(&shares);
        assert!(jain > 0.9, "RED must desynchronize equal senders: jain {jain} shares {shares:?}");
    }

    #[test]
    fn results_invariant_under_registration_order() {
        let run = |keys: &[u64]| {
            let mut sim =
                MultiFlowSim::new(LinkParams::new(12.0, 20.0, 0.02), SimConfig::default());
            for &k in keys {
                sim.add_flow(k, fixed(6.0 + k as f64));
            }
            sim.run_for(3 * crate::SEC)
                .into_iter()
                .map(|(k, s)| (k, s.delivered_bytes, s.packets_lost_random))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&[0, 1, 2]), run(&[2, 0, 1]));
        assert_eq!(run(&[0, 1, 2]), run(&[1, 2, 0]));
    }

    #[test]
    fn dctcp_marks_under_overload_and_echoes_on_acks() {
        struct EcnCounter {
            inner: FixedRateCc,
            marked_acks: Arc<AtomicU64>,
        }
        impl CongestionControl for EcnCounter {
            fn name(&self) -> &str {
                "ecn-counter"
            }
            fn on_ack(&mut self, ack: &AckEvent) {
                if ack.ecn {
                    self.marked_acks.fetch_add(1, Ordering::Relaxed);
                }
            }
            fn on_loss(&mut self, _: usize, _: Nanosecs) {}
            fn on_rto(&mut self, _: Nanosecs) {}
            fn pacing_rate(&self) -> BitsPerSec {
                self.inner.pacing_rate()
            }
            fn cwnd_packets(&self) -> f64 {
                self.inner.cwnd_packets()
            }
        }
        let marked = Arc::new(AtomicU64::new(0));
        let mut sim = MultiFlowSim::with_qdisc(
            LinkParams::new(6.0, 10.0, 0.0),
            SimConfig::default(),
            Box::new(DctcpEcn::new()),
        );
        sim.add_flow(
            0,
            Box::new(EcnCounter {
                inner: FixedRateCc { rate_bps: 24e6, cwnd: 1e9 },
                marked_acks: Arc::clone(&marked),
            }),
        );
        sim.run_for(3 * crate::SEC);
        assert!(sim.total_ecn_marks() > 0, "4x overload must cross the DCTCP threshold");
        assert!(
            marked.load(Ordering::Relaxed) > 0,
            "CE marks must be echoed to the sender on ACKs"
        );
    }

    #[test]
    fn red_drops_early_under_standing_queue() {
        let mut sim = MultiFlowSim::with_qdisc(
            LinkParams::new(6.0, 10.0, 0.0),
            SimConfig::default(),
            Box::new(Red::new()),
        );
        sim.add_flow(0, fixed(24.0));
        let stats = sim.run_for(5 * crate::SEC);
        assert!(sim.total_drops() > 0, "RED must drop under 4x overload");
        assert!(stats[0].1.packets_lost_overflow > 0);
        // RED keeps the average queue between its thresholds, well below
        // the 150 kB physical capacity
        assert!(
            sim.queue_bytes() < 100 * MTU_BYTES,
            "RED must not sustain a full queue: {} B",
            sim.queue_bytes()
        );
    }

    #[test]
    fn shared_rate_handle_changes_rate_live() {
        let (cc, handle) = SharedRateCc::new(BitsPerSec::from_mbps(2.0), 1e9);
        let mut sim = MultiFlowSim::new(LinkParams::new(12.0, 10.0, 0.0), SimConfig::default());
        sim.add_flow(0, Box::new(cc));
        sim.run_for(crate::SEC);
        let slow = sim.run_for(2 * crate::SEC);
        handle.set_rate_bps(10e6);
        sim.run_for(crate::SEC);
        let fast = sim.run_for(2 * crate::SEC);
        assert!((slow[0].1.throughput_mbps - 2.0).abs() < 0.3, "{}", slow[0].1.throughput_mbps);
        assert!((fast[0].1.throughput_mbps - 10.0).abs() < 0.5, "{}", fast[0].1.throughput_mbps);
        assert_eq!(handle.rate_bps(), 10e6);
    }

    #[test]
    fn events_counter_is_nonzero_after_a_run() {
        let mut sim = MultiFlowSim::new(LinkParams::new(12.0, 20.0, 0.0), SimConfig::default());
        sim.add_flow(0, fixed(6.0));
        sim.run_for(crate::SEC);
        assert!(sim.total_events() > 0);
    }

    #[test]
    #[should_panic(expected = "duplicate flow key")]
    fn duplicate_flow_key_rejected() {
        let mut sim = MultiFlowSim::new(LinkParams::new(12.0, 20.0, 0.0), SimConfig::default());
        sim.add_flow(3, fixed(6.0));
        sim.add_flow(3, fixed(6.0));
    }

    #[test]
    fn jain_index_basics() {
        assert_eq!(jain_index(&[]), 0.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_qdisc_kinds_run_a_contest() {
        for kind in QdiscKind::ALL {
            let mut sim = MultiFlowSim::with_qdisc(
                LinkParams::new(12.0, 20.0, 0.0),
                SimConfig::default(),
                kind.build(),
            );
            sim.add_flow(0, fixed(8.0));
            sim.add_flow(1, fixed(8.0));
            let stats = sim.run_for(2 * crate::SEC);
            let total: f64 = stats.iter().map(|(_, s)| s.throughput_mbps).sum();
            assert!(total > 8.0, "{}: link must carry traffic, got {total}", kind.label());
        }
    }
}
