//! Verbatim transcription of the pre-multi-flow `FlowSim` event loop.
//!
//! This module exists for one purpose: the single-flow equivalence suite
//! (`crates/cc/tests/single_flow_equivalence.rs`) pins the multi-flow
//! engine's 1-flow trajectories bit-for-bit against the engine this crate
//! shipped before the rewrite. [`RefFlowSim`] is that old engine, kept
//! byte-for-byte in its f64 operation order, only re-expressed against the
//! current [`CongestionControl`] trait (the typed-unit conversions at the
//! boundary are value-identical by construction — see `units.rs` tests).
//!
//! Do not "improve" this file. Any behavioral change here silently
//! weakens the equivalence contract to "new engine == new reference".

use crate::event::{EventKind, EventQueue};
use crate::link::{LinkParams, Packet, Queue};
use crate::sim::{AckEvent, CongestionControl, IntervalStats, SimConfig};
use crate::units::{BitsPerSec, Bytes, Nanosecs};
use crate::{to_secs, Time, SEC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

#[derive(Debug, Default, Clone, Copy)]
struct Accumulators {
    delivered_bytes: u64,
    packets_delivered: u64,
    packets_sent: u64,
    lost_random: u64,
    lost_overflow: u64,
    rtt_sum_s: f64,
    rtt_samples: u64,
    sojourn_sum_s: f64,
    sojourn_samples: u64,
}

/// The legacy single-flow, single-bottleneck simulator (reference oracle).
pub struct RefFlowSim {
    now: Time,
    events: EventQueue,
    params: LinkParams,
    queue: Queue,
    serving: Option<Packet>,
    cc: Box<dyn CongestionControl>,
    cfg: SimConfig,
    rng: StdRng,

    next_seq: u64,
    outstanding: BTreeMap<u64, Packet>,
    inflight_bytes: usize,
    delivered_bytes: u64,
    acked_bytes: u64,
    next_send_time: Time,
    send_scheduled: bool,
    srtt_s: f64,
    last_progress: Time,
    rto_armed_at: Time,
    last_ack_arrival: Time,

    acc: Accumulators,
}

impl RefFlowSim {
    pub fn new(cc: Box<dyn CongestionControl>, params: LinkParams, cfg: SimConfig) -> Self {
        params.validate();
        let mut sim = RefFlowSim {
            now: 0,
            events: EventQueue::new(),
            queue: Queue::new(cfg.queue_capacity_bytes),
            serving: None,
            cc,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            params,
            next_seq: 0,
            outstanding: BTreeMap::new(),
            inflight_bytes: 0,
            delivered_bytes: 0,
            acked_bytes: 0,
            next_send_time: 0,
            send_scheduled: false,
            srtt_s: 0.0,
            last_progress: 0,
            rto_armed_at: 0,
            last_ack_arrival: 0,
            acc: Accumulators::default(),
        };
        sim.schedule_send();
        sim
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn srtt_s(&self) -> f64 {
        self.srtt_s
    }

    pub fn inflight_bytes(&self) -> usize {
        self.inflight_bytes
    }

    pub fn queue_bytes(&self) -> usize {
        self.queue.bytes()
    }

    pub fn set_link(&mut self, params: LinkParams) {
        params.validate();
        self.params = params;
    }

    pub fn run_for(&mut self, dt: Time) -> IntervalStats {
        let end = self.now + dt;
        self.acc = Accumulators::default();
        while let Some(t) = self.events.peek_time() {
            if t > end {
                break;
            }
            let (t, kind) = self.events.pop().expect("peeked event exists");
            debug_assert!(t >= self.now, "time must not go backwards");
            self.now = t;
            self.handle(kind);
        }
        self.now = end;
        let dt_s = to_secs(dt);
        let capacity = self.params.bandwidth_mbps * 1e6 / 8.0 * dt_s;
        let a = self.acc;
        IntervalStats {
            duration_s: dt_s,
            delivered_bytes: a.delivered_bytes,
            capacity_bytes: capacity,
            utilization: (a.delivered_bytes as f64 / capacity.max(1.0)).min(1.0),
            throughput_mbps: a.delivered_bytes as f64 * 8.0 / dt_s.max(1e-9) / 1e6,
            avg_rtt_ms: if a.rtt_samples > 0 {
                a.rtt_sum_s / a.rtt_samples as f64 * 1e3
            } else {
                0.0
            },
            avg_queue_delay_ms: if a.sojourn_samples > 0 {
                a.sojourn_sum_s / a.sojourn_samples as f64 * 1e3
            } else {
                0.0
            },
            packets_sent: a.packets_sent,
            packets_delivered: a.packets_delivered,
            packets_lost_random: a.lost_random,
            packets_lost_overflow: a.lost_overflow,
        }
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::SendReady => {
                self.send_scheduled = false;
                self.try_send();
            }
            EventKind::ServiceComplete => self.service_complete(),
            EventKind::AckArrival { seq, delivered } => self.ack_arrival(seq, delivered),
            EventKind::RtoCheck { armed_at } => self.rto_check(armed_at),
        }
    }

    fn schedule_send(&mut self) {
        if self.send_scheduled {
            return;
        }
        if (self.outstanding.len() as f64) < self.cc.cwnd_packets() {
            let at = self.next_send_time.max(self.now);
            self.events.push(at, EventKind::SendReady);
            self.send_scheduled = true;
        }
    }

    fn try_send(&mut self) {
        if (self.outstanding.len() as f64) >= self.cc.cwnd_packets() {
            return; // cwnd-limited: ACKs will restart sending
        }
        let size = self.cfg.packet_bytes;
        let pkt = Packet {
            flow: 0,
            seq: self.next_seq,
            size_bytes: size,
            sent_at: self.now,
            delivered_at_send: self.acked_bytes,
            ecn: false,
        };
        self.next_seq += 1;
        self.outstanding.insert(pkt.seq, pkt);
        self.inflight_bytes += size;
        self.acc.packets_sent += 1;
        self.arm_rto();

        // iid random loss at link ingress
        if self.rng.gen::<f64>() < self.params.loss_rate {
            self.acc.lost_random += 1;
        } else if self.queue.push(pkt) {
            if self.serving.is_none() {
                self.start_service();
            }
        } else {
            self.acc.lost_overflow += 1;
        }

        // pace the next transmission
        let pacing = self.cc.pacing_rate().bps().max(1e3);
        let gap = (size as f64 * 8.0 / pacing * SEC as f64).round() as Time;
        self.next_send_time = self.now + gap.max(1);
        self.schedule_send();
    }

    fn start_service(&mut self) {
        debug_assert!(self.serving.is_none());
        if let Some(pkt) = self.queue.pop() {
            let done = self.now + self.params.serialization_time(pkt.size_bytes);
            self.serving = Some(pkt);
            self.events.push(done, EventKind::ServiceComplete);
        }
    }

    fn service_complete(&mut self) {
        let pkt = self.serving.take().expect("service completion without a packet");
        self.delivered_bytes += pkt.size_bytes as u64;
        self.acc.delivered_bytes += pkt.size_bytes as u64;
        self.acc.packets_delivered += 1;
        self.acc.sojourn_sum_s += to_secs(self.now - pkt.sent_at);
        self.acc.sojourn_samples += 1;
        let ack_at = (self.now + 2 * self.params.propagation()).max(self.last_ack_arrival + 1);
        self.last_ack_arrival = ack_at;
        self.events
            .push(ack_at, EventKind::AckArrival { seq: pkt.seq, delivered: self.delivered_bytes });
        if !self.queue.is_empty() {
            self.start_service();
        }
    }

    fn ack_arrival(&mut self, seq: u64, _delivered: u64) {
        let Some(pkt) = self.outstanding.remove(&seq) else {
            return; // already declared lost via dup-ACK or RTO
        };
        self.inflight_bytes = self.inflight_bytes.saturating_sub(pkt.size_bytes);
        self.acked_bytes += pkt.size_bytes as u64;
        self.last_progress = self.now;

        let rtt_s = to_secs(self.now - pkt.sent_at);
        self.srtt_s = if self.srtt_s == 0.0 { rtt_s } else { 0.875 * self.srtt_s + 0.125 * rtt_s };
        self.acc.rtt_sum_s += rtt_s;
        self.acc.rtt_samples += 1;

        let rack_cutoff = pkt.sent_at.saturating_sub((0.5 * self.srtt_s * SEC as f64) as Time);
        let lost: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(s, p)| **s < seq.saturating_sub(3) || (**s < seq && p.sent_at < rack_cutoff))
            .map(|(s, _)| *s)
            .collect();
        for s in &lost {
            if let Some(p) = self.outstanding.remove(s) {
                self.inflight_bytes = self.inflight_bytes.saturating_sub(p.size_bytes);
            }
        }

        let span_s = to_secs(self.now - pkt.sent_at).max(1e-9);
        let ack = AckEvent {
            now: Nanosecs::new(self.now),
            rtt: Nanosecs::new(self.now - pkt.sent_at),
            delivery_rate: BitsPerSec::from_bps(
                (self.acked_bytes - pkt.delivered_at_send) as f64 * 8.0 / span_s,
            ),
            newly_acked: Bytes::new(pkt.size_bytes as u64),
            inflight: Bytes::new(self.inflight_bytes as u64),
            delivered: Bytes::new(self.acked_bytes),
            delivered_at_send: Bytes::new(pkt.delivered_at_send),
            ecn: false,
        };
        self.cc.on_ack(&ack);
        if !lost.is_empty() {
            self.cc.on_loss(lost.len(), Nanosecs::new(self.now));
        }
        self.arm_rto();
        self.schedule_send();
    }

    fn rto_duration(&self) -> Time {
        let rto_s = (4.0 * self.srtt_s).max(self.cfg.min_rto_s);
        (rto_s * SEC as f64) as Time
    }

    fn arm_rto(&mut self) {
        if self.outstanding.is_empty() {
            return;
        }
        self.rto_armed_at = self.now;
        self.events
            .push(self.now + self.rto_duration(), EventKind::RtoCheck { armed_at: self.now });
    }

    fn rto_check(&mut self, armed_at: Time) {
        if armed_at != self.rto_armed_at {
            return; // a newer arming superseded this timer
        }
        if self.outstanding.is_empty() || self.last_progress > armed_at {
            return; // progress since arming
        }
        self.outstanding.clear();
        self.inflight_bytes = 0;
        self.cc.on_rto(Nanosecs::new(self.now));
        self.next_send_time = self.now;
        self.schedule_send();
    }
}
