//! Event queues for the simulators.
//!
//! [`EventQueue`] is the legacy single-flow queue: a binary heap keyed by
//! `(time, insertion id)` so that simultaneous events fire in insertion
//! order. [`FlowEventQueue`] is the multi-flow engine's queue, keyed by
//! `(time, flow id, per-flow sequence)` — the tie-break depends only on
//! which flow an event belongs to and that flow's own event count, never
//! on global insertion order, so N-flow runs are invariant under flow
//! registration order (DESIGN.md §16).

use crate::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What can happen inside the flow simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The pacer allows the sender to transmit its next packet.
    SendReady,
    /// The bottleneck finished serializing the packet at the queue head.
    ServiceComplete,
    /// An ACK for `seq` reaches the sender, carrying the receiver's
    /// cumulative delivered-byte counter at packet arrival.
    AckArrival { seq: u64, delivered: u64 },
    /// Retransmission-timeout check; `armed_at` identifies the arming so
    /// stale timers can be ignored.
    RtoCheck { armed_at: Time },
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Time, u64, EventKindOrd)>>,
    next_id: u64,
}

/// Internal ordered wrapper (BinaryHeap needs Ord; EventKind carries data
/// that should not affect ordering beyond the id tiebreak).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventKindOrd(EventKind);

impl PartialOrd for EventKindOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKindOrd {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        // ties broken by the insertion id in the tuple before this field
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        self.heap.push(Reverse((at, self.next_id, EventKindOrd(kind))));
        self.next_id += 1;
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, EventKind)> {
        self.heap.pop().map(|Reverse((t, _, k))| (t, k.0))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The multi-flow event queue: a binary heap keyed by
/// `(time, flow id, per-flow sequence)`.
///
/// Callers assign each flow a monotone event-sequence counter and pass it
/// on push; ties at the same instant break by flow id, then by that
/// counter. Because neither key component depends on global insertion
/// order, the pop order of any event set is a pure function of the set
/// itself — the determinism contract the multi-flow proptest suite pins.
#[derive(Debug, Default)]
pub struct FlowEventQueue {
    heap: BinaryHeap<Reverse<(Time, u64, u64, EventKindOrd)>>,
}

impl FlowEventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` for `flow` at absolute time `at`; `seq` is the
    /// flow's own monotone event counter (the caller increments it).
    pub fn push(&mut self, at: Time, flow: u64, seq: u64, kind: EventKind) {
        self.heap.push(Reverse((at, flow, seq, EventKindOrd(kind))));
    }

    /// Pop the earliest event: `(time, flow, kind)`.
    pub fn pop(&mut self) -> Option<(Time, u64, EventKind)> {
        self.heap.pop().map(|Reverse((t, flow, _, k))| (t, flow, k.0))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((t, _, _, _))| *t)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::SendReady);
        q.push(10, EventKind::ServiceComplete);
        q.push(20, EventKind::AckArrival { seq: 1, delivered: 0 });
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert_eq!(q.pop().unwrap().0, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::AckArrival { seq: 1, delivered: 0 });
        q.push(5, EventKind::AckArrival { seq: 2, delivered: 0 });
        q.push(5, EventKind::AckArrival { seq: 3, delivered: 0 });
        let seqs: Vec<u64> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                EventKind::AckArrival { seq, .. } => seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![1, 2, 3], "same-time events must pop in insertion order");
    }

    #[test]
    fn peek_does_not_pop() {
        let mut q = EventQueue::new();
        q.push(7, EventKind::SendReady);
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn flow_queue_orders_by_time_then_flow_then_seq() {
        let mut q = FlowEventQueue::new();
        q.push(5, 2, 0, EventKind::SendReady);
        q.push(5, 1, 1, EventKind::ServiceComplete);
        q.push(5, 1, 0, EventKind::SendReady);
        q.push(3, 9, 7, EventKind::SendReady);
        let order: Vec<(Time, u64)> =
            (0..4).map(|_| q.pop().map(|(t, f, _)| (t, f)).unwrap()).collect();
        assert_eq!(order, vec![(3, 9), (5, 1), (5, 1), (5, 2)]);
    }

    #[test]
    fn flow_queue_pop_order_is_insertion_order_independent() {
        // every permutation of the same event set pops identically
        let events: Vec<(Time, u64, u64)> =
            vec![(10, 0, 0), (10, 1, 0), (10, 0, 1), (4, 2, 0), (10, 2, 1), (4, 0, 2)];
        let pop_all = |order: &[usize]| {
            let mut q = FlowEventQueue::new();
            for &i in order {
                let (t, f, s) = events[i];
                q.push(t, f, s, EventKind::SendReady);
            }
            let mut out = Vec::new();
            while let Some((t, f, _)) = q.pop() {
                out.push((t, f));
            }
            out
        };
        let baseline = pop_all(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(baseline, pop_all(&[5, 4, 3, 2, 1, 0]));
        assert_eq!(baseline, pop_all(&[2, 0, 5, 1, 3, 4]));
    }
}
