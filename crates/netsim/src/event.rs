//! The event queue: a binary heap keyed by `(time, sequence)` so that
//! simultaneous events fire in a deterministic insertion order.

use crate::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What can happen inside the flow simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The pacer allows the sender to transmit its next packet.
    SendReady,
    /// The bottleneck finished serializing the packet at the queue head.
    ServiceComplete,
    /// An ACK for `seq` reaches the sender, carrying the receiver's
    /// cumulative delivered-byte counter at packet arrival.
    AckArrival { seq: u64, delivered: u64 },
    /// Retransmission-timeout check; `armed_at` identifies the arming so
    /// stale timers can be ignored.
    RtoCheck { armed_at: Time },
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Time, u64, EventKindOrd)>>,
    next_id: u64,
}

/// Internal ordered wrapper (BinaryHeap needs Ord; EventKind carries data
/// that should not affect ordering beyond the id tiebreak).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventKindOrd(EventKind);

impl PartialOrd for EventKindOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKindOrd {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        // ties broken by the insertion id in the tuple before this field
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        self.heap.push(Reverse((at, self.next_id, EventKindOrd(kind))));
        self.next_id += 1;
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, EventKind)> {
        self.heap.pop().map(|Reverse((t, _, k))| (t, k.0))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::SendReady);
        q.push(10, EventKind::ServiceComplete);
        q.push(20, EventKind::AckArrival { seq: 1, delivered: 0 });
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert_eq!(q.pop().unwrap().0, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::AckArrival { seq: 1, delivered: 0 });
        q.push(5, EventKind::AckArrival { seq: 2, delivered: 0 });
        q.push(5, EventKind::AckArrival { seq: 3, delivered: 0 });
        let seqs: Vec<u64> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                EventKind::AckArrival { seq, .. } => seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![1, 2, 3], "same-time events must pop in insertion order");
    }

    #[test]
    fn peek_does_not_pop() {
        let mut q = EventQueue::new();
        q.push(7, EventKind::SendReady);
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }
}
