//! The bottleneck link: a drop-tail queue served at a configurable rate,
//! with propagation delay and iid random loss.

use crate::{Time, MS, MTU_BYTES, SEC};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The adversary-controlled link knobs (Table 1 of the paper constrains
/// these to bandwidth 6–24 Mbit/s, latency 15–60 ms, loss 0–10 %).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Bottleneck bandwidth in Mbit/s.
    pub bandwidth_mbps: f64,
    /// One-way propagation delay in milliseconds (RTT is twice this plus
    /// queueing and serialization).
    pub latency_ms: f64,
    /// Probability that a packet is dropped at link ingress, `[0, 1]`.
    pub loss_rate: f64,
}

impl LinkParams {
    pub fn new(bandwidth_mbps: f64, latency_ms: f64, loss_rate: f64) -> Self {
        let p = LinkParams { bandwidth_mbps, latency_ms, loss_rate };
        p.validate();
        p
    }

    pub fn validate(&self) {
        assert!(self.bandwidth_mbps > 0.0, "bandwidth must be positive");
        assert!(self.latency_ms >= 0.0, "latency must be non-negative");
        assert!((0.0..=1.0).contains(&self.loss_rate), "loss outside [0,1]");
    }

    /// Serialization time of `bytes` at this bandwidth.
    pub fn serialization_time(&self, bytes: usize) -> Time {
        ((bytes as f64 * 8.0 / (self.bandwidth_mbps * 1e6)) * SEC as f64).round() as Time
    }

    /// One-way propagation delay as [`Time`].
    pub fn propagation(&self) -> Time {
        (self.latency_ms * MS as f64).round() as Time
    }

    /// Bandwidth·delay product in bytes (using RTT = 2 × latency).
    pub fn bdp_bytes(&self) -> f64 {
        self.bandwidth_mbps * 1e6 / 8.0 * (2.0 * self.latency_ms / 1000.0)
    }
}

/// A packet in flight through the simulator.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    pub seq: u64,
    pub size_bytes: usize,
    /// When the sender transmitted it.
    pub sent_at: Time,
    /// Receiver's cumulative delivered-byte count when this packet was
    /// sent — the basis of BBR-style delivery-rate samples.
    pub delivered_at_send: u64,
}

/// The drop-tail bottleneck queue.
#[derive(Debug)]
pub struct Queue {
    packets: VecDeque<Packet>,
    bytes: usize,
    /// Capacity in bytes; arrivals beyond it are dropped (drop-tail).
    pub capacity_bytes: usize,
    /// Monotone counters for diagnostics.
    pub total_enqueued: u64,
    pub total_dropped_overflow: u64,
}

impl Queue {
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes >= MTU_BYTES, "queue must hold at least one packet");
        Queue {
            packets: VecDeque::new(),
            bytes: 0,
            capacity_bytes,
            total_enqueued: 0,
            total_dropped_overflow: 0,
        }
    }

    /// Try to enqueue; returns false (and counts a drop) when full.
    pub fn push(&mut self, p: Packet) -> bool {
        if self.bytes + p.size_bytes > self.capacity_bytes {
            self.total_dropped_overflow += 1;
            return false;
        }
        self.bytes += p.size_bytes;
        self.packets.push_back(p);
        self.total_enqueued += 1;
        true
    }

    pub fn pop(&mut self) -> Option<Packet> {
        let p = self.packets.pop_front()?;
        self.bytes -= p.size_bytes;
        Some(p)
    }

    pub fn len(&self) -> usize {
        self.packets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> Packet {
        Packet { seq, size_bytes: MTU_BYTES, sent_at: 0, delivered_at_send: 0 }
    }

    #[test]
    fn serialization_time_scales() {
        let p = LinkParams::new(12.0, 20.0, 0.0);
        // 1500 B = 12 000 bits at 12 Mbit/s = 1 ms
        assert_eq!(p.serialization_time(1500), MS);
        let p2 = LinkParams::new(24.0, 20.0, 0.0);
        assert_eq!(p2.serialization_time(1500), MS / 2);
    }

    #[test]
    fn bdp_computation() {
        let p = LinkParams::new(12.0, 20.0, 0.0);
        // 12 Mbit/s × 40 ms RTT = 480 kbit = 60 kB
        assert!((p.bdp_bytes() - 60_000.0).abs() < 1e-6);
    }

    #[test]
    fn queue_drop_tail() {
        let mut q = Queue::new(3 * MTU_BYTES);
        assert!(q.push(pkt(1)));
        assert!(q.push(pkt(2)));
        assert!(q.push(pkt(3)));
        assert!(!q.push(pkt(4)), "fourth packet must overflow");
        assert_eq!(q.total_dropped_overflow, 1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().seq, 1, "FIFO order");
        assert!(q.push(pkt(4)), "space after a pop");
    }

    #[test]
    fn queue_byte_accounting() {
        let mut q = Queue::new(10 * MTU_BYTES);
        q.push(pkt(1));
        q.push(pkt(2));
        assert_eq!(q.bytes(), 2 * MTU_BYTES);
        q.pop();
        assert_eq!(q.bytes(), MTU_BYTES);
    }

    #[test]
    #[should_panic(expected = "loss outside")]
    fn params_validated() {
        LinkParams::new(10.0, 10.0, 1.5);
    }
}
