//! The bottleneck link: a drop-tail queue served at a configurable rate,
//! with propagation delay and iid random loss.

use crate::units::{BitsPerSec, Bytes};
use crate::{Time, MS, MTU_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The adversary-controlled link knobs (Table 1 of the paper constrains
/// these to bandwidth 6–24 Mbit/s, latency 15–60 ms, loss 0–10 %).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Bottleneck bandwidth in Mbit/s.
    pub bandwidth_mbps: f64,
    /// One-way propagation delay in milliseconds (RTT is twice this plus
    /// queueing and serialization).
    pub latency_ms: f64,
    /// Probability that a packet is dropped at link ingress, `[0, 1]`.
    pub loss_rate: f64,
}

impl LinkParams {
    pub fn new(bandwidth_mbps: f64, latency_ms: f64, loss_rate: f64) -> Self {
        let p = LinkParams { bandwidth_mbps, latency_ms, loss_rate };
        p.validate();
        p
    }

    /// Result-typed construction: reject non-finite or out-of-range values
    /// at the boundary instead of panicking deep inside the event loop.
    pub fn try_new(bandwidth_mbps: f64, latency_ms: f64, loss_rate: f64) -> Result<Self, String> {
        let p = LinkParams { bandwidth_mbps, latency_ms, loss_rate };
        p.try_validate()?;
        Ok(p)
    }

    /// Fallible [`LinkParams::validate`] for callers that handle bad input
    /// (config files, adversary action decoding, CLI knobs).
    pub fn try_validate(&self) -> Result<(), String> {
        if !self.bandwidth_mbps.is_finite() {
            return Err(format!("bandwidth must be finite: {}", self.bandwidth_mbps));
        }
        if self.bandwidth_mbps <= 0.0 {
            return Err(format!("bandwidth must be positive: {}", self.bandwidth_mbps));
        }
        if !self.latency_ms.is_finite() {
            return Err(format!("latency must be finite: {}", self.latency_ms));
        }
        if self.latency_ms < 0.0 {
            return Err(format!("latency must be non-negative: {}", self.latency_ms));
        }
        if !(0.0..=1.0).contains(&self.loss_rate) {
            return Err(format!("loss outside [0,1]: {}", self.loss_rate));
        }
        Ok(())
    }

    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Bottleneck bandwidth as a typed rate.
    pub fn bandwidth(&self) -> BitsPerSec {
        BitsPerSec::from_mbps(self.bandwidth_mbps)
    }

    /// Serialization time of `bytes` at this bandwidth.
    pub fn serialization_time(&self, bytes: usize) -> Time {
        self.bandwidth().time_to_send(Bytes::new(bytes as u64)).get()
    }

    /// One-way propagation delay as [`Time`].
    pub fn propagation(&self) -> Time {
        (self.latency_ms * MS as f64).round() as Time
    }

    /// Bandwidth·delay product in bytes (using RTT = 2 × latency).
    pub fn bdp_bytes(&self) -> f64 {
        self.bandwidth_mbps * 1e6 / 8.0 * (2.0 * self.latency_ms / 1000.0)
    }
}

/// A packet in flight through the simulator.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Owning flow (0 for the single-flow legacy API).
    pub flow: u64,
    pub seq: u64,
    pub size_bytes: usize,
    /// When the sender transmitted it.
    pub sent_at: Time,
    /// Receiver's cumulative delivered-byte count when this packet was
    /// sent — the basis of BBR-style delivery-rate samples.
    pub delivered_at_send: u64,
    /// Congestion Experienced mark set by an ECN-capable queue discipline;
    /// echoed to the sender on the ACK.
    pub ecn: bool,
}

/// The drop-tail bottleneck queue.
#[derive(Debug)]
pub struct Queue {
    packets: VecDeque<Packet>,
    bytes: usize,
    /// Capacity in bytes; arrivals beyond it are dropped (drop-tail).
    pub capacity_bytes: usize,
    /// Monotone counters for diagnostics.
    pub total_enqueued: u64,
    pub total_dropped_overflow: u64,
}

impl Queue {
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes >= MTU_BYTES, "queue must hold at least one packet");
        Queue {
            packets: VecDeque::new(),
            bytes: 0,
            capacity_bytes,
            total_enqueued: 0,
            total_dropped_overflow: 0,
        }
    }

    /// Try to enqueue; returns false (and counts a drop) when full.
    pub fn push(&mut self, p: Packet) -> bool {
        if self.bytes + p.size_bytes > self.capacity_bytes {
            self.total_dropped_overflow += 1;
            return false;
        }
        self.bytes += p.size_bytes;
        self.packets.push_back(p);
        self.total_enqueued += 1;
        true
    }

    pub fn pop(&mut self) -> Option<Packet> {
        let p = self.packets.pop_front()?;
        self.bytes -= p.size_bytes;
        Some(p)
    }

    pub fn len(&self) -> usize {
        self.packets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> Packet {
        Packet { flow: 0, seq, size_bytes: MTU_BYTES, sent_at: 0, delivered_at_send: 0, ecn: false }
    }

    #[test]
    fn serialization_time_scales() {
        let p = LinkParams::new(12.0, 20.0, 0.0);
        // 1500 B = 12 000 bits at 12 Mbit/s = 1 ms
        assert_eq!(p.serialization_time(1500), MS);
        let p2 = LinkParams::new(24.0, 20.0, 0.0);
        assert_eq!(p2.serialization_time(1500), MS / 2);
    }

    #[test]
    fn bdp_computation() {
        let p = LinkParams::new(12.0, 20.0, 0.0);
        // 12 Mbit/s × 40 ms RTT = 480 kbit = 60 kB
        assert!((p.bdp_bytes() - 60_000.0).abs() < 1e-6);
    }

    #[test]
    fn queue_drop_tail() {
        let mut q = Queue::new(3 * MTU_BYTES);
        assert!(q.push(pkt(1)));
        assert!(q.push(pkt(2)));
        assert!(q.push(pkt(3)));
        assert!(!q.push(pkt(4)), "fourth packet must overflow");
        assert_eq!(q.total_dropped_overflow, 1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().seq, 1, "FIFO order");
        assert!(q.push(pkt(4)), "space after a pop");
    }

    #[test]
    fn queue_byte_accounting() {
        let mut q = Queue::new(10 * MTU_BYTES);
        q.push(pkt(1));
        q.push(pkt(2));
        assert_eq!(q.bytes(), 2 * MTU_BYTES);
        q.pop();
        assert_eq!(q.bytes(), MTU_BYTES);
    }

    #[test]
    #[should_panic(expected = "loss outside")]
    fn params_validated() {
        LinkParams::new(10.0, 10.0, 1.5);
    }

    #[test]
    fn try_new_rejects_bad_values() {
        assert!(LinkParams::try_new(12.0, 20.0, 0.0).is_ok());
        assert!(LinkParams::try_new(0.0, 20.0, 0.0).is_err(), "zero bandwidth");
        assert!(LinkParams::try_new(-3.0, 20.0, 0.0).is_err(), "negative bandwidth");
        assert!(LinkParams::try_new(f64::NAN, 20.0, 0.0).is_err(), "NaN bandwidth");
        assert!(LinkParams::try_new(f64::INFINITY, 20.0, 0.0).is_err(), "infinite bandwidth");
        assert!(LinkParams::try_new(12.0, -1.0, 0.0).is_err(), "negative latency");
        assert!(LinkParams::try_new(12.0, f64::INFINITY, 0.0).is_err(), "infinite latency");
        assert!(LinkParams::try_new(12.0, 20.0, 1.5).is_err(), "loss > 1");
        assert!(LinkParams::try_new(12.0, 20.0, f64::NAN).is_err(), "NaN loss");
        let err = LinkParams::try_new(12.0, 20.0, 2.0).unwrap_err();
        assert!(err.contains("loss outside"), "{err}");
    }

    #[test]
    fn typed_bandwidth_matches_raw_field() {
        let p = LinkParams::new(17.5, 20.0, 0.0);
        assert_eq!(p.bandwidth().bps(), 17.5 * 1e6);
    }
}
