//! A deterministic, event-driven, packet-level link emulator — the
//! workspace's substitute for the paper's modified Mahimahi.
//!
//! The paper's congestion-control experiments run BBR through Mahimahi with
//! an adversary adjusting (bandwidth, latency, loss) every 30 ms. Mahimahi
//! is a Linux network-namespace tool we cannot (and should not) depend on;
//! this crate reimplements the relevant piece — and extends it to N flows
//! contending for one bottleneck, which the single-sender paper setup
//! cannot express (fairness attacks, AQM/ECN regimes, adversarial cross
//! traffic).
//!
//! The authors note their Mahimahi traces "are not usually identical when
//! played multiple times"; this simulator is seeded and fully
//! deterministic, which makes adversarial traces *exactly* replayable — a
//! strict improvement for the paper's reproducibility goal.
//!
//! Architecture (per the networking guides: event-driven state machine, no
//! async, integer timestamps):
//!
//! * [`Time`] — integer nanoseconds; [`units`] adds the typed
//!   [`Bytes`]/[`Nanosecs`]/[`BitsPerSec`] newtypes used at the
//!   [`CongestionControl`] boundary.
//! * [`LinkParams`] — the adversary-controlled knobs.
//! * [`CongestionControl`] — the protocol interface (`cc` crate implements
//!   BBR/Cubic/Copa/Vivace/Reno against it).
//! * [`MultiFlowSim`] — the multi-flow engine: per-flow senders, a shared
//!   bottleneck with a pluggable [`QDisc`] (drop-tail, RED, DCTCP-style
//!   ECN), deterministic `(time, flow, seq)` event ordering.
//! * [`FlowSim`] — the legacy single-flow API, a thin wrapper over a
//!   1-flow [`MultiFlowSim`], bit-identical to the pre-rewrite engine
//!   (kept verbatim in [`mod@reference`] as the equivalence oracle).

pub mod event;
pub mod link;
pub mod multi;
pub mod qdisc;
#[doc(hidden)]
pub mod reference;
pub mod sim;
pub mod units;

pub use link::LinkParams;
pub use multi::{jain_index, MultiFlowSim, RateHandle, SharedRateCc};
pub use qdisc::{DctcpEcn, DropTail, QDisc, QdiscKind, Red, Verdict};
pub use sim::{AckEvent, CongestionControl, FixedRateCc, FlowSim, IntervalStats, SimConfig};
pub use units::{BitsPerSec, Bytes, Nanosecs};

/// Simulation timestamps in integer nanoseconds (wrap-free for > 500 years).
pub type Time = u64;

/// One microsecond in [`Time`] units.
pub const US: Time = 1_000;
/// One millisecond in [`Time`] units.
pub const MS: Time = 1_000_000;
/// One second in [`Time`] units.
pub const SEC: Time = 1_000_000_000;

/// Convert [`Time`] to floating-point seconds.
#[inline]
pub fn to_secs(t: Time) -> f64 {
    t as f64 / SEC as f64
}

/// Convert floating-point seconds to [`Time`].
#[inline]
pub fn from_secs(s: f64) -> Time {
    (s * SEC as f64).round() as Time
}

/// Maximum transmission unit used by the simulator (bytes).
pub const MTU_BYTES: usize = 1500;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(from_secs(1.5), 1_500_000_000);
        assert!((to_secs(30 * MS) - 0.030).abs() < 1e-12);
        assert_eq!(from_secs(to_secs(123_456_789)), 123_456_789);
    }
}
