//! Typed simulation units: [`Bytes`], [`Nanosecs`] and [`BitsPerSec`].
//!
//! The original simulator let raw `f64` seconds and bit-rates leak through
//! the `CongestionControl` trait into `cc` and `adversary`, where a
//! milliseconds value passed as seconds (or Mbit/s as bit/s) compiles
//! silently. These newtypes make the unit part of the type:
//!
//! * [`Bytes`] — a byte count (`u64`) with **checked** arithmetic: `+`/`-`
//!   panic on wrap instead of producing a silently huge inflight counter.
//! * [`Nanosecs`] — a duration or timestamp in integer nanoseconds,
//!   interchangeable with the crate's [`Time`] alias but not
//!   with bare integers; also checked.
//! * [`BitsPerSec`] — a rate, validated finite and non-negative at
//!   construction so a NaN pacing rate fails at the boundary rather than
//!   propagating through pacing-gap arithmetic.
//!
//! Conversion formulas are bit-for-bit identical to the `f64` expressions
//! the legacy engine used (same operation order), so moving a code path
//! onto typed units never perturbs a trajectory — the single-flow
//! equivalence suite relies on this.

use crate::{to_secs, Time, SEC};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A byte count with checked arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    #[inline]
    pub const fn new(n: u64) -> Bytes {
        Bytes(n)
    }

    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    #[inline]
    pub fn checked_add(self, rhs: Bytes) -> Option<Bytes> {
        self.0.checked_add(rhs.0).map(Bytes)
    }

    #[inline]
    pub fn checked_sub(self, rhs: Bytes) -> Option<Bytes> {
        self.0.checked_sub(rhs.0).map(Bytes)
    }

    #[inline]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        self.checked_add(rhs).expect("byte count overflow")
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        self.checked_sub(rhs).expect("byte count underflow")
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.0)
    }
}

/// A timestamp or duration in integer nanoseconds, with checked arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanosecs(Time);

impl Nanosecs {
    pub const ZERO: Nanosecs = Nanosecs(0);

    #[inline]
    pub const fn new(ns: Time) -> Nanosecs {
        Nanosecs(ns)
    }

    #[inline]
    pub const fn get(self) -> Time {
        self.0
    }

    /// Same rounding as [`crate::from_secs`].
    #[inline]
    pub fn from_secs_f64(s: f64) -> Nanosecs {
        Nanosecs((s * SEC as f64).round() as Time)
    }

    /// Same division as [`crate::to_secs`].
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        to_secs(self.0)
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub fn checked_add(self, rhs: Nanosecs) -> Option<Nanosecs> {
        self.0.checked_add(rhs.0).map(Nanosecs)
    }

    #[inline]
    pub fn checked_sub(self, rhs: Nanosecs) -> Option<Nanosecs> {
        self.0.checked_sub(rhs.0).map(Nanosecs)
    }

    #[inline]
    pub fn saturating_sub(self, rhs: Nanosecs) -> Nanosecs {
        Nanosecs(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Nanosecs {
    type Output = Nanosecs;
    #[inline]
    fn add(self, rhs: Nanosecs) -> Nanosecs {
        self.checked_add(rhs).expect("time overflow")
    }
}

impl AddAssign for Nanosecs {
    #[inline]
    fn add_assign(&mut self, rhs: Nanosecs) {
        *self = *self + rhs;
    }
}

impl Sub for Nanosecs {
    type Output = Nanosecs;
    #[inline]
    fn sub(self, rhs: Nanosecs) -> Nanosecs {
        self.checked_sub(rhs).expect("time underflow")
    }
}

impl fmt::Display for Nanosecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

/// A bit-rate, validated finite and non-negative at construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BitsPerSec(f64);

impl BitsPerSec {
    pub const ZERO: BitsPerSec = BitsPerSec(0.0);

    #[inline]
    pub fn from_bps(bps: f64) -> BitsPerSec {
        assert!(bps.is_finite() && bps >= 0.0, "rate must be finite and non-negative: {bps}");
        BitsPerSec(bps)
    }

    #[inline]
    pub fn from_mbps(mbps: f64) -> BitsPerSec {
        BitsPerSec::from_bps(mbps * 1e6)
    }

    #[inline]
    pub fn bps(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Time to put `bytes` on the wire at this rate — the same expression
    /// (and therefore the same `f64` rounding) as the legacy serialization
    /// and pacing-gap computations.
    #[inline]
    pub fn time_to_send(self, bytes: Bytes) -> Nanosecs {
        Nanosecs(((bytes.get() as f64 * 8.0 / self.0) * SEC as f64).round() as Time)
    }
}

impl fmt::Display for BitsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} Mbit/s", self.mbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MS;

    #[test]
    fn bytes_checked_arithmetic() {
        let a = Bytes::new(1500);
        assert_eq!((a + Bytes::new(500)).get(), 2000);
        assert_eq!((a - Bytes::new(1500)), Bytes::ZERO);
        assert_eq!(Bytes::new(3).saturating_sub(Bytes::new(10)), Bytes::ZERO);
        assert!(Bytes::new(u64::MAX).checked_add(Bytes::new(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "byte count underflow")]
    fn bytes_underflow_panics() {
        let _ = Bytes::new(1) - Bytes::new(2);
    }

    #[test]
    fn nanosecs_second_conversions_match_free_functions() {
        let t = Nanosecs::from_secs_f64(1.5);
        assert_eq!(t.get(), crate::from_secs(1.5));
        assert_eq!(t.as_secs_f64().to_bits(), crate::to_secs(t.get()).to_bits());
        assert_eq!(Nanosecs::new(30 * MS).as_millis_f64(), 30.0);
    }

    #[test]
    #[should_panic(expected = "time overflow")]
    fn nanosecs_overflow_panics() {
        let _ = Nanosecs::new(u64::MAX) + Nanosecs::new(1);
    }

    #[test]
    fn rate_construction_and_conversions() {
        let r = BitsPerSec::from_mbps(12.0);
        assert_eq!(r.bps(), 12e6);
        assert_eq!(r.mbps(), 12.0);
        // 1500 B at 12 Mbit/s = exactly 1 ms, same as LinkParams
        assert_eq!(r.time_to_send(Bytes::new(1500)).get(), MS);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rate_rejected() {
        let _ = BitsPerSec::from_bps(f64::NAN);
    }

    #[test]
    fn time_to_send_matches_legacy_pacing_gap_expression() {
        // the legacy pacer computed
        //   (size as f64 * 8.0 / pacing * SEC as f64).round() as Time
        // bit-identical operation order is the contract here
        for (size, pacing) in [(1500_u64, 997_331.7_f64), (64, 1e3), (9000, 23.7e6)] {
            let legacy = (size as f64 * 8.0 / pacing * SEC as f64).round() as Time;
            let typed = BitsPerSec::from_bps(pacing).time_to_send(Bytes::new(size)).get();
            assert_eq!(legacy, typed, "size {size} pacing {pacing}");
        }
    }
}
