//! Property tests for the multi-flow engine's determinism contracts.
//!
//! * N-flow runs are invariant under flow *registration order*: the engine
//!   keys every per-flow decision (event ordering, RNG streams) off the
//!   flow key, never off insertion history.
//! * The legacy single-flow wrapper ([`FlowSim`]) is bit-identical to the
//!   pre-rewrite reference engine kept in `netsim::reference` — here with
//!   the fixed-rate sender; `crates/cc/tests/single_flow_equivalence.rs`
//!   covers the real protocols.

use netsim::reference::RefFlowSim;
use netsim::{
    FixedRateCc, FlowSim, IntervalStats, LinkParams, MultiFlowSim, QdiscKind, SimConfig, MS,
};
use proptest::prelude::*;

/// Bit-exact signature of one interval (floats as bits).
fn sig(s: &IntervalStats) -> Vec<u64> {
    vec![
        s.duration_s.to_bits(),
        s.delivered_bytes,
        s.capacity_bytes.to_bits(),
        s.utilization.to_bits(),
        s.throughput_mbps.to_bits(),
        s.avg_rtt_ms.to_bits(),
        s.avg_queue_delay_ms.to_bits(),
        s.packets_sent,
        s.packets_delivered,
        s.packets_lost_random,
        s.packets_lost_overflow,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Register the same flows in forward and (rotated) shuffled order:
    /// every per-flow trajectory must match bit for bit, under every
    /// queueing discipline.
    #[test]
    fn flow_registration_order_is_irrelevant(
        seed in 0_u64..10_000,
        rot in 0_usize..4,
        rates in proptest::collection::vec(2.0_f64..14.0, 2..5),
        qdisc_i in 0_usize..3,
    ) {
        let qdisc = QdiscKind::ALL[qdisc_i];
        let params = LinkParams::new(16.0, 25.0, 0.01);
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let run = |order: Vec<usize>| {
            let mut sim = MultiFlowSim::with_qdisc(params, cfg.clone(), qdisc.build());
            for &i in &order {
                sim.add_flow(
                    i as u64,
                    Box::new(FixedRateCc { rate_bps: rates[i] * 1e6, cwnd: 64.0 }),
                );
            }
            let mut sigs = Vec::new();
            for _ in 0..10 {
                let stats = sim.run_for(30 * MS);
                for (key, s) in &stats {
                    sigs.push((*key, sig(s)));
                }
            }
            sigs.push((u64::MAX, vec![sim.queue_bytes() as u64, sim.total_events()]));
            sigs
        };
        let n = rates.len();
        let forward: Vec<usize> = (0..n).collect();
        let rotated: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        prop_assert_eq!(run(forward), run(rotated));
    }

    /// A 1-flow instance of the new engine (via the [`FlowSim`] wrapper)
    /// reproduces the legacy engine bit for bit with the fixed-rate sender
    /// over adversarially varying links.
    #[test]
    fn single_flow_wrapper_matches_reference(
        seed in 0_u64..10_000,
        rate_mbps in 1.0_f64..30.0,
        cwnd in 4.0_f64..256.0,
        segs in proptest::collection::vec(
            (6.0_f64..24.0, 15.0_f64..60.0, 0.0_f64..0.08), 2..8),
    ) {
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let start = LinkParams::new(12.0, 30.0, 0.0);
        let mut new_sim = FlowSim::new(
            Box::new(FixedRateCc { rate_bps: rate_mbps * 1e6, cwnd }),
            start,
            cfg.clone(),
        );
        let mut ref_sim = RefFlowSim::new(
            Box::new(FixedRateCc { rate_bps: rate_mbps * 1e6, cwnd }),
            start,
            cfg,
        );
        for &(bw, lat, loss) in segs.iter() {
            let p = LinkParams::new(bw, lat, loss);
            new_sim.set_link(p);
            ref_sim.set_link(p);
            for _ in 0..5 {
                let a = new_sim.run_for(30 * MS);
                let b = ref_sim.run_for(30 * MS);
                prop_assert_eq!(sig(&a), sig(&b));
                prop_assert_eq!(new_sim.srtt_s().to_bits(), ref_sim.srtt_s().to_bits());
                prop_assert_eq!(new_sim.now(), ref_sim.now());
                prop_assert_eq!(new_sim.inflight_bytes(), ref_sim.inflight_bytes());
                prop_assert_eq!(new_sim.queue_bytes(), ref_sim.queue_bytes());
            }
        }
    }
}
