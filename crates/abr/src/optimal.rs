//! Offline-optimal QoE via dynamic programming.
//!
//! Two uses, both from the paper:
//!
//! * [`windowed_optimal_qoe`] — "the highest possible QoE over the last 4
//!   network changes": the exact optimum over a short horizon, used as
//!   `r_opt` in the adversary's reward (Eq. 1). Exhaustive search, exact.
//! * [`optimal_qoe_dp`] — the full-trace "Offline Optimum" plotted in
//!   Fig. 3, computed by DP over (chunk, discretized buffer, last quality).
//!
//! Both take the per-chunk bandwidth view: `bw[i]` is the bandwidth in
//! effect while chunk `i` downloads. For the adversary's traces this is
//! exact (the adversary sets one bandwidth per chunk); for dataset traces
//! [`chunk_bandwidths_from_trace`] produces the approximation.

use crate::player::BUFFER_CAP_S;
use crate::qoe::{qoe_chunk, QoeParams};
use crate::video::Video;

/// Buffer quantum for the full-trace DP (seconds).
const DP_BUFFER_STEP: f64 = 0.2;

/// Simulate fetching chunk `i` at quality `q` with `buffer` seconds
/// buffered; returns `(chunk QoE, new buffer)`.
#[allow(clippy::too_many_arguments)]
fn chunk_transition(
    video: &Video,
    qoe: &QoeParams,
    chunk: usize,
    q: usize,
    prev_q: Option<usize>,
    buffer: f64,
    bw_mbps: f64,
    latency_s: f64,
) -> (f64, f64) {
    let dl = latency_s + video.size_bytes(chunk, q) * 8.0 / (bw_mbps.max(1e-9) * 1e6);
    let rebuf = (dl - buffer).max(0.0);
    let new_buffer = ((buffer - dl).max(0.0) + video.chunk_seconds()).min(BUFFER_CAP_S);
    let r = video.bitrate_mbps(q);
    let prev = prev_q.map(|p| video.bitrate_mbps(p));
    (qoe_chunk(qoe, r, prev, rebuf), new_buffer)
}

/// Exact optimal total QoE for chunks `start..start + bw.len()` given the
/// starting buffer and previous quality, by exhaustive search (the horizon
/// is small — the paper uses 4).
///
/// Returns the maximum achievable *total* QoE over the window.
#[allow(clippy::too_many_arguments)]
pub fn windowed_optimal_qoe(
    video: &Video,
    qoe: &QoeParams,
    start_chunk: usize,
    bw_per_chunk: &[f64],
    latency_s: f64,
    start_buffer_s: f64,
    prev_quality: Option<usize>,
) -> f64 {
    assert!(start_chunk + bw_per_chunk.len() <= video.n_chunks(), "window exceeds video");
    fn recurse(
        video: &Video,
        qoe: &QoeParams,
        chunk: usize,
        bw: &[f64],
        latency_s: f64,
        buffer: f64,
        prev_q: Option<usize>,
    ) -> f64 {
        if bw.is_empty() {
            return 0.0;
        }
        let mut best = f64::NEG_INFINITY;
        for q in 0..video.n_qualities() {
            let (chunk_qoe, new_buffer) =
                chunk_transition(video, qoe, chunk, q, prev_q, buffer, bw[0], latency_s);
            let rest = recurse(video, qoe, chunk + 1, &bw[1..], latency_s, new_buffer, Some(q));
            best = best.max(chunk_qoe + rest);
        }
        best
    }
    recurse(video, qoe, start_chunk, bw_per_chunk, latency_s, start_buffer_s, prev_quality)
}

/// Full-trace offline optimum: the best total QoE and the quality schedule
/// achieving it, by backward DP over (chunk, buffer bucket, last quality).
///
/// `bw_per_chunk.len()` must equal `video.n_chunks()`. The buffer is
/// discretized to `DP_BUFFER_STEP`-second buckets (floor — pessimistic, so
/// the returned value is a lower bound that is tight in practice).
pub fn optimal_qoe_dp(
    video: &Video,
    qoe: &QoeParams,
    bw_per_chunk: &[f64],
    latency_s: f64,
) -> (f64, Vec<usize>) {
    let n = video.n_chunks();
    assert_eq!(bw_per_chunk.len(), n, "need one bandwidth per chunk");
    let n_q = video.n_qualities();
    let n_buf = (BUFFER_CAP_S / DP_BUFFER_STEP) as usize + 1;
    let bucket = |b: f64| -> usize { ((b / DP_BUFFER_STEP) as usize).min(n_buf - 1) };
    // prev-quality axis: 0 = none, 1..=n_q = quality q−1
    let n_prev = n_q + 1;
    let idx = |buf: usize, prev: usize| buf * n_prev + prev;

    // value[s] = best QoE from chunk i to the end given state s at chunk i
    let mut value = vec![0.0_f64; n_buf * n_prev];
    let mut choice = vec![vec![0_u8; n_buf * n_prev]; n];
    for i in (0..n).rev() {
        let mut next_value = vec![f64::NEG_INFINITY; n_buf * n_prev];
        for buf_b in 0..n_buf {
            let buffer = buf_b as f64 * DP_BUFFER_STEP;
            for prev in 0..n_prev {
                let prev_q = if prev == 0 { None } else { Some(prev - 1) };
                let mut best = f64::NEG_INFINITY;
                let mut best_q = 0u8;
                for q in 0..n_q {
                    let (chunk_qoe, new_buffer) = chunk_transition(
                        video,
                        qoe,
                        i,
                        q,
                        prev_q,
                        buffer,
                        bw_per_chunk[i],
                        latency_s,
                    );
                    let future = value[idx(bucket(new_buffer), q + 1)];
                    let total = chunk_qoe + future;
                    if total > best {
                        best = total;
                        best_q = q as u8;
                    }
                }
                next_value[idx(buf_b, prev)] = best;
                choice[i][idx(buf_b, prev)] = best_q;
            }
        }
        value = next_value;
    }

    // forward pass to extract the schedule (using exact buffer dynamics)
    let mut schedule = Vec::with_capacity(n);
    let mut buffer = 0.0;
    let mut prev = 0usize;
    let mut total = 0.0;
    for i in 0..n {
        let q = choice[i][idx(bucket(buffer), prev)] as usize;
        let prev_q = if prev == 0 { None } else { Some(prev - 1) };
        let (chunk_qoe, nb) =
            chunk_transition(video, qoe, i, q, prev_q, buffer, bw_per_chunk[i], latency_s);
        total += chunk_qoe;
        buffer = nb;
        prev = q + 1;
        schedule.push(q);
    }
    (total, schedule)
}

/// Approximate the per-chunk bandwidth a dataset trace offers: walk the
/// trace in playback-paced time (each chunk slot spans `chunk_seconds`)
/// and average the bandwidth over each slot.
pub fn chunk_bandwidths_from_trace(trace: &traces::Trace, video: &Video) -> Vec<f64> {
    let dt = video.chunk_seconds();
    (0..video.n_chunks())
        .map(|i| {
            // average over 8 samples inside the slot
            let t0 = i as f64 * dt;
            let samples = 8;
            (0..samples)
                .map(|k| trace.bandwidth_at(t0 + (k as f64 + 0.5) / samples as f64 * dt))
                .sum::<f64>()
                / samples as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::player::{FixedConditions, Player};
    use crate::protocols::{AbrPolicy, BufferBased};

    #[test]
    fn windowed_optimum_beats_any_fixed_choice() {
        let video = Video::cbr();
        let qoe = QoeParams::default();
        let bw = [2.0, 0.9, 3.0, 1.5];
        let opt = windowed_optimal_qoe(&video, &qoe, 0, &bw, 0.04, 5.0, Some(2));
        for q in 0..video.n_qualities() {
            // greedy constant-quality rollout
            let mut buffer = 5.0;
            let mut prev = Some(2);
            let mut total = 0.0;
            for (k, &b) in bw.iter().enumerate() {
                let (cq, nb) = chunk_transition(&video, &qoe, k, q, prev, buffer, b, 0.04);
                total += cq;
                buffer = nb;
                prev = Some(q);
            }
            assert!(opt >= total - 1e-9, "optimum {opt} beaten by constant quality {q}: {total}");
        }
    }

    #[test]
    fn windowed_optimum_positive_on_decent_network() {
        let video = Video::cbr();
        let qoe = QoeParams::default();
        let opt = windowed_optimal_qoe(&video, &qoe, 0, &[2.0; 4], 0.04, 4.0, None);
        assert!(opt > 4.0, "4 chunks at 2 Mbit/s should yield QoE > 4, got {opt}");
    }

    #[test]
    fn full_dp_beats_bb() {
        let video = Video::cbr();
        let qoe = QoeParams::default();
        let bw: Vec<f64> = (0..48).map(|i| if i % 7 < 4 { 3.0 } else { 1.0 }).collect();
        let (opt, schedule) = optimal_qoe_dp(&video, &qoe, &bw, 0.04);
        assert_eq!(schedule.len(), 48);

        // BB on the same per-chunk bandwidths
        let mut bb = BufferBased::pensieve_defaults();
        let mut player = Player::new(&video, qoe.clone());
        let mut total_bb = 0.0;
        let mut i = 0;
        while !player.finished() {
            let mut net = FixedConditions::new(bw[i], 40.0);
            let obs = player.observation(&net);
            let q = bb.select(&obs);
            total_bb += player.step(q, &mut net).qoe;
            i += 1;
        }
        assert!(opt > total_bb, "offline optimum ({opt}) must beat BB ({total_bb})");
    }

    #[test]
    fn dp_schedule_achieves_reported_value() {
        let video = Video::cbr();
        let qoe = QoeParams::default();
        let bw = vec![2.5; 48];
        let (opt, schedule) = optimal_qoe_dp(&video, &qoe, &bw, 0.04);
        // replay the schedule exactly
        let mut buffer = 0.0;
        let mut prev: Option<usize> = None;
        let mut total = 0.0;
        for (i, &q) in schedule.iter().enumerate() {
            let (cq, nb) = chunk_transition(&video, &qoe, i, q, prev, buffer, bw[i], 0.04);
            total += cq;
            buffer = nb;
            prev = Some(q);
        }
        assert!((total - opt).abs() < 1e-9, "schedule value {total} != reported {opt}");
    }

    #[test]
    fn dp_on_constant_fat_pipe_streams_top_quality() {
        let video = Video::cbr();
        let qoe = QoeParams::default();
        let (_, schedule) = optimal_qoe_dp(&video, &qoe, &vec![20.0; 48], 0.01);
        // after warmup the optimum must stream at the top bitrate
        assert!(schedule[8..].iter().all(|&q| q == 5), "{schedule:?}");
    }

    #[test]
    fn chunk_bandwidths_sample_trace() {
        use traces::{Segment, Trace};
        let video = Video::cbr();
        let t = Trace::new("t", vec![Segment::bw(96.0, 1.0, 40.0), Segment::bw(96.0, 3.0, 40.0)]);
        let bws = chunk_bandwidths_from_trace(&t, &video);
        assert_eq!(bws.len(), 48);
        assert!((bws[0] - 1.0).abs() < 1e-9);
        assert!((bws[30] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_matches_dp_on_short_video() {
        // a 4-chunk video: windowed exhaustive and full DP must agree
        let bitrates = vec![300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0];
        let sizes: Vec<Vec<f64>> =
            (0..4).map(|_| bitrates.iter().map(|b| b * 1000.0 / 8.0 * 4.0).collect()).collect();
        let video = Video::new(bitrates, sizes, 4.0);
        let qoe = QoeParams::default();
        let bw = [1.2, 2.0, 0.9, 3.5];
        let exhaustive = windowed_optimal_qoe(&video, &qoe, 0, &bw, 0.04, 0.0, None);
        let (dp, _) = optimal_qoe_dp(&video, &qoe, &bw, 0.04);
        // DP discretizes the buffer, so allow a small pessimism gap
        assert!((exhaustive - dp).abs() < 0.3, "exhaustive {exhaustive} vs dp {dp}");
        assert!(dp <= exhaustive + 1e-9, "dp must not exceed the exact optimum");
    }
}
