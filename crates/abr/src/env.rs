//! The RL environment used to *train* Pensieve over a trace corpus.
//!
//! Each episode streams one full video over a trace sampled uniformly from
//! the corpus (with a random start offset, as the Pensieve simulator does);
//! each step downloads one chunk at the chosen quality and is rewarded with
//! the chunk's linear QoE. This is stage (1) of the paper's §2.3 pipeline;
//! stage (4) re-runs it with adversarial traces mixed into the corpus.

use crate::player::{Player, TraceNetwork};
use crate::protocols::pensieve::{pensieve_features, PENSIEVE_OBS_DIM};
use crate::qoe::QoeParams;
use crate::video::Video;
use rand::rngs::StdRng;
use rand::Rng;
use rl::{Action, ActionSpace, Env, Snapshot, Step};
use serde::{Deserialize, Serialize, Value};
use traces::Trace;

/// Pensieve training environment over a corpus of traces. `Clone` yields
/// an independent session over the same corpus, so training can fan the
/// env out across parallel rollout workers.
#[derive(Debug, Clone)]
pub struct AbrTrainEnv {
    corpus: Vec<Trace>,
    video: Video,
    qoe: QoeParams,
    /// Scale factor applied to chunk QoE rewards (QoE per chunk is already
    /// O(1), so the default is 1.0).
    pub reward_scale: f64,
    player: Option<Player>,
    net: Option<TraceNetwork>,
    /// Episode replay log for [`Snapshot`]: which trace/offset the current
    /// episode started on, and the quality index of every step so far. The
    /// simulator is deterministic, so (trace, offset, actions) reconstructs
    /// the player and network exactly.
    ep: EpisodeLog,
}

/// Mid-episode position, serialized into training checkpoints.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct EpisodeLog {
    started: bool,
    trace_idx: usize,
    offset: f64,
    qualities: Vec<usize>,
}

impl AbrTrainEnv {
    /// Panics on an empty corpus.
    pub fn new(corpus: Vec<Trace>, video: Video, qoe: QoeParams) -> Self {
        assert!(!corpus.is_empty(), "training corpus must not be empty");
        for t in &corpus {
            t.validate();
        }
        AbrTrainEnv {
            corpus,
            video,
            qoe,
            reward_scale: 1.0,
            player: None,
            net: None,
            ep: EpisodeLog::default(),
        }
    }

    /// Replace the corpus (used by the adversarial-training pipeline when
    /// it injects adversarial traces mid-run).
    pub fn set_corpus(&mut self, corpus: Vec<Trace>) {
        assert!(!corpus.is_empty(), "training corpus must not be empty");
        self.corpus = corpus;
    }

    /// Current corpus (read-only).
    pub fn corpus(&self) -> &[Trace] {
        &self.corpus
    }

    pub fn video(&self) -> &Video {
        &self.video
    }

    fn observation(&self) -> Vec<f64> {
        let player = self.player.as_ref().expect("reset() before observation");
        let net = self.net.as_ref().expect("reset() before observation");
        pensieve_features(&player.observation(net))
    }
}

impl Env for AbrTrainEnv {
    fn obs_dim(&self) -> usize {
        PENSIEVE_OBS_DIM
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete { n: self.video.n_qualities() }
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        let trace_idx = rng.gen_range(0..self.corpus.len());
        let trace = &self.corpus[trace_idx];
        let offset = rng.gen_range(0.0..trace.duration_s());
        self.ep = EpisodeLog { started: true, trace_idx, offset, qualities: Vec::new() };
        self.net = Some(TraceNetwork::starting_at(trace, offset));
        self.player = Some(Player::new(&self.video, self.qoe.clone()));
        self.observation()
    }

    fn step(&mut self, action: &Action, _rng: &mut StdRng) -> Step {
        let player = self.player.as_mut().expect("reset() before step");
        let net = self.net.as_mut().expect("reset() before step");
        let quality = action.index().min(self.video.n_qualities() - 1);
        self.ep.qualities.push(quality);
        let outcome = player.step(quality, net);
        let done = player.finished();
        let obs = {
            let player = self.player.as_ref().unwrap();
            let net = self.net.as_ref().unwrap();
            pensieve_features(&player.observation(net))
        };
        Step { obs, reward: outcome.qoe * self.reward_scale, done }
    }
}

impl Snapshot for AbrTrainEnv {
    /// The episode log alone pins the full simulator state: the player and
    /// network are deterministic functions of (trace, offset, actions).
    fn snapshot(&self) -> Value {
        self.ep.to_value()
    }

    /// Rebuild the mid-episode player/network by replaying the recorded
    /// quality decisions against the recorded trace position.
    fn restore(&mut self, v: &Value) -> Result<(), serde::Error> {
        let ep = EpisodeLog::from_value(v)?;
        if !ep.started {
            self.player = None;
            self.net = None;
            self.ep = ep;
            return Ok(());
        }
        if ep.trace_idx >= self.corpus.len() {
            return Err(serde::Error::custom(format!(
                "snapshot trace index {} out of range for corpus of {} traces",
                ep.trace_idx,
                self.corpus.len()
            )));
        }
        let mut net = TraceNetwork::starting_at(&self.corpus[ep.trace_idx], ep.offset);
        let mut player = Player::new(&self.video, self.qoe.clone());
        for &q in &ep.qualities {
            player.step(q, &mut net);
        }
        self.net = Some(net);
        self.player = Some(player);
        self.ep = ep;
        Ok(())
    }
}

/// Train a Pensieve policy on `corpus` for `steps` environment steps;
/// returns the protocol wrapper plus the trainer (so training can be
/// *continued*, as the §2.3 pipeline requires).
pub fn train_pensieve(
    corpus: Vec<Trace>,
    video: Video,
    qoe: QoeParams,
    steps: usize,
    cfg: rl::PpoConfig,
) -> (crate::protocols::Pensieve, rl::Ppo, AbrTrainEnv) {
    let mut env = AbrTrainEnv::new(corpus, video, qoe);
    let mut ppo = rl::Ppo::new_categorical(PENSIEVE_OBS_DIM, 6, &[64, 32], cfg);
    ppo.train(&mut env, steps);
    let pensieve = crate::protocols::Pensieve::new(ppo.policy.clone(), ppo.obs_norm.clone());
    (pensieve, ppo, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traces::{Segment, Trace};

    fn tiny_corpus() -> Vec<Trace> {
        vec![
            Trace::new("a", vec![Segment::bw(300.0, 2.0, 40.0)]),
            Trace::new("b", vec![Segment::bw(300.0, 1.0, 40.0)]),
        ]
    }

    #[test]
    fn episode_lasts_one_video() {
        let mut env = AbrTrainEnv::new(tiny_corpus(), Video::cbr(), QoeParams::default());
        let mut rng = StdRng::seed_from_u64(0);
        let obs = env.reset(&mut rng);
        assert_eq!(obs.len(), PENSIEVE_OBS_DIM);
        let mut steps = 0;
        loop {
            let s = env.step(&Action::Discrete(1), &mut rng);
            steps += 1;
            if s.done {
                break;
            }
            assert!(steps < 100, "episode did not terminate");
        }
        assert_eq!(steps, 48);
    }

    #[test]
    fn rewards_are_chunk_qoe() {
        let mut env = AbrTrainEnv::new(
            vec![Trace::new("c", vec![Segment::bw(300.0, 10.0, 0.0)])],
            Video::cbr(),
            QoeParams::default(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        env.reset(&mut rng);
        env.step(&Action::Discrete(2), &mut rng);
        let s = env.step(&Action::Discrete(2), &mut rng);
        // steady 1.2 Mbit/s on a fat pipe: QoE = bitrate, no penalties
        assert!((s.reward - 1.2).abs() < 0.05, "reward {}", s.reward);
    }

    #[test]
    fn short_training_improves_reward() {
        let corpus: Vec<Trace> =
            (0..8).map(|i| traces::random_abr_trace(i, 80, 4.0, 40.0)).collect();
        let cfg = rl::PpoConfig {
            n_steps: 480,
            minibatch_size: 96,
            epochs: 4,
            lr: 1e-3,
            seed: 7,
            ..rl::PpoConfig::default()
        };
        let mut env = AbrTrainEnv::new(corpus, Video::cbr(), QoeParams::default());
        let mut ppo = rl::Ppo::new_categorical(PENSIEVE_OBS_DIM, 6, &[32, 16], cfg);
        let reports = ppo.train(&mut env, 12_000);
        let early = reports[0].mean_step_reward;
        let late = reports.last().unwrap().mean_step_reward;
        assert!(late > early, "training should improve QoE: {early} -> {late}");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_corpus_rejected() {
        AbrTrainEnv::new(vec![], Video::cbr(), QoeParams::default());
    }

    #[test]
    fn snapshot_restore_resumes_mid_episode_exactly() {
        let mut env = AbrTrainEnv::new(tiny_corpus(), Video::cbr(), QoeParams::default());
        let mut rng = StdRng::seed_from_u64(9);
        env.reset(&mut rng);
        for q in [0, 3, 1, 5, 2] {
            env.step(&Action::Discrete(q), &mut rng);
        }

        // Restore onto a pristine clone and step both in lockstep.
        let snap = env.snapshot();
        let mut twin = AbrTrainEnv::new(tiny_corpus(), Video::cbr(), QoeParams::default());
        twin.restore(&snap).unwrap();

        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        loop {
            let a = env.step(&Action::Discrete(2), &mut rng_a);
            let b = twin.step(&Action::Discrete(2), &mut rng_b);
            assert_eq!(a.obs, b.obs);
            assert_eq!(a.reward.to_bits(), b.reward.to_bits());
            assert_eq!(a.done, b.done);
            if a.done {
                break;
            }
        }
    }

    #[test]
    fn snapshot_of_unstarted_env_restores_to_unstarted() {
        let env = AbrTrainEnv::new(tiny_corpus(), Video::cbr(), QoeParams::default());
        let snap = env.snapshot();
        let mut other = AbrTrainEnv::new(tiny_corpus(), Video::cbr(), QoeParams::default());
        let mut rng = StdRng::seed_from_u64(3);
        other.reset(&mut rng);
        other.restore(&snap).unwrap();
        assert!(other.player.is_none() && other.net.is_none());
    }

    #[test]
    fn snapshot_restore_rejects_out_of_range_trace() {
        let mut env = AbrTrainEnv::new(tiny_corpus(), Video::cbr(), QoeParams::default());
        let mut rng = StdRng::seed_from_u64(9);
        env.reset(&mut rng);
        let snap = env.snapshot();
        let mut small =
            AbrTrainEnv::new(vec![tiny_corpus().remove(0)], Video::cbr(), QoeParams::default());
        // Force the recorded index out of range for the smaller corpus.
        if env.ep.trace_idx == 0 {
            small.restore(&snap).unwrap(); // index 0 still fits
        }
        let mut ep = env.ep.clone();
        ep.trace_idx = 5;
        assert!(small.restore(&ep.to_value()).is_err());
    }
}
