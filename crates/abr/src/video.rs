//! The video model: bitrate ladder and per-chunk sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The Pensieve bitrate ladder (kbit/s). The paper's QoE uses these in
/// Mbit/s as the per-chunk quality term.
pub const PENSIEVE_BITRATES_KBPS: [f64; 6] = [300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0];

/// Number of chunks and chunk duration of the Pensieve test video
/// ("EnvivoDash3": 48 four-second chunks, ~192 s).
pub const PENSIEVE_N_CHUNKS: usize = 48;
pub const CHUNK_SECONDS: f64 = 4.0;

/// A video as the ABR simulator sees it: for each chunk index and quality
/// level, the encoded size in bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Video {
    /// Bitrates in kbit/s, ascending.
    bitrates_kbps: Vec<f64>,
    /// `sizes[chunk][quality]` in bytes.
    sizes: Vec<Vec<f64>>,
    /// Chunk playback duration in seconds.
    chunk_seconds: f64,
}

impl Video {
    /// Construct from explicit sizes. Panics on inconsistent shapes or
    /// non-ascending bitrates.
    pub fn new(bitrates_kbps: Vec<f64>, sizes: Vec<Vec<f64>>, chunk_seconds: f64) -> Self {
        assert!(!bitrates_kbps.is_empty(), "need at least one bitrate");
        assert!(
            bitrates_kbps.windows(2).all(|w| w[0] < w[1]),
            "bitrates must be strictly ascending"
        );
        assert!(!sizes.is_empty(), "need at least one chunk");
        for (i, row) in sizes.iter().enumerate() {
            assert_eq!(row.len(), bitrates_kbps.len(), "chunk {i} has wrong quality count");
            assert!(row.iter().all(|&b| b > 0.0), "chunk {i} has a non-positive size");
        }
        assert!(chunk_seconds > 0.0);
        Video { bitrates_kbps, sizes, chunk_seconds }
    }

    /// A constant-bitrate video: every chunk's size is exactly
    /// `bitrate × chunk_seconds`.
    pub fn cbr() -> Self {
        let sizes = (0..PENSIEVE_N_CHUNKS)
            .map(|_| {
                PENSIEVE_BITRATES_KBPS
                    .iter()
                    .map(|kbps| kbps * 1000.0 / 8.0 * CHUNK_SECONDS)
                    .collect()
            })
            .collect();
        Video::new(PENSIEVE_BITRATES_KBPS.to_vec(), sizes, CHUNK_SECONDS)
    }

    /// A VBR video: chunk sizes jitter ±15 % around the nominal encoding
    /// rate, deterministically from `seed` — mimicking the real MPEG-DASH
    /// chunk-size variation of the Pensieve test video.
    pub fn synthetic(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51de_0000_0000_0000);
        let sizes = (0..PENSIEVE_N_CHUNKS)
            .map(|_| {
                PENSIEVE_BITRATES_KBPS
                    .iter()
                    .map(|kbps| {
                        let jitter = rng.gen_range(0.85..1.15);
                        kbps * 1000.0 / 8.0 * CHUNK_SECONDS * jitter
                    })
                    .collect()
            })
            .collect();
        Video::new(PENSIEVE_BITRATES_KBPS.to_vec(), sizes, CHUNK_SECONDS)
    }

    pub fn n_chunks(&self) -> usize {
        self.sizes.len()
    }

    pub fn n_qualities(&self) -> usize {
        self.bitrates_kbps.len()
    }

    pub fn chunk_seconds(&self) -> f64 {
        self.chunk_seconds
    }

    /// Bitrate of quality level `q` in kbit/s.
    pub fn bitrate_kbps(&self, q: usize) -> f64 {
        self.bitrates_kbps[q]
    }

    /// Bitrate of quality level `q` in Mbit/s (the QoE quality term).
    pub fn bitrate_mbps(&self, q: usize) -> f64 {
        self.bitrates_kbps[q] / 1000.0
    }

    /// Size of chunk `i` at quality `q`, in bytes.
    pub fn size_bytes(&self, chunk: usize, q: usize) -> f64 {
        self.sizes[chunk][q]
    }

    /// Sizes of chunk `i` at every quality, in bytes.
    pub fn sizes_of(&self, chunk: usize) -> &[f64] {
        &self.sizes[chunk]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_sizes_match_bitrates() {
        let v = Video::cbr();
        assert_eq!(v.n_chunks(), 48);
        assert_eq!(v.n_qualities(), 6);
        // 300 kbit/s × 4 s = 150 000 bytes
        assert!((v.size_bytes(0, 0) - 150_000.0).abs() < 1e-9);
        assert!((v.size_bytes(10, 5) - 2_150_000.0).abs() < 1e-9);
    }

    #[test]
    fn synthetic_is_deterministic_and_jittered() {
        let a = Video::synthetic(1);
        let b = Video::synthetic(1);
        let c = Video::synthetic(2);
        assert_eq!(a.size_bytes(3, 2), b.size_bytes(3, 2));
        assert_ne!(a.size_bytes(3, 2), c.size_bytes(3, 2));
        // jitter bounded by ±15 %
        for i in 0..a.n_chunks() {
            for q in 0..a.n_qualities() {
                let nominal = a.bitrate_kbps(q) * 1000.0 / 8.0 * CHUNK_SECONDS;
                let ratio = a.size_bytes(i, q) / nominal;
                assert!((0.85..=1.15).contains(&ratio), "ratio {ratio}");
            }
        }
    }

    #[test]
    fn bitrate_units() {
        let v = Video::cbr();
        assert_eq!(v.bitrate_kbps(5), 4300.0);
        assert!((v.bitrate_mbps(5) - 4.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_bitrates() {
        Video::new(vec![2.0, 1.0], vec![vec![1.0, 1.0]], 4.0);
    }

    #[test]
    #[should_panic(expected = "wrong quality count")]
    fn rejects_ragged_sizes() {
        Video::new(vec![1.0, 2.0], vec![vec![1.0]], 4.0);
    }
}
