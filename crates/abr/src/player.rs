//! The streaming client: buffer dynamics, rebuffering, and chunk accounting.
//!
//! The state-transition equations are those of the Pensieve simulator:
//!
//! ```text
//! download_time = latency + size / bandwidth          (integrated over the trace)
//! rebuffer      = max(0, download_time − buffer)
//! buffer        = max(buffer − download_time, 0) + chunk_seconds
//! if buffer > BUFFER_CAP: sleep buffer − BUFFER_CAP (network idles, trace advances)
//! ```

use crate::obs::{AbrObservation, HISTORY_LEN};
use crate::qoe::{qoe_chunk, QoeParams};
use crate::video::Video;
use serde::{Deserialize, Serialize};
use traces::TraceCursor;

/// Maximum client buffer in seconds (Pensieve's 60 s cap).
pub const BUFFER_CAP_S: f64 = 60.0;

/// The network as the player sees it: byte downloads that take time, plus
/// idle waiting.
pub trait Network {
    /// Download `bytes` starting now; returns elapsed seconds (excluding
    /// the request latency, which the caller adds via [`Network::latency_s`]).
    fn download(&mut self, bytes: f64) -> f64;
    /// One-way request latency in seconds.
    fn latency_s(&self) -> f64;
    /// Let `dt` seconds of wall-clock pass without transferring (buffer-full
    /// sleeps).
    fn advance(&mut self, dt: f64);
}

/// Replay of a recorded [`traces::Trace`].
#[derive(Debug, Clone)]
pub struct TraceNetwork {
    cursor: TraceCursor,
}

impl TraceNetwork {
    pub fn new(trace: &traces::Trace) -> Self {
        TraceNetwork { cursor: TraceCursor::new(trace.clone()) }
    }

    /// Start `offset_s` seconds into the trace (Pensieve randomizes this
    /// per training episode).
    pub fn starting_at(trace: &traces::Trace, offset_s: f64) -> Self {
        TraceNetwork { cursor: TraceCursor::starting_at(trace.clone(), offset_s) }
    }

    pub fn elapsed_s(&self) -> f64 {
        self.cursor.elapsed_s()
    }

    /// Bandwidth at the current cursor position (Mbit/s).
    pub fn current_bandwidth_mbps(&self) -> f64 {
        self.cursor.bandwidth_mbps()
    }
}

impl Network for TraceNetwork {
    fn download(&mut self, bytes: f64) -> f64 {
        self.cursor.download(bytes)
    }

    fn latency_s(&self) -> f64 {
        self.cursor.latency_ms() / 1000.0
    }

    fn advance(&mut self, dt: f64) {
        self.cursor.advance_time(dt);
    }
}

/// Constant conditions until changed — the adversary's per-chunk knob: it
/// sets the bandwidth before each chunk request (§3: "each action of the
/// adversary is a choice of bandwidth in the range of 0.8–4.8 Mbps").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FixedConditions {
    pub bandwidth_mbps: f64,
    pub latency_ms: f64,
}

impl FixedConditions {
    pub fn new(bandwidth_mbps: f64, latency_ms: f64) -> Self {
        assert!(bandwidth_mbps > 0.0, "bandwidth must be positive");
        FixedConditions { bandwidth_mbps, latency_ms }
    }
}

impl Network for FixedConditions {
    fn download(&mut self, bytes: f64) -> f64 {
        bytes * 8.0 / (self.bandwidth_mbps * 1e6)
    }

    fn latency_s(&self) -> f64 {
        self.latency_ms / 1000.0
    }

    fn advance(&mut self, _dt: f64) {}
}

/// What happened while fetching one chunk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChunkOutcome {
    pub chunk_index: usize,
    pub quality: usize,
    pub bitrate_mbps: f64,
    pub size_bytes: f64,
    /// Total fetch time including latency, seconds.
    pub download_s: f64,
    /// Stall caused by this chunk, seconds.
    pub rebuffer_s: f64,
    /// Buffer-full idle time after this chunk, seconds.
    pub sleep_s: f64,
    /// Measured goodput `size / download_time` in Mbit/s.
    pub throughput_mbps: f64,
    /// Buffer level after the chunk was added, seconds.
    pub buffer_after_s: f64,
    /// QoE contribution of this chunk.
    pub qoe: f64,
}

/// A streaming session in progress. Owns a copy of the video model so the
/// session can live inside long-lived training environments.
#[derive(Debug, Clone)]
pub struct Player {
    video: Video,
    qoe_params: QoeParams,
    next_chunk: usize,
    buffer_s: f64,
    last_quality: Option<usize>,
    /// Wall-clock seconds since the session started.
    time_s: f64,
    total_rebuffer_s: f64,
    throughput_hist: Vec<f64>,
    download_hist: Vec<f64>,
}

impl Player {
    pub fn new(video: &Video, qoe_params: QoeParams) -> Self {
        Player {
            video: video.clone(),
            qoe_params,
            next_chunk: 0,
            buffer_s: 0.0,
            last_quality: None,
            time_s: 0.0,
            total_rebuffer_s: 0.0,
            throughput_hist: Vec::new(),
            download_hist: Vec::new(),
        }
    }

    pub fn finished(&self) -> bool {
        self.next_chunk >= self.video.n_chunks()
    }

    pub fn buffer_s(&self) -> f64 {
        self.buffer_s
    }

    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    pub fn total_rebuffer_s(&self) -> f64 {
        self.total_rebuffer_s
    }

    pub fn next_chunk(&self) -> usize {
        self.next_chunk
    }

    pub fn last_quality(&self) -> Option<usize> {
        self.last_quality
    }

    pub fn video(&self) -> &Video {
        &self.video
    }

    /// The observation a protocol conditions on before choosing the next
    /// chunk's quality.
    pub fn observation(&self, _net: &dyn Network) -> AbrObservation {
        let hist_from = self.throughput_hist.len().saturating_sub(HISTORY_LEN);
        AbrObservation {
            last_quality: self.last_quality,
            buffer_s: self.buffer_s,
            throughput_mbps: self.throughput_hist[hist_from..].to_vec(),
            download_s: self.download_hist[self.download_hist.len().saturating_sub(HISTORY_LEN)..]
                .to_vec(),
            next_sizes: if self.finished() {
                vec![0.0; self.video.n_qualities()]
            } else {
                self.video.sizes_of(self.next_chunk).to_vec()
            },
            chunk_index: self.next_chunk,
            chunks_remaining: self.video.n_chunks() - self.next_chunk,
            total_chunks: self.video.n_chunks(),
            n_qualities: self.video.n_qualities(),
            bitrates_mbps: (0..self.video.n_qualities())
                .map(|q| self.video.bitrate_mbps(q))
                .collect(),
        }
    }

    /// Fetch the next chunk at `quality` over `net`.
    ///
    /// Panics if the session is finished or `quality` is out of range.
    pub fn step(&mut self, quality: usize, net: &mut dyn Network) -> ChunkOutcome {
        assert!(!self.finished(), "session already finished");
        assert!(quality < self.video.n_qualities(), "quality {quality} out of range");
        let chunk = self.next_chunk;
        let size = self.video.size_bytes(chunk, quality);
        let latency = net.latency_s();
        net.advance(latency);
        let transfer = net.download(size);
        let dl = latency + transfer;

        let rebuffer = (dl - self.buffer_s).max(0.0);
        self.buffer_s = (self.buffer_s - dl).max(0.0) + self.video.chunk_seconds();
        let mut sleep = 0.0;
        if self.buffer_s > BUFFER_CAP_S {
            sleep = self.buffer_s - BUFFER_CAP_S;
            net.advance(sleep);
            self.buffer_s = BUFFER_CAP_S;
        }
        self.time_s += dl + sleep;
        self.total_rebuffer_s += rebuffer;

        let bitrate = self.video.bitrate_mbps(quality);
        let prev_bitrate = self.last_quality.map(|q| self.video.bitrate_mbps(q));
        let qoe = qoe_chunk(&self.qoe_params, bitrate, prev_bitrate, rebuffer);

        let throughput = size * 8.0 / dl.max(1e-9) / 1e6;
        self.throughput_hist.push(throughput);
        self.download_hist.push(dl);
        self.last_quality = Some(quality);
        self.next_chunk += 1;

        ChunkOutcome {
            chunk_index: chunk,
            quality,
            bitrate_mbps: bitrate,
            size_bytes: size,
            download_s: dl,
            rebuffer_s: rebuffer,
            sleep_s: sleep,
            throughput_mbps: throughput,
            buffer_after_s: self.buffer_s,
            qoe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::{Segment, Trace};

    fn video() -> Video {
        Video::cbr()
    }

    #[test]
    fn fast_network_fills_buffer() {
        let v = video();
        let mut net = FixedConditions::new(100.0, 0.0);
        let mut p = Player::new(&v, QoeParams::default());
        let o = p.step(0, &mut net);
        // 150 kB over 100 Mbit/s ≈ 12 ms — no rebuffering after chunk 1
        assert!(o.download_s < 0.1);
        assert!(
            (o.rebuffer_s - o.download_s).abs() < 1e-12,
            "first chunk always stalls by dl time"
        );
        assert!((p.buffer_s() - 4.0).abs() < 0.1);
    }

    #[test]
    fn slow_network_rebuffers() {
        let v = video();
        let mut net = FixedConditions::new(0.3, 0.0);
        let mut p = Player::new(&v, QoeParams::default());
        p.step(0, &mut net); // 300 kbit/s chunk at 0.3 Mbit/s: dl = 4 s
        let o = p.step(5, &mut net); // 4.3 Mbit/s chunk: dl ≈ 57 s ≫ buffer 4 s
        assert!(o.rebuffer_s > 50.0, "rebuffer {}", o.rebuffer_s);
        assert!(o.qoe < -200.0, "heavy stall must crater QoE, got {}", o.qoe);
    }

    #[test]
    fn buffer_caps_and_sleeps() {
        let v = video();
        let mut net = FixedConditions::new(1000.0, 0.0);
        let mut p = Player::new(&v, QoeParams::default());
        let mut slept = 0.0;
        for _ in 0..20 {
            slept += p.step(0, &mut net).sleep_s;
        }
        assert!(p.buffer_s() <= BUFFER_CAP_S + 1e-9);
        assert!(slept > 0.0, "a fast network must hit the buffer cap and sleep");
    }

    #[test]
    fn throughput_measured_correctly() {
        let v = video();
        let mut net = FixedConditions::new(2.0, 0.0);
        let mut p = Player::new(&v, QoeParams::default());
        let o = p.step(2, &mut net); // 1.2 Mbit/s × 4 s = 600 kB at 2 Mbit/s -> 2.4 s
        assert!((o.download_s - 2.4).abs() < 1e-9);
        assert!((o.throughput_mbps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_adds_to_download_time() {
        let v = video();
        let mut no_lat = FixedConditions::new(2.0, 0.0);
        let mut with_lat = FixedConditions::new(2.0, 500.0);
        let mut p1 = Player::new(&v, QoeParams::default());
        let mut p2 = Player::new(&v, QoeParams::default());
        let a = p1.step(0, &mut no_lat);
        let b = p2.step(0, &mut with_lat);
        assert!((b.download_s - a.download_s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn session_runs_to_completion() {
        let v = video();
        let t = Trace::new("t", vec![Segment::bw(10.0, 3.0, 40.0)]);
        let mut net = TraceNetwork::new(&t);
        let mut p = Player::new(&v, QoeParams::default());
        let mut n = 0;
        while !p.finished() {
            p.step(2, &mut net);
            n += 1;
        }
        assert_eq!(n, 48);
    }

    #[test]
    fn observation_reflects_history() {
        let v = video();
        let mut net = FixedConditions::new(2.0, 0.0);
        let mut p = Player::new(&v, QoeParams::default());
        for _ in 0..12 {
            p.step(1, &mut net);
        }
        let o = p.observation(&net);
        assert_eq!(o.throughput_mbps.len(), HISTORY_LEN);
        assert_eq!(o.download_s.len(), HISTORY_LEN);
        assert_eq!(o.chunk_index, 12);
        assert_eq!(o.chunks_remaining, 36);
        assert_eq!(o.last_quality, Some(1));
        assert_eq!(o.next_sizes.len(), 6);
    }

    #[test]
    #[should_panic(expected = "quality 9 out of range")]
    fn invalid_quality_rejected() {
        let v = video();
        let mut net = FixedConditions::new(2.0, 0.0);
        let mut p = Player::new(&v, QoeParams::default());
        p.step(9, &mut net);
    }

    #[test]
    fn trace_network_time_advances_during_sleep() {
        let t = Trace::new("t", vec![Segment::bw(5.0, 8.0, 0.0), Segment::bw(5.0, 1.0, 0.0)]);
        let mut net = TraceNetwork::new(&t);
        net.advance(6.0);
        assert_eq!(net.current_bandwidth_mbps(), 1.0);
    }
}
