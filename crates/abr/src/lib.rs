//! Chunk-level adaptive-bitrate (ABR) video streaming simulator.
//!
//! This reproduces the simulator the paper trains and tests against (the
//! Pensieve simulator of Mao et al., SIGCOMM '17): a client repeatedly
//! downloads 4-second video chunks at one of six bitrates over a
//! time-varying network, balancing bitrate, rebuffering and smoothness.
//!
//! * [`video::Video`] — the bitrate ladder and per-chunk sizes.
//! * [`player::Player`] — buffer/rebuffer dynamics of a streaming session.
//! * [`qoe`] — the linear QoE metric of MPC (Yin et al., SIGCOMM '15), the
//!   reward both the protocols and the adversary reason about.
//! * [`protocols`] — Buffer-Based (BB), rate-based, robust MPC, and the
//!   RL-driven Pensieve policy.
//! * [`optimal`] — offline-optimal dynamic programming (the `r_opt` of the
//!   adversary's reward, Eq. 1, and Fig. 3's "Offline Optimum").
//! * [`mod@env`] — the [`rl::Env`] used to *train* Pensieve over a trace corpus.
//!
//! The network is abstracted by [`player::Network`], implemented for both
//! dataset traces ([`traces::TraceCursor`]) and the adversary's per-chunk
//! bandwidth choice ([`player::FixedConditions`]).

pub mod env;
pub mod obs;
pub mod optimal;
pub mod player;
pub mod protocols;
pub mod qoe;
pub mod video;

pub use env::AbrTrainEnv;
pub use obs::{AbrObservation, HISTORY_LEN};
pub use optimal::{chunk_bandwidths_from_trace, optimal_qoe_dp, windowed_optimal_qoe};
pub use player::{ChunkOutcome, FixedConditions, Network, Player, TraceNetwork};
pub use protocols::{AbrPolicy, Bola, BufferBased, Mpc, Pensieve, RateBased};
pub use qoe::{qoe_chunk, QoeParams};
pub use video::Video;

/// Run a full video session: `policy` streams `video` over `net`,
/// returning the per-chunk outcomes.
pub fn run_session(
    video: &Video,
    policy: &mut dyn AbrPolicy,
    net: &mut dyn Network,
    qoe: &QoeParams,
) -> Vec<ChunkOutcome> {
    let mut player = Player::new(video, qoe.clone());
    policy.reset();
    let mut outcomes = Vec::with_capacity(video.n_chunks());
    while !player.finished() {
        let obs = player.observation(net);
        let quality = policy.select(&obs);
        outcomes.push(player.step(quality, net));
    }
    outcomes
}

/// Total QoE of a session divided by the number of chunks — the per-chunk
/// mean QoE reported throughout the paper's Figs. 1–4.
pub fn mean_qoe(outcomes: &[ChunkOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().map(|o| o.qoe).sum::<f64>() / outcomes.len() as f64
}
