//! Robust model-predictive control (MPC) ABR — a reimplementation of
//! Yin et al. (SIGCOMM '15), the "MPC" the paper targets with its adversary.
//!
//! MPC predicts throughput with the harmonic mean of the last 5 samples,
//! discounted by the maximum recent prediction error ("robust MPC"), and
//! exhaustively searches all bitrate sequences over a 5-chunk horizon,
//! simulating the buffer forward and maximizing total linear QoE.

use super::AbrPolicy;
use crate::obs::AbrObservation;
use crate::qoe::{qoe_chunk, QoeParams};

/// Robust MPC.
#[derive(Debug, Clone)]
pub struct Mpc {
    /// Lookahead horizon in chunks (5 in the original).
    pub horizon: usize,
    /// Throughput samples feeding the harmonic-mean predictor.
    pub window: usize,
    /// QoE objective being optimized (same as the evaluation metric).
    pub qoe: QoeParams,
    /// Past (predicted, actual) throughput pairs for the robustness
    /// discount.
    errors: Vec<f64>,
    last_prediction: Option<f64>,
}

impl Default for Mpc {
    fn default() -> Self {
        Mpc {
            horizon: 5,
            window: 5,
            qoe: QoeParams::default(),
            errors: Vec::new(),
            last_prediction: None,
        }
    }
}

impl Mpc {
    /// Harmonic-mean prediction discounted by the max error over the last
    /// 5 predictions: `pred / (1 + max_err)`.
    fn predict_throughput(&mut self, obs: &AbrObservation) -> Option<f64> {
        let hm = obs.harmonic_mean_throughput(self.window)?;
        // update the error history with the realized throughput of the
        // chunk the previous prediction was for
        if let (Some(pred), Some(actual)) = (self.last_prediction, obs.last_throughput()) {
            let err = ((pred - actual) / actual.max(1e-9)).abs();
            self.errors.push(err);
            if self.errors.len() > 5 {
                self.errors.remove(0);
            }
        }
        let max_err = self.errors.iter().copied().fold(0.0, f64::max);
        let robust = hm / (1.0 + max_err);
        self.last_prediction = Some(hm);
        Some(robust)
    }

    /// Exhaustive search over quality sequences of length `horizon`
    /// starting from the observed state; returns the best first action.
    fn best_first_action(&self, obs: &AbrObservation, predicted_mbps: f64) -> usize {
        let n_q = obs.n_qualities;
        let horizon = self.horizon.min(obs.chunks_remaining);
        if horizon == 0 {
            return 0;
        }
        let mut best_q = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        // iterative odometer over n_q^horizon combinations
        let mut combo = vec![0usize; horizon];
        loop {
            let score = self.rollout_score(obs, predicted_mbps, &combo);
            if score > best_score {
                best_score = score;
                best_q = combo[0];
            }
            // increment odometer
            let mut i = 0;
            loop {
                combo[i] += 1;
                if combo[i] < n_q {
                    break;
                }
                combo[i] = 0;
                i += 1;
                if i == horizon {
                    return best_q;
                }
            }
        }
    }

    /// Simulate the buffer forward under a fixed quality sequence at the
    /// predicted (constant) throughput, accumulating QoE.
    fn rollout_score(&self, obs: &AbrObservation, predicted_mbps: f64, combo: &[usize]) -> f64 {
        let mut buffer = obs.buffer_s;
        let mut prev = obs.last_quality.map(|q| obs.bitrates_mbps[q]);
        let mut total = 0.0;
        let chunk_seconds = 4.0; // lookahead model uses nominal durations
        for (k, &q) in combo.iter().enumerate() {
            // sizes are only known exactly for the next chunk; later chunks
            // use the nominal bitrate×duration (as the original MPC does
            // when sizes are unavailable)
            let size_bytes = if k == 0 {
                obs.next_sizes[q]
            } else {
                obs.bitrates_mbps[q] * 1e6 / 8.0 * chunk_seconds
            };
            let dl = size_bytes * 8.0 / (predicted_mbps.max(1e-6) * 1e6);
            let rebuf = (dl - buffer).max(0.0);
            buffer = (buffer - dl).max(0.0) + chunk_seconds;
            buffer = buffer.min(crate::player::BUFFER_CAP_S);
            let r = obs.bitrates_mbps[q];
            total += qoe_chunk(&self.qoe, r, prev, rebuf);
            prev = Some(r);
        }
        total
    }
}

impl AbrPolicy for Mpc {
    fn name(&self) -> &str {
        "mpc"
    }

    fn select(&mut self, obs: &AbrObservation) -> usize {
        match self.predict_throughput(obs) {
            Some(pred) => self.best_first_action(obs, pred),
            None => 0, // first chunk: start at the lowest quality
        }
    }

    fn reset(&mut self) {
        self.errors.clear();
        self.last_prediction = None;
    }

    fn clone_box(&self) -> Box<dyn AbrPolicy + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tps: Vec<f64>, buffer_s: f64, last_quality: Option<usize>) -> AbrObservation {
        let bitrates = vec![0.3, 0.75, 1.2, 1.85, 2.85, 4.3];
        let sizes: Vec<f64> = bitrates.iter().map(|b: &f64| b * 1e6 / 8.0 * 4.0).collect();
        AbrObservation {
            last_quality,
            buffer_s,
            throughput_mbps: tps,
            download_s: vec![],
            next_sizes: sizes,
            chunk_index: 5,
            chunks_remaining: 43,
            total_chunks: 48,
            n_qualities: 6,
            bitrates_mbps: bitrates,
        }
    }

    #[test]
    fn first_chunk_is_conservative() {
        let mut m = Mpc::default();
        assert_eq!(m.select(&obs(vec![], 0.0, None)), 0);
    }

    #[test]
    fn rich_network_high_quality() {
        let mut m = Mpc::default();
        let q = m.select(&obs(vec![10.0; 5], 20.0, Some(5)));
        assert_eq!(q, 5);
    }

    #[test]
    fn poor_network_low_quality() {
        let mut m = Mpc::default();
        let q = m.select(&obs(vec![0.4; 5], 2.0, Some(0)));
        assert_eq!(q, 0);
    }

    #[test]
    fn smoothness_weight_tempers_switches() {
        // with the default smoothness weight the switch cost is amortized
        // over the horizon, but a heavy weight must hold the quality down
        let mut default_mpc = Mpc::default();
        let q_default = default_mpc.select(&obs(vec![4.0; 5], 8.0, Some(0)));
        let mut smooth_mpc = Mpc {
            qoe: QoeParams { smoothness_penalty: 20.0, ..QoeParams::default() },
            ..Mpc::default()
        };
        let q_smooth = smooth_mpc.select(&obs(vec![4.0; 5], 8.0, Some(0)));
        assert!(q_default > 0, "bandwidth is ample, quality should rise");
        assert!(
            q_smooth < q_default,
            "heavy smoothness weight must temper the switch: {q_smooth} vs {q_default}"
        );
    }

    #[test]
    fn robustness_discount_reacts_to_errors() {
        let mut m = Mpc::default();
        // feed a history where predictions will have been badly wrong
        let mut o = obs(vec![4.0, 0.4, 4.0, 0.4, 4.0], 6.0, Some(2));
        let q_jittery = m.select(&o);
        let mut m2 = Mpc::default();
        o.throughput_mbps = vec![2.0; 5];
        let q_stable = m2.select(&o);
        assert!(q_jittery <= q_stable, "jittery history must not embolden MPC");
    }

    #[test]
    fn horizon_clamps_at_video_end() {
        let mut m = Mpc::default();
        let mut o = obs(vec![2.0; 5], 10.0, Some(2));
        o.chunks_remaining = 1;
        let q = m.select(&o); // must not panic, single-chunk horizon
        assert!(q < 6);
    }
}
