//! Buffer-Based rate adaptation (BBA-0, Huang et al., SIGCOMM '14).
//!
//! The protocol looks only at the playback buffer: below a *reservoir* it
//! plays the lowest bitrate, above *reservoir + cushion* the highest, and in
//! between it maps the buffer linearly onto the bitrate range. The paper's
//! §3.2 observes exactly this structure from the outside: "BB tries to
//! maintain a playback buffer of size at least 10 seconds, and changes its
//! rate when the buffer size is in the range of 10–15 seconds" — which is
//! what its adversary then exploits by parking the buffer inside the
//! switching band.

use super::AbrPolicy;
use crate::obs::AbrObservation;

/// Buffer-based ABR.
#[derive(Debug, Clone)]
pub struct BufferBased {
    /// Buffer level below which the lowest bitrate is used, seconds.
    pub reservoir_s: f64,
    /// Width of the linear mapping region, seconds.
    pub cushion_s: f64,
}

impl BufferBased {
    /// The configuration the paper's experiments observe: switching band
    /// 10–15 s.
    pub fn pensieve_defaults() -> Self {
        BufferBased { reservoir_s: 10.0, cushion_s: 5.0 }
    }

    /// The rate (Mbit/s) the linear map allows at `buffer_s`.
    fn allowed_rate(&self, buffer_s: f64, min_rate: f64, max_rate: f64) -> f64 {
        if buffer_s <= self.reservoir_s {
            min_rate
        } else if buffer_s >= self.reservoir_s + self.cushion_s {
            max_rate
        } else {
            let frac = (buffer_s - self.reservoir_s) / self.cushion_s;
            min_rate + frac * (max_rate - min_rate)
        }
    }
}

impl Default for BufferBased {
    fn default() -> Self {
        Self::pensieve_defaults()
    }
}

impl AbrPolicy for BufferBased {
    fn name(&self) -> &str {
        "bb"
    }

    fn select(&mut self, obs: &AbrObservation) -> usize {
        let min_rate = obs.bitrates_mbps[0];
        let max_rate = *obs.bitrates_mbps.last().expect("non-empty ladder");
        let allowed = self.allowed_rate(obs.buffer_s, min_rate, max_rate);
        // highest quality whose bitrate does not exceed the allowed rate
        obs.bitrates_mbps.iter().rposition(|&r| r <= allowed).unwrap_or(0)
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn AbrPolicy + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(buffer_s: f64) -> AbrObservation {
        AbrObservation {
            last_quality: None,
            buffer_s,
            throughput_mbps: vec![],
            download_s: vec![],
            next_sizes: vec![0.0; 6],
            chunk_index: 0,
            chunks_remaining: 48,
            total_chunks: 48,
            n_qualities: 6,
            bitrates_mbps: vec![0.3, 0.75, 1.2, 1.85, 2.85, 4.3],
        }
    }

    #[test]
    fn below_reservoir_picks_lowest() {
        let mut bb = BufferBased::pensieve_defaults();
        assert_eq!(bb.select(&obs(0.0)), 0);
        assert_eq!(bb.select(&obs(9.9)), 0);
    }

    #[test]
    fn above_cushion_picks_highest() {
        let mut bb = BufferBased::pensieve_defaults();
        assert_eq!(bb.select(&obs(15.0)), 5);
        assert_eq!(bb.select(&obs(60.0)), 5);
    }

    #[test]
    fn switching_band_is_monotone() {
        let mut bb = BufferBased::pensieve_defaults();
        let mut prev = 0;
        for b in [10.5, 11.5, 12.5, 13.5, 14.5] {
            let q = bb.select(&obs(b));
            assert!(q >= prev, "quality must not decrease as buffer grows");
            prev = q;
        }
        // mid-band must pick something strictly between the extremes
        let mid = bb.select(&obs(13.0));
        assert!(mid > 0 && mid < 5, "mid-band quality = {mid}");
    }

    #[test]
    fn band_boundaries_match_paper_observation() {
        // the adversary's finding: rate changes happen only inside 10–15 s
        let mut bb = BufferBased::pensieve_defaults();
        let q10 = bb.select(&obs(10.0));
        let q15 = bb.select(&obs(15.0));
        assert_eq!(q10, 0);
        assert_eq!(q15, 5);
    }
}
