//! ABR protocols: the targets of the adversarial framework.
//!
//! * [`BufferBased`] — the buffer-based (BBA) approach of Huang et al.
//! * [`Bola`] — Lyapunov buffer-based control (dash.js's default).
//! * [`RateBased`] — pick the highest bitrate under predicted throughput.
//! * [`Mpc`] — robust model-predictive control (Yin et al.).
//! * [`Pensieve`] — an RL policy with Pensieve's state features, trained
//!   with this workspace's PPO.

mod bb;
mod bola;
mod mpc;
pub mod pensieve;
mod rate;

pub use bb::BufferBased;
pub use bola::Bola;
pub use mpc::Mpc;
pub use pensieve::Pensieve;
pub use rate::RateBased;

use crate::obs::AbrObservation;

/// An adaptive-bitrate protocol: maps observations to quality indices.
///
/// Implementations must be deterministic — the paper evaluates protocols by
/// replaying fixed traces, and determinism is what makes an adversarial
/// trace a *reproducible* test case.
pub trait AbrPolicy {
    /// Human-readable protocol name (used in reports: "bb", "mpc",
    /// "pensieve").
    fn name(&self) -> &str;

    /// Choose the quality for the next chunk.
    fn select(&mut self, obs: &AbrObservation) -> usize;

    /// Clear any per-session state before a new video.
    fn reset(&mut self);

    /// Clone the protocol, mid-stream state included, behind a fresh box.
    ///
    /// This is what lets a fleet supervisor snapshot a shard's per-session
    /// protocol instances (MPC carries throughput-error history) and roll
    /// them back deterministically after a crashed or stalled attempt.
    fn clone_box(&self) -> Box<dyn AbrPolicy + Send>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::player::FixedConditions;
    use crate::qoe::QoeParams;
    use crate::video::Video;
    use crate::{mean_qoe, run_session};

    /// Every built-in protocol must complete a session on a benign network
    /// with a sane positive QoE.
    #[test]
    fn all_protocols_complete_a_benign_session() {
        let video = Video::cbr();
        let qoe = QoeParams::default();
        let protos: Vec<Box<dyn AbrPolicy>> = vec![
            Box::new(BufferBased::pensieve_defaults()),
            Box::new(RateBased::default()),
            Box::new(Mpc::default()),
        ];
        for mut p in protos {
            let mut net = FixedConditions::new(3.0, 40.0);
            let outcomes = run_session(&video, p.as_mut(), &mut net, &qoe);
            assert_eq!(outcomes.len(), 48, "{}", p.name());
            let q = mean_qoe(&outcomes);
            assert!(q > 0.5, "{} QoE on easy network = {q}", p.name());
        }
    }

    /// On a generous constant network, every protocol should converge to
    /// (near) the top bitrate.
    #[test]
    fn protocols_reach_high_bitrate_on_fat_pipe() {
        let video = Video::cbr();
        let qoe = QoeParams::default();
        let protos: Vec<Box<dyn AbrPolicy>> = vec![
            Box::new(BufferBased::pensieve_defaults()),
            Box::new(RateBased::default()),
            Box::new(Mpc::default()),
        ];
        for mut p in protos {
            let mut net = FixedConditions::new(20.0, 10.0);
            let outcomes = run_session(&video, p.as_mut(), &mut net, &qoe);
            let tail_quality: f64 =
                outcomes[24..].iter().map(|o| o.quality as f64).sum::<f64>() / 24.0;
            assert!(tail_quality > 4.0, "{} mean tail quality = {tail_quality}", p.name());
        }
    }

    /// On a starved network, every protocol must fall to low bitrates.
    #[test]
    fn protocols_fall_back_on_thin_pipe() {
        let video = Video::cbr();
        let qoe = QoeParams::default();
        let protos: Vec<Box<dyn AbrPolicy>> = vec![
            Box::new(BufferBased::pensieve_defaults()),
            Box::new(RateBased::default()),
            Box::new(Mpc::default()),
        ];
        for mut p in protos {
            let mut net = FixedConditions::new(0.4, 40.0);
            let outcomes = run_session(&video, p.as_mut(), &mut net, &qoe);
            let tail_quality: f64 =
                outcomes[24..].iter().map(|o| o.quality as f64).sum::<f64>() / 24.0;
            assert!(tail_quality < 1.5, "{} mean tail quality = {tail_quality}", p.name());
        }
    }
}
