//! Pensieve (Mao et al., SIGCOMM '17): RL-driven ABR.
//!
//! The policy consumes Pensieve's state features — last bitrate, buffer,
//! throughput and download-time histories, next-chunk sizes, chunks
//! remaining — and emits a distribution over the six bitrates. The paper's
//! pre-trained A3C model is substituted by a policy with the same features
//! trained with this workspace's PPO (see DESIGN.md §5); training lives in
//! [`crate::env::AbrTrainEnv`].

use super::AbrPolicy;
use crate::obs::{AbrObservation, HISTORY_LEN};
use rl::{PolicyKind, RunningMeanStd};
use serde::{Deserialize, Serialize};

/// Dimension of the flattened Pensieve feature vector:
/// 1 (last bitrate) + 1 (buffer) + 8 (throughput) + 8 (download time)
/// + 6 (next sizes) + 1 (chunks remaining).
pub const PENSIEVE_OBS_DIM: usize = 1 + 1 + HISTORY_LEN + HISTORY_LEN + 6 + 1;

/// Flatten an [`AbrObservation`] into Pensieve's normalized feature vector.
///
/// Normalizations follow the Pensieve reference implementation: bitrate by
/// the max bitrate, buffer by 10 s, throughput in Mbit/s, download time by
/// 10 s, sizes in MB, remaining chunks by the total.
pub fn pensieve_features(obs: &AbrObservation) -> Vec<f64> {
    let max_rate = *obs.bitrates_mbps.last().expect("non-empty ladder");
    let mut f = Vec::with_capacity(PENSIEVE_OBS_DIM);
    f.push(match obs.last_quality {
        Some(q) => obs.bitrates_mbps[q] / max_rate,
        None => 0.0,
    });
    f.push(obs.buffer_s / 10.0);
    // histories are padded with zeros on the left (older-than-known)
    let mut tp = vec![0.0; HISTORY_LEN - obs.throughput_mbps.len().min(HISTORY_LEN)];
    tp.extend(obs.throughput_mbps.iter().rev().take(HISTORY_LEN).rev());
    f.extend(tp);
    let mut dl = vec![0.0; HISTORY_LEN - obs.download_s.len().min(HISTORY_LEN)];
    dl.extend(obs.download_s.iter().rev().take(HISTORY_LEN).rev().map(|d| d / 10.0));
    f.extend(dl);
    // next-chunk sizes in MB; ladders other than 6 levels are padded/truncated
    let mut sizes: Vec<f64> = obs.next_sizes.iter().map(|s| s / 1e6).collect();
    sizes.resize(6, 0.0);
    f.extend_from_slice(&sizes[..6]);
    f.push(obs.chunks_remaining as f64 / obs.total_chunks.max(1) as f64);
    debug_assert_eq!(f.len(), PENSIEVE_OBS_DIM);
    f
}

/// A trained Pensieve model acting as a deterministic ABR protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pensieve {
    /// The trained policy (categorical over bitrates).
    pub policy: PolicyKind,
    /// Frozen observation statistics from training, if any.
    pub obs_norm: Option<RunningMeanStd>,
}

impl Pensieve {
    /// Wrap a policy trained by [`crate::env::AbrTrainEnv`] + PPO.
    ///
    /// `obs_norm` must be the trainer's statistics (they are frozen here so
    /// evaluation does not drift them).
    pub fn new(policy: PolicyKind, mut obs_norm: Option<RunningMeanStd>) -> Self {
        if let Some(n) = &mut obs_norm {
            n.updating = false;
        }
        Pensieve { policy, obs_norm }
    }
}

impl AbrPolicy for Pensieve {
    fn name(&self) -> &str {
        "pensieve"
    }

    fn select(&mut self, obs: &AbrObservation) -> usize {
        let raw = pensieve_features(obs);
        let feat = match &self.obs_norm {
            Some(n) => n.normalize(&raw),
            None => raw,
        };
        self.policy.mode(&feat).index().min(obs.n_qualities - 1)
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn AbrPolicy + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rl::CategoricalPolicy;

    fn obs() -> AbrObservation {
        AbrObservation {
            last_quality: Some(2),
            buffer_s: 20.0,
            throughput_mbps: vec![1.0, 2.0, 3.0],
            download_s: vec![4.0, 2.0, 1.0],
            next_sizes: vec![150_000.0, 375_000.0, 600_000.0, 925_000.0, 1_425_000.0, 2_150_000.0],
            chunk_index: 3,
            chunks_remaining: 45,
            total_chunks: 48,
            n_qualities: 6,
            bitrates_mbps: vec![0.3, 0.75, 1.2, 1.85, 2.85, 4.3],
        }
    }

    #[test]
    fn feature_vector_shape_and_padding() {
        let f = pensieve_features(&obs());
        assert_eq!(f.len(), PENSIEVE_OBS_DIM);
        // last bitrate normalized
        assert!((f[0] - 1.2 / 4.3).abs() < 1e-12);
        // buffer / 10
        assert!((f[1] - 2.0).abs() < 1e-12);
        // throughput history: 5 zero-pads then 1,2,3
        assert_eq!(&f[2..10], &[0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0]);
        // download history scaled by 10
        assert_eq!(&f[10..18], &[0.0, 0.0, 0.0, 0.0, 0.0, 0.4, 0.2, 0.1]);
        // sizes in MB
        assert!((f[18] - 0.15).abs() < 1e-12);
        // remaining fraction
        assert!((f[24] - 45.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn first_chunk_features() {
        let mut o = obs();
        o.last_quality = None;
        o.throughput_mbps.clear();
        o.download_s.clear();
        let f = pensieve_features(&o);
        assert_eq!(f[0], 0.0);
        assert!(f[2..18].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pensieve_protocol_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let policy =
            PolicyKind::Categorical(CategoricalPolicy::new(&[PENSIEVE_OBS_DIM, 16, 6], &mut rng));
        let mut p = Pensieve::new(policy, None);
        let a = p.select(&obs());
        let b = p.select(&obs());
        assert_eq!(a, b);
        assert!(a < 6);
    }

    #[test]
    fn obs_norm_is_frozen() {
        let mut rng = StdRng::seed_from_u64(4);
        let policy =
            PolicyKind::Categorical(CategoricalPolicy::new(&[PENSIEVE_OBS_DIM, 16, 6], &mut rng));
        let mut norm = RunningMeanStd::new(PENSIEVE_OBS_DIM);
        norm.observe(&[1.0; PENSIEVE_OBS_DIM]);
        norm.observe(&[-1.0; PENSIEVE_OBS_DIM]);
        let p = Pensieve::new(policy, Some(norm));
        assert!(!p.obs_norm.as_ref().unwrap().updating);
    }
}
