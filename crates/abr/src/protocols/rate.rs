//! Rate-based ABR: pick the highest bitrate below predicted throughput.

use super::AbrPolicy;
use crate::obs::AbrObservation;

/// Throughput-predicting ABR using the harmonic mean of recent samples,
/// optionally discounted by a safety factor.
#[derive(Debug, Clone)]
pub struct RateBased {
    /// How many past chunks feed the harmonic-mean predictor.
    pub window: usize,
    /// Multiplicative safety margin on the prediction (≤ 1.0).
    pub safety: f64,
}

impl Default for RateBased {
    fn default() -> Self {
        RateBased { window: 5, safety: 1.0 }
    }
}

impl AbrPolicy for RateBased {
    fn name(&self) -> &str {
        "rate"
    }

    fn select(&mut self, obs: &AbrObservation) -> usize {
        let predicted = match obs.harmonic_mean_throughput(self.window) {
            Some(p) => p * self.safety,
            None => return 0, // nothing known yet: start safe
        };
        obs.bitrates_mbps.iter().rposition(|&r| r <= predicted).unwrap_or(0)
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn AbrPolicy + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tps: Vec<f64>) -> AbrObservation {
        AbrObservation {
            last_quality: None,
            buffer_s: 10.0,
            throughput_mbps: tps,
            download_s: vec![],
            next_sizes: vec![0.0; 6],
            chunk_index: 0,
            chunks_remaining: 48,
            total_chunks: 48,
            n_qualities: 6,
            bitrates_mbps: vec![0.3, 0.75, 1.2, 1.85, 2.85, 4.3],
        }
    }

    #[test]
    fn starts_at_lowest_quality() {
        let mut p = RateBased::default();
        assert_eq!(p.select(&obs(vec![])), 0);
    }

    #[test]
    fn picks_rate_below_prediction() {
        let mut p = RateBased::default();
        assert_eq!(p.select(&obs(vec![2.0, 2.0, 2.0])), 3); // 1.85 ≤ 2.0 < 2.85
        assert_eq!(p.select(&obs(vec![10.0, 10.0])), 5);
        assert_eq!(p.select(&obs(vec![0.1])), 0);
    }

    #[test]
    fn safety_factor_is_conservative() {
        let mut p = RateBased { window: 5, safety: 0.5 };
        assert_eq!(p.select(&obs(vec![2.0, 2.0, 2.0])), 1); // 0.75 ≤ 1.0 < 1.2
    }

    #[test]
    fn harmonic_mean_punishes_dips() {
        let mut p = RateBased::default();
        // arithmetic mean of (4.0, 0.4) is 2.2, harmonic is ~0.73
        assert_eq!(p.select(&obs(vec![4.0, 0.4])), 0);
    }
}
