//! BOLA (Spiteri, Urgaonkar, Sitaraman, INFOCOM '16): Lyapunov-based
//! buffer-only rate adaptation — the algorithm behind dash.js's default
//! ABR. Included beyond the paper's three protocols so the adversarial
//! framework has a second buffer-driven target with a *different* control
//! law than BBA (useful for checking that adversarial traces are really
//! protocol-specific and not just "anti-buffer-based").
//!
//! BOLA-BASIC: for buffer level `Q` (in chunks), pick the quality
//! maximizing `(V·(u_q + γp) − Q) / s_q`, where `u_q = ln(s_q/s_0)` is the
//! utility of quality `q`, `s_q` its (relative) chunk size, and `V`, `γp`
//! derive from the buffer target.

use super::AbrPolicy;
use crate::obs::AbrObservation;

/// BOLA-BASIC.
#[derive(Debug, Clone)]
pub struct Bola {
    /// Lyapunov trade-off weight; larger favors utility over buffer risk.
    pub v: f64,
    /// The γp term (rebuffering aversion).
    pub gp: f64,
    /// Buffer target in chunks used to derive the defaults.
    pub buffer_target_chunks: f64,
}

impl Bola {
    /// Defaults calibrated for the Pensieve setting (4 s chunks, 6 rungs):
    /// reach the top quality when ~25 s (≈6 chunks) are buffered.
    pub fn dash_defaults() -> Self {
        // u_max for the Pensieve ladder: ln(4300/300) ≈ 2.66
        let u_max = (4300.0_f64 / 300.0).ln();
        let gp = 1.0;
        let target = 6.0;
        // V chosen so the top rung's score turns positive at the target:
        // V·(u_max + gp) = target  ⇒  V = target / (u_max + gp)
        let v = target / (u_max + gp);
        Bola { v, gp, buffer_target_chunks: target }
    }

    fn utilities(&self, obs: &AbrObservation) -> Vec<f64> {
        let s0 = obs.bitrates_mbps[0];
        obs.bitrates_mbps.iter().map(|s| (s / s0).ln()).collect()
    }
}

impl Default for Bola {
    fn default() -> Self {
        Self::dash_defaults()
    }
}

impl AbrPolicy for Bola {
    fn name(&self) -> &str {
        "bola"
    }

    fn select(&mut self, obs: &AbrObservation) -> usize {
        let q_chunks = obs.buffer_s / 4.0; // chunk duration of the ladder
        let utils = self.utilities(obs);
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (q, &u) in utils.iter().enumerate() {
            // relative size: proportional to bitrate
            let s_q = obs.bitrates_mbps[q] / obs.bitrates_mbps[0];
            let score = (self.v * (u + self.gp) - q_chunks) / s_q;
            if score > best_score {
                best_score = score;
                best = q;
            }
        }
        best
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn AbrPolicy + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(buffer_s: f64) -> AbrObservation {
        AbrObservation {
            last_quality: None,
            buffer_s,
            throughput_mbps: vec![],
            download_s: vec![],
            next_sizes: vec![0.0; 6],
            chunk_index: 0,
            chunks_remaining: 48,
            total_chunks: 48,
            n_qualities: 6,
            bitrates_mbps: vec![0.3, 0.75, 1.2, 1.85, 2.85, 4.3],
        }
    }

    #[test]
    fn empty_buffer_plays_safe() {
        let mut b = Bola::dash_defaults();
        assert_eq!(b.select(&obs(0.0)), 0);
    }

    #[test]
    fn full_buffer_plays_top() {
        let mut b = Bola::dash_defaults();
        assert_eq!(b.select(&obs(50.0)), 5);
    }

    #[test]
    fn quality_is_monotone_in_buffer() {
        let mut b = Bola::dash_defaults();
        let mut prev = 0;
        for buf in [0.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 30.0] {
            let q = b.select(&obs(buf));
            assert!(q >= prev, "BOLA must not drop quality as the buffer grows");
            prev = q;
        }
        assert_eq!(prev, 5, "eventually reaches the top rung");
    }

    #[test]
    fn switching_band_differs_from_bba() {
        // the point of including BOLA: its decision thresholds are in
        // different places than BBA's linear 10-15 s map
        let mut bola = Bola::dash_defaults();
        let mut bba = super::super::BufferBased::pensieve_defaults();
        let mut differs = 0;
        for buf in [2.0, 6.0, 9.0, 11.0, 13.0, 16.0, 20.0] {
            if bola.select(&obs(buf)) != bba.select(&obs(buf)) {
                differs += 1;
            }
        }
        assert!(differs >= 3, "BOLA and BBA should disagree across the range: {differs}");
    }

    #[test]
    fn completes_a_session() {
        use crate::player::FixedConditions;
        use crate::qoe::QoeParams;
        use crate::video::Video;
        let video = Video::cbr();
        let mut net = FixedConditions::new(3.0, 80.0);
        let outcomes =
            crate::run_session(&video, &mut Bola::dash_defaults(), &mut net, &QoeParams::default());
        assert_eq!(outcomes.len(), 48);
        let q = crate::mean_qoe(&outcomes);
        assert!(q > 0.3, "BOLA on a decent network: {q}");
    }
}
