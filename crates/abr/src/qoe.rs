//! The linear QoE metric of MPC (Yin et al., SIGCOMM '15), as used by the
//! paper: `QoE_lin = Σ R_i − 4.3 Σ T_i − Σ |R_i − R_{i+1}|` where `R_i` is
//! the chunk bitrate in Mbit/s and `T_i` the rebuffering time it caused.

use serde::{Deserialize, Serialize};

/// QoE coefficients. The defaults are the paper's `QoE_lin`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QoeParams {
    /// Weight on the chunk bitrate (Mbit/s). 1.0 in `QoE_lin`.
    pub quality_weight: f64,
    /// Penalty per second of rebuffering. 4.3 in `QoE_lin` (the maximum
    /// bitrate, so one second of stall cancels one top-quality chunk).
    pub rebuffer_penalty: f64,
    /// Penalty per Mbit/s of bitrate change between consecutive chunks.
    pub smoothness_penalty: f64,
}

impl Default for QoeParams {
    fn default() -> Self {
        QoeParams { quality_weight: 1.0, rebuffer_penalty: 4.3, smoothness_penalty: 1.0 }
    }
}

impl QoeParams {
    /// A rebuffer-focused variant (paper §5, "different adversarial goals"):
    /// only stalls are penalized, quality contributes nothing.
    pub fn rebuffer_only() -> Self {
        QoeParams { quality_weight: 0.0, rebuffer_penalty: 4.3, smoothness_penalty: 0.0 }
    }
}

/// QoE contribution of one chunk.
///
/// `bitrate_mbps` is the chunk's bitrate, `prev_bitrate_mbps` the previous
/// chunk's (`None` for the first chunk — no smoothness term), and
/// `rebuffer_s` the stall this chunk caused.
pub fn qoe_chunk(
    params: &QoeParams,
    bitrate_mbps: f64,
    prev_bitrate_mbps: Option<f64>,
    rebuffer_s: f64,
) -> f64 {
    let smooth = match prev_bitrate_mbps {
        Some(prev) => (bitrate_mbps - prev).abs(),
        None => 0.0,
    };
    params.quality_weight * bitrate_mbps
        - params.rebuffer_penalty * rebuffer_s
        - params.smoothness_penalty * smooth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_chunk_has_no_smoothness_penalty() {
        let p = QoeParams::default();
        assert!((qoe_chunk(&p, 4.3, None, 0.0) - 4.3).abs() < 1e-12);
    }

    #[test]
    fn rebuffering_dominates() {
        let p = QoeParams::default();
        // one second of stall cancels a max-bitrate chunk exactly
        assert!(qoe_chunk(&p, 4.3, Some(4.3), 1.0).abs() < 1e-12);
    }

    #[test]
    fn switching_costs() {
        let p = QoeParams::default();
        let steady = qoe_chunk(&p, 1.2, Some(1.2), 0.0);
        let switched = qoe_chunk(&p, 1.2, Some(4.3), 0.0);
        assert!((steady - 1.2).abs() < 1e-12);
        assert!((switched - (1.2 - 3.1)).abs() < 1e-12);
    }

    #[test]
    fn rebuffer_only_variant() {
        let p = QoeParams::rebuffer_only();
        assert_eq!(qoe_chunk(&p, 4.3, Some(0.3), 0.0), 0.0);
        assert!((qoe_chunk(&p, 4.3, Some(0.3), 2.0) + 8.6).abs() < 1e-12);
    }
}
