//! The observation an ABR protocol sees before choosing the next chunk's
//! bitrate — the same information the Pensieve agent consumes.

/// Length of the throughput / download-time history windows (Pensieve
/// uses the last 8 chunks).
pub const HISTORY_LEN: usize = 8;

/// Everything an ABR protocol may condition on when selecting the quality
/// of the next chunk.
#[derive(Debug, Clone)]
pub struct AbrObservation {
    /// Quality index of the previously downloaded chunk (`None` before the
    /// first chunk).
    pub last_quality: Option<usize>,
    /// Client playback buffer in seconds.
    pub buffer_s: f64,
    /// Measured throughput (Mbit/s) of the last up-to-[`HISTORY_LEN`]
    /// chunks, most recent last.
    pub throughput_mbps: Vec<f64>,
    /// Download time (s) of the last up-to-[`HISTORY_LEN`] chunks,
    /// most recent last.
    pub download_s: Vec<f64>,
    /// Sizes (bytes) of the next chunk at each quality.
    pub next_sizes: Vec<f64>,
    /// Index of the chunk about to be requested.
    pub chunk_index: usize,
    /// Chunks remaining, including the one about to be requested.
    pub chunks_remaining: usize,
    /// Total number of chunks in the video.
    pub total_chunks: usize,
    /// Number of quality levels.
    pub n_qualities: usize,
    /// Bitrates in Mbit/s, ascending.
    pub bitrates_mbps: Vec<f64>,
}

impl AbrObservation {
    /// Most recent throughput sample, if any.
    pub fn last_throughput(&self) -> Option<f64> {
        self.throughput_mbps.last().copied()
    }

    /// Harmonic mean of the last `k` throughput samples — the classic
    /// robust predictor used by rate-based ABR and MPC.
    pub fn harmonic_mean_throughput(&self, k: usize) -> Option<f64> {
        let n = self.throughput_mbps.len();
        if n == 0 {
            return None;
        }
        let take = k.min(n);
        let slice = &self.throughput_mbps[n - take..];
        let denom: f64 = slice.iter().map(|t| 1.0 / t.max(1e-9)).sum();
        Some(take as f64 / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tps: Vec<f64>) -> AbrObservation {
        AbrObservation {
            last_quality: None,
            buffer_s: 0.0,
            throughput_mbps: tps,
            download_s: vec![],
            next_sizes: vec![],
            chunk_index: 0,
            chunks_remaining: 48,
            total_chunks: 48,
            n_qualities: 6,
            bitrates_mbps: vec![0.3, 0.75, 1.2, 1.85, 2.85, 4.3],
        }
    }

    #[test]
    fn harmonic_mean_basics() {
        let o = obs(vec![1.0, 1.0, 1.0]);
        assert!((o.harmonic_mean_throughput(5).unwrap() - 1.0).abs() < 1e-12);
        let o = obs(vec![1.0, 3.0]);
        // HM(1,3) = 2 / (1 + 1/3) = 1.5
        assert!((o.harmonic_mean_throughput(5).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_uses_most_recent_k() {
        let o = obs(vec![100.0, 2.0, 2.0]);
        assert!((o.harmonic_mean_throughput(2).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_history() {
        let o = obs(vec![]);
        assert!(o.harmonic_mean_throughput(5).is_none());
        assert!(o.last_throughput().is_none());
    }
}
