//! Offline, in-tree substitute for `serde_derive`.
//!
//! Generates impls of the workspace's Value-tree `serde::Serialize` /
//! `serde::Deserialize` facade (see `crates/serde`). Because the real
//! `syn`/`quote` stack cannot be fetched offline, the input item is parsed
//! directly from the compiler's `proc_macro::TokenStream`:
//!
//! * named-field structs — serialized as objects in declaration order;
//! * enums with unit variants — serialized as the variant-name string;
//! * enums with newtype variants — serialized as `{"Variant": inner}`.
//!
//! That is every shape the workspace derives. Anything fancier (generics,
//! tuple structs, struct variants, serde attributes) produces a
//! `compile_error!` naming what is unsupported, so a future use of an
//! uncovered feature fails loudly at the definition site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match which {
            Which::Serialize => gen_serialize(&item),
            Which::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, VariantKind)> },
}

#[derive(PartialEq)]
enum VariantKind {
    Unit,
    Newtype,
}

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { toks: stream.into_iter().collect(), i: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    /// Skip `#[...]` attributes (including expanded doc comments).
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.i += 1; // '#'
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.i += 1;
                }
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.i += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.i += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("serde_derive: expected {what}, found {other:?}")),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`")?;
    let name = c.expect_ident("type name")?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive (in-tree stub): generic type `{name}` is not supported"
            ));
        }
    }
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde_derive (in-tree stub): `{name}` must have a braced body \
                 (tuple/unit structs are not supported)"
            ))
        }
    };
    match kw.as_str() {
        "struct" => Ok(Item::Struct { name, fields: parse_fields(body)? }),
        "enum" => Ok(Item::Enum { name, variants: parse_variants(body)? }),
        other => Err(format!("serde_derive: cannot derive for `{other}` items")),
    }
}

fn parse_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        let field = c.expect_ident("field name")?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("serde_derive: expected `:` after field `{field}`")),
        }
        // skip the type: commas nested in `<...>` are not field separators
        let mut angle_depth = 0_i32;
        while let Some(tok) = c.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        c.i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            c.i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, VariantKind)>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident("variant name")?;
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let payload = Cursor::new(g.stream());
                let mut depth = 0_i32;
                for tok in &payload.toks {
                    if let TokenTree::Punct(p) = tok {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => {
                                return Err(format!(
                                    "serde_derive (in-tree stub): multi-field tuple variant \
                                     `{name}` is not supported"
                                ))
                            }
                            _ => {}
                        }
                    }
                }
                c.i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde_derive (in-tree stub): struct variant `{name}` is not supported"
                ))
            }
            _ => VariantKind::Unit,
        };
        // skip an optional `= discriminant`, then the separating comma
        while let Some(tok) = c.peek() {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    c.i += 1;
                    break;
                }
            }
            c.i += 1;
        }
        variants.push((name, kind));
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    VariantKind::Newtype => format!(
                        "{name}::{v}(inner) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), \
                              ::serde::Serialize::to_value(inner)),\
                         ]),"
                    ),
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(v, {f:?}))\
                             .map_err(|e| ::serde::field_err({name:?}, {f:?}, e))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if v.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::concat!(\"expected object for \", {name:?})));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, k)| *k == VariantKind::Unit)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|(_, k)| *k == VariantKind::Newtype)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok(\
                             {name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    )
                })
                .collect();
            let str_arm = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                     }},"
                )
            };
            let obj_arm = if newtype_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {newtype_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                         }}\n\
                     }}"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             {str_arm}\n\
                             {obj_arm}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"invalid value {{other:?}} for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
