//! A small row-major dense matrix.
//!
//! Only the operations reverse-mode differentiation of an MLP needs are
//! provided: matrix–vector products (plain and transposed), rank-1 updates,
//! and elementwise arithmetic. Shapes are checked with `assert!` — these are
//! programming errors, not runtime conditions.

use serde::{Deserialize, Serialize};

/// Dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a row-major data vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build by calling `f(row, col)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing storage (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// `out = self * x` where `x.len() == cols`; `out.len() == rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: input length mismatch");
        assert_eq!(out.len(), self.rows, "matvec: output length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x.iter()) {
                acc += w * xi;
            }
            *o = acc;
        }
    }

    /// `self * x` allocating the output.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// `out += selfᵀ * y` where `y.len() == rows`; `out.len() == cols`.
    ///
    /// This is the backward pass through a linear layer: given the gradient
    /// w.r.t. the layer output, accumulate the gradient w.r.t. its input.
    pub fn matvec_t_add(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows, "matvec_t: input length mismatch");
        assert_eq!(out.len(), self.cols, "matvec_t: output length mismatch");
        for (r, yr) in y.iter().enumerate() {
            if *yr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, w) in out.iter_mut().zip(row.iter()) {
                *o += yr * w;
            }
        }
    }

    /// Rank-1 update `self += alpha * y xᵀ` (`y.len() == rows`,
    /// `x.len() == cols`) — the weight-gradient accumulation of backprop.
    pub fn add_outer(&mut self, alpha: f64, y: &[f64], x: &[f64]) {
        assert_eq!(y.len(), self.rows, "add_outer: rows mismatch");
        assert_eq!(x.len(), self.cols, "add_outer: cols mismatch");
        for (r, yr) in y.iter().enumerate() {
            let a = alpha * yr;
            if a == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, xi) in row.iter_mut().zip(x.iter()) {
                *w += a * xi;
            }
        }
    }

    /// `self += alpha * other` (same shape).
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_scaled: rows mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled: cols mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiply every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Set every entry to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of squared entries (used for gradient-norm clipping).
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let m = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matvec_known() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_manual_transpose() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 3];
        m.matvec_t_add(&[1.0, -1.0], &mut out);
        assert_eq!(out, vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 3.0], &[5.0, 7.0]);
        assert_eq!(m.as_slice(), &[10.0, 14.0, 30.0, 42.0]);
        m.add_outer(1.0, &[1.0, 0.0], &[1.0, 0.0]);
        assert_eq!(m.get(0, 0), 11.0);
    }

    #[test]
    fn scale_and_zero() {
        let mut m = Matrix::from_vec(1, 2, vec![2.0, -4.0]);
        m.scale(0.5);
        assert_eq!(m.as_slice(), &[1.0, -2.0]);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn sq_norm() {
        let m = Matrix::from_vec(1, 3, vec![1.0, 2.0, 2.0]);
        assert!((m.sq_norm() - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matvec: input length mismatch")]
    fn matvec_shape_checked() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }
}
