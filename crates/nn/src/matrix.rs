//! A small row-major dense matrix.
//!
//! Only the operations reverse-mode differentiation of an MLP needs are
//! provided: matrix–vector products (plain and transposed), rank-1 updates,
//! and elementwise arithmetic. Shapes are checked with `assert!` — these are
//! programming errors, not runtime conditions.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Cache-blocking tile sizes `(samples, weight_rows, k_columns)` for the
/// batched kernels, chosen once per process.
///
/// Defaults (64 samples × 64 rows, 256 k-columns) keep one tile's working
/// set — a sample block of activations plus a block of weight rows — in
/// L1/L2 for the layer widths this repo trains (tens of units, batches of
/// 32–96), while degenerating to the untiled loops when shapes are smaller
/// than one tile. Overridable for experiments via `NN_TILE_S`,
/// `NN_TILE_R`, `NN_TILE_K` (values are clamped to ≥ 1; read once, so set
/// them before first use).
///
/// Tiling never changes results: every output element is still computed
/// by one complete sequential k-chain (forward) or one complete
/// ascending-r chain (backward); tiles only reorder *which elements* are
/// computed when, never the additions inside any one element.
fn kernel_tiles() -> (usize, usize, usize) {
    static TILES: OnceLock<(usize, usize, usize)> = OnceLock::new();
    *TILES.get_or_init(|| {
        let read = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(default)
        };
        (read("NN_TILE_S", 64), read("NN_TILE_R", 64), read("NN_TILE_K", 256))
    })
}

/// Dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a row-major data vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build by calling `f(row, col)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing storage (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// The batched kernels in [`crate::mlp`] treat a matrix as a stack of
    /// per-sample rows and reuse the exact per-row vector kernels
    /// ([`Matrix::matvec_into`], [`Matrix::matvec_t_add`]) so that batched
    /// results stay bit-identical to the per-sample path.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Entry at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Overwrite the entry at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// `out = self * x` where `x.len() == cols`; `out.len() == rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: input length mismatch");
        assert_eq!(out.len(), self.rows, "matvec: output length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x.iter()) {
                acc += w * xi;
            }
            *o = acc;
        }
    }

    /// `self * x` allocating the output.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Batched forward: `out.row(s) = self * x.row(s)` for every row of
    /// `x` (i.e. `out = x · selfᵀ`, row-major).
    ///
    /// Every output element is the same sequential dot product
    /// [`Matrix::matvec_into`] computes, so results are **bit-identical**
    /// to calling `matvec_into` per row. Samples are processed eight (then
    /// four) at a time with interleaved accumulators: the interleaved dots
    /// are independent dependency chains, so interleaving only changes
    /// instruction scheduling (hiding floating-point add latency — eight
    /// chains saturate both FP pipes on common cores), never the order of
    /// operations within any one element — the kernel-level speedup
    /// batching exists to unlock, unavailable to the one-sample-at-a-time
    /// path.
    ///
    /// The loop nest is **cache-blocked**: samples and weight rows are
    /// walked in tiles (see `NN_TILE_S`/`NN_TILE_R`/`NN_TILE_K`) so one tile's activations
    /// and weight rows stay cache-resident while they are combined.
    /// Tiling only changes the order in which output *elements* are
    /// produced; each element's k-chain is untouched, so results remain
    /// bit-identical for every tile size.
    pub fn matmul_nt_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols, self.cols, "matmul_nt: input width mismatch");
        assert_eq!(out.rows, x.rows, "matmul_nt: output rows mismatch");
        assert_eq!(out.cols, self.rows, "matmul_nt: output cols mismatch");
        if telemetry::enabled() {
            telemetry::counter_add("nn.flops", (2 * x.rows * self.rows * self.cols) as u64);
        }
        let (tile_s, tile_r, _) = kernel_tiles();
        let mut s0 = 0;
        while s0 < x.rows {
            let s1 = (s0 + tile_s).min(x.rows);
            let mut r0 = 0;
            while r0 < self.rows {
                let r1 = (r0 + tile_r).min(self.rows);
                self.nt_block(x, out, s0, s1, r0, r1);
                r0 = r1;
            }
            s0 = s1;
        }
    }

    /// One `samples × weight-rows` tile of [`Matrix::matmul_nt_into`]:
    /// `out[s][r] = self.row(r) · x.row(s)` for `s` in `s0..s1`, `r` in
    /// `r0..r1`, with the 8-then-4-wide interleaved accumulators of the
    /// original kernel. Every element is one sequential k-chain.
    fn nt_block(&self, x: &Matrix, out: &mut Matrix, s0: usize, s1: usize, r0: usize, r1: usize) {
        let n = self.cols;
        let mut s = s0;
        while s + 8 <= s1 {
            let xs: [&[f64]; 8] = std::array::from_fn(|j| {
                let base = (s + j) * n;
                &x.data[base..base + n]
            });
            for r in r0..r1 {
                let w = &self.data[r * n..(r + 1) * n];
                let mut acc = [0.0f64; 8];
                for k in 0..n {
                    let wk = w[k];
                    for (a, xj) in acc.iter_mut().zip(xs.iter()) {
                        *a += wk * xj[k];
                    }
                }
                for (j, a) in acc.iter().enumerate() {
                    out.set(s + j, r, *a);
                }
            }
            s += 8;
        }
        while s + 4 <= s1 {
            // pre-sliced to a common length so the inner indexing is
            // bounds-check free
            let x0 = &x.data[s * n..s * n + n];
            let x1 = &x.data[(s + 1) * n..(s + 1) * n + n];
            let x2 = &x.data[(s + 2) * n..(s + 2) * n + n];
            let x3 = &x.data[(s + 3) * n..(s + 3) * n + n];
            for r in r0..r1 {
                let w = &self.data[r * n..(r + 1) * n];
                let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
                for k in 0..n {
                    let wk = w[k];
                    a0 += wk * x0[k];
                    a1 += wk * x1[k];
                    a2 += wk * x2[k];
                    a3 += wk * x3[k];
                }
                out.set(s, r, a0);
                out.set(s + 1, r, a1);
                out.set(s + 2, r, a2);
                out.set(s + 3, r, a3);
            }
            s += 4;
        }
        while s < s1 {
            // remainder rows run the per-sample kernel's exact dot product
            let xrow = &x.data[s * n..(s + 1) * n];
            for r in r0..r1 {
                let w = &self.data[r * n..(r + 1) * n];
                let mut acc = 0.0;
                for (wk, xk) in w.iter().zip(xrow.iter()) {
                    acc += wk * xk;
                }
                out.set(s, r, acc);
            }
            s += 1;
        }
    }

    /// Batched backward: `out.row(s) += selfᵀ * d.row(s)` for every row
    /// of `d` — gradient propagation through a linear layer for a whole
    /// batch.
    ///
    /// Replays [`Matrix::matvec_t_add`]'s exact per-element additions —
    /// including its skip of zero gradient entries — per sample, so the
    /// result is bit-identical to the per-row loop. When all four
    /// interleaved samples have a nonzero gradient for an output neuron
    /// (the common case for tanh nets), the four updates share one pass
    /// over the weight row.
    ///
    /// The loop nest is **cache-blocked** over samples and weight
    /// *columns* (`k`): a k-tile of every weight row is reused across the
    /// sample block before moving on (see `NN_TILE_S`/`NN_TILE_R`/`NN_TILE_K`). The
    /// ascending-`r` addition chain into each output element is replayed
    /// completely inside its k-tile, so results stay bit-identical for
    /// every tile size. (Blocking over `r` would split those chains and
    /// change the bits, so `r` is never tiled here.)
    pub fn matmul_t_add_into(&self, d: &Matrix, out: &mut Matrix) {
        assert_eq!(d.cols, self.rows, "matmul_t: gradient width mismatch");
        assert_eq!(out.rows, d.rows, "matmul_t: output rows mismatch");
        assert_eq!(out.cols, self.cols, "matmul_t: output cols mismatch");
        if telemetry::enabled() {
            telemetry::counter_add("nn.flops", (2 * d.rows * self.rows * self.cols) as u64);
        }
        let (tile_s, _, tile_k) = kernel_tiles();
        let mut s0 = 0;
        while s0 < d.rows {
            let s1 = (s0 + tile_s).min(d.rows);
            let mut k0 = 0;
            while k0 < self.cols {
                let k1 = (k0 + tile_k).min(self.cols);
                self.t_add_block(d, out, s0, s1, k0, k1);
                k0 = k1;
            }
            s0 = s1;
        }
    }

    /// One `samples × k-columns` tile of [`Matrix::matmul_t_add_into`]:
    /// `out[s][k] += Σ_r d[s][r] * self[r][k]` for `s` in `s0..s1`, `k`
    /// in `k0..k1`, replaying [`Matrix::matvec_t_add`]'s ascending-`r`
    /// additions (including its zero-gradient skips) within the tile.
    fn t_add_block(
        &self,
        d: &Matrix,
        out: &mut Matrix,
        s0: usize,
        s1: usize,
        k0: usize,
        k1: usize,
    ) {
        let n = self.cols;
        let mut s = s0;
        while s + 4 <= s1 {
            let block = &mut out.data[s * n..(s + 4) * n];
            let (o0, rest) = block.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            let (o0, o1) = (&mut o0[k0..k1], &mut o1[k0..k1]);
            let (o2, o3) = (&mut o2[k0..k1], &mut o3[k0..k1]);
            let d0 = &d.data[s * d.cols..(s + 1) * d.cols];
            let d1 = &d.data[(s + 1) * d.cols..(s + 2) * d.cols];
            let d2 = &d.data[(s + 2) * d.cols..(s + 3) * d.cols];
            let d3 = &d.data[(s + 3) * d.cols..(s + 4) * d.cols];
            for r in 0..self.rows {
                let w = &self.data[r * n + k0..r * n + k1];
                let (y0, y1, y2, y3) = (d0[r], d1[r], d2[r], d3[r]);
                if y0 != 0.0 && y1 != 0.0 && y2 != 0.0 && y3 != 0.0 {
                    for (k, &wk) in w.iter().enumerate() {
                        o0[k] += y0 * wk;
                        o1[k] += y1 * wk;
                        o2[k] += y2 * wk;
                        o3[k] += y3 * wk;
                    }
                } else {
                    // per-sample zero skips, exactly as matvec_t_add
                    if y0 != 0.0 {
                        for (o, &wk) in o0.iter_mut().zip(w.iter()) {
                            *o += y0 * wk;
                        }
                    }
                    if y1 != 0.0 {
                        for (o, &wk) in o1.iter_mut().zip(w.iter()) {
                            *o += y1 * wk;
                        }
                    }
                    if y2 != 0.0 {
                        for (o, &wk) in o2.iter_mut().zip(w.iter()) {
                            *o += y2 * wk;
                        }
                    }
                    if y3 != 0.0 {
                        for (o, &wk) in o3.iter_mut().zip(w.iter()) {
                            *o += y3 * wk;
                        }
                    }
                }
            }
            s += 4;
        }
        while s < s1 {
            let row = &mut out.data[s * n + k0..s * n + k1];
            let drow = &d.data[s * d.cols..(s + 1) * d.cols];
            // remainder rows run the per-sample kernel's exact loop
            for (r, yr) in drow.iter().enumerate() {
                if *yr == 0.0 {
                    continue;
                }
                let w = &self.data[r * n + k0..r * n + k1];
                for (o, wk) in row.iter_mut().zip(w.iter()) {
                    *o += yr * wk;
                }
            }
            s += 1;
        }
    }

    /// `out += selfᵀ * y` where `y.len() == rows`; `out.len() == cols`.
    ///
    /// This is the backward pass through a linear layer: given the gradient
    /// w.r.t. the layer output, accumulate the gradient w.r.t. its input.
    pub fn matvec_t_add(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows, "matvec_t: input length mismatch");
        assert_eq!(out.len(), self.cols, "matvec_t: output length mismatch");
        for (r, yr) in y.iter().enumerate() {
            if *yr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, w) in out.iter_mut().zip(row.iter()) {
                *o += yr * w;
            }
        }
    }

    /// Rank-1 update `self += alpha * y xᵀ` (`y.len() == rows`,
    /// `x.len() == cols`) — the weight-gradient accumulation of backprop.
    pub fn add_outer(&mut self, alpha: f64, y: &[f64], x: &[f64]) {
        assert_eq!(y.len(), self.rows, "add_outer: rows mismatch");
        assert_eq!(x.len(), self.cols, "add_outer: cols mismatch");
        for (r, yr) in y.iter().enumerate() {
            let a = alpha * yr;
            if a == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, xi) in row.iter_mut().zip(x.iter()) {
                *w += a * xi;
            }
        }
    }

    /// `self += alpha * other` (same shape).
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_scaled: rows mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled: cols mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiply every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Set every entry to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of squared entries (used for gradient-norm clipping).
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let m = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matvec_known() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_manual_transpose() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 3];
        m.matvec_t_add(&[1.0, -1.0], &mut out);
        assert_eq!(out, vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 3.0], &[5.0, 7.0]);
        assert_eq!(m.as_slice(), &[10.0, 14.0, 30.0, 42.0]);
        m.add_outer(1.0, &[1.0, 0.0], &[1.0, 0.0]);
        assert_eq!(m.get(0, 0), 11.0);
    }

    #[test]
    fn scale_and_zero() {
        let mut m = Matrix::from_vec(1, 2, vec![2.0, -4.0]);
        m.scale(0.5);
        assert_eq!(m.as_slice(), &[1.0, -2.0]);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn sq_norm() {
        let m = Matrix::from_vec(1, 3, vec![1.0, 2.0, 2.0]);
        assert!((m.sq_norm() - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matvec: input length mismatch")]
    fn matvec_shape_checked() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn matmul_nt_bit_identical_to_matvec_rows() {
        // batch sizes covering the 8-wide and 4-wide interleaved blocks
        // and every remainder combination
        for batch in [1usize, 2, 3, 4, 5, 7, 8, 9, 11, 12, 13, 16, 17, 21] {
            let m = Matrix::from_fn(4, 6, |r, c| ((r * 7 + c) as f64 * 0.31).sin());
            let x = Matrix::from_fn(batch, 6, |r, c| ((r * 13 + c) as f64 * 0.53).cos());
            let mut out = Matrix::zeros(batch, 4);
            m.matmul_nt_into(&x, &mut out);
            for s in 0..batch {
                let mut per = vec![0.0; 4];
                m.matvec_into(x.row(s), &mut per);
                assert_eq!(out.row(s), per.as_slice(), "batch {batch} row {s}");
            }
        }
    }

    #[test]
    fn nt_block_tiling_is_bit_identical_at_any_tile_size() {
        // Drive the private block helper with deliberately awkward tile
        // bounds (including sizes indivisible by the 8/4 interleave) and
        // check against the per-sample kernel. This covers what env-var
        // overrides of NN_TILE_S/NN_TILE_R would exercise, without racing
        // on process-global state.
        let m = Matrix::from_fn(11, 9, |r, c| ((r * 7 + c) as f64 * 0.31).sin());
        let x = Matrix::from_fn(23, 9, |r, c| ((r * 13 + c) as f64 * 0.53).cos());
        for (tile_s, tile_r) in [(1, 1), (3, 2), (5, 11), (8, 4), (64, 64)] {
            let mut out = Matrix::zeros(23, 11);
            let mut s0 = 0;
            while s0 < x.rows {
                let s1 = (s0 + tile_s).min(x.rows);
                let mut r0 = 0;
                while r0 < m.rows {
                    let r1 = (r0 + tile_r).min(m.rows);
                    m.nt_block(&x, &mut out, s0, s1, r0, r1);
                    r0 = r1;
                }
                s0 = s1;
            }
            for s in 0..x.rows {
                let mut per = vec![0.0; 11];
                m.matvec_into(x.row(s), &mut per);
                assert_eq!(out.row(s), per.as_slice(), "tiles ({tile_s},{tile_r}) row {s}");
            }
        }
    }

    #[test]
    fn t_add_block_tiling_is_bit_identical_at_any_tile_size() {
        let m = Matrix::from_fn(7, 13, |r, c| ((r * 5 + c) as f64 * 0.71).sin());
        let d = Matrix::from_fn(18, 7, |r, c| {
            if (r + c) % 3 == 0 {
                0.0
            } else {
                ((r * 11 + c) as f64 * 0.91).cos()
            }
        });
        let mut reference = Matrix::from_fn(18, 13, |r, c| (r + c) as f64 * 0.01);
        let seed = reference.clone();
        for s in 0..d.rows {
            m.matvec_t_add(d.row(s), reference.row_mut(s));
        }
        for (tile_s, tile_k) in [(1, 1), (3, 5), (4, 13), (7, 2), (64, 256)] {
            let mut out = seed.clone();
            let mut s0 = 0;
            while s0 < d.rows {
                let s1 = (s0 + tile_s).min(d.rows);
                let mut k0 = 0;
                while k0 < m.cols {
                    let k1 = (k0 + tile_k).min(m.cols);
                    m.t_add_block(&d, &mut out, s0, s1, k0, k1);
                    k0 = k1;
                }
                s0 = s1;
            }
            assert_eq!(out, reference, "tiles ({tile_s},{tile_k})");
        }
    }

    #[test]
    fn tiled_kernels_cross_tile_boundaries_bit_identically() {
        // Shapes larger than the default 64×64×256 tiles, so the public
        // kernels actually take multi-tile paths.
        let m = Matrix::from_fn(70, 300, |r, c| ((r * 3 + c) as f64 * 0.17).sin());
        let x = Matrix::from_fn(70, 300, |r, c| ((r * 7 + c) as f64 * 0.29).cos());
        let mut out = Matrix::zeros(70, 70);
        m.matmul_nt_into(&x, &mut out);
        for s in 0..70 {
            let mut per = vec![0.0; 70];
            m.matvec_into(x.row(s), &mut per);
            assert_eq!(out.row(s), per.as_slice(), "forward row {s}");
        }
        let d = Matrix::from_fn(70, 70, |r, c| {
            if (r * c) % 5 == 0 {
                0.0
            } else {
                ((r + 2 * c) as f64 * 0.41).sin()
            }
        });
        let mut back = Matrix::zeros(70, 300);
        let mut back_ref = Matrix::zeros(70, 300);
        m.matmul_t_add_into(&d, &mut back);
        for s in 0..70 {
            m.matvec_t_add(d.row(s), back_ref.row_mut(s));
        }
        assert_eq!(back, back_ref);
    }

    #[test]
    fn matmul_t_add_bit_identical_to_matvec_t_rows() {
        for batch in [1usize, 2, 3, 4, 5, 7, 8, 9] {
            let m = Matrix::from_fn(4, 6, |r, c| ((r * 5 + c) as f64 * 0.71).sin());
            // include zero gradient entries to exercise the skip paths
            let d = Matrix::from_fn(batch, 4, |r, c| {
                if (r + c) % 3 == 0 {
                    0.0
                } else {
                    ((r * 11 + c) as f64 * 0.91).cos()
                }
            });
            let mut out = Matrix::from_fn(batch, 6, |r, c| (r + c) as f64 * 0.01);
            let mut reference = out.clone();
            m.matmul_t_add_into(&d, &mut out);
            for s in 0..batch {
                m.matvec_t_add(d.row(s), reference.row_mut(s));
            }
            assert_eq!(out, reference, "batch {batch}");
        }
    }
}
