//! Free numeric helpers shared by policy heads.

/// Numerically stable log-sum-exp.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    let s: f64 = xs.iter().map(|x| (x - m).exp()).sum();
    m + s.ln()
}

/// Softmax of `xs` (stable).
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    let lse = log_sum_exp(xs);
    xs.iter().map(|x| (x - lse).exp()).collect()
}

/// Log-softmax of `xs` (stable).
pub fn log_softmax(xs: &[f64]) -> Vec<f64> {
    let lse = log_sum_exp(xs);
    xs.iter().map(|x| x - lse).collect()
}

/// Softmax of `xs` written into `out` (stable, no allocation).
///
/// Performs the same per-element operations in the same order as
/// [`softmax`], so batched callers iterating row-by-row produce results
/// bit-identical to the per-sample path.
pub fn softmax_into(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "softmax_into: length mismatch");
    let lse = log_sum_exp(xs);
    for (o, x) in out.iter_mut().zip(xs.iter()) {
        *o = (x - lse).exp();
    }
}

/// Log-softmax of `xs` written into `out` (stable, no allocation).
///
/// Bit-identical to [`log_softmax`] element-for-element.
pub fn log_softmax_into(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "log_softmax_into: length mismatch");
    let lse = log_sum_exp(xs);
    for (o, x) in out.iter_mut().zip(xs.iter()) {
        *o = x - lse;
    }
}

/// Vectorized identity: copy `zs` into `out`.
///
/// Exists so batched layer kernels can dispatch every activation through the
/// same slice interface; see [`tanh_into`] / [`relu_into`].
pub fn linear_into(zs: &[f64], out: &mut [f64]) {
    assert_eq!(zs.len(), out.len(), "linear_into: length mismatch");
    out.copy_from_slice(zs);
}

/// Vectorized tanh over a slice.
///
/// Applies `f64::tanh` to each element in order — bit-identical to calling
/// the scalar activation per element, which keeps batched forward passes
/// bit-identical to per-sample forwards.
pub fn tanh_into(zs: &[f64], out: &mut [f64]) {
    assert_eq!(zs.len(), out.len(), "tanh_into: length mismatch");
    for (o, z) in out.iter_mut().zip(zs.iter()) {
        *o = z.tanh();
    }
}

/// Vectorized ReLU over a slice (`max(z, 0.0)` per element, in order).
pub fn relu_into(zs: &[f64], out: &mut [f64]) {
    assert_eq!(zs.len(), out.len(), "relu_into: length mismatch");
    for (o, z) in out.iter_mut().zip(zs.iter()) {
        *o = z.max(0.0);
    }
}

/// Clamp `x` into `[lo, hi]`.
#[inline]
pub fn clip(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

/// Linearly map `x` from `[-1, 1]` to `[lo, hi]`, clamping outside.
#[inline]
pub fn scale_from_unit(x: f64, lo: f64, hi: f64) -> f64 {
    clip(lo + (x + 1.0) * 0.5 * (hi - lo), lo, hi)
}

/// Inverse of [`scale_from_unit`] (without clamping).
#[inline]
pub fn scale_to_unit(v: f64, lo: f64, hi: f64) -> f64 {
    2.0 * (v - lo) / (hi - lo) - 1.0
}

/// Mean of a slice; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Ascending sorted copy of `xs`; errors on NaN (any other float,
/// including infinities, orders totally). The shared sort-and-validate
/// step behind [`percentile`] / [`try_percentile`] and CDF builders such
/// as `adversary::report::qoe_cdf`.
pub fn try_sorted(xs: &[f64]) -> Result<Vec<f64>, String> {
    if xs.iter().any(|x| x.is_nan()) {
        return Err("NaN in percentile input".to_string());
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected above"));
    Ok(v)
}

/// `p`-th percentile (0..=100) by linear interpolation on sorted data.
/// Panics on empty input, NaN data, or a rank outside `[0, 100]`; see
/// [`try_percentile`] for the non-panicking variant (the workspace `try_*`
/// convention) used on untrusted or possibly-empty inputs.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    match try_percentile(xs, p) {
        Ok(v) => v,
        Err(msg) => panic!("{msg}"),
    }
}

/// `p`-th percentile (0..=100) by linear interpolation on sorted data,
/// returning a descriptive error instead of panicking on empty input,
/// NaN data, or a non-finite / out-of-range rank.
pub fn try_percentile(xs: &[f64], p: f64) -> Result<f64, String> {
    if xs.is_empty() {
        return Err("percentile of empty slice".to_string());
    }
    if !p.is_finite() || !(0.0..=100.0).contains(&p) {
        return Err(format!("percentile rank {p} outside [0, 100]"));
    }
    let v = try_sorted(xs)?;
    let rank = (p / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    Ok(if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let xs = [0.3, -1.2, 2.0, 0.0];
        let ls = log_softmax(&xs);
        let p = softmax(&xs);
        for (l, q) in ls.iter().zip(p.iter()) {
            assert!((l.exp() - q).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_scaling_roundtrip() {
        for &v in &[0.8, 2.0, 4.8] {
            let u = scale_to_unit(v, 0.8, 4.8);
            assert!((scale_from_unit(u, 0.8, 4.8) - v).abs() < 1e-12);
        }
        // out-of-range unit values clamp
        assert_eq!(scale_from_unit(5.0, 0.8, 4.8), 4.8);
        assert_eq!(scale_from_unit(-5.0, 0.8, 4.8), 0.8);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn into_variants_bit_identical_to_allocating() {
        let xs = [0.3, -1.2, 2.0, 0.0, 1e3];
        let mut out = [0.0; 5];
        softmax_into(&xs, &mut out);
        assert_eq!(out.to_vec(), softmax(&xs));
        log_softmax_into(&xs, &mut out);
        assert_eq!(out.to_vec(), log_softmax(&xs));
        tanh_into(&xs, &mut out);
        assert_eq!(out.to_vec(), xs.iter().map(|z| z.tanh()).collect::<Vec<_>>());
        relu_into(&xs, &mut out);
        assert_eq!(out.to_vec(), xs.iter().map(|z| z.max(0.0)).collect::<Vec<_>>());
        linear_into(&xs, &mut out);
        assert_eq!(out, xs);
    }

    #[test]
    fn try_percentile_matches_panicking_api_and_reports_errors() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        for p in [0.0, 5.0, 50.0, 95.0, 100.0] {
            assert_eq!(try_percentile(&xs, p).unwrap(), percentile(&xs, p));
        }
        assert!(try_percentile(&[], 50.0).unwrap_err().contains("empty"));
        assert!(try_percentile(&[1.0, f64::NAN], 50.0).unwrap_err().contains("NaN"));
        assert!(try_percentile(&xs, 101.0).unwrap_err().contains("outside"));
        assert!(try_percentile(&xs, f64::NAN).unwrap_err().contains("outside"));
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_still_panics_on_empty() {
        percentile(&[], 50.0);
    }

    #[test]
    fn try_sorted_sorts_and_rejects_nan() {
        assert_eq!(try_sorted(&[3.0, 1.0, 2.0]).unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(try_sorted(&[1.0, f64::NAN]).is_err());
        assert!(try_sorted(&[]).unwrap().is_empty());
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
