//! First-order optimizers over `(Mlp, MlpGrads)` pairs.

use crate::matrix::Matrix;
use crate::mlp::{Mlp, MlpGrads};
use serde::{Deserialize, Serialize};

/// Plain stochastic gradient descent: `θ ← θ − lr · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Sgd { lr }
    }

    /// Apply one descent step (`grads` holds dL/dθ for the loss to minimize).
    pub fn step(&self, net: &mut Mlp, grads: &MlpGrads) {
        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            layer.w.add_scaled(-self.lr, &grads.w[li]);
            for (b, g) in layer.b.iter_mut().zip(grads.b[li].iter()) {
                *b -= self.lr * g;
            }
        }
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
///
/// State is shaped like the network it was created for; do not reuse across
/// differently shaped networks. Serializable (moments included) so training
/// can checkpoint and resume bit-identically.
///
/// One [`Adam::step`] consumes a *summed* gradient buffer — whether that sum
/// came from a serial per-sample loop, [`crate::Mlp::grads_batch`], or a
/// fixed-order parallel merge is invisible to the optimizer, which is what
/// lets the batched and parallel update paths stay bit-identical.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// Exponential decay for the first-moment estimate.
    pub beta1: f64,
    /// Exponential decay for the second-moment estimate.
    pub beta2: f64,
    /// Denominator fuzz guarding against division by zero.
    pub eps: f64,
    t: u64,
    m: MlpGrads,
    v: MlpGrads,
}

impl Adam {
    /// Adam with standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(net: &Mlp, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: MlpGrads::zeros_like(net),
            v: MlpGrads::zeros_like(net),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one Adam step (`grads` holds dL/dθ for the loss to minimize).
    pub fn step(&mut self, net: &mut Mlp, grads: &MlpGrads) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            update_matrix(
                &mut layer.w,
                &grads.w[li],
                &mut self.m.w[li],
                &mut self.v.w[li],
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                b1t,
                b2t,
            );
            for i in 0..layer.b.len() {
                let g = grads.b[li][i];
                let m = &mut self.m.b[li][i];
                let v = &mut self.v.b[li][i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                layer.b[i] -= self.lr * (*m / b1t) / ((*v / b2t).sqrt() + self.eps);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn update_matrix(
    w: &mut Matrix,
    g: &Matrix,
    m: &mut Matrix,
    v: &mut Matrix,
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    b1t: f64,
    b2t: f64,
) {
    let (wd, gd) = (w.as_mut_slice(), g.as_slice());
    let (md, vd) = (m.as_mut_slice(), v.as_mut_slice());
    for i in 0..wd.len() {
        md[i] = beta1 * md[i] + (1.0 - beta1) * gd[i];
        vd[i] = beta2 * vd[i] + (1.0 - beta2) * gd[i] * gd[i];
        wd[i] -= lr * (md[i] / b1t) / ((vd[i] / b2t).sqrt() + eps);
    }
}

/// Adam over a bare parameter vector (used for the Gaussian policy's
/// state-independent log-standard-deviations, which live outside any MLP).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamVec {
    /// Learning rate.
    pub lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamVec {
    /// Adam state for a parameter vector of length `len` with standard betas.
    pub fn new(len: usize, lr: f64) -> Self {
        AdamVec {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Apply one Adam step to `params` given `grads`.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "AdamVec shape mismatch");
        assert_eq!(grads.len(), self.m.len(), "AdamVec grads mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            params[i] -= self.lr * (self.m[i] / b1t) / ((self.v[i] / b2t).sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::mlp::Mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Train y = sin-ish target from a fixed dataset; loss must fall a lot.
    fn regression_loss_after_training(use_adam: bool) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(123);
        let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, &mut rng);
        let data: Vec<(f64, f64)> = (0..64)
            .map(|i| {
                let x = -1.0 + 2.0 * i as f64 / 63.0;
                (x, (3.0 * x).sin() * 0.5)
            })
            .collect();
        let loss = |net: &Mlp| -> f64 {
            data.iter()
                .map(|(x, y)| {
                    let o = net.forward(&[*x])[0];
                    (o - y) * (o - y)
                })
                .sum::<f64>()
                / data.len() as f64
        };
        let initial = loss(&net);
        let mut adam = Adam::new(&net, 0.01);
        let sgd = Sgd::new(0.05);
        let mut grads = MlpGrads::zeros_like(&net);
        let mut cache = net.new_cache();
        for _ in 0..500 {
            grads.zero();
            for (x, y) in &data {
                let o = net.forward_cached(&[*x], &mut cache)[0];
                net.backward(&cache, &[2.0 * (o - y) / data.len() as f64], &mut grads);
            }
            if use_adam {
                adam.step(&mut net, &grads);
            } else {
                sgd.step(&mut net, &grads);
            }
        }
        (initial, loss(&net))
    }

    #[test]
    fn adam_fits_regression() {
        let (initial, fin) = regression_loss_after_training(true);
        assert!(fin < initial * 0.05, "initial {initial} final {fin}");
        assert!(fin < 0.005, "final {fin}");
    }

    #[test]
    fn sgd_reduces_loss() {
        let (initial, fin) = regression_loss_after_training(false);
        assert!(fin < initial * 0.5, "initial {initial} final {fin}");
    }

    #[test]
    fn adam_vec_minimizes_quadratic() {
        let mut opt = AdamVec::new(2, 0.1);
        let mut p = vec![5.0, -3.0];
        for _ in 0..500 {
            let g: Vec<f64> = p.iter().map(|x| 2.0 * x).collect();
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 1e-2 && p[1].abs() < 1e-2, "{p:?}");
    }

    #[test]
    fn adam_step_counter() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Mlp::new(&[2, 2], Activation::Linear, &mut rng);
        let g = MlpGrads::zeros_like(&net);
        let mut adam = Adam::new(&net, 1e-3);
        assert_eq!(adam.steps(), 0);
        adam.step(&mut net, &g);
        adam.step(&mut net, &g);
        assert_eq!(adam.steps(), 2);
    }
}
