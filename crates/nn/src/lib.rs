//! Minimal dense neural networks for tiny reinforcement-learning policies.
//!
//! The adversaries and protocols in this workspace use multi-layer
//! perceptrons with at most two hidden layers and a few dozen neurons, per
//! the HotNets '19 paper ("Robustifying Network Protocols with Adversarial
//! Examples"). A full deep-learning framework would be overkill and would
//! drag in heavyweight dependencies, so this crate implements exactly what
//! is needed, deterministically and in pure Rust:
//!
//! * [`Matrix`] — a small row-major dense matrix with the handful of BLAS-1/2
//!   operations backprop requires.
//! * [`Dense`] / [`Mlp`] — fully connected layers with tanh/ReLU/linear
//!   activations, forward passes, and reverse-mode gradient computation.
//! * [`MlpGrads`] — a gradient buffer shaped like an [`Mlp`].
//! * [`Adam`] / [`Sgd`] — optimizers operating on `(Mlp, MlpGrads)` pairs.
//! * [`ops`] — free functions (softmax, log-sum-exp, clipping) shared by the
//!   RL crate's policy heads.
//!
//! Everything is `f64`: the networks are tiny, so precision is cheap and it
//! keeps finite-difference gradient checks tight.
//!
//! # Example
//!
//! ```
//! use nn::{Mlp, Activation, Adam, MlpGrads};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // 4 inputs -> 8 tanh -> 2 linear outputs
//! let mut net = Mlp::new(&[4, 8, 2], Activation::Tanh, &mut rng);
//! let y = net.forward(&[0.1, -0.2, 0.3, 0.0]);
//! assert_eq!(y.len(), 2);
//!
//! // One step of gradient descent on L = sum(y): dL/dy = [1, 1].
//! let mut grads = MlpGrads::zeros_like(&net);
//! let mut cache = net.new_cache();
//! net.forward_cached(&[0.1, -0.2, 0.3, 0.0], &mut cache);
//! net.backward(&cache, &[1.0, 1.0], &mut grads);
//! let mut adam = Adam::new(&net, 1e-3);
//! adam.step(&mut net, &grads);
//! ```
//!
//! # Batched kernels and determinism
//!
//! [`Mlp::forward_batch`] / [`Mlp::grads_batch`] process row-major sample
//! batches through the exact per-row kernels of the serial path, so batched
//! results are **bit-identical** to per-sample loops — batching amortizes
//! layer traversal and removes per-sample allocation without ever changing
//! floating-point evaluation order. See `docs/PERF.md` at the workspace root
//! for the full performance model.

#![warn(missing_docs)]

pub mod init;
pub mod layer;
pub mod matrix;
pub mod mlp;
pub mod ops;
pub mod optim;

pub use layer::{Activation, Dense};
pub use matrix::Matrix;
pub use mlp::{BatchCache, Cache, Mlp, MlpGrads};
pub use optim::{Adam, Sgd};
