//! Multi-layer perceptrons with reverse-mode gradients.

use crate::layer::{Activation, Dense};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A feed-forward stack of [`Dense`] layers.
///
/// Hidden layers share one activation; the output layer is always linear so
/// policy/value heads can interpret raw outputs (logits, Gaussian means,
/// state values) and supply the loss gradient directly to [`Mlp::backward`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Forward-pass scratch space reused across calls to avoid per-step
/// allocation in the training hot loop.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Input fed to each layer (`inputs[0]` is the network input).
    inputs: Vec<Vec<f64>>,
    /// Pre-activations `z = W x + b` of each layer.
    preacts: Vec<Vec<f64>>,
}

/// Gradient accumulator shaped like an [`Mlp`]. Serializable so optimizer
/// moments (which share this shape) can be checkpointed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpGrads {
    pub w: Vec<Matrix>,
    pub b: Vec<Vec<f64>>,
}

impl Mlp {
    /// Build an MLP from layer sizes, e.g. `&[110, 32, 16, 1]`.
    ///
    /// `hidden_act` is used for every layer except the last, which is linear.
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], hidden_act: Activation, rng: &mut StdRng) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let act = if i + 2 == sizes.len() { Activation::Linear } else { hidden_act };
            layers.push(Dense::new(sizes[i], sizes[i + 1], act, rng));
        }
        Mlp { layers }
    }

    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("non-empty").inputs()
    }

    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").outputs()
    }

    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.rows() * l.w.cols() + l.b.len()).sum()
    }

    /// Allocate a cache sized for this network.
    /// `true` iff every weight and bias is a finite number — the
    /// post-update divergence check in `rl`'s training guard.
    pub fn all_finite(&self) -> bool {
        self.layers.iter().all(|l| {
            l.w.as_slice().iter().all(|v| v.is_finite()) && l.b.iter().all(|v| v.is_finite())
        })
    }

    pub fn new_cache(&self) -> Cache {
        Cache {
            inputs: self.layers.iter().map(|l| vec![0.0; l.inputs()]).collect(),
            preacts: self.layers.iter().map(|l| vec![0.0; l.outputs()]).collect(),
        }
    }

    /// Plain forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cache = self.new_cache();
        self.forward_cached(x, &mut cache)
    }

    /// Forward pass recording intermediates for a later [`Mlp::backward`].
    pub fn forward_cached(&self, x: &[f64], cache: &mut Cache) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "MLP input dimension mismatch");
        if cache.inputs.len() != self.layers.len() {
            *cache = self.new_cache();
        }
        let mut cur = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            cache.inputs[i].copy_from_slice(&cur);
            let mut a = vec![0.0; layer.outputs()];
            layer.forward_into(&cur, &mut cache.preacts[i], &mut a);
            cur = a;
        }
        cur
    }

    /// Reverse-mode pass: given `dL/d(output)`, accumulate parameter
    /// gradients into `grads` and return `dL/d(input)`.
    ///
    /// `cache` must come from the immediately preceding
    /// [`Mlp::forward_cached`] call on the same input.
    pub fn backward(&self, cache: &Cache, dl_dout: &[f64], grads: &mut MlpGrads) -> Vec<f64> {
        assert_eq!(dl_dout.len(), self.output_dim(), "gradient dimension mismatch");
        assert_eq!(grads.w.len(), self.layers.len(), "grads shape mismatch");
        let mut delta = dl_dout.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            // delta currently holds dL/da for this layer; convert to dL/dz.
            for (d, z) in delta.iter_mut().zip(cache.preacts[i].iter()) {
                *d *= layer.act.derivative(*z);
            }
            grads.w[i].add_outer(1.0, &delta, &cache.inputs[i]);
            for (gb, d) in grads.b[i].iter_mut().zip(delta.iter()) {
                *gb += d;
            }
            let mut prev = vec![0.0; layer.inputs()];
            layer.w.matvec_t_add(&delta, &mut prev);
            delta = prev;
        }
        delta
    }
}

impl MlpGrads {
    /// Zero gradients with the same shape as `net`.
    pub fn zeros_like(net: &Mlp) -> Self {
        MlpGrads {
            w: net.layers().iter().map(|l| Matrix::zeros(l.w.rows(), l.w.cols())).collect(),
            b: net.layers().iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Reset to zero in place.
    pub fn zero(&mut self) {
        for w in &mut self.w {
            w.fill_zero();
        }
        for b in &mut self.b {
            b.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Multiply every gradient by `alpha` (e.g. 1/batch).
    pub fn scale(&mut self, alpha: f64) {
        for w in &mut self.w {
            w.scale(alpha);
        }
        for b in &mut self.b {
            b.iter_mut().for_each(|v| *v *= alpha);
        }
    }

    /// Squared L2 norm of all gradients.
    pub fn sq_norm(&self) -> f64 {
        let w: f64 = self.w.iter().map(|m| m.sq_norm()).sum();
        let b: f64 = self.b.iter().flat_map(|v| v.iter()).map(|x| x * x).sum();
        w + b
    }

    /// Scale gradients down so the global L2 norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.sq_norm().sqrt();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Finite-difference gradient check on a scalar loss L = Σ c_k y_k.
    fn grad_check(sizes: &[usize], act: Activation, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(sizes, act, &mut rng);
        let x: Vec<f64> = (0..sizes[0]).map(|i| (i as f64 * 0.37).sin()).collect();
        let coeffs: Vec<f64> = (0..*sizes.last().unwrap()).map(|i| 1.0 + 0.5 * i as f64).collect();
        let loss =
            |n: &Mlp| -> f64 { n.forward(&x).iter().zip(coeffs.iter()).map(|(y, c)| y * c).sum() };

        let mut cache = net.new_cache();
        net.forward_cached(&x, &mut cache);
        let mut grads = MlpGrads::zeros_like(&net);
        let dl_din = net.backward(&cache, &coeffs, &mut grads);

        let h = 1e-6;
        // check a spread of weight entries in every layer
        for li in 0..net.layers().len() {
            let (rows, cols) = (net.layers()[li].w.rows(), net.layers()[li].w.cols());
            for &(r, c) in &[(0, 0), (rows - 1, cols - 1), (rows / 2, cols / 2)] {
                let mut plus = net.clone();
                let v = plus.layers_mut()[li].w.get(r, c);
                plus.layers_mut()[li].w.set(r, c, v + h);
                let mut minus = net.clone();
                minus.layers_mut()[li].w.set(r, c, v - h);
                let fd = (loss(&plus) - loss(&minus)) / (2.0 * h);
                let an = grads.w[li].get(r, c);
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                    "layer {li} w[{r},{c}]: fd={fd} analytic={an}"
                );
            }
            // one bias entry
            let mut plus = net.clone();
            plus.layers_mut()[li].b[0] += h;
            let mut minus = net.clone();
            minus.layers_mut()[li].b[0] -= h;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * h);
            let an = grads.b[li][0];
            assert!((fd - an).abs() < 1e-4 * (1.0 + an.abs()), "layer {li} bias: fd={fd} an={an}");
        }
        // input gradient
        for i in 0..x.len().min(3) {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let lp: f64 = net.forward(&xp).iter().zip(&coeffs).map(|(y, c)| y * c).sum();
            let lm: f64 = net.forward(&xm).iter().zip(&coeffs).map(|(y, c)| y * c).sum();
            let fd = (lp - lm) / (2.0 * h);
            assert!((fd - dl_din[i]).abs() < 1e-4 * (1.0 + fd.abs()), "input grad {i}");
        }
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        grad_check(&[5, 8, 3], Activation::Tanh, 11);
    }

    #[test]
    fn gradients_match_finite_differences_deep() {
        grad_check(&[4, 16, 8, 2], Activation::Tanh, 12);
    }

    #[test]
    fn gradients_match_finite_differences_linear() {
        grad_check(&[3, 4, 2], Activation::Linear, 13);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[4, 8, 2], Activation::Tanh, &mut rng);
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn grads_zero_and_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut rng);
        let mut g = MlpGrads::zeros_like(&net);
        let mut cache = net.new_cache();
        net.forward_cached(&[1.0, -1.0], &mut cache);
        net.backward(&cache, &[1.0], &mut g);
        assert!(g.sq_norm() > 0.0);
        g.scale(0.0);
        assert_eq!(g.sq_norm(), 0.0);
    }

    #[test]
    fn clip_global_norm_caps_norm() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut rng);
        let mut g = MlpGrads::zeros_like(&net);
        let mut cache = net.new_cache();
        net.forward_cached(&[5.0, -5.0], &mut cache);
        net.backward(&cache, &[100.0], &mut g);
        let pre = g.clip_global_norm(0.5);
        assert!(pre > 0.5);
        assert!((g.sq_norm().sqrt() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(77);
        let net = Mlp::new(&[6, 10, 4], Activation::Relu, &mut rng);
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = [0.3, -0.1, 0.9, 0.0, -2.0, 1.5];
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn forward_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Mlp::new(&[3, 5, 2], Activation::Tanh, &mut rng);
        let x = [0.1, 0.2, 0.3];
        assert_eq!(net.forward(&x), net.forward(&x));
    }
}
