//! Multi-layer perceptrons with reverse-mode gradients.

use crate::layer::{Activation, Dense};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A feed-forward stack of [`Dense`] layers.
///
/// Hidden layers share one activation; the output layer is always linear so
/// policy/value heads can interpret raw outputs (logits, Gaussian means,
/// state values) and supply the loss gradient directly to [`Mlp::backward`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Forward-pass scratch space reused across calls to avoid per-step
/// allocation in the training hot loop.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Input fed to each layer (`inputs[0]` is the network input).
    inputs: Vec<Vec<f64>>,
    /// Pre-activations `z = W x + b` of each layer.
    preacts: Vec<Vec<f64>>,
}

/// Scratch space for batched forward/backward passes.
///
/// The batched analogue of [`Cache`]: one row-major matrix per layer, one
/// row per sample. Reused across minibatches to avoid reallocating in the
/// PPO update hot loop; [`Mlp::forward_batch_cached`] resizes it on demand
/// when the batch size changes.
#[derive(Debug, Clone, Default)]
pub struct BatchCache {
    /// Input rows fed to each layer (`inputs[0]` holds the network input).
    inputs: Vec<Matrix>,
    /// Pre-activation rows `z = W x + b` of each layer.
    preacts: Vec<Matrix>,
}

/// Gradient accumulator shaped like an [`Mlp`]. Serializable so optimizer
/// moments (which share this shape) can be checkpointed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpGrads {
    /// Weight gradients, one matrix per layer.
    pub w: Vec<Matrix>,
    /// Bias gradients, one vector per layer.
    pub b: Vec<Vec<f64>>,
}

impl Mlp {
    /// Build an MLP from layer sizes, e.g. `&[110, 32, 16, 1]`.
    ///
    /// `hidden_act` is used for every layer except the last, which is linear.
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], hidden_act: Activation, rng: &mut StdRng) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let act = if i + 2 == sizes.len() { Activation::Linear } else { hidden_act };
            layers.push(Dense::new(sizes[i], sizes[i + 1], act, rng));
        }
        Mlp { layers }
    }

    /// Input dimension of the first layer.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("non-empty").inputs()
    }

    /// Output dimension of the last layer.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").outputs()
    }

    /// The layer stack, input-first.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.rows() * l.w.cols() + l.b.len()).sum()
    }

    /// `true` iff every weight and bias is a finite number — the
    /// post-update divergence check in `rl`'s training guard.
    pub fn all_finite(&self) -> bool {
        self.layers.iter().all(|l| {
            l.w.as_slice().iter().all(|v| v.is_finite()) && l.b.iter().all(|v| v.is_finite())
        })
    }

    /// Allocate a per-sample cache sized for this network.
    pub fn new_cache(&self) -> Cache {
        Cache {
            inputs: self.layers.iter().map(|l| vec![0.0; l.inputs()]).collect(),
            preacts: self.layers.iter().map(|l| vec![0.0; l.outputs()]).collect(),
        }
    }

    /// Allocate a batched cache for `batch` samples.
    pub fn new_batch_cache(&self, batch: usize) -> BatchCache {
        BatchCache {
            inputs: self.layers.iter().map(|l| Matrix::zeros(batch, l.inputs())).collect(),
            preacts: self.layers.iter().map(|l| Matrix::zeros(batch, l.outputs())).collect(),
        }
    }

    /// Plain forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cache = self.new_cache();
        self.forward_cached(x, &mut cache)
    }

    /// Forward pass recording intermediates for a later [`Mlp::backward`].
    pub fn forward_cached(&self, x: &[f64], cache: &mut Cache) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "MLP input dimension mismatch");
        if cache.inputs.len() != self.layers.len() {
            *cache = self.new_cache();
        }
        let mut cur = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            cache.inputs[i].copy_from_slice(&cur);
            let mut a = vec![0.0; layer.outputs()];
            layer.forward_into(&cur, &mut cache.preacts[i], &mut a);
            cur = a;
        }
        cur
    }

    /// Reverse-mode pass: given `dL/d(output)`, accumulate parameter
    /// gradients into `grads` and return `dL/d(input)`.
    ///
    /// `cache` must come from the immediately preceding
    /// [`Mlp::forward_cached`] call on the same input.
    pub fn backward(&self, cache: &Cache, dl_dout: &[f64], grads: &mut MlpGrads) -> Vec<f64> {
        assert_eq!(dl_dout.len(), self.output_dim(), "gradient dimension mismatch");
        assert_eq!(grads.w.len(), self.layers.len(), "grads shape mismatch");
        if telemetry::enabled() {
            let params: usize = self.layers.iter().map(|l| l.w.rows() * l.w.cols()).sum();
            telemetry::counter_add("nn.flops", (2 * params) as u64);
        }
        let mut delta = dl_dout.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            // delta currently holds dL/da for this layer; convert to dL/dz.
            for (d, z) in delta.iter_mut().zip(cache.preacts[i].iter()) {
                *d *= layer.act.derivative(*z);
            }
            grads.w[i].add_outer(1.0, &delta, &cache.inputs[i]);
            for (gb, d) in grads.b[i].iter_mut().zip(delta.iter()) {
                *gb += d;
            }
            let mut prev = vec![0.0; layer.inputs()];
            layer.w.matvec_t_add(&delta, &mut prev);
            delta = prev;
        }
        delta
    }

    /// Batched forward pass: each row of `x` is one sample, each row of the
    /// result is the matching network output.
    ///
    /// Bit-identical to calling [`Mlp::forward`] per row — see
    /// [`Mlp::forward_batch_cached`] for the determinism argument.
    ///
    /// ```
    /// use nn::{Activation, Matrix, Mlp};
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let net = Mlp::new(&[3, 8, 2], Activation::Tanh, &mut rng);
    /// let x = Matrix::from_fn(5, 3, |s, c| (s * 3 + c) as f64 * 0.1);
    /// let y = net.forward_batch(&x);
    /// assert_eq!((y.rows(), y.cols()), (5, 2));
    /// // every batched row matches the per-sample path, bit for bit
    /// for s in 0..5 {
    ///     assert_eq!(y.row(s), net.forward(x.row(s)).as_slice());
    /// }
    /// ```
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        let mut cache = self.new_batch_cache(x.rows());
        self.forward_batch_cached(x, &mut cache)
    }

    /// Batched forward pass recording intermediates for a later
    /// [`Mlp::grads_batch`].
    ///
    /// # Determinism
    ///
    /// Each sample row is pushed through the exact per-row kernels of the
    /// serial path ([`Dense::forward_batch_into`] reuses
    /// [`Matrix::matvec_into`] and the scalar activation per element), so
    /// outputs are bit-identical to per-sample [`Mlp::forward_cached`]
    /// calls. Batching buys amortized layer traversal and removes the
    /// per-sample `Vec` allocations of the serial path — it never changes
    /// floating-point evaluation order within a sample.
    pub fn forward_batch_cached(&self, x: &Matrix, cache: &mut BatchCache) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "MLP batch input dimension mismatch");
        let batch = x.rows();
        if cache.inputs.len() != self.layers.len()
            || cache.inputs.first().map(|m| m.rows()) != Some(batch)
        {
            *cache = self.new_batch_cache(batch);
        }
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            cache.inputs[i].as_mut_slice().copy_from_slice(cur.as_slice());
            let mut a = Matrix::zeros(batch, layer.outputs());
            layer.forward_batch_into(&cur, &mut cache.preacts[i], &mut a);
            cur = a;
        }
        cur
    }

    /// Batched reverse-mode pass: given per-sample output gradients (one row
    /// of `dl_dout` per sample), accumulate the summed parameter gradients
    /// into `grads`.
    ///
    /// `cache` must come from the immediately preceding
    /// [`Mlp::forward_batch_cached`] call on the same inputs. Unlike
    /// [`Mlp::backward`], no input gradient is returned: no training path
    /// needs it, and for input-heavy nets skipping the first layer's
    /// delta propagation removes a large share of the backward work.
    ///
    /// # Determinism
    ///
    /// Accumulation into each parameter element happens in sample order
    /// (sample 0, 1, 2, …) via the same [`Matrix::add_outer`] kernel the
    /// serial path uses, and layers touch disjoint parameter elements — so
    /// the summed gradients are bit-identical to running [`Mlp::backward`]
    /// per sample into the same accumulator, despite floating-point
    /// addition being non-associative. Activation derivatives come from
    /// the stored activations ([`Activation::derivative_from_output`]),
    /// which produces the same bits as the serial z-based form without
    /// recomputing transcendentals.
    ///
    /// ```
    /// use nn::{Activation, Matrix, Mlp, MlpGrads};
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let net = Mlp::new(&[3, 8, 2], Activation::Tanh, &mut rng);
    /// let x = Matrix::from_fn(4, 3, |s, c| (s + c) as f64 * 0.2);
    ///
    /// // forward with a reusable cache, then push a loss gradient back
    /// let mut cache = net.new_batch_cache(4);
    /// let y = net.forward_batch_cached(&x, &mut cache);
    /// let dl = Matrix::from_fn(4, 2, |s, c| y.get(s, c) - 0.5); // d/dy of ½Σ(y-0.5)²
    /// let mut grads = MlpGrads::zeros_like(&net);
    /// net.grads_batch(&cache, &dl, &mut grads);
    /// assert!(grads.sq_norm() > 0.0);
    /// ```
    pub fn grads_batch(&self, cache: &BatchCache, dl_dout: &Matrix, grads: &mut MlpGrads) {
        let batch = dl_dout.rows();
        assert_eq!(dl_dout.cols(), self.output_dim(), "batch gradient dimension mismatch");
        assert_eq!(grads.w.len(), self.layers.len(), "grads shape mismatch");
        assert_eq!(cache.inputs.len(), self.layers.len(), "batch cache shape mismatch");
        assert_eq!(cache.inputs[0].rows(), batch, "batch cache batch-size mismatch");
        if telemetry::enabled() {
            let params: usize = self.layers.iter().map(|l| l.w.rows() * l.w.cols()).sum();
            telemetry::counter_add("nn.flops", (2 * batch * params) as u64);
        }
        let mut delta = dl_dout.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            // delta rows hold dL/da for this layer; convert to dL/dz. For
            // hidden layers the next layer's cached input *is* this
            // layer's activation output, giving the transcendental-free
            // derivative form.
            if i + 1 < self.layers.len() {
                for s in 0..batch {
                    let ar = cache.inputs[i + 1].row(s);
                    for (d, a) in delta.row_mut(s).iter_mut().zip(ar.iter()) {
                        *d *= layer.act.derivative_from_output(*a);
                    }
                }
            } else {
                for s in 0..batch {
                    let zs = cache.preacts[i].row(s);
                    for (d, z) in delta.row_mut(s).iter_mut().zip(zs.iter()) {
                        *d *= layer.act.derivative(*z);
                    }
                }
            }
            // Parameter accumulation in sample order keeps the per-element
            // addition sequence identical to the serial per-sample loop.
            for s in 0..batch {
                grads.w[i].add_outer(1.0, delta.row(s), cache.inputs[i].row(s));
                for (gb, d) in grads.b[i].iter_mut().zip(delta.row(s).iter()) {
                    *gb += d;
                }
            }
            if i == 0 {
                break;
            }
            let mut prev = Matrix::zeros(batch, layer.inputs());
            layer.w.matmul_t_add_into(&delta, &mut prev);
            delta = prev;
        }
    }
}

impl MlpGrads {
    /// Zero gradients with the same shape as `net`.
    pub fn zeros_like(net: &Mlp) -> Self {
        MlpGrads {
            w: net.layers().iter().map(|l| Matrix::zeros(l.w.rows(), l.w.cols())).collect(),
            b: net.layers().iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Reset to zero in place.
    pub fn zero(&mut self) {
        for w in &mut self.w {
            w.fill_zero();
        }
        for b in &mut self.b {
            b.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Elementwise `self += other` (same shape).
    ///
    /// The merge primitive for parallel gradient accumulation: workers
    /// compute per-sample gradient buffers and the coordinator folds them
    /// into one accumulator **in global sample order**, so the sum is
    /// bit-identical to serial accumulation no matter how many workers
    /// produced the pieces (floating-point addition is non-associative, so
    /// the fold order — not the worker count — determines the bits).
    pub fn add_assign(&mut self, other: &MlpGrads) {
        assert_eq!(self.w.len(), other.w.len(), "add_assign: layer count mismatch");
        for (a, b) in self.w.iter_mut().zip(other.w.iter()) {
            a.add_scaled(1.0, b);
        }
        for (a, b) in self.b.iter_mut().zip(other.b.iter()) {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
        }
    }

    /// Multiply every gradient by `alpha` (e.g. 1/batch).
    pub fn scale(&mut self, alpha: f64) {
        for w in &mut self.w {
            w.scale(alpha);
        }
        for b in &mut self.b {
            b.iter_mut().for_each(|v| *v *= alpha);
        }
    }

    /// Squared L2 norm of all gradients.
    pub fn sq_norm(&self) -> f64 {
        let w: f64 = self.w.iter().map(|m| m.sq_norm()).sum();
        let b: f64 = self.b.iter().flat_map(|v| v.iter()).map(|x| x * x).sum();
        w + b
    }

    /// Scale gradients down so the global L2 norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.sq_norm().sqrt();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Finite-difference gradient check on a scalar loss L = Σ c_k y_k.
    fn grad_check(sizes: &[usize], act: Activation, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(sizes, act, &mut rng);
        let x: Vec<f64> = (0..sizes[0]).map(|i| (i as f64 * 0.37).sin()).collect();
        let coeffs: Vec<f64> = (0..*sizes.last().unwrap()).map(|i| 1.0 + 0.5 * i as f64).collect();
        let loss =
            |n: &Mlp| -> f64 { n.forward(&x).iter().zip(coeffs.iter()).map(|(y, c)| y * c).sum() };

        let mut cache = net.new_cache();
        net.forward_cached(&x, &mut cache);
        let mut grads = MlpGrads::zeros_like(&net);
        let dl_din = net.backward(&cache, &coeffs, &mut grads);

        let h = 1e-6;
        // check a spread of weight entries in every layer
        for li in 0..net.layers().len() {
            let (rows, cols) = (net.layers()[li].w.rows(), net.layers()[li].w.cols());
            for &(r, c) in &[(0, 0), (rows - 1, cols - 1), (rows / 2, cols / 2)] {
                let mut plus = net.clone();
                let v = plus.layers_mut()[li].w.get(r, c);
                plus.layers_mut()[li].w.set(r, c, v + h);
                let mut minus = net.clone();
                minus.layers_mut()[li].w.set(r, c, v - h);
                let fd = (loss(&plus) - loss(&minus)) / (2.0 * h);
                let an = grads.w[li].get(r, c);
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                    "layer {li} w[{r},{c}]: fd={fd} analytic={an}"
                );
            }
            // one bias entry
            let mut plus = net.clone();
            plus.layers_mut()[li].b[0] += h;
            let mut minus = net.clone();
            minus.layers_mut()[li].b[0] -= h;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * h);
            let an = grads.b[li][0];
            assert!((fd - an).abs() < 1e-4 * (1.0 + an.abs()), "layer {li} bias: fd={fd} an={an}");
        }
        // input gradient
        for i in 0..x.len().min(3) {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let lp: f64 = net.forward(&xp).iter().zip(&coeffs).map(|(y, c)| y * c).sum();
            let lm: f64 = net.forward(&xm).iter().zip(&coeffs).map(|(y, c)| y * c).sum();
            let fd = (lp - lm) / (2.0 * h);
            assert!((fd - dl_din[i]).abs() < 1e-4 * (1.0 + fd.abs()), "input grad {i}");
        }
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        grad_check(&[5, 8, 3], Activation::Tanh, 11);
    }

    #[test]
    fn gradients_match_finite_differences_deep() {
        grad_check(&[4, 16, 8, 2], Activation::Tanh, 12);
    }

    #[test]
    fn gradients_match_finite_differences_linear() {
        grad_check(&[3, 4, 2], Activation::Linear, 13);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[4, 8, 2], Activation::Tanh, &mut rng);
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn grads_zero_and_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut rng);
        let mut g = MlpGrads::zeros_like(&net);
        let mut cache = net.new_cache();
        net.forward_cached(&[1.0, -1.0], &mut cache);
        net.backward(&cache, &[1.0], &mut g);
        assert!(g.sq_norm() > 0.0);
        g.scale(0.0);
        assert_eq!(g.sq_norm(), 0.0);
    }

    #[test]
    fn clip_global_norm_caps_norm() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut rng);
        let mut g = MlpGrads::zeros_like(&net);
        let mut cache = net.new_cache();
        net.forward_cached(&[5.0, -5.0], &mut cache);
        net.backward(&cache, &[100.0], &mut g);
        let pre = g.clip_global_norm(0.5);
        assert!(pre > 0.5);
        assert!((g.sq_norm().sqrt() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(77);
        let net = Mlp::new(&[6, 10, 4], Activation::Relu, &mut rng);
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = [0.3, -0.1, 0.9, 0.0, -2.0, 1.5];
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn forward_batch_bit_identical_to_per_sample() {
        let mut rng = StdRng::seed_from_u64(21);
        let net = Mlp::new(&[6, 12, 5, 3], Activation::Tanh, &mut rng);
        let batch = 17;
        let x = Matrix::from_fn(batch, 6, |r, c| ((r * 7 + c) as f64 * 0.31).sin());
        let y = net.forward_batch(&x);
        assert_eq!(y.rows(), batch);
        assert_eq!(y.cols(), 3);
        for s in 0..batch {
            assert_eq!(y.row(s), net.forward(x.row(s)).as_slice(), "row {s}");
        }
    }

    #[test]
    fn grads_batch_bit_identical_to_serial_accumulation() {
        let mut rng = StdRng::seed_from_u64(22);
        let net = Mlp::new(&[5, 9, 4], Activation::Relu, &mut rng);
        let batch = 13;
        let x = Matrix::from_fn(batch, 5, |r, c| ((r * 3 + c) as f64 * 0.71).cos());
        let dl = Matrix::from_fn(batch, 4, |r, c| ((r + c * 2) as f64 * 0.13).sin());

        // serial: per-sample forward_cached + backward into one accumulator
        let mut serial = MlpGrads::zeros_like(&net);
        let mut cache = net.new_cache();
        for s in 0..batch {
            net.forward_cached(x.row(s), &mut cache);
            net.backward(&cache, dl.row(s), &mut serial);
        }

        // batched: one forward_batch_cached + grads_batch
        let mut batched = MlpGrads::zeros_like(&net);
        let mut bcache = net.new_batch_cache(batch);
        net.forward_batch_cached(&x, &mut bcache);
        net.grads_batch(&bcache, &dl, &mut batched);

        assert_eq!(serial, batched);
    }

    #[test]
    fn add_assign_merge_matches_serial_fold() {
        let mut rng = StdRng::seed_from_u64(23);
        let net = Mlp::new(&[4, 6, 2], Activation::Tanh, &mut rng);
        let xs: Vec<Vec<f64>> =
            (0..8).map(|s| (0..4).map(|c| ((s * 5 + c) as f64 * 0.23).sin()).collect()).collect();

        let mut serial = MlpGrads::zeros_like(&net);
        let mut cache = net.new_cache();
        for x in &xs {
            net.forward_cached(x, &mut cache);
            net.backward(&cache, &[1.0, -0.5], &mut serial);
        }

        // per-sample buffers merged in sample order, as the parallel path does
        let mut merged = MlpGrads::zeros_like(&net);
        for x in &xs {
            let mut g = MlpGrads::zeros_like(&net);
            net.forward_cached(x, &mut cache);
            net.backward(&cache, &[1.0, -0.5], &mut g);
            merged.add_assign(&g);
        }
        assert_eq!(serial, merged);
    }

    #[test]
    fn forward_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Mlp::new(&[3, 5, 2], Activation::Tanh, &mut rng);
        let x = [0.1, 0.2, 0.3];
        assert_eq!(net.forward(&x), net.forward(&x));
    }
}

#[cfg(test)]
mod kernel_timing {
    use super::*;
    use crate::layer::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;

    /// Not a correctness test: prints kernel timings for perf work.
    /// Run with `cargo test -p nn --release -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn batch_kernel_timings() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[110, 32, 16, 1], Activation::Tanh, &mut rng);
        let batch = 64;
        let x = Matrix::from_fn(batch, 110, |r, c| ((r * 31 + c) as f64 * 0.1).sin());
        let reps = 2000;

        let mut cache = net.new_cache();
        let mut grads = MlpGrads::zeros_like(&net);
        let t = Instant::now();
        for _ in 0..reps {
            for s in 0..batch {
                net.forward_cached(x.row(s), &mut cache);
                net.backward(&cache, &[1.0], &mut grads);
            }
        }
        println!("serial fwd+bwd: {:.2} us/batch", t.elapsed().as_secs_f64() * 1e6 / reps as f64);

        let t = Instant::now();
        for _ in 0..reps {
            for s in 0..batch {
                std::hint::black_box(net.forward(x.row(s)));
            }
        }
        println!("serial fwd alloc: {:.2} us/batch", t.elapsed().as_secs_f64() * 1e6 / reps as f64);

        let mut bcache = net.new_batch_cache(batch);
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(net.forward_batch_cached(&x, &mut bcache));
        }
        println!("batch fwd: {:.2} us/batch", t.elapsed().as_secs_f64() * 1e6 / reps as f64);

        let dl = Matrix::from_fn(batch, 1, |_, _| 1.0);
        let t = Instant::now();
        for _ in 0..reps {
            net.forward_batch_cached(&x, &mut bcache);
            net.grads_batch(&bcache, &dl, &mut grads);
            std::hint::black_box(&grads);
        }
        println!("batch fwd+bwd: {:.2} us/batch", t.elapsed().as_secs_f64() * 1e6 / reps as f64);

        let mut adam = crate::Adam::new(&net, 1e-3);
        let mut net2 = net.clone();
        let t = Instant::now();
        for _ in 0..reps {
            adam.step(&mut net2, &grads);
        }
        println!("adam step: {:.2} us/step", t.elapsed().as_secs_f64() * 1e6 / reps as f64);
    }
}
