//! Fully connected layers and their activations.

use crate::init;
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Pointwise activation applied after a dense layer's affine transform.
///
/// Softmax is deliberately *not* an activation here: policy heads keep their
/// outputs as raw logits/means and apply softmax (or a Gaussian) in the RL
/// crate, where the loss gradient with respect to the raw outputs has a
/// simple closed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity — used for output layers.
    Linear,
    /// Hyperbolic tangent — default hidden activation for small policy nets.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Apply the activation to a pre-activation value.
    #[inline]
    pub fn apply(self, z: f64) -> f64 {
        match self {
            Activation::Linear => z,
            Activation::Tanh => z.tanh(),
            Activation::Relu => z.max(0.0),
        }
    }

    /// Derivative dσ(z)/dz expressed in terms of the pre-activation `z`.
    #[inline]
    pub fn derivative(self, z: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// A dense layer: `y = σ(W x + b)` with `W: out × in`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    pub w: Matrix,
    pub b: Vec<f64>,
    pub act: Activation,
}

impl Dense {
    /// New layer with orthogonal-ish (scaled Gaussian) init and zero biases.
    pub fn new(inputs: usize, outputs: usize, act: Activation, rng: &mut StdRng) -> Self {
        Dense { w: init::scaled_gaussian(outputs, inputs, rng), b: vec![0.0; outputs], act }
    }

    pub fn inputs(&self) -> usize {
        self.w.cols()
    }

    pub fn outputs(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass writing the pre-activation into `z` and activation into `a`.
    pub fn forward_into(&self, x: &[f64], z: &mut [f64], a: &mut [f64]) {
        self.w.matvec_into(x, z);
        for (zi, bi) in z.iter_mut().zip(self.b.iter()) {
            *zi += bi;
        }
        for (ai, zi) in a.iter_mut().zip(z.iter()) {
            *ai = self.act.apply(*zi);
        }
    }

    /// Forward pass allocating the output.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; self.outputs()];
        let mut a = vec![0.0; self.outputs()];
        self.forward_into(x, &mut z, &mut a);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn activations_and_derivatives() {
        for act in [Activation::Linear, Activation::Tanh, Activation::Relu] {
            // finite-difference check of the derivative at a few points
            for &z in &[-1.3, -0.2, 0.4, 2.0] {
                let h = 1e-6;
                let fd = (act.apply(z + h) - act.apply(z - h)) / (2.0 * h);
                assert!(
                    (fd - act.derivative(z)).abs() < 1e-5,
                    "{act:?} derivative mismatch at {z}"
                );
            }
        }
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative(-3.0), 0.0);
    }

    #[test]
    fn dense_forward_known_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 1, Activation::Linear, &mut rng);
        d.w = Matrix::from_vec(1, 2, vec![2.0, -1.0]);
        d.b = vec![0.5];
        let y = d.forward(&[3.0, 4.0]);
        assert!((y[0] - (6.0 - 4.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn dense_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dense::new(5, 3, Activation::Tanh, &mut rng);
        assert_eq!(d.inputs(), 5);
        assert_eq!(d.outputs(), 3);
        assert_eq!(d.forward(&[0.0; 5]).len(), 3);
    }

    #[test]
    fn tanh_layer_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Dense::new(4, 4, Activation::Tanh, &mut rng);
        for v in d.forward(&[10.0, -10.0, 5.0, -5.0]) {
            assert!(v.abs() <= 1.0);
        }
    }
}
