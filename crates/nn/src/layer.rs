//! Fully connected layers and their activations.

use crate::init;
use crate::matrix::Matrix;
use crate::ops;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Pointwise activation applied after a dense layer's affine transform.
///
/// Softmax is deliberately *not* an activation here: policy heads keep their
/// outputs as raw logits/means and apply softmax (or a Gaussian) in the RL
/// crate, where the loss gradient with respect to the raw outputs has a
/// simple closed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity — used for output layers.
    Linear,
    /// Hyperbolic tangent — default hidden activation for small policy nets.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Apply the activation to a pre-activation value.
    #[inline]
    pub fn apply(self, z: f64) -> f64 {
        match self {
            Activation::Linear => z,
            Activation::Tanh => z.tanh(),
            Activation::Relu => z.max(0.0),
        }
    }

    /// Derivative dσ(z)/dz expressed in terms of the pre-activation `z`.
    #[inline]
    pub fn derivative(self, z: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Derivative dσ(z)/dz expressed in terms of the *activation output*
    /// `a = σ(z)`.
    ///
    /// Bit-identical to [`Activation::derivative`] on the matching
    /// pre-activation: for tanh, `derivative` computes `1 − t·t` with
    /// `t = z.tanh()`, and `a` *is* that stored `t`; for ReLU, `z > 0 ⇔
    /// a > 0` (at `z == 0` both sides give derivative 0); linear is
    /// constant. The batched backward uses this form to avoid recomputing
    /// the transcendental for every element in the hot loop.
    #[inline]
    pub fn derivative_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Tanh => 1.0 - a * a,
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Apply the activation to a whole slice at once (vectorized form).
    ///
    /// Dispatches to the `*_into` kernels in [`crate::ops`], each of which
    /// applies the same scalar operation per element in order — so slice
    /// application is bit-identical to looping [`Activation::apply`].
    #[inline]
    pub fn apply_into(self, zs: &[f64], out: &mut [f64]) {
        match self {
            Activation::Linear => ops::linear_into(zs, out),
            Activation::Tanh => ops::tanh_into(zs, out),
            Activation::Relu => ops::relu_into(zs, out),
        }
    }
}

/// A dense layer: `y = σ(W x + b)` with `W: out × in`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `outputs × inputs`.
    pub w: Matrix,
    /// Bias vector, one entry per output.
    pub b: Vec<f64>,
    /// Activation applied after the affine transform.
    pub act: Activation,
}

impl Dense {
    /// New layer with orthogonal-ish (scaled Gaussian) init and zero biases.
    pub fn new(inputs: usize, outputs: usize, act: Activation, rng: &mut StdRng) -> Self {
        Dense { w: init::scaled_gaussian(outputs, inputs, rng), b: vec![0.0; outputs], act }
    }

    /// Input dimension (columns of `W`).
    pub fn inputs(&self) -> usize {
        self.w.cols()
    }

    /// Output dimension (rows of `W`).
    pub fn outputs(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass writing the pre-activation into `z` and activation into `a`.
    pub fn forward_into(&self, x: &[f64], z: &mut [f64], a: &mut [f64]) {
        self.w.matvec_into(x, z);
        for (zi, bi) in z.iter_mut().zip(self.b.iter()) {
            *zi += bi;
        }
        for (ai, zi) in a.iter_mut().zip(z.iter()) {
            *ai = self.act.apply(*zi);
        }
    }

    /// Forward pass allocating the output.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; self.outputs()];
        let mut a = vec![0.0; self.outputs()];
        self.forward_into(x, &mut z, &mut a);
        a
    }

    /// Batched forward pass over row-major sample batches.
    ///
    /// Each row of `x` is one sample; the matching rows of `z` and `a`
    /// receive its pre-activation and activation. Every row goes through the
    /// exact kernels of [`Dense::forward_into`] (sequential dot products,
    /// then bias add, then activation), so the batched result is
    /// bit-identical to calling `forward_into` per sample — the batch form
    /// only amortizes layer traversal and eliminates per-sample allocation.
    pub fn forward_batch_into(&self, x: &Matrix, z: &mut Matrix, a: &mut Matrix) {
        let batch = x.rows();
        assert_eq!(x.cols(), self.inputs(), "forward_batch: input dim mismatch");
        assert_eq!(z.rows(), batch, "forward_batch: preact batch mismatch");
        assert_eq!(z.cols(), self.outputs(), "forward_batch: preact dim mismatch");
        assert_eq!(a.rows(), batch, "forward_batch: output batch mismatch");
        assert_eq!(a.cols(), self.outputs(), "forward_batch: output dim mismatch");
        // One interleaved matrix–matrix product for the whole batch (each
        // element the same sequential dot as the per-sample kernel), then
        // the per-sample bias add and activation.
        self.w.matmul_nt_into(x, z);
        for s in 0..batch {
            let zr = z.row_mut(s);
            for (zi, bi) in zr.iter_mut().zip(self.b.iter()) {
                *zi += bi;
            }
            self.act.apply_into(zr, a.row_mut(s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn activations_and_derivatives() {
        for act in [Activation::Linear, Activation::Tanh, Activation::Relu] {
            // finite-difference check of the derivative at a few points
            for &z in &[-1.3, -0.2, 0.4, 2.0] {
                let h = 1e-6;
                let fd = (act.apply(z + h) - act.apply(z - h)) / (2.0 * h);
                assert!(
                    (fd - act.derivative(z)).abs() < 1e-5,
                    "{act:?} derivative mismatch at {z}"
                );
            }
        }
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative(-3.0), 0.0);
    }

    #[test]
    fn dense_forward_known_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 1, Activation::Linear, &mut rng);
        d.w = Matrix::from_vec(1, 2, vec![2.0, -1.0]);
        d.b = vec![0.5];
        let y = d.forward(&[3.0, 4.0]);
        assert!((y[0] - (6.0 - 4.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn dense_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dense::new(5, 3, Activation::Tanh, &mut rng);
        assert_eq!(d.inputs(), 5);
        assert_eq!(d.outputs(), 3);
        assert_eq!(d.forward(&[0.0; 5]).len(), 3);
    }

    #[test]
    fn tanh_layer_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Dense::new(4, 4, Activation::Tanh, &mut rng);
        for v in d.forward(&[10.0, -10.0, 5.0, -5.0]) {
            assert!(v.abs() <= 1.0);
        }
    }
}
