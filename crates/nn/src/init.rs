//! Weight initialization schemes.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier/Glorot-style scaled Gaussian init: `N(0, 2/(fan_in + fan_out))`.
///
/// Samples are generated with Box–Muller from the supplied RNG so that
/// initialization is fully deterministic given the seed.
pub fn scaled_gaussian(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let std = (2.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| std * gaussian(rng))
}

/// Standard normal sample via Box–Muller.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn init_is_deterministic() {
        let a = scaled_gaussian(4, 4, &mut StdRng::seed_from_u64(9));
        let b = scaled_gaussian(4, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn init_scale_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let big = scaled_gaussian(100, 100, &mut rng);
        let rms = (big.sq_norm() / (big.rows() * big.cols()) as f64).sqrt();
        let expected = (2.0 / 200.0_f64).sqrt();
        assert!((rms - expected).abs() / expected < 0.2, "rms = {rms}");
    }
}
