//! Offline, in-tree substitute for `serde` (the subset this workspace uses).
//!
//! Instead of upstream serde's visitor architecture, this facade converts
//! values through an owned JSON-like [`Value`] tree:
//!
//! * [`Serialize`] renders a value to a [`Value`],
//! * [`Deserialize`] reconstructs a value from a [`Value`],
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the in-tree
//!   `serde_derive` proc-macro crate) generates both for plain named-field
//!   structs and for enums with unit or newtype variants — exactly the
//!   shapes this workspace serializes.
//!
//! The wire behavior matches what upstream serde_json produced for the
//! cached artifacts under `results/`: struct fields in declaration order,
//! unit enum variants as bare strings (`"Tanh"`), newtype variants as
//! single-key objects (`{"Gaussian": {...}}`), tuples as arrays, `None` as
//! null, and non-finite floats as null (deserialized back to NaN).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Owned JSON-like data model every (de)serialization passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (JSON numbers without '.', 'e' or sign).
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Every other number. Always finite — non-finite floats serialize to
    /// [`Value::Null`].
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key–value pairs in insertion order (declaration order for structs).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Field lookup by name on an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// (De)serialization failure with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }

    fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- floats

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // matches serde_json: NaN/Inf have no JSON representation
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

// -------------------------------------------------------------- integers

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = match v {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n: i64 = match v {
                    Value::U64(x) => i64::try_from(*x)
                        .map_err(|_| Error::custom(format!("{x} out of i64 range")))?,
                    Value::I64(x) => *x,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

// --------------------------------------------------------- other scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),*) => {
        impl<$($t: Serialize),*> Serialize for ($($t,)*) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),*])
            }
        }
        impl<$($t: Deserialize),*> Deserialize for ($($t,)*) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if items.len() != $n {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, found array of {}", $n, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)*))
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);
impl_tuple!(5 => A.0, B.1, C.2, D.3, E.4);
impl_tuple!(6 => A.0, B.1, C.2, D.3, E.4, F.5);

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        fields.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

// ------------------------------------------------- derive-support helpers

/// Used by the generated `Deserialize` impls: fetch a struct field, treating
/// a missing key as `null` (so `Option` fields tolerate omission).
pub fn field<'v>(obj: &'v Value, name: &str) -> &'v Value {
    static NULL: Value = Value::Null;
    obj.get(name).unwrap_or(&NULL)
}

/// Used by the generated `Deserialize` impls: contextualize a field error.
pub fn field_err(ty: &str, fieldname: &str, e: Error) -> Error {
    Error::custom(format!("{ty}.{fieldname}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(f64::from_value(&1.5_f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert_eq!(u64::from_value(&7_u64.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-3_i32).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![1.0_f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let t = (0.5_f64, 2.0_f64);
        assert_eq!(<(f64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), none);
        assert_eq!(Option::<f64>::from_value(&Some(4.0).to_value()).unwrap(), Some(4.0));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}
