//! Offline, in-tree substitute for the `rand` crate (0.8 API subset).
//!
//! The workspace vendors this stub so the build needs no network access:
//! it provides exactly the surface the other crates use — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::{gen, gen_range, gen_bool}`](Rng)
//! and [`seq::SliceRandom::shuffle`](seq::SliceRandom).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — *not*
//! bit-compatible with upstream `rand`'s ChaCha12 `StdRng`, but every
//! property the workspace relies on holds: determinism for a given seed,
//! `Clone` preserving the stream, `Send + Sync`, and good statistical
//! quality for simulation workloads.

/// A source of randomness seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — used for seeding and for deriving sub-streams.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // multiply-shift bounded sampling (Lemire); bias is < 2^-64
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The user-facing random-value API (subset of `rand::Rng` 0.8).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draw a uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range (`lo..hi` or `lo..=hi`).
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of upstream `rand`, but deterministic,
    /// cloneable (clones continue the identical stream) and fast.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring via
        /// [`StdRng::from_state`] continues the stream exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        ///
        /// The all-zero state is a fixed point of xoshiro and cannot be
        /// produced by a healthy generator; it is remapped the same way
        /// seeding does, so `from_state` never yields a stuck stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return StdRng::seed_from_u64(0);
            }
            StdRng { s }
        }

        #[inline]
        fn next(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;
        /// Uniform Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be uncorrelated, {same}/64 equal");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = StdRng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(17);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // the all-zero state must be remapped, not left stuck
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.8_f64..4.8);
            assert!((0.8..4.8).contains(&x));
            let i = rng.gen_range(0_usize..7);
            assert!(i < 7);
            let k = rng.gen_range(3_i32..=5);
            assert!((3..=5).contains(&k));
        }
    }

    #[test]
    fn gen_range_covers_all_buckets() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = [0usize; 8];
        for _ in 0..8_000 {
            hits[rng.gen_range(0_usize..8)] += 1;
        }
        for (i, h) in hits.iter().enumerate() {
            assert!(*h > 500, "bucket {i} starved: {h}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&heads), "p=0.3 gave {heads}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v1: Vec<usize> = (0..50).collect();
        let mut v2: Vec<usize> = (0..50).collect();
        v1.shuffle(&mut StdRng::seed_from_u64(9));
        v2.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v1, sorted, "50 elements should not shuffle to identity");
    }
}
