//! Offline, in-tree substitute for `proptest` (the subset this workspace
//! uses): the [`proptest!`] macro, range/tuple/vec strategies, `any::<T>()`,
//! [`prop_assert!`]/[`prop_assert_eq!`] and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted:
//! * sampling is plain uniform — no shrinking of failing cases (the failing
//!   inputs are printed instead);
//! * case generation is deterministic per test (seeded from the test's
//!   module path and name), so failures always reproduce;
//! * `PROPTEST_CASES` in the environment overrides the case count, like
//!   upstream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod test_runner {
    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!` and friends inside a test body.
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    use super::StdRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        type Value: std::fmt::Debug;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

use strategy::Strategy;

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($($t:ident . $idx:tt),*) => {
        impl<$($t: Strategy),*> Strategy for ($($t,)*) {
            type Value = ($($t::Value,)*);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)*)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "arbitrary value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // finite, sign-symmetric, spanning several orders of magnitude
        let mag: f64 = rng.gen_range(-6.0_f64..6.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag)
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T: Arbitrary>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<bool>()`, `any::<u64>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Sizes accepted by [`fn@vec`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a strategy per element.
    pub struct VecStrategy<S: Strategy, L: IntoSizeRange> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// FNV-1a hash of the test path — the per-test base seed.
#[doc(hidden)]
pub fn __seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[doc(hidden)]
pub fn __case_rng(base_seed: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[doc(hidden)]
pub fn __cases(cfg: &test_runner::ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(cfg.cases)
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::__cases(&cfg);
            let base = $crate::__seed_from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cases {
                let mut __rng = $crate::__case_rng(base, case as u64);
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),*),
                    $(&$arg),*
                );
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case + 1, cases, e, __inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r,
                );
            }
        }
    };
}

/// Assert two expressions differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_stay_in_bounds(
            x in 0.5_f64..2.5,
            n in 1_usize..10,
            flag in any::<bool>(),
        ) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(u8::from(flag) <= 1);
        }

        fn vec_strategy_sizes(
            exact in collection::vec(0.0_f64..1.0, 4),
            ranged in collection::vec((0_u64..5, 0.0_f64..1.0), 1..6),
        ) {
            prop_assert_eq!(exact.len(), 4);
            prop_assert!((1..6).contains(&ranged.len()));
            for (k, v) in &ranged {
                prop_assert!(*k < 5 && (0.0..1.0).contains(v));
            }
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            let cfg = ProptestConfig::with_cases(8);
            let base = crate::__seed_from_name("demo");
            for case in 0..cfg.cases {
                let mut rng = crate::__case_rng(base, case as u64);
                let x = Strategy::sample(&(0.0_f64..1.0), &mut rng);
                let run = || -> Result<(), crate::test_runner::TestCaseError> {
                    prop_assert!(x < 0.5, "x too big: {x}");
                    Ok(())
                };
                if let Err(e) = run() {
                    panic!("case {case}: {e}");
                }
            }
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("x too big"), "unexpected panic message {msg:?}");
    }

    #[test]
    fn deterministic_per_test() {
        let base = crate::__seed_from_name("some::test");
        let a: Vec<u64> = (0..5)
            .map(|c| Strategy::sample(&(0_u64..100), &mut crate::__case_rng(base, c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| Strategy::sample(&(0_u64..100), &mut crate::__case_rng(base, c)))
            .collect();
        assert_eq!(a, b);
    }
}
