//! Input/output validation for the serving fleet: the quarantine
//! decision.
//!
//! The paper's operating assumption is that learned protocols meet
//! hostile inputs in deployment; the fleet's first line of defence is
//! therefore to *validate* everything that crosses the policy boundary
//! instead of trusting it. Two checks run on every tick of every live
//! session:
//!
//! * [`validate_observation`] — the observation handed to the policy
//!   must be physically plausible: finite, non-negative where the
//!   quantity is non-negative, and inside generous magnitude bounds. A
//!   NaN buffer level or a `-1e12` throughput sample is a corrupt
//!   telemetry pipe, not a network condition.
//! * [`validate_action`] — the policy's output must be a real rung of
//!   the bitrate ladder. An out-of-range index would panic the player
//!   (and at fleet scale, the whole shard).
//!
//! A violation does **not** panic: the supervisor quarantines the
//! session (see `supervisor` module) — its QoE leaves the aggregate
//! sketch, a per-session [`abr::BufferBased`] fallback drives the
//! remaining chunks, and `serve.quarantined` / `serve.fallback`
//! telemetry records the event. One bad session costs one session, not
//! the fleet.

use abr::AbrObservation;

/// Upper plausibility bound for a playback buffer, seconds. Far above
/// anything a real player accumulates (videos here are ~192 s); beyond
/// it the value is corrupt, not large.
pub const MAX_BUFFER_S: f64 = 1e7;

/// Upper plausibility bound for a throughput sample, Mbit/s.
pub const MAX_THROUGHPUT_MBPS: f64 = 1e6;

/// Upper plausibility bound for a download time, seconds.
pub const MAX_DOWNLOAD_S: f64 = 1e7;

/// Validate one observation before it reaches the policy.
///
/// Returns `Err` with a short reason when any field is non-finite,
/// negative where it must not be, outside the plausibility bounds, or
/// structurally inconsistent (empty ladder, `last_quality` off the
/// ladder). The checks are O(history length) — negligible next to the
/// policy forward they guard.
pub fn validate_observation(obs: &AbrObservation) -> Result<(), String> {
    if !(obs.buffer_s.is_finite() && (0.0..=MAX_BUFFER_S).contains(&obs.buffer_s)) {
        return Err(format!("implausible buffer level {}", obs.buffer_s));
    }
    for &tp in &obs.throughput_mbps {
        if !(tp.is_finite() && (0.0..=MAX_THROUGHPUT_MBPS).contains(&tp)) {
            return Err(format!("implausible throughput sample {tp}"));
        }
    }
    for &d in &obs.download_s {
        if !(d.is_finite() && (0.0..=MAX_DOWNLOAD_S).contains(&d)) {
            return Err(format!("implausible download time {d}"));
        }
    }
    for &s in &obs.next_sizes {
        if !(s.is_finite() && s >= 0.0) {
            return Err(format!("implausible chunk size {s}"));
        }
    }
    if obs.n_qualities == 0 || obs.bitrates_mbps.is_empty() {
        return Err("empty bitrate ladder".to_string());
    }
    for &b in &obs.bitrates_mbps {
        if !(b.is_finite() && b > 0.0) {
            return Err(format!("implausible ladder bitrate {b}"));
        }
    }
    if let Some(q) = obs.last_quality {
        if q >= obs.n_qualities {
            return Err(format!("last_quality {q} off a {}-rung ladder", obs.n_qualities));
        }
    }
    Ok(())
}

/// Validate a policy output against the ladder: `Ok` iff `action` is a
/// real quality index (`< n_qualities`).
pub fn validate_action(action: usize, n_qualities: usize) -> Result<(), String> {
    if action < n_qualities {
        Ok(())
    } else {
        Err(format!("policy output {action} off a {n_qualities}-rung ladder"))
    }
}

/// Whether a per-chunk QoE contribution is trustworthy (finite).
pub fn qoe_is_sane(qoe: f64) -> bool {
    qoe.is_finite()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> AbrObservation {
        AbrObservation {
            last_quality: Some(2),
            buffer_s: 12.0,
            throughput_mbps: vec![1.0, 2.0, 3.0],
            download_s: vec![4.0, 2.0, 1.0],
            next_sizes: vec![150_000.0, 375_000.0, 600_000.0, 925_000.0, 1_425_000.0, 2_150_000.0],
            chunk_index: 3,
            chunks_remaining: 45,
            total_chunks: 48,
            n_qualities: 6,
            bitrates_mbps: vec![0.3, 0.75, 1.2, 1.85, 2.85, 4.3],
        }
    }

    #[test]
    fn healthy_observation_passes() {
        assert!(validate_observation(&obs()).is_ok());
        // first-chunk shape: empty histories, no last quality
        let mut first = obs();
        first.last_quality = None;
        first.throughput_mbps.clear();
        first.download_s.clear();
        assert!(validate_observation(&first).is_ok());
    }

    #[test]
    fn poisoned_observations_are_rejected() {
        let mut o = obs();
        o.buffer_s = f64::NAN;
        assert!(validate_observation(&o).is_err());
        let mut o = obs();
        o.buffer_s = -1e12;
        assert!(validate_observation(&o).is_err());
        let mut o = obs();
        o.throughput_mbps[1] = f64::INFINITY;
        assert!(validate_observation(&o).is_err());
        let mut o = obs();
        o.download_s[0] = -1.0;
        assert!(validate_observation(&o).is_err());
        let mut o = obs();
        o.next_sizes[3] = f64::NAN;
        assert!(validate_observation(&o).is_err());
        let mut o = obs();
        o.bitrates_mbps[0] = 0.0;
        assert!(validate_observation(&o).is_err());
        let mut o = obs();
        o.last_quality = Some(6);
        assert!(validate_observation(&o).is_err());
    }

    #[test]
    fn action_range_is_enforced() {
        assert!(validate_action(0, 6).is_ok());
        assert!(validate_action(5, 6).is_ok());
        assert!(validate_action(6, 6).is_err());
        assert!(validate_action(usize::MAX, 6).is_err());
    }

    #[test]
    fn qoe_sanity() {
        assert!(qoe_is_sane(-3.7));
        assert!(!qoe_is_sane(f64::NAN));
        assert!(!qoe_is_sane(f64::NEG_INFINITY));
    }
}
