//! Shard supervision: heartbeats, deterministic retry from snapshots,
//! per-session quarantine + fallback, admission control, and a crash
//! spool — the fleet robustness layer (DESIGN.md §15).
//!
//! [`try_run_fleet`] is the supervised engine entry point; the legacy
//! [`crate::engine::run_fleet`] is now a thin wrapper over it with the
//! default [`SupervisorConfig`]. Fault domains, outermost first:
//!
//! 1. **The fleet** — admission control. `FleetConfig::max_inflight`
//!    sheds the excess sessions (highest ids first, deterministically)
//!    *before* any work starts, so overload degrades to a smaller
//!    correct answer instead of an OOM or stall. Shed counts surface in
//!    `FleetSummary::shed`.
//! 2. **A shard** — supervision. Every shard job heartbeats once per
//!    tick under [`exec::run_on_slots_watchdog`]; a panicked or
//!    watchdog-cancelled shard rolls back to its last per-tick snapshot
//!    (taken every `snapshot_ticks` ticks) and re-executes
//!    deterministically under the configured [`fault::Backoff`] budget.
//!    Sessions are pure functions of `(policy, trace)`, so a replayed
//!    window reproduces the undisturbed results bit for bit. Shard jobs
//!    run on [`exec`]'s persistent [`exec::WorkerPool`] (threads parked
//!    between fleet windows, not respawned per window); a cancelled
//!    shard's unwind is caught on its pool worker, which simply rejoins
//!    the pool — supervision never costs a thread.
//! 3. **A session** — quarantine. Observations and policy outputs are
//!    validated every tick (see [`crate::quarantine`]); on violation
//!    the session is quarantined, a per-session [`abr::BufferBased`]
//!    fallback drives its remaining chunks, and its QoE leaves the
//!    aggregate sketch. `quarantined + completed + shed == admitted`
//!    always holds.
//!
//! Fault points (for `ADVNET_FAULT_PLAN`): `serve.shard.<id>` fires
//! once per snapshot-window attempt of shard `<id>` (panic/stall/
//! corrupt-the-spool), `serve.obs` poisons the first live observation
//! of a tick, `serve.policy` poisons the first live policy output of a
//! tick. The `chaos_soak` bench binary drives randomized seeded
//! schedules over exactly these points.
//!
//! When `spool_dir` is set, each finished shard writes its results as a
//! checksummed `rl::ckpt` envelope keyed by a fingerprint of
//! `(stream, video, qoe, record_chunks, block)`; a later run over the
//! same inputs resumes finished shards from the spool (corrupt spools
//! are renamed `*.quarantined` and recomputed), giving fleets the same
//! kill+resume contract the training pipeline has.

use crate::engine::{block, FleetConfig, FleetPolicy, FleetSummary};
use crate::quarantine;
use crate::session::{Session, SessionResult};
use crate::sketch::QuantileSketch;
use abr::protocols::pensieve::{pensieve_features, PENSIEVE_OBS_DIM};
use abr::{AbrObservation, AbrPolicy, BufferBased};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;
use traces::TraceStream;

/// Supervision knobs for [`try_run_fleet`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Retry budget + pacing for a panicked or stalled shard window.
    /// Rollback-and-replay is deterministic, so the default waits
    /// nothing between attempts ([`fault::Backoff::none`] with 2
    /// retries).
    pub backoff: fault::Backoff,
    /// Watchdog for stalled shards; `None` disables stall detection
    /// (panics are still supervised). Defaults to
    /// [`exec::WatchdogConfig::from_env`] (`ADVNET_WATCHDOG_MS`).
    pub watchdog: Option<exec::WatchdogConfig>,
    /// Ticks between shard snapshots — the rollback granularity. A
    /// failed window replays at most this many ticks.
    pub snapshot_ticks: usize,
    /// When set, finished shards spool their results here (checksummed
    /// `rl::ckpt` envelopes) and later runs resume from the spool.
    pub spool_dir: Option<PathBuf>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            backoff: fault::Backoff::none(2),
            watchdog: exec::WatchdogConfig::from_env(),
            snapshot_ticks: 12,
            spool_dir: None,
        }
    }
}

/// A shard exhausted its retry budget: the structured failure
/// [`try_run_fleet`] surfaces instead of poisoning the process.
#[derive(Debug)]
pub struct FleetError {
    /// Shard index that gave up (lowest wins when several fail).
    pub shard: usize,
    /// The underlying exec-layer failure (attempts, panic message).
    pub source: exec::ExecError,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet shard {} failed: {}", self.shard, self.source)
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// One session's execution lane inside a shard: the session plus the
/// policy state that drives it (a per-session protocol instance on the
/// [`FleetPolicy::PerSession`] path, and — once quarantined — the BB
/// fallback).
struct Lane {
    session: Session,
    /// Per-session protocol instance (`None` on the batched path).
    proto: Option<Box<dyn AbrPolicy + Send>>,
    /// Installed at quarantine time; drives every remaining chunk.
    fallback: Option<BufferBased>,
}

impl Clone for Lane {
    fn clone(&self) -> Lane {
        Lane {
            session: self.session.clone(),
            // clone_box preserves mid-stream protocol state (MPC error
            // history), which is what makes rollback deterministic
            proto: self.proto.as_ref().map(|p| p.clone_box()),
            fallback: self.fallback.clone(),
        }
    }
}

impl Lane {
    /// Quarantine this lane: flag the session, install the BB fallback.
    fn quarantine(&mut self, shard: usize, why: &str) {
        telemetry::counter_add("serve.quarantined", 1);
        let _ = (shard, why); // reasons surface via telemetry counts only
        self.session.quarantine();
        if self.fallback.is_none() {
            self.fallback = Some(BufferBased::pensieve_defaults());
        }
    }

    /// Step one chunk under the fallback policy (true observation).
    fn fallback_step(&mut self) -> f64 {
        let obs = self.session.observation();
        let idx = self.fallback.as_mut().expect("quarantined lane has a fallback").select(&obs);
        telemetry::counter_add("serve.fallback", 1);
        self.session.step(idx)
    }
}

/// One shard's full execution state: the [`exec`] slot type. Cloning it
/// is what snapshots a shard (sessions, protocol state, tick cursor).
#[derive(Clone)]
struct ShardState {
    shard: usize,
    lo: u64,
    hi: u64,
    tick: usize,
    lanes: Vec<Lane>,
    retries: u64,
    quarantined: u64,
    fallback_decisions: u64,
    /// Set when a `corrupt@serve.shard.<id>` injection fired: the spool
    /// written at shard completion gets bit-flipped, exercising the
    /// resume path's checksum quarantine.
    corrupt_spool: bool,
}

impl ShardState {
    fn new(
        shard: usize,
        ids: (u64, u64),
        cfg: &FleetConfig,
        policy: &FleetPolicy,
        stream: &TraceStream,
    ) -> ShardState {
        let (lo, hi) = ids;
        let lanes = (lo..hi)
            .map(|id| {
                let trace = stream.nth_trace(id);
                let session = Session::new(id, &cfg.video, &cfg.qoe, &trace, cfg.record_chunks);
                let proto = match policy {
                    FleetPolicy::Batched(_) => None,
                    FleetPolicy::PerSession(factory) => {
                        let mut proto = factory(id);
                        proto.reset(); // mirror run_session's per-session reset
                        Some(proto)
                    }
                };
                Lane { session, proto, fallback: None }
            })
            .collect();
        ShardState {
            shard,
            lo,
            hi,
            tick: 0,
            lanes,
            retries: 0,
            quarantined: 0,
            fallback_decisions: 0,
            corrupt_spool: false,
        }
    }
}

/// What one shard hands back to the aggregation step.
struct ShardOutcome {
    results: Vec<SessionResult>,
    quarantined: u64,
    fallback_decisions: u64,
    retries: u64,
}

/// On-disk spool record for one finished shard.
#[derive(Serialize, Deserialize)]
struct SpoolShard {
    /// Fingerprint of `(stream, video, qoe, record_chunks, lo, hi)` —
    /// a spool is only resumed for the exact same inputs.
    fingerprint: u64,
    lo: u64,
    hi: u64,
    results: Vec<SessionResult>,
    quarantined: u64,
    fallback_decisions: u64,
    retries: u64,
}

/// Poison the first live observation of a tick when a `serve.obs`
/// injection is armed. NaN/corrupt mutate a *copy* that only the
/// validator sees — modelling a corrupt telemetry pipe the quarantine
/// layer must catch before the policy does.
fn maybe_poison_obs(obs: &mut AbrObservation, hb: &exec::Heartbeat) {
    if !fault::active() {
        return;
    }
    match fault::check("serve.obs") {
        Some(fault::Injection::Nan) => obs.buffer_s = f64::NAN,
        Some(fault::Injection::Corrupt) => obs.buffer_s = -1e12,
        Some(fault::Injection::Stall(d)) => hb.stall_for(d),
        None => {}
    }
}

/// Poison the first live policy output of a tick when a `serve.policy`
/// injection is armed: the returned index is off the ladder, which the
/// action validator must catch before the player panics on it.
fn maybe_poison_action(n_qualities: usize, hb: &exec::Heartbeat) -> Option<usize> {
    if !fault::active() {
        return None;
    }
    match fault::check("serve.policy") {
        Some(fault::Injection::Nan) => Some(usize::MAX),
        Some(fault::Injection::Corrupt) => Some(n_qualities + 7),
        Some(fault::Injection::Stall(d)) => {
            hb.stall_for(d);
            None
        }
        None => None,
    }
}

/// Advance every lane of the shard by exactly one chunk.
///
/// Live lanes are driven by the fleet policy (batched or per-session);
/// quarantined lanes by their BB fallback on the true observation. With
/// no quarantine and no injection this reproduces the pre-supervision
/// engine bit for bit: same features, same batched forward, same clamp,
/// same step order.
fn run_tick(state: &mut ShardState, hb: &exec::Heartbeat, cfg: &FleetConfig, policy: &FleetPolicy) {
    let n_q = cfg.video.n_qualities();
    let shard = state.shard;
    let mut newly_quarantined = 0u64;
    let mut fallback_decisions = 0u64;
    match policy {
        FleetPolicy::Batched(p) => {
            // pass 1: validate observations, collect features of live lanes
            let mut live: Vec<usize> = Vec::with_capacity(state.lanes.len());
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(state.lanes.len());
            let mut obs_point_armed = true;
            for (i, lane) in state.lanes.iter_mut().enumerate() {
                if lane.session.quarantined() {
                    continue;
                }
                let mut obs = lane.session.observation();
                if obs_point_armed {
                    obs_point_armed = false;
                    maybe_poison_obs(&mut obs, hb);
                }
                if let Err(why) = quarantine::validate_observation(&obs) {
                    lane.quarantine(shard, &why);
                    newly_quarantined += 1;
                    continue;
                }
                let raw = pensieve_features(&obs);
                rows.push(match &p.obs_norm {
                    Some(norm) => norm.normalize(&raw),
                    None => raw,
                });
                live.push(i);
            }
            // pass 2: one batched forward for the whole shard tick
            let actions = if live.is_empty() {
                Vec::new()
            } else {
                let mut feats = nn::Matrix::zeros(live.len(), PENSIEVE_OBS_DIM);
                for (r, row) in rows.iter().enumerate() {
                    feats.row_mut(r).copy_from_slice(row);
                }
                p.policy.mode_batch(&feats)
            };
            // pass 3: step every lane exactly once, in session-id order
            let mut next_live = 0usize;
            let mut policy_point_armed = true;
            for (i, lane) in state.lanes.iter_mut().enumerate() {
                let is_live = next_live < live.len() && live[next_live] == i;
                if is_live {
                    // same clamp as Pensieve::select
                    let mut idx = actions[next_live].index().min(n_q - 1);
                    next_live += 1;
                    if policy_point_armed {
                        policy_point_armed = false;
                        if let Some(poison) = maybe_poison_action(n_q, hb) {
                            idx = poison;
                        }
                    }
                    if quarantine::validate_action(idx, n_q).is_err() {
                        lane.quarantine(shard, "policy output off the ladder");
                        newly_quarantined += 1;
                        lane.fallback_step();
                        fallback_decisions += 1;
                    } else {
                        let qoe = lane.session.step(idx);
                        if !quarantine::qoe_is_sane(qoe) {
                            lane.quarantine(shard, "non-finite chunk QoE");
                            newly_quarantined += 1;
                        }
                    }
                } else {
                    lane.fallback_step();
                    fallback_decisions += 1;
                }
            }
        }
        FleetPolicy::PerSession(_) => {
            let mut obs_point_armed = true;
            let mut policy_point_armed = true;
            for lane in state.lanes.iter_mut() {
                if lane.session.quarantined() {
                    lane.fallback_step();
                    fallback_decisions += 1;
                    continue;
                }
                let mut obs = lane.session.observation();
                if obs_point_armed {
                    obs_point_armed = false;
                    maybe_poison_obs(&mut obs, hb);
                }
                if let Err(why) = quarantine::validate_observation(&obs) {
                    lane.quarantine(shard, &why);
                    newly_quarantined += 1;
                    lane.fallback_step();
                    fallback_decisions += 1;
                    continue;
                }
                let mut idx =
                    lane.proto.as_mut().expect("per-session lane has a protocol").select(&obs);
                if policy_point_armed {
                    policy_point_armed = false;
                    if let Some(poison) = maybe_poison_action(n_q, hb) {
                        idx = poison;
                    }
                }
                if quarantine::validate_action(idx, n_q).is_err() {
                    lane.quarantine(shard, "policy output off the ladder");
                    newly_quarantined += 1;
                    lane.fallback_step();
                    fallback_decisions += 1;
                    continue;
                }
                let qoe = lane.session.step(idx);
                if !quarantine::qoe_is_sane(qoe) {
                    lane.quarantine(shard, "non-finite chunk QoE");
                    newly_quarantined += 1;
                }
            }
        }
    }
    state.quarantined += newly_quarantined;
    state.fallback_decisions += fallback_decisions;
}

/// Run one shard to completion under snapshot-window supervision.
///
/// The shard executes in windows of `snapshot_ticks` ticks. Before each
/// window (when retries are budgeted) the whole shard state is cloned;
/// a panic inside the window — injected, organic, or a watchdog
/// cancellation surfacing through [`exec::Heartbeat::beat`] — rolls the
/// shard back to that snapshot and replays it. Deterministic sessions
/// make the replay bit-identical to an undisturbed execution. A shard
/// that exhausts `backoff.retries` re-raises the panic into the exec
/// layer, which converts it into the [`FleetError`] the caller sees.
fn run_shard_supervised(
    state: &mut ShardState,
    hb: &exec::Heartbeat,
    cfg: &FleetConfig,
    policy: &FleetPolicy,
    stream: &TraceStream,
    sup: &SupervisorConfig,
) -> ShardOutcome {
    if let Some(dir) = &sup.spool_dir {
        if let Some(outcome) = try_resume_spool(dir, state, cfg, stream) {
            return outcome;
        }
    }
    let ticks = cfg.video.n_chunks();
    let window = sup.snapshot_ticks.max(1);
    let point = format!("serve.shard.{}", state.shard);
    let mut attempt = 0usize;
    while state.tick < ticks {
        let snapshot = (sup.backoff.retries > 0).then(|| state.clone());
        let end = (state.tick + window).min(ticks);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if fault::active() {
                match fault::check(&point) {
                    Some(fault::Injection::Stall(d)) => hb.stall_for(d),
                    Some(fault::Injection::Corrupt) => state.corrupt_spool = true,
                    Some(fault::Injection::Nan) | None => {}
                }
            }
            while state.tick < end {
                run_tick(state, hb, cfg, policy);
                state.tick += 1;
                hb.beat();
            }
        }));
        match outcome {
            Ok(()) => attempt = 0,
            Err(payload) => {
                attempt += 1;
                if attempt > sup.backoff.retries {
                    // budget exhausted: surface through the exec layer
                    std::panic::resume_unwind(payload);
                }
                let snap = snapshot.expect("snapshot exists when retries are budgeted");
                let corrupt_spool = state.corrupt_spool; // fired faults stay fired
                *state = snap;
                state.corrupt_spool |= corrupt_spool;
                state.retries += 1;
                telemetry::counter_add("serve.shard.retry", 1);
                sup.backoff.pause(attempt);
            }
        }
    }
    debug_assert!(state.lanes.iter().all(|l| l.session.finished()));
    let outcome = ShardOutcome {
        results: state.lanes.drain(..).map(|lane| lane.session.into_result()).collect(),
        quarantined: state.quarantined,
        fallback_decisions: state.fallback_decisions,
        retries: state.retries,
    };
    if let Some(dir) = &sup.spool_dir {
        write_spool(dir, state, &outcome, cfg, stream);
    }
    outcome
}

/// Fingerprint of everything that determines a shard's results: the
/// trace stream, the video, the QoE weights, the recording flag and the
/// id block.
fn shard_fingerprint(cfg: &FleetConfig, stream: &TraceStream, lo: u64, hi: u64) -> u64 {
    let mut body = serde_json::to_string(stream).expect("stream serializes");
    body.push('|');
    body.push_str(&serde_json::to_string(&cfg.video).expect("video serializes"));
    body.push('|');
    body.push_str(&serde_json::to_string(&cfg.qoe).expect("qoe serializes"));
    body.push_str(&format!("|{}|{lo}|{hi}", cfg.record_chunks));
    rl::ckpt::fnv1a64(body.as_bytes())
}

fn spool_path(dir: &Path, lo: u64, hi: u64) -> PathBuf {
    dir.join(format!("shard-{lo}-{hi}.ckpt"))
}

/// Move a rotten spool aside (never delete evidence) and count it.
fn quarantine_spool(path: &Path) {
    let mut aside = path.as_os_str().to_os_string();
    aside.push(".quarantined");
    let _ = std::fs::rename(path, &aside);
    telemetry::counter_add("serve.spool.quarantined", 1);
}

/// Resume a finished shard from its spool, if one exists and matches.
fn try_resume_spool(
    dir: &Path,
    state: &ShardState,
    cfg: &FleetConfig,
    stream: &TraceStream,
) -> Option<ShardOutcome> {
    let path = spool_path(dir, state.lo, state.hi);
    if !path.exists() {
        return None;
    }
    let body = match rl::ckpt::read_checkpoint_file(&path) {
        Ok(body) => body,
        Err(_) => {
            // bad magic or checksum: a torn or corrupted spool
            quarantine_spool(&path);
            return None;
        }
    };
    match serde_json::from_str::<SpoolShard>(&body) {
        Ok(sp)
            if sp.lo == state.lo
                && sp.hi == state.hi
                && sp.fingerprint == shard_fingerprint(cfg, stream, state.lo, state.hi) =>
        {
            telemetry::counter_add("serve.spool.resume", 1);
            Some(ShardOutcome {
                results: sp.results,
                quarantined: sp.quarantined,
                fallback_decisions: sp.fallback_decisions,
                retries: sp.retries,
            })
        }
        Ok(_) => {
            // a spool for different inputs: recompute, keep it aside
            quarantine_spool(&path);
            None
        }
        Err(_) => {
            quarantine_spool(&path);
            None
        }
    }
}

/// Spool one finished shard (atomic, checksummed). Best-effort: a spool
/// that fails to write only costs the next run a recompute.
fn write_spool(
    dir: &Path,
    state: &ShardState,
    outcome: &ShardOutcome,
    cfg: &FleetConfig,
    stream: &TraceStream,
) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let record = SpoolShard {
        fingerprint: shard_fingerprint(cfg, stream, state.lo, state.hi),
        lo: state.lo,
        hi: state.hi,
        results: outcome.results.clone(),
        quarantined: outcome.quarantined,
        fallback_decisions: outcome.fallback_decisions,
        retries: outcome.retries,
    };
    let body = serde_json::to_string(&record).expect("spool record serializes");
    let path = spool_path(dir, state.lo, state.hi);
    if rl::ckpt::write_checkpoint_file(&path, &body).is_ok() {
        telemetry::counter_add("serve.spool.write", 1);
        if state.corrupt_spool {
            let _ = fault::corrupt_file(&path);
        }
    }
}

/// Run a fleet under full supervision; the robust sibling of
/// [`crate::engine::run_fleet`].
///
/// Admission first: with [`FleetConfig::max_inflight`] `= Some(cap)`,
/// sessions `cap..sessions` are shed deterministically (they never
/// start; their ids simply don't appear in `per_session`). The admitted
/// sessions are sharded and run under watchdog supervision with
/// snapshot-rollback retries; per-session quarantine keeps poisoned QoE
/// out of the aggregate sketch. Errors (a shard out of retry budget)
/// surface as [`FleetError`] instead of a panic.
///
/// Accounting invariant, asserted in debug builds and by `chaos_soak`:
/// `quarantined + completed + shed == admitted`.
pub fn try_run_fleet(
    cfg: &FleetConfig,
    policy: &FleetPolicy,
    stream: &TraceStream,
    sup: &SupervisorConfig,
) -> Result<FleetSummary, FleetError> {
    assert!(cfg.sessions > 0, "fleet needs at least one session");
    let _span = telemetry::span!("serve.fleet");
    let t0 = Instant::now();

    // fault domain 1: admission control / load shedding
    let admitted = cfg.sessions;
    let ran = match cfg.max_inflight {
        Some(cap) => admitted.min(cap),
        None => admitted,
    };
    let shed = admitted - ran;
    if shed > 0 {
        telemetry::counter_add("serve.shed", shed as u64);
    }
    let shards = cfg.shards.clamp(1, ran.max(1));

    // fault domain 2: supervised shards
    let mut states: Vec<ShardState> = if ran == 0 {
        Vec::new()
    } else {
        (0..shards)
            .map(|b| ShardState::new(b, block(ran, shards, b), cfg, policy, stream))
            .collect()
    };
    let run = exec::run_on_slots_watchdog(
        &mut states,
        // exec-level retries stay at 0: the supervisor's own
        // snapshot-window retry (finer-grained than exec's entry-state
        // rollback) is the recovery path
        &fault::Backoff::none(0),
        sup.watchdog.as_ref(),
        |_w, state, hb| run_shard_supervised(state, hb, cfg, policy, stream, sup),
    )
    .map_err(|e| FleetError { shard: e.index, source: e })?;

    // slot order = session-id order (blocks are contiguous and sorted)
    let mut per_session: Vec<SessionResult> = Vec::with_capacity(ran);
    let mut quarantined = 0u64;
    let mut fallbacks = 0u64;
    let mut shard_retries = 0u64;
    for (outcome, stat) in run.results.into_iter().zip(&run.stats) {
        quarantined += outcome.quarantined;
        fallbacks += outcome.fallback_decisions;
        // internal window retries + any exec-level re-attempts
        shard_retries += outcome.retries + (stat.attempts as u64).saturating_sub(1);
        per_session.extend(outcome.results);
    }
    debug_assert_eq!(per_session.len(), ran);

    // fault domain 3: quarantine keeps poisoned QoE out of the sketch.
    // Single-sketch aggregation on the caller's thread, in session-id
    // order: no sketch merging, so the summary is shard-count invariant.
    let mut sketch = QuantileSketch::new(cfg.sketch_eps);
    let mut decisions = 0u64;
    for r in &per_session {
        decisions += r.chunks as u64;
        if !r.quarantined {
            sketch.insert(r.mean_qoe);
        }
    }
    let completed = ran - quarantined as usize;
    debug_assert_eq!(quarantined as usize + completed + shed, admitted);

    let wall_s = t0.elapsed().as_secs_f64();
    let decisions_per_s = decisions as f64 / wall_s.max(1e-9);
    telemetry::counter_add("serve.decisions", decisions);
    telemetry::gauge_set("serve.sessions", ran as f64);
    telemetry::gauge_set("serve.decisions_per_s", decisions_per_s);

    Ok(FleetSummary {
        sessions: ran,
        admitted,
        completed,
        quarantined,
        fallbacks,
        shed,
        shard_retries,
        shards,
        decisions,
        mean_qoe: sketch.mean(),
        // 0.0 sentinel when every session was shed or quarantined —
        // never NaN, so downstream CSVs and gates stay clean
        p5_qoe: sketch.quantile(0.05).unwrap_or(0.0),
        sketch,
        wall_s,
        decisions_per_s,
        per_session,
    })
}
