//! Streaming quantile sketch (Greenwald–Khanna, SIGMOD '01) with a
//! deterministic insertion path and a documented rank-error bound.
//!
//! A fleet run produces one QoE value per session — hundreds of
//! thousands at full scale. The exact percentile path
//! ([`nn::ops::percentile`]) copies and sorts all values; this sketch
//! instead keeps `O((1/ε)·log(εn))` tuples regardless of stream length
//! and answers any quantile query with rank error at most `εn + 1`:
//!
//! > For a query at rank `r`, the returned value's true rank lies in
//! > `[r − (εn + 1), r + (εn + 1)]`.
//!
//! (The classic bound is `εn`; the extra `+1` covers the floor in the
//! insertion capacity `⌊2εn⌋` and the linear interpolation of the exact
//! reference implementation. `tests/sketch_properties.rs` checks the
//! bound against [`nn::ops::percentile`] on random, sorted, reversed
//! and constant streams.)
//!
//! Sketches are **not merged**: merging GK summaries degrades the error
//! bound in subtle ways, so the fleet engine feeds a single sketch on
//! the caller's thread in session-id order — which also makes the
//! summary byte-identical across shard counts (serialization is
//! deterministic; same stream → same bytes).

use serde::{Deserialize, Serialize};

/// One GK tuple: a sample value `v` covering `g` ranks, with `delta`
/// uncertainty about where those ranks start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GkTuple {
    /// Sample value.
    v: f64,
    /// Number of ranks covered by this tuple (`rmin_i − rmin_{i−1}`).
    g: u64,
    /// Rank uncertainty (`rmax_i − rmin_i`).
    delta: u64,
}

/// Greenwald–Khanna streaming quantile sketch with target rank error
/// `ε`, plus exact running mean / min / max (those are O(1) anyway).
///
/// Inserts are deterministic and single-threaded; two sketches fed the
/// same stream are equal structure-for-structure and serialize to
/// identical bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    eps: f64,
    n: u64,
    tuples: Vec<GkTuple>,
    sum: f64,
    min: f64,
    max: f64,
    /// Non-finite inserts rejected so far (not part of the stream).
    rejected: u64,
}

impl QuantileSketch {
    /// New sketch with rank-error target `eps` (e.g. `0.005` keeps any
    /// quantile within ±0.5 % of the true rank, ±1 rank slack aside).
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "sketch eps must be in (0, 0.5), got {eps}");
        QuantileSketch {
            eps,
            n: 0,
            tuples: Vec::new(),
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rejected: 0,
        }
    }

    /// The configured rank-error target.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of values inserted.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Exact running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Exact minimum inserted value (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum inserted value (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Current tuple count — the sketch's memory footprint, bounded by
    /// `O((1/ε)·log(εn))` independent of the stream length.
    pub fn tuples_len(&self) -> usize {
        self.tuples.len()
    }

    /// Number of non-finite inserts rejected (never part of the stream).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Insert one value. Non-finite values (NaN/±∞) are **rejected**, not
    /// inserted: a single NaN breaks the GK tuple ordering and silently
    /// poisons every later query, and an infinity destroys the running
    /// mean. Rejects are counted (see [`QuantileSketch::rejected`]) and
    /// bump the `sketch.rejected` telemetry counter; the return value says
    /// whether the value entered the stream.
    pub fn insert(&mut self, v: f64) -> bool {
        if !v.is_finite() {
            self.rejected += 1;
            telemetry::counter_add("sketch.rejected", 1);
            return false;
        }
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        // new extrema carry delta 0 (their rank is known exactly at
        // insertion); interior inserts get the full capacity ⌊2εn⌋
        let pos = self.tuples.partition_point(|t| t.v <= v);
        let delta = if pos == 0 || pos == self.tuples.len() { 0 } else { self.capacity() };
        self.tuples.insert(pos, GkTuple { v, g: 1, delta });
        self.n += 1;
        // compress every ⌊1/(2ε)⌋ inserts, the GK schedule
        let period = ((1.0 / (2.0 * self.eps)) as u64).max(1);
        if self.n.is_multiple_of(period) {
            self.compress();
        }
        true
    }

    /// `⌊2εn⌋`: the band capacity a tuple (or a merge) must not exceed.
    fn capacity(&self) -> u64 {
        (2.0 * self.eps * self.n as f64).floor() as u64
    }

    /// Merge adjacent tuples whose combined coverage fits the capacity.
    /// The first and last tuples are never removed, so min/max queries
    /// stay exact.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let cap = self.capacity();
        let mut i = self.tuples.len() - 2;
        while i >= 1 {
            let merged = self.tuples[i].g + self.tuples[i + 1].g;
            if merged + self.tuples[i + 1].delta <= cap {
                self.tuples[i + 1].g = merged;
                self.tuples.remove(i);
            }
            i -= 1;
        }
    }

    /// Value at quantile `phi ∈ [0, 1]`; `None` when the sketch is
    /// empty. The returned value's true rank is within `εn + 1` of the
    /// target rank `phi·(n−1) + 1` (the same rank convention as
    /// [`nn::ops::percentile`]).
    pub fn quantile(&self, phi: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&phi), "quantile {phi} outside [0, 1]");
        if self.n == 0 {
            return None;
        }
        let n = self.n as f64;
        let target = phi * (n - 1.0) + 1.0; // 1-based rank
        let threshold = target + self.eps * n;
        let mut rmin = 0u64;
        let mut prev = self.tuples[0].v;
        for t in &self.tuples {
            rmin += t.g;
            if (rmin + t.delta) as f64 > threshold {
                return Some(prev);
            }
            prev = t.v;
        }
        Some(prev)
    }

    /// Percentile convenience: `p ∈ [0, 100]`, mirroring
    /// [`nn::ops::percentile`]'s scale.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile rank {p} outside [0, 100]");
        self.quantile(p / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_tiny_streams() {
        let mut s = QuantileSketch::new(0.01);
        assert_eq!(s.quantile(0.5), None);
        for v in [3.0, 1.0, 2.0] {
            s.insert(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(3.0));
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn extrema_stay_exact_under_compression() {
        let mut s = QuantileSketch::new(0.02);
        for i in 0..10_000 {
            s.insert((i as f64 * 0.761).sin());
        }
        let lo = s.quantile(0.0).unwrap();
        let hi = s.quantile(1.0).unwrap();
        assert_eq!(lo, s.min());
        assert_eq!(hi, s.max());
        assert!(s.tuples_len() < 10_000, "compression must actually run");
    }

    #[test]
    fn non_finite_rejected_without_poisoning() {
        let mut s = QuantileSketch::new(0.01);
        assert!(s.insert(2.0));
        assert!(!s.insert(f64::NAN));
        assert!(!s.insert(f64::INFINITY));
        assert!(!s.insert(f64::NEG_INFINITY));
        assert!(s.insert(4.0));
        // the rejects never entered the stream: count, mean and every
        // quantile behave exactly as if only 2.0 and 4.0 were inserted
        assert_eq!(s.count(), 2);
        assert_eq!(s.rejected(), 3);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.quantile(0.0), Some(2.0));
        assert_eq!(s.quantile(1.0), Some(4.0));
        let mut clean = QuantileSketch::new(0.01);
        clean.insert(2.0);
        clean.insert(4.0);
        assert_eq!(s.quantile(0.5), clean.quantile(0.5));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_quantile_rejected() {
        let mut s = QuantileSketch::new(0.01);
        s.insert(1.0);
        s.quantile(1.5);
    }
}
