//! Fleet-scale serving: tens of thousands of concurrent ABR sessions
//! stepped against a policy with batched inference, aggregated by
//! constant-memory quantile sketches.
//!
//! The paper evaluates protocols on dozens of traces; the roadmap's
//! north star is a production-scale system serving user *fleets* (as in
//! the real-world Pensieve deployment of Mao et al., PAPERS.md). This
//! crate is the serving layer that makes fleet-scale evaluation a
//! first-class workload:
//!
//! * [`session::Session`] — one independent ABR session: an
//!   [`abr::Player`] plus its own trace cursor, stepped one chunk at a
//!   time.
//! * [`engine::run_fleet`] — the session-sharded engine: N sessions are
//!   partitioned into contiguous shards fanned over [`exec`] worker
//!   slots; each shard amortizes policy inference by assembling a
//!   per-tick observation batch and calling the policy's batched
//!   forward ([`rl::PolicyKind::mode_batch`] →
//!   [`nn::Mlp::forward_batch`]) once per tick instead of per session.
//! * [`sketch::QuantileSketch`] — a Greenwald–Khanna streaming quantile
//!   sketch with bounded rank error, so fleet mean + p5 QoE (the
//!   paper's headline metrics) aggregate in memory independent of the
//!   session count.
//!
//! Since PR 8 the engine runs under a **fleet robustness layer**
//! (DESIGN.md §15):
//!
//! * [`supervisor::try_run_fleet`] — shard supervision (per-tick
//!   heartbeats, deterministic snapshot-rollback retries under
//!   [`fault::Backoff`]), per-session quarantine with a BB fallback
//!   when observations or policy outputs fail validation
//!   ([`quarantine`]), deterministic load shedding via
//!   [`engine::FleetConfig::max_inflight`], and an optional crash
//!   spool for kill+resume.
//!
//! Everything obeys the workspace determinism contract: a fleet's
//! per-session trajectories and its aggregate summary are pure
//! functions of `(config, policy, trace stream)` — independent of shard
//! count and thread scheduling (regression-tested in
//! `tests/fleet_equivalence.rs`), and the robustness layer is
//! bit-transparent while no fault fires
//! (`tests/supervised_equivalence.rs`). See DESIGN.md §13 and §15.

#![warn(missing_docs)]

pub mod engine;
pub mod quarantine;
pub mod session;
pub mod sketch;
pub mod supervisor;

pub use engine::{run_fleet, FleetConfig, FleetPolicy, FleetSummary};
pub use session::{Session, SessionResult};
pub use sketch::QuantileSketch;
pub use supervisor::{try_run_fleet, FleetError, SupervisorConfig};
