//! The session-sharded batch-inference engine.
//!
//! N sessions are split into `shards` **contiguous id blocks**; each
//! block becomes one [`exec`] worker slot. A shard runs its sessions in
//! lock-step ticks: per tick it assembles one observation-feature
//! matrix (one row per live session) and makes a single batched policy
//! call ([`rl::PolicyKind::mode_batch`] → [`nn::Mlp::forward_batch`])
//! instead of one forward per session — the PR-4 batched kernels
//! amortized across the fleet.
//!
//! Since PR 8 the shard loop itself lives in [`crate::supervisor`]: the
//! engine's [`run_fleet`] is a thin wrapper over
//! [`crate::supervisor::try_run_fleet`] with the default
//! [`crate::supervisor::SupervisorConfig`] — shards heartbeat, panics
//! and stalls retry from snapshots, bad observations quarantine their
//! session onto a BB fallback, and `max_inflight` sheds overload
//! deterministically.
//!
//! Invariants (DESIGN.md §13, §15):
//!
//! * **Session independence.** A session's trajectory depends only on
//!   `(policy, its trace)`; sessions never observe each other, so the
//!   shard partition cannot change any trajectory.
//! * **Bit-identical batching.** `mode_batch` is bit-identical per row
//!   to the per-sample `mode`, so the batched path reproduces the
//!   single-session `abr::run_session` path exactly.
//! * **Shard-invariant aggregation.** Shard results are concatenated
//!   in slot order (= session-id order, blocks are contiguous) and fed
//!   to one [`QuantileSketch`] on the caller's thread — never merged —
//!   so the aggregate summary is byte-identical for any shard count.
//! * **Supervision is bit-transparent.** With no fault fired and no
//!   quarantine triggered, the supervised engine's summary is
//!   byte-identical to the pre-supervision engine's
//!   (`tests/supervised_equivalence.rs`).
//!
//! Classic protocols (BB, MPC) have no batched forward; they run on the
//! same shard loop with one policy instance per session
//! ([`FleetPolicy::PerSession`]) — MPC is stateful, so instances are
//! never shared.

use crate::session::SessionResult;
use crate::sketch::QuantileSketch;
use crate::supervisor::{try_run_fleet, SupervisorConfig};
use abr::{AbrPolicy, Pensieve, QoeParams, Video};
use traces::TraceStream;

/// How the fleet drives its protocol.
pub enum FleetPolicy {
    /// A Pensieve model shared read-only across the fleet; inference is
    /// batched per shard tick through [`rl::PolicyKind::mode_batch`].
    Batched(Pensieve),
    /// One fresh protocol instance per session, built by the factory
    /// from the session id. Required for stateful protocols (MPC keeps
    /// per-session throughput-error history) and used for all classic
    /// protocols.
    PerSession(Box<dyn Fn(u64) -> Box<dyn AbrPolicy + Send> + Send + Sync>),
}

impl FleetPolicy {
    /// Batched-inference fleet over a trained Pensieve.
    pub fn batched(p: Pensieve) -> Self {
        FleetPolicy::Batched(p)
    }

    /// Per-session protocol instances from a factory.
    pub fn per_session<F>(factory: F) -> Self
    where
        F: Fn(u64) -> Box<dyn AbrPolicy + Send> + Send + Sync + 'static,
    {
        FleetPolicy::PerSession(Box::new(factory))
    }
}

/// Fleet-run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of sessions asking to be served ("admitted" in the
    /// summary's accounting).
    pub sessions: usize,
    /// Worker shards; clamped to `[1, running sessions]`.
    pub shards: usize,
    /// The video every session streams.
    pub video: Video,
    /// QoE weights.
    pub qoe: QoeParams,
    /// Rank-error target of the aggregation sketch.
    pub sketch_eps: f64,
    /// Record per-chunk QoE trajectories in every [`SessionResult`]
    /// (tests and small fleets only — O(chunks) memory per session).
    pub record_chunks: bool,
    /// Admission-control cap: at most this many sessions actually run;
    /// the rest are **shed** deterministically (highest session ids
    /// first — ids `cap..sessions` never start). `None` = no cap.
    pub max_inflight: Option<usize>,
}

impl FleetConfig {
    /// Standard fleet: Pensieve's CBR video and default QoE weights,
    /// sketch `ε = 0.005` (±0.5 % rank error), no trajectory recording,
    /// no admission cap.
    pub fn new(sessions: usize, shards: usize) -> Self {
        FleetConfig {
            sessions,
            shards,
            video: Video::cbr(),
            qoe: QoeParams::default(),
            sketch_eps: 0.005,
            record_chunks: false,
            max_inflight: None,
        }
    }
}

/// Aggregate outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Sessions that actually ran (admitted minus shed).
    pub sessions: usize,
    /// Sessions that asked to run (`FleetConfig::sessions`).
    pub admitted: usize,
    /// Sessions that ran to completion un-quarantined; their QoE is
    /// what the sketch aggregates. `quarantined + completed + shed ==
    /// admitted` always holds.
    pub completed: usize,
    /// Sessions quarantined mid-stream (invalid observation or policy
    /// output); they finish under the BB fallback but their QoE is
    /// excluded from the sketch.
    pub quarantined: u64,
    /// Chunk decisions made by fallback policies on quarantined
    /// sessions.
    pub fallbacks: u64,
    /// Sessions shed by admission control ([`FleetConfig::max_inflight`]).
    pub shed: usize,
    /// Shard snapshot-window retries absorbed by supervision (panics,
    /// watchdog cancellations).
    pub shard_retries: u64,
    /// Shards actually used (after clamping).
    pub shards: usize,
    /// Total policy decisions (= chunks fetched fleet-wide).
    pub decisions: u64,
    /// Exact fleet mean of per-session mean QoE over un-quarantined
    /// sessions (from the sketch's exact running sum). `0.0` sentinel
    /// when nothing completed.
    pub mean_qoe: f64,
    /// 5th-percentile session QoE from the sketch (rank error ≤ εn+1).
    /// `0.0` sentinel when nothing completed.
    pub p5_qoe: f64,
    /// The aggregation sketch itself, for further quantile queries.
    pub sketch: QuantileSketch,
    /// Wall-clock seconds of the sharded run (measurement, not part of
    /// the deterministic result).
    pub wall_s: f64,
    /// Serving throughput: `decisions / wall_s`.
    pub decisions_per_s: f64,
    /// Per-session results in session-id order (shed sessions are
    /// absent). `chunk_qoe` inside is populated only under
    /// [`FleetConfig::record_chunks`].
    pub per_session: Vec<SessionResult>,
}

/// Contiguous id block `[start, end)` owned by shard `b` of `shards`.
pub(crate) fn block(sessions: usize, shards: usize, b: usize) -> (u64, u64) {
    let q = sessions / shards;
    let r = sessions % shards;
    let start = b * q + b.min(r);
    let len = q + usize::from(b < r);
    (start as u64, (start + len) as u64)
}

/// Run a fleet of `cfg.sessions` concurrent sessions: session `i`
/// streams trace [`TraceStream::nth_trace`]`(i)` under `policy`.
///
/// This is [`try_run_fleet`] under the default
/// [`SupervisorConfig`] — watchdog from `ADVNET_WATCHDOG_MS`, two
/// immediate snapshot retries per shard window, no spool — with a
/// shard that exhausts its retry budget escalated to a panic. Callers
/// that want structured errors, a crash spool, or custom budgets use
/// [`try_run_fleet`] directly.
///
/// Telemetry (when enabled): span `serve.fleet`, counters
/// `serve.decisions` / `serve.quarantined` / `serve.fallback` /
/// `serve.shed` / `serve.shard.retry`, gauges `serve.sessions` and
/// `serve.decisions_per_s` — the decisions/s metric defined in
/// PERF.md.
pub fn run_fleet(cfg: &FleetConfig, policy: &FleetPolicy, stream: &TraceStream) -> FleetSummary {
    try_run_fleet(cfg, policy, stream, &SupervisorConfig::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr::BufferBased;
    use traces::{GenConfig, TraceFamily};

    #[test]
    fn shard_blocks_partition_the_fleet() {
        for (sessions, shards) in [(10, 3), (7, 7), (5, 1), (20_000, 16), (3, 8)] {
            let shards_eff = shards.clamp(1, sessions);
            let mut next = 0u64;
            for b in 0..shards_eff {
                let (lo, hi) = block(sessions, shards_eff, b);
                assert_eq!(lo, next, "{sessions}x{shards} shard {b}");
                assert!(hi > lo, "every shard owns at least one session");
                next = hi;
            }
            assert_eq!(next, sessions as u64);
        }
    }

    #[test]
    fn small_bb_fleet_completes_and_counts_decisions() {
        let cfg = FleetConfig::new(6, 2);
        let policy =
            FleetPolicy::per_session(|_id| Box::new(BufferBased::pensieve_defaults()) as _);
        let stream = TraceStream::new(TraceFamily::BenignMix, 42, GenConfig::default());
        let summary = run_fleet(&cfg, &policy, &stream);
        assert_eq!(summary.sessions, 6);
        assert_eq!(summary.decisions, 6 * cfg.video.n_chunks() as u64);
        assert_eq!(summary.per_session.len(), 6);
        assert!(summary.mean_qoe.is_finite());
        assert!(summary.p5_qoe.is_finite());
        assert!(summary.decisions_per_s > 0.0);
        // robustness accounting on a healthy fleet: everything admitted
        // ran to completion, nothing quarantined / fell back / shed
        assert_eq!(summary.admitted, 6);
        assert_eq!(summary.completed, 6);
        assert_eq!(summary.quarantined, 0);
        assert_eq!(summary.fallbacks, 0);
        assert_eq!(summary.shed, 0);
        assert_eq!(summary.shard_retries, 0);
    }

    #[test]
    fn admission_cap_sheds_deterministically() {
        let stream = TraceStream::new(TraceFamily::BenignMix, 42, GenConfig::default());
        let policy =
            FleetPolicy::per_session(|_id| Box::new(BufferBased::pensieve_defaults()) as _);
        let mut capped = FleetConfig::new(10, 2);
        capped.max_inflight = Some(6);
        let summary = run_fleet(&capped, &policy, &stream);
        assert_eq!(summary.admitted, 10);
        assert_eq!(summary.shed, 4);
        assert_eq!(summary.sessions, 6);
        assert_eq!(summary.completed, 6);
        // shedding is by session id: the capped fleet is exactly the
        // 6-session fleet, bit for bit
        let small = run_fleet(&FleetConfig::new(6, 2), &policy, &stream);
        assert_eq!(summary.per_session, small.per_session);
        assert_eq!(
            serde_json::to_string(&summary.sketch).unwrap(),
            serde_json::to_string(&small.sketch).unwrap()
        );
    }
}
