//! The session-sharded batch-inference engine.
//!
//! N sessions are split into `shards` **contiguous id blocks**; each
//! block becomes one [`exec::run_on_slots`] worker slot. A shard runs
//! its sessions in lock-step ticks: per tick it assembles one
//! observation-feature matrix (one row per live session) and makes a
//! single batched policy call ([`rl::PolicyKind::mode_batch`] →
//! [`nn::Mlp::forward_batch`]) instead of one forward per session —
//! the PR-4 batched kernels amortized across the fleet.
//!
//! Invariants (DESIGN.md §13):
//!
//! * **Session independence.** A session's trajectory depends only on
//!   `(policy, its trace)`; sessions never observe each other, so the
//!   shard partition cannot change any trajectory.
//! * **Bit-identical batching.** `mode_batch` is bit-identical per row
//!   to the per-sample `mode`, so the batched path reproduces the
//!   single-session `abr::run_session` path exactly.
//! * **Shard-invariant aggregation.** Shard results are concatenated
//!   in slot order (= session-id order, blocks are contiguous) and fed
//!   to one [`QuantileSketch`] on the caller's thread — never merged —
//!   so the aggregate summary is byte-identical for any shard count.
//!
//! Classic protocols (BB, MPC) have no batched forward; they run on the
//! same shard loop with one policy instance per session
//! ([`FleetPolicy::PerSession`]) — MPC is stateful, so instances are
//! never shared.

use crate::session::{Session, SessionResult};
use crate::sketch::QuantileSketch;
use abr::protocols::pensieve::{pensieve_features, PENSIEVE_OBS_DIM};
use abr::{AbrPolicy, Pensieve, QoeParams, Video};
use std::time::Instant;
use traces::TraceStream;

/// How the fleet drives its protocol.
pub enum FleetPolicy {
    /// A Pensieve model shared read-only across the fleet; inference is
    /// batched per shard tick through [`rl::PolicyKind::mode_batch`].
    Batched(Pensieve),
    /// One fresh protocol instance per session, built by the factory
    /// from the session id. Required for stateful protocols (MPC keeps
    /// per-session throughput-error history) and used for all classic
    /// protocols.
    PerSession(Box<dyn Fn(u64) -> Box<dyn AbrPolicy + Send> + Send + Sync>),
}

impl FleetPolicy {
    /// Batched-inference fleet over a trained Pensieve.
    pub fn batched(p: Pensieve) -> Self {
        FleetPolicy::Batched(p)
    }

    /// Per-session protocol instances from a factory.
    pub fn per_session<F>(factory: F) -> Self
    where
        F: Fn(u64) -> Box<dyn AbrPolicy + Send> + Send + Sync + 'static,
    {
        FleetPolicy::PerSession(Box::new(factory))
    }
}

/// Fleet-run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of concurrent sessions.
    pub sessions: usize,
    /// Worker shards; clamped to `[1, sessions]`.
    pub shards: usize,
    /// The video every session streams.
    pub video: Video,
    /// QoE weights.
    pub qoe: QoeParams,
    /// Rank-error target of the aggregation sketch.
    pub sketch_eps: f64,
    /// Record per-chunk QoE trajectories in every [`SessionResult`]
    /// (tests and small fleets only — O(chunks) memory per session).
    pub record_chunks: bool,
}

impl FleetConfig {
    /// Standard fleet: Pensieve's CBR video and default QoE weights,
    /// sketch `ε = 0.005` (±0.5 % rank error), no trajectory recording.
    pub fn new(sessions: usize, shards: usize) -> Self {
        FleetConfig {
            sessions,
            shards,
            video: Video::cbr(),
            qoe: QoeParams::default(),
            sketch_eps: 0.005,
            record_chunks: false,
        }
    }
}

/// Aggregate outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Sessions completed.
    pub sessions: usize,
    /// Shards actually used (after clamping).
    pub shards: usize,
    /// Total policy decisions (= chunks fetched fleet-wide).
    pub decisions: u64,
    /// Exact fleet mean of per-session mean QoE (from the sketch's
    /// exact running sum).
    pub mean_qoe: f64,
    /// 5th-percentile session QoE from the sketch (rank error ≤ εn+1).
    pub p5_qoe: f64,
    /// The aggregation sketch itself, for further quantile queries.
    pub sketch: QuantileSketch,
    /// Wall-clock seconds of the sharded run (measurement, not part of
    /// the deterministic result).
    pub wall_s: f64,
    /// Serving throughput: `decisions / wall_s`.
    pub decisions_per_s: f64,
    /// Per-session results in session-id order. `chunk_qoe` inside is
    /// populated only under [`FleetConfig::record_chunks`].
    pub per_session: Vec<SessionResult>,
}

/// Contiguous id block `[start, end)` owned by shard `b` of `shards`.
fn block(sessions: usize, shards: usize, b: usize) -> (u64, u64) {
    let q = sessions / shards;
    let r = sessions % shards;
    let start = b * q + b.min(r);
    let len = q + usize::from(b < r);
    (start as u64, (start + len) as u64)
}

/// Run one shard's sessions to completion, batching per-tick inference.
fn run_shard(
    ids: (u64, u64),
    cfg: &FleetConfig,
    policy: &FleetPolicy,
    stream: &TraceStream,
) -> Vec<SessionResult> {
    let (lo, hi) = ids;
    let mut sessions: Vec<Session> = (lo..hi)
        .map(|id| {
            let trace = stream.nth_trace(id);
            Session::new(id, &cfg.video, &cfg.qoe, &trace, cfg.record_chunks)
        })
        .collect();
    let n = sessions.len();
    let ticks = cfg.video.n_chunks();
    match policy {
        FleetPolicy::Batched(p) => {
            let n_q = cfg.video.n_qualities();
            let mut feats = nn::Matrix::zeros(n, PENSIEVE_OBS_DIM);
            for _tick in 0..ticks {
                for (i, s) in sessions.iter().enumerate() {
                    let raw = pensieve_features(&s.observation());
                    let feat = match &p.obs_norm {
                        Some(norm) => norm.normalize(&raw),
                        None => raw,
                    };
                    feats.row_mut(i).copy_from_slice(&feat);
                }
                // one batched forward for the whole shard tick
                let actions = p.policy.mode_batch(&feats);
                for (s, a) in sessions.iter_mut().zip(&actions) {
                    // same clamp as Pensieve::select
                    s.step(a.index().min(n_q - 1));
                }
            }
        }
        FleetPolicy::PerSession(factory) => {
            let mut protocols: Vec<Box<dyn AbrPolicy + Send>> = (lo..hi)
                .map(|id| {
                    let mut proto = factory(id);
                    proto.reset(); // mirror run_session's per-session reset
                    proto
                })
                .collect();
            for _tick in 0..ticks {
                for (s, proto) in sessions.iter_mut().zip(protocols.iter_mut()) {
                    let quality = proto.select(&s.observation());
                    s.step(quality);
                }
            }
        }
    }
    debug_assert!(sessions.iter().all(Session::finished));
    sessions.into_iter().map(Session::into_result).collect()
}

/// Run a fleet of `cfg.sessions` concurrent sessions: session `i`
/// streams trace [`TraceStream::nth_trace`]`(i)` under `policy`.
///
/// Telemetry (when enabled): span `serve.fleet`, counter
/// `serve.decisions`, gauges `serve.sessions` and
/// `serve.decisions_per_s` — the decisions/s metric defined in
/// PERF.md.
pub fn run_fleet(cfg: &FleetConfig, policy: &FleetPolicy, stream: &TraceStream) -> FleetSummary {
    assert!(cfg.sessions > 0, "fleet needs at least one session");
    let shards = cfg.shards.clamp(1, cfg.sessions);
    let _span = telemetry::span!("serve.fleet");
    let t0 = Instant::now();

    let mut slots: Vec<(u64, u64)> = (0..shards).map(|b| block(cfg.sessions, shards, b)).collect();
    let run = exec::run_on_slots(&mut slots, |_w, ids| run_shard(*ids, cfg, policy, stream));
    // slot order = session-id order (blocks are contiguous and sorted)
    let per_session: Vec<SessionResult> = run.results.into_iter().flatten().collect();
    debug_assert_eq!(per_session.len(), cfg.sessions);

    // single-sketch aggregation on the caller's thread, in session-id
    // order: no sketch merging, so the summary is shard-count invariant
    let mut sketch = QuantileSketch::new(cfg.sketch_eps);
    let mut decisions = 0u64;
    for r in &per_session {
        decisions += r.chunks as u64;
        sketch.insert(r.mean_qoe);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let decisions_per_s = decisions as f64 / wall_s.max(1e-9);
    telemetry::counter_add("serve.decisions", decisions);
    telemetry::gauge_set("serve.sessions", cfg.sessions as f64);
    telemetry::gauge_set("serve.decisions_per_s", decisions_per_s);

    FleetSummary {
        sessions: cfg.sessions,
        shards,
        decisions,
        mean_qoe: sketch.mean(),
        p5_qoe: sketch.quantile(0.05).expect("non-empty fleet"),
        sketch,
        wall_s,
        decisions_per_s,
        per_session,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr::BufferBased;
    use traces::{GenConfig, TraceFamily};

    #[test]
    fn shard_blocks_partition_the_fleet() {
        for (sessions, shards) in [(10, 3), (7, 7), (5, 1), (20_000, 16), (3, 8)] {
            let shards_eff = shards.clamp(1, sessions);
            let mut next = 0u64;
            for b in 0..shards_eff {
                let (lo, hi) = block(sessions, shards_eff, b);
                assert_eq!(lo, next, "{sessions}x{shards} shard {b}");
                assert!(hi > lo, "every shard owns at least one session");
                next = hi;
            }
            assert_eq!(next, sessions as u64);
        }
    }

    #[test]
    fn small_bb_fleet_completes_and_counts_decisions() {
        let cfg = FleetConfig::new(6, 2);
        let policy =
            FleetPolicy::per_session(|_id| Box::new(BufferBased::pensieve_defaults()) as _);
        let stream = TraceStream::new(TraceFamily::BenignMix, 42, GenConfig::default());
        let summary = run_fleet(&cfg, &policy, &stream);
        assert_eq!(summary.sessions, 6);
        assert_eq!(summary.decisions, 6 * cfg.video.n_chunks() as u64);
        assert_eq!(summary.per_session.len(), 6);
        assert!(summary.mean_qoe.is_finite());
        assert!(summary.p5_qoe.is_finite());
        assert!(summary.decisions_per_s > 0.0);
    }
}
