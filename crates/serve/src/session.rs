//! One fleet session: an independent ABR player walking its own trace.

use abr::{AbrObservation, Player, QoeParams, TraceNetwork, Video};
use serde::{Deserialize, Serialize};
use traces::Trace;

/// A single streaming session inside a fleet: an [`abr::Player`] plus a
/// [`abr::TraceNetwork`] cursor at the start of its own trace — exactly
/// the state `abr::run_session` builds for the single-session eval
/// path, so a 1-session fleet reproduces that path bit-for-bit
/// (regression-tested in `tests/fleet_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct Session {
    id: u64,
    player: Player,
    net: TraceNetwork,
    qoe_sum: f64,
    chunks: usize,
    /// Per-chunk QoE trajectory; recorded only when the engine runs
    /// with `record_chunks` (equivalence tests, small fleets).
    chunk_qoe: Option<Vec<f64>>,
    /// Set once the supervisor has quarantined this session (an invalid
    /// observation or poisoned policy output was detected mid-stream).
    quarantined: bool,
}

impl Session {
    /// New session `id` streaming `video` over `trace` from offset 0.
    pub fn new(
        id: u64,
        video: &Video,
        qoe: &QoeParams,
        trace: &Trace,
        record_chunks: bool,
    ) -> Self {
        Session {
            id,
            player: Player::new(video, qoe.clone()),
            net: TraceNetwork::new(trace),
            qoe_sum: 0.0,
            chunks: 0,
            chunk_qoe: record_chunks.then(Vec::new),
            quarantined: false,
        }
    }

    /// Session identifier (equals its index in the fleet and the seed
    /// offset of its trace).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether every chunk of the video has been fetched.
    pub fn finished(&self) -> bool {
        self.player.finished()
    }

    /// Whether the supervisor has quarantined this session.
    pub fn quarantined(&self) -> bool {
        self.quarantined
    }

    /// Mark the session quarantined: its QoE is no longer trusted and
    /// is excluded from fleet aggregation; a fallback policy drives the
    /// remaining chunks. Irreversible for the life of the session.
    pub fn quarantine(&mut self) {
        self.quarantined = true;
    }

    /// The observation the policy conditions on for the next chunk.
    pub fn observation(&self) -> AbrObservation {
        self.player.observation(&self.net)
    }

    /// Fetch the next chunk at `quality`; returns its QoE contribution.
    pub fn step(&mut self, quality: usize) -> f64 {
        let outcome = self.player.step(quality, &mut self.net);
        self.qoe_sum += outcome.qoe;
        self.chunks += 1;
        if let Some(traj) = &mut self.chunk_qoe {
            traj.push(outcome.qoe);
        }
        outcome.qoe
    }

    /// Per-chunk mean QoE so far (the paper's session metric).
    pub fn mean_qoe(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.qoe_sum / self.chunks as f64
        }
    }

    /// Consume the session into its result record.
    pub fn into_result(self) -> SessionResult {
        SessionResult {
            id: self.id,
            chunks: self.chunks,
            mean_qoe: if self.chunks == 0 { 0.0 } else { self.qoe_sum / self.chunks as f64 },
            chunk_qoe: self.chunk_qoe.unwrap_or_default(),
            quarantined: self.quarantined,
        }
    }
}

/// What one finished session contributes to the fleet summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionResult {
    /// Session identifier (fleet index).
    pub id: u64,
    /// Chunks fetched (= policy decisions made).
    pub chunks: usize,
    /// Per-chunk mean QoE of the session.
    pub mean_qoe: f64,
    /// Per-chunk QoE trajectory; empty unless the engine ran with
    /// `record_chunks`.
    pub chunk_qoe: Vec<f64>,
    /// Whether the session was quarantined mid-stream; quarantined
    /// sessions complete under the fallback policy but their QoE is
    /// excluded from the fleet sketch.
    pub quarantined: bool,
}
