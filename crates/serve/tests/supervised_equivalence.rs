//! Bit-transparency of the robustness layer (DESIGN.md §15): a fleet
//! run with supervision fully **armed** — watchdog on, snapshot
//! rollback budgeted, observation/action validation and quarantine
//! live — but never **triggered** must be byte-identical to the
//! unsupervised reference, for every shard count and snapshot
//! granularity. Safety that isn't free of side effects when idle would
//! silently change the paper's numbers.

use abr::protocols::pensieve::PENSIEVE_OBS_DIM;
use abr::{AbrPolicy, BufferBased, Mpc, Pensieve, QoeParams, TraceNetwork, Video};
use proptest::prelude::*;
use serve::{try_run_fleet, FleetConfig, FleetPolicy, SupervisorConfig};
use traces::{GenConfig, TraceFamily, TraceStream};

/// Untrained but deterministic Pensieve (same as fleet_equivalence.rs).
fn test_pensieve() -> Pensieve {
    let ppo = rl::Ppo::new_categorical(
        PENSIEVE_OBS_DIM,
        6,
        &[16],
        rl::PpoConfig { seed: 17, ..rl::PpoConfig::default() },
    );
    Pensieve::new(ppo.policy.clone(), ppo.obs_norm.clone())
}

/// Per-chunk QoE of the reference single-session path.
fn reference_chunk_qoe(policy: &mut dyn AbrPolicy, stream: &TraceStream, id: u64) -> Vec<f64> {
    let video = Video::cbr();
    let qoe = QoeParams::default();
    let trace = stream.nth_trace(id);
    let mut net = TraceNetwork::new(&trace);
    abr::run_session(&video, policy, &mut net, &qoe).iter().map(|o| o.qoe).collect()
}

/// A supervisor with everything armed: a watchdog far above any real
/// tick time (so it never fires), a retry budget, rollback snapshots
/// every `snapshot_ticks`, no spool.
fn armed(snapshot_ticks: usize) -> SupervisorConfig {
    // explicit fast poll: the monitor thread is joined at run end, so
    // the default poll (timeout/10) would add seconds of idle wait
    let watchdog = exec::WatchdogConfig {
        timeout: std::time::Duration::from_secs(60),
        poll: std::time::Duration::from_millis(2),
    };
    SupervisorConfig {
        backoff: fault::Backoff::none(2),
        watchdog: Some(watchdog),
        snapshot_ticks,
        spool_dir: None,
    }
}

fn family(idx: usize) -> TraceFamily {
    match idx % 3 {
        0 => TraceFamily::BenignMix,
        1 => TraceFamily::FccLike,
        _ => TraceFamily::AdversarialLike,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Armed supervision reproduces the reference `abr::run_session`
    /// trajectory of every session, bit for bit, regardless of shard
    /// count or snapshot granularity.
    #[test]
    fn armed_supervision_is_bit_transparent(
        sessions in 2usize..8,
        seed in 0u64..1_000,
        snapshot_ticks in 1usize..20,
        family_idx in 0usize..3,
    ) {
        let stream = TraceStream::new(family(family_idx), seed, GenConfig::default());
        let policy =
            FleetPolicy::per_session(|_id| Box::new(BufferBased::pensieve_defaults()) as _);

        // reference: the plain single-session eval path, per session
        let reference: Vec<Vec<f64>> = (0..sessions as u64)
            .map(|id| {
                let mut bb = BufferBased::pensieve_defaults();
                reference_chunk_qoe(&mut bb, &stream, id)
            })
            .collect();

        let mut sketches: Vec<String> = Vec::new();
        for shards in [1usize, 2, 4] {
            let cfg = FleetConfig { record_chunks: true, ..FleetConfig::new(sessions, shards) };
            let summary = try_run_fleet(&cfg, &policy, &stream, &armed(snapshot_ticks))
                .expect("armed-but-untriggered fleet must complete");
            prop_assert_eq!(summary.quarantined, 0);
            prop_assert_eq!(summary.fallbacks, 0);
            prop_assert_eq!(summary.shard_retries, 0);
            prop_assert_eq!(summary.completed, sessions);
            for (id, want) in reference.iter().enumerate() {
                let got = &summary.per_session[id].chunk_qoe;
                prop_assert_eq!(want.len(), got.len());
                for (w, g) in want.iter().zip(got) {
                    prop_assert_eq!(w.to_bits(), g.to_bits());
                }
            }
            sketches.push(serde_json::to_string(&summary.sketch).expect("sketch serializes"));
        }
        // shard count must not change a single aggregation byte
        prop_assert_eq!(&sketches[1], &sketches[0]);
        prop_assert_eq!(&sketches[2], &sketches[0]);
    }
}

/// The batched-Pensieve and stateful-MPC paths through the supervised
/// engine stay bit-identical to their references (fixed case: the
/// proptest above covers the combinatorics on the cheap BB path).
#[test]
fn armed_supervision_is_transparent_for_batched_and_stateful_policies() {
    let stream = TraceStream::new(TraceFamily::BenignMix, 77, GenConfig::default());
    let cases: Vec<(&str, Box<dyn AbrPolicy>, FleetPolicy)> = vec![
        ("pensieve", Box::new(test_pensieve()), FleetPolicy::batched(test_pensieve())),
        (
            "mpc",
            Box::new(Mpc::default()),
            FleetPolicy::per_session(|_id| Box::new(Mpc::default()) as _),
        ),
    ];
    for (name, mut reference, fleet_policy) in cases {
        let want: Vec<Vec<f64>> =
            (0..6u64).map(|id| reference_chunk_qoe(reference.as_mut(), &stream, id)).collect();
        for shards in [1usize, 3] {
            let cfg = FleetConfig { record_chunks: true, ..FleetConfig::new(6, shards) };
            let summary =
                try_run_fleet(&cfg, &fleet_policy, &stream, &armed(5)).expect("fleet completes");
            assert_eq!(summary.quarantined, 0, "{name}: spurious quarantine");
            for (id, want) in want.iter().enumerate() {
                let got = &summary.per_session[id].chunk_qoe;
                assert_eq!(want.len(), got.len(), "{name} session {id}: chunk counts differ");
                for (i, (w, g)) in want.iter().zip(got).enumerate() {
                    assert_eq!(
                        w.to_bits(),
                        g.to_bits(),
                        "{name} session {id} chunk {i}: {w} vs {g}"
                    );
                }
            }
        }
    }
}
