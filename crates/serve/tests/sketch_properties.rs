//! Property tests for the GK quantile sketch against the exact
//! sort-based reference ([`nn::ops::percentile`] / [`nn::ops::try_sorted`]):
//!
//! * every query stays within the advertised rank-error bound `εn + 1`
//!   on random, sorted, reversed and constant streams;
//! * same stream → structurally equal sketch and byte-identical
//!   serialization (the engine's shard-invariance contract relies on
//!   this);
//! * memory (tuple count) grows sub-linearly in the stream length.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::QuantileSketch;

const PERCENTILES: [f64; 7] = [0.0, 5.0, 25.0, 50.0, 75.0, 95.0, 100.0];

/// Assert every queried percentile of `values` is within the sketch's
/// documented rank-error bound `εn + 1`: the returned value must lie
/// between the exact order statistics at ranks `target ∓ (εn + 1)`.
fn assert_within_rank_error(values: &[f64], eps: f64) {
    let mut sketch = QuantileSketch::new(eps);
    for &v in values {
        sketch.insert(v);
    }
    let sorted = nn::ops::try_sorted(values).expect("finite test data");
    let n = sorted.len() as f64;
    let err = eps * n + 1.0;
    for p in PERCENTILES {
        let got = sketch.percentile(p).expect("non-empty sketch");
        // same 1-based rank convention as nn::ops::percentile
        let target = (p / 100.0) * (n - 1.0) + 1.0;
        let lo_idx = ((target - err).floor() - 1.0).max(0.0) as usize;
        let hi_idx = (((target + err).ceil() - 1.0) as usize).min(sorted.len() - 1);
        assert!(
            sorted[lo_idx] <= got && got <= sorted[hi_idx],
            "p{p}: sketch {got} outside rank window [{}, {}] \
             (n={n}, eps={eps}, target rank {target:.1} +/- {err:.1})",
            sorted[lo_idx],
            sorted[hi_idx],
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random streams: every percentile query within `εn + 1` ranks of
    /// the exact sorted answer.
    #[test]
    fn random_streams_stay_within_bound(
        seed in 0_u64..10_000,
        n in 50_usize..500,
        eps_case in 0_usize..3,
    ) {
        let eps = [0.2, 0.05, 0.01][eps_case];
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        assert_within_rank_error(&values, eps);
    }

    /// Two sketches fed the same random stream are equal and serialize
    /// to identical bytes — the determinism the fleet engine's
    /// shard-invariance test builds on.
    #[test]
    fn same_stream_gives_byte_identical_summaries(
        seed in 0_u64..10_000,
        n in 1_usize..300,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let feed = |vals: &[f64]| {
            let mut s = QuantileSketch::new(0.02);
            for &v in vals {
                s.insert(v);
            }
            s
        };
        let (a, b) = (feed(&values), feed(&values));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            serde_json::to_string(&a).expect("sketch serializes"),
            serde_json::to_string(&b).expect("sketch serializes")
        );
    }
}

#[test]
fn adversarial_orderings_stay_within_bound() {
    let n = 2_000;
    let sorted: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
    let reversed: Vec<f64> = sorted.iter().rev().copied().collect();
    let constant = vec![1.25; n];
    for eps in [0.1, 0.01] {
        assert_within_rank_error(&sorted, eps);
        assert_within_rank_error(&reversed, eps);
        assert_within_rank_error(&constant, eps);
    }
}

#[test]
fn memory_grows_sublinearly_with_stream_length() {
    let tuples_after = |n: usize| {
        let mut s = QuantileSketch::new(0.01);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..n {
            s.insert(rng.gen_range(0.0..1.0));
        }
        s.tuples_len()
    };
    let small = tuples_after(20_000);
    let large = tuples_after(200_000);
    // 10x the stream must cost far less than 10x the tuples (GK is
    // O((1/eps) log(eps n))); in practice the growth is ~logarithmic
    assert!(large < small * 3, "tuples grew {small} -> {large} over a 10x stream; not sublinear");
    assert!(large < 20_000 / 10, "sketch holds {large} tuples; hardly constant-memory");
}
