//! The fleet engine's two load-bearing equivalence contracts
//! (DESIGN.md §13):
//!
//! 1. **Single-session parity** — a 1-session fleet reproduces the
//!    single-session [`abr::run_session`] eval path *bit-for-bit*, per
//!    chunk, for every policy kind (BB, stateful MPC, and batched
//!    Pensieve inference).
//! 2. **Shard invariance** — the shard count changes wall-clock only:
//!    every per-session trajectory and the serialized aggregation
//!    sketch are identical for 1, 2 and 4 shards.

use abr::protocols::pensieve::PENSIEVE_OBS_DIM;
use abr::{AbrPolicy, BufferBased, Mpc, Pensieve, QoeParams, TraceNetwork, Video};
use serve::{run_fleet, FleetConfig, FleetPolicy};
use traces::{GenConfig, TraceFamily, TraceStream};

/// An untrained (random-weight) but fully deterministic Pensieve: the
/// equivalence contracts are about execution paths, not model quality.
fn test_pensieve() -> Pensieve {
    let ppo = rl::Ppo::new_categorical(
        PENSIEVE_OBS_DIM,
        6,
        &[16],
        rl::PpoConfig { seed: 17, ..rl::PpoConfig::default() },
    );
    Pensieve::new(ppo.policy.clone(), ppo.obs_norm.clone())
}

/// Per-chunk QoE of the reference single-session path.
fn reference_chunk_qoe(policy: &mut dyn AbrPolicy, stream: &TraceStream, id: u64) -> Vec<f64> {
    let video = Video::cbr();
    let qoe = QoeParams::default();
    let trace = stream.nth_trace(id);
    let mut net = TraceNetwork::new(&trace);
    abr::run_session(&video, policy, &mut net, &qoe).iter().map(|o| o.qoe).collect()
}

fn one_session_fleet(policy: &FleetPolicy, stream: &TraceStream) -> Vec<f64> {
    let cfg = FleetConfig { record_chunks: true, ..FleetConfig::new(1, 1) };
    let summary = run_fleet(&cfg, policy, stream);
    summary.per_session[0].chunk_qoe.clone()
}

#[test]
fn one_session_fleet_matches_run_session_bit_for_bit() {
    let stream = TraceStream::new(TraceFamily::BenignMix, 77, GenConfig::default());

    let cases: Vec<(&str, Box<dyn AbrPolicy>, FleetPolicy)> = vec![
        (
            "bb",
            Box::new(BufferBased::pensieve_defaults()),
            FleetPolicy::per_session(|_id| Box::new(BufferBased::pensieve_defaults()) as _),
        ),
        (
            "mpc",
            Box::new(Mpc::default()),
            FleetPolicy::per_session(|_id| Box::new(Mpc::default()) as _),
        ),
        ("pensieve", Box::new(test_pensieve()), FleetPolicy::batched(test_pensieve())),
    ];
    for (name, mut reference, fleet_policy) in cases {
        let want = reference_chunk_qoe(reference.as_mut(), &stream, 0);
        let got = one_session_fleet(&fleet_policy, &stream);
        assert_eq!(want.len(), got.len(), "{name}: chunk counts differ");
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(w.to_bits(), g.to_bits(), "{name}: chunk {i} QoE differs ({w} vs {g})");
        }
    }
}

#[test]
fn shard_count_changes_nothing_but_speed() {
    let stream = TraceStream::new(TraceFamily::AdversarialLike, 321, GenConfig::default());
    let policies: Vec<(&str, FleetPolicy)> = vec![
        ("bb", FleetPolicy::per_session(|_id| Box::new(BufferBased::pensieve_defaults()) as _)),
        ("pensieve", FleetPolicy::batched(test_pensieve())),
    ];
    for (name, policy) in policies {
        let run = |shards: usize| {
            let cfg = FleetConfig { record_chunks: true, ..FleetConfig::new(12, shards) };
            run_fleet(&cfg, &policy, &stream)
        };
        let reference = run(1);
        for shards in [2, 4] {
            let other = run(shards);
            assert_eq!(other.shards, shards);
            assert_eq!(
                reference.per_session, other.per_session,
                "{name}: {shards} shards changed a trajectory"
            );
            assert_eq!(
                serde_json::to_string(&reference.sketch).expect("sketch serializes"),
                serde_json::to_string(&other.sketch).expect("sketch serializes"),
                "{name}: {shards} shards changed the aggregation sketch bytes"
            );
            assert_eq!(reference.decisions, other.decisions);
        }
    }
}
