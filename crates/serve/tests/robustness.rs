//! Fault-injection tests for the fleet robustness layer (DESIGN.md
//! §15): quarantine + fallback on poisoned observations and policy
//! outputs, snapshot-rollback absorption of shard panics and stalls,
//! and structured errors when the retry budget runs out.
//!
//! The fault registry is process-global, so every test that installs a
//! plan serializes on [`FAULT_LOCK`] and clears the plan before
//! leaving.

use abr::protocols::pensieve::PENSIEVE_OBS_DIM;
use abr::BufferBased;
use serve::{run_fleet, try_run_fleet, FleetConfig, FleetPolicy, SupervisorConfig};
use std::sync::Mutex;
use traces::{GenConfig, TraceFamily, TraceStream};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with `plan` installed (empty string = no faults), holding
/// the global fault lock for the duration.
fn with_plan<T>(plan: &str, f: impl FnOnce() -> T) -> T {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if plan.is_empty() {
        fault::clear();
    } else {
        fault::install(fault::FaultPlan::parse(plan).expect("valid fault plan"));
    }
    let out = f();
    fault::clear();
    out
}

fn bb_policy() -> FleetPolicy {
    FleetPolicy::per_session(|_id| Box::new(BufferBased::pensieve_defaults()) as _)
}

fn pensieve_policy() -> FleetPolicy {
    let ppo = rl::Ppo::new_categorical(
        PENSIEVE_OBS_DIM,
        6,
        &[16],
        rl::PpoConfig { seed: 17, ..rl::PpoConfig::default() },
    );
    FleetPolicy::batched(abr::Pensieve::new(ppo.policy.clone(), ppo.obs_norm.clone()))
}

fn stream() -> TraceStream {
    TraceStream::new(TraceFamily::BenignMix, 42, GenConfig::default())
}

fn sup_no_watchdog() -> SupervisorConfig {
    SupervisorConfig { watchdog: None, ..SupervisorConfig::default() }
}

/// The accounting identity every run must satisfy.
fn assert_accounting(summary: &serve::FleetSummary) {
    assert_eq!(
        summary.quarantined as usize + summary.completed + summary.shed,
        summary.admitted,
        "quarantined + completed + shed != admitted"
    );
    assert_eq!(summary.sessions, summary.admitted - summary.shed);
    assert!(summary.mean_qoe.is_finite(), "poisoned mean leaked into the summary");
    assert!(summary.p5_qoe.is_finite(), "poisoned p5 leaked into the summary");
    assert_eq!(summary.sketch.count(), summary.completed as u64);
    assert_eq!(summary.sketch.rejected(), 0, "a non-finite QoE reached the sketch");
}

#[test]
fn nan_observation_quarantines_one_session_and_falls_back() {
    let cfg = FleetConfig::new(4, 1);
    let ticks = cfg.video.n_chunks() as u64;
    // the 5th serve.obs check (tick index 4) poisons the first live
    // lane's observation copy with NaN
    let summary = with_plan("nan@serve.obs:5", || {
        try_run_fleet(&cfg, &bb_policy(), &stream(), &sup_no_watchdog()).expect("fleet completes")
    });
    assert_accounting(&summary);
    assert_eq!(summary.quarantined, 1);
    assert_eq!(summary.completed, 3);
    assert!(summary.per_session[0].quarantined, "lane 0 took the poisoned observation");
    assert!(!summary.per_session[1].quarantined);
    // the quarantined session still finished every chunk — under the
    // BB fallback from the poisoned tick on
    assert_eq!(summary.per_session[0].chunks as u64, ticks);
    assert_eq!(summary.fallbacks, ticks - 4);
    assert_eq!(summary.decisions, 4 * ticks);
}

#[test]
fn poisoned_policy_output_quarantines_batched_session() {
    let cfg = FleetConfig::new(3, 1);
    let ticks = cfg.video.n_chunks() as u64;
    // the 2nd serve.policy check (tick index 1) replaces the first live
    // batched action with an off-ladder index; without validation the
    // player would panic the whole shard
    let summary = with_plan("corrupt@serve.policy:2", || {
        try_run_fleet(&cfg, &pensieve_policy(), &stream(), &sup_no_watchdog())
            .expect("fleet completes")
    });
    assert_accounting(&summary);
    assert_eq!(summary.quarantined, 1);
    assert_eq!(summary.completed, 2);
    assert!(summary.per_session[0].quarantined);
    // the poisoned tick itself is already served by the fallback
    assert_eq!(summary.fallbacks, ticks - 1);
    assert_eq!(summary.decisions, 3 * ticks);
}

#[test]
fn injected_shard_panic_is_absorbed_bit_identically() {
    let cfg = FleetConfig::new(6, 2);
    let baseline = with_plan("", || {
        try_run_fleet(&cfg, &bb_policy(), &stream(), &sup_no_watchdog()).expect("clean run")
    });
    let disturbed = with_plan("panic@serve.shard.1:1", || {
        try_run_fleet(&cfg, &bb_policy(), &stream(), &sup_no_watchdog()).expect("absorbed")
    });
    assert_accounting(&disturbed);
    assert_eq!(disturbed.shard_retries, 1, "exactly one window replay");
    assert_eq!(disturbed.quarantined, 0);
    // the replayed window reproduces the undisturbed results bit for bit
    assert_eq!(disturbed.per_session, baseline.per_session);
    assert_eq!(
        serde_json::to_string(&disturbed.sketch).unwrap(),
        serde_json::to_string(&baseline.sketch).unwrap()
    );
}

#[test]
fn stalled_shard_is_cancelled_by_watchdog_and_replayed() {
    let cfg = FleetConfig::new(4, 2);
    let baseline = with_plan("", || {
        try_run_fleet(&cfg, &bb_policy(), &stream(), &sup_no_watchdog()).expect("clean run")
    });
    // shard 0 wedges for 30 s without heartbeating on its first window;
    // a 100 ms watchdog cancels it into the rollback path
    let sup = SupervisorConfig {
        watchdog: Some(exec::WatchdogConfig::with_timeout_ms(100)),
        ..SupervisorConfig::default()
    };
    let disturbed = with_plan("stall@serve.shard.0:1,stall_ms=30000", || {
        try_run_fleet(&cfg, &bb_policy(), &stream(), &sup).expect("stall recovered")
    });
    assert_accounting(&disturbed);
    assert!(disturbed.shard_retries >= 1, "the cancelled window must count as a retry");
    assert_eq!(disturbed.per_session, baseline.per_session);
    assert_eq!(
        serde_json::to_string(&disturbed.sketch).unwrap(),
        serde_json::to_string(&baseline.sketch).unwrap()
    );
}

#[test]
fn exhausted_retry_budget_surfaces_a_structured_error() {
    let cfg = FleetConfig::new(4, 2);
    let sup = SupervisorConfig { backoff: fault::Backoff::none(1), ..sup_no_watchdog() };
    // shard 0 panics on its first attempt and again on the retry:
    // budget (1 retry) exhausted
    let err = with_plan("panic@serve.shard.0:1,panic@serve.shard.0:2", || {
        try_run_fleet(&cfg, &bb_policy(), &stream(), &sup).expect_err("budget must run out")
    });
    assert_eq!(err.shard, 0);
    let msg = err.to_string();
    assert!(msg.contains("shard 0"), "unhelpful error: {msg}");
}

#[test]
fn shedding_composes_with_quarantine_in_the_accounting() {
    let mut cfg = FleetConfig::new(8, 1);
    cfg.max_inflight = Some(5);
    let summary = with_plan("nan@serve.obs:3", || {
        try_run_fleet(&cfg, &bb_policy(), &stream(), &sup_no_watchdog()).expect("fleet completes")
    });
    assert_accounting(&summary);
    assert_eq!(summary.admitted, 8);
    assert_eq!(summary.shed, 3);
    assert_eq!(summary.quarantined, 1);
    assert_eq!(summary.completed, 4);
}

#[test]
fn run_fleet_panics_on_unrecoverable_shard() {
    // the legacy entry point escalates FleetError to a panic; its
    // default budget is 2 retries, so three injected panics exhaust it
    let result =
        with_plan("panic@serve.shard.0:1,panic@serve.shard.0:2,panic@serve.shard.0:3", || {
            std::panic::catch_unwind(|| {
                let cfg = FleetConfig::new(2, 1);
                run_fleet(&cfg, &bb_policy(), &stream())
            })
        });
    assert!(result.is_err(), "run_fleet must escalate an exhausted shard to a panic");
}
