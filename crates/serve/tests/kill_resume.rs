//! Kill+resume for supervised fleets (DESIGN.md §15): with a
//! `spool_dir` configured, every finished shard spools its results as a
//! checksummed `rl::ckpt` envelope; a re-run over the same inputs
//! resumes finished shards from the spool instead of recomputing, and
//! the resumed fleet is byte-identical to an undisturbed one. Corrupt
//! or mismatched spools are quarantined aside and recomputed.

use abr::BufferBased;
use serve::{try_run_fleet, FleetConfig, FleetPolicy, SupervisorConfig};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::SystemTime;
use traces::{GenConfig, TraceFamily, TraceStream};

/// Fault registry is process-global: serialize everything that installs
/// a plan (or must run plan-free) on one lock.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn bb_policy() -> FleetPolicy {
    FleetPolicy::per_session(|_id| Box::new(BufferBased::pensieve_defaults()) as _)
}

fn stream(seed: u64) -> TraceStream {
    TraceStream::new(TraceFamily::BenignMix, seed, GenConfig::default())
}

fn sup(spool: &Path, retries: usize) -> SupervisorConfig {
    SupervisorConfig {
        backoff: fault::Backoff::none(retries),
        watchdog: None,
        snapshot_ticks: 12,
        spool_dir: Some(spool.to_path_buf()),
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("advnet-kill-resume-{}-{tag}", std::process::id()))
}

fn mtime(path: &Path) -> SystemTime {
    std::fs::metadata(path).and_then(|m| m.modified()).expect("spool file has an mtime")
}

#[test]
fn crashed_fleet_resumes_from_spooled_shards_byte_identically() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch_dir("crash");
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = FleetConfig::new(8, 4); // contiguous blocks: 0-2, 2-4, 4-6, 6-8
    let policy = bb_policy();
    let stream = stream(42);

    fault::clear();
    let baseline = try_run_fleet(
        &cfg,
        &policy,
        &stream,
        &SupervisorConfig { watchdog: None, ..SupervisorConfig::default() },
    )
    .expect("spool-free baseline");

    // "kill" the fleet: shard 1 panics with a zero retry budget, so
    // try_run_fleet errors — but the surviving shards finish and spool
    fault::install(fault::FaultPlan::parse("panic@serve.shard.1:1").expect("valid plan"));
    let err = try_run_fleet(&cfg, &policy, &stream, &sup(&dir, 0)).expect_err("shard 1 must die");
    fault::clear();
    assert_eq!(err.shard, 1);
    let spool = |lo: u64, hi: u64| dir.join(format!("shard-{lo}-{hi}.ckpt"));
    for (lo, hi) in [(0, 2), (4, 6), (6, 8)] {
        assert!(spool(lo, hi).exists(), "surviving shard {lo}-{hi} must have spooled");
    }
    assert!(!spool(2, 4).exists(), "the crashed shard must not leave a spool");

    // resume: finished shards come back from the spool (their files are
    // not rewritten), the crashed shard recomputes — and the summary is
    // byte-identical to the undisturbed run
    let spooled_at: Vec<SystemTime> =
        [(0, 2), (4, 6), (6, 8)].iter().map(|&(lo, hi)| mtime(&spool(lo, hi))).collect();
    let resumed = try_run_fleet(&cfg, &policy, &stream, &sup(&dir, 2)).expect("resume succeeds");
    assert_eq!(resumed.per_session, baseline.per_session);
    assert_eq!(
        serde_json::to_string(&resumed.sketch).unwrap(),
        serde_json::to_string(&baseline.sketch).unwrap()
    );
    assert_eq!(resumed.quarantined, 0);
    assert!(spool(2, 4).exists(), "the recomputed shard spools on the resume run");
    for (&(lo, hi), &before) in [(0, 2), (4, 6), (6, 8)].iter().zip(&spooled_at) {
        assert_eq!(mtime(&spool(lo, hi)), before, "resumed shard {lo}-{hi} must not recompute");
    }

    // bit-rot one spool: the checksummed reader rejects it, the shard
    // is quarantined aside and recomputed — results unchanged
    fault::corrupt_file(&spool(0, 2)).expect("corrupt the spool");
    let healed = try_run_fleet(&cfg, &policy, &stream, &sup(&dir, 2)).expect("heals over rot");
    assert_eq!(healed.per_session, baseline.per_session);
    let mut aside = spool(0, 2).into_os_string();
    aside.push(".quarantined");
    assert!(Path::new(&aside).exists(), "rotten spool must be kept aside, not deleted");
    assert!(spool(0, 2).exists(), "recomputed shard must re-spool");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spool_for_different_inputs_is_quarantined_and_recomputed() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    let dir = scratch_dir("fingerprint");
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = FleetConfig::new(4, 1);
    let policy = bb_policy();

    // spool a fleet over seed 42, then run seed 43 against the same dir
    try_run_fleet(&cfg, &policy, &stream(42), &sup(&dir, 2)).expect("first fleet");
    let spool = dir.join("shard-0-4.ckpt");
    assert!(spool.exists());

    let clean = try_run_fleet(
        &cfg,
        &policy,
        &stream(43),
        &SupervisorConfig { watchdog: None, ..SupervisorConfig::default() },
    )
    .expect("spool-free reference");
    let other = try_run_fleet(&cfg, &policy, &stream(43), &sup(&dir, 2)).expect("second fleet");

    // the stale spool must not leak seed-42 results into the seed-43 run
    assert_eq!(other.per_session, clean.per_session);
    let mut aside = spool.clone().into_os_string();
    aside.push(".quarantined");
    assert!(Path::new(&aside).exists(), "mismatched spool must be kept aside");

    let _ = std::fs::remove_dir_all(&dir);
}
