//! Persistent worker pool: long-lived parked threads that work regions are
//! posted to, replacing the per-call `std::thread::scope` spawns the engine
//! started with.
//!
//! # Why a pool
//!
//! The PPO update phase fans a ~100-sample minibatch out to workers
//! hundreds of times per second. Spawning OS threads per fan-out costs
//! tens of microseconds each — comparable to the work itself for small
//! minibatches — which is how the original engine measured parallel
//! updates at *0.17×* serial speed. A pool spawns each worker thread once
//! per process, parks it on a condvar between regions, and hands it work
//! by pointer: posting a region costs one mutex round-trip and a wake-up
//! instead of N spawns and N joins.
//!
//! # Execution model
//!
//! A **region** is a batch of `participants` job invocations
//! `job(0), …, job(participants - 1)` that all run to completion before
//! [`WorkerPool::run`] returns. One region is active at a time per pool;
//! concurrent callers queue deterministically on the region slot (results
//! never depend on the interleaving, because every region's merge is
//! ordered by participant index, not completion time). Pool threads claim
//! participant indices from the active region; a thread that finishes one
//! participant claims the next unclaimed one, so a slow wake-up never
//! strands work.
//!
//! Panics inside `job` are caught per participant and re-thrown on the
//! caller's thread after the whole region drains — the lowest participant
//! index wins when several panic, which keeps error reporting independent
//! of scheduling.
//!
//! A `job` running *on* a pool thread (a nested fan-out) executes inline
//! and sequentially on that thread instead of posting a region: the region
//! slot is held by its own enclosing region, and waiting on it would
//! deadlock. Inline execution produces identical results by the crate's
//! determinism contract.
//!
//! # Telemetry
//!
//! * `exec.pool.spawned` — pool threads created (should plateau fast).
//! * `exec.pool.threads` — current pool size (gauge).
//! * `exec.pool.regions` — regions executed.
//! * `exec.pool.occupancy` — participants per region / pool size
//!   (histogram; 1.0 means the whole pool was used).
//! * `exec.pool.steals` / `exec.pool.chunks` — chunk-claim accounting from
//!   the chunked façades ([`crate::par_map`], [`crate::par_chunks`]): a
//!   "steal" is a chunk claimed by a participant other than its home
//!   `chunk % participants` slot.

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` on threads owned by a [`WorkerPool`]. Fan-outs started from a
/// pool thread run inline (see the module docs on nested regions).
pub fn on_pool_thread() -> bool {
    IN_POOL_WORKER.with(|c| c.get())
}

/// Lifetime-erased pointer to a region's job closure. Sound because
/// [`WorkerPool::run`] blocks until every participant has finished, so the
/// borrowed closure outlives every dereference.
#[derive(Clone, Copy)]
struct RawJob(*const (dyn Fn(usize) + Sync + 'static));
unsafe impl Send for RawJob {}

/// One posted batch of work: `job(w)` for every `w < participants`.
struct Region {
    job: RawJob,
    participants: usize,
    /// Next unclaimed participant index.
    next: usize,
    /// Participants that have finished (ok or panicked).
    finished: usize,
    /// Caught panic payloads, tagged by participant index.
    panics: Vec<(usize, Box<dyn Any + Send>)>,
}

struct PoolState {
    region: Option<Region>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here while no region has unclaimed participants.
    work_cv: Condvar,
    /// Callers park here, both for the region slot and for completion.
    done_cv: Condvar,
}

/// A persistent pool of worker threads (see the module docs).
///
/// All of this crate's façades run on one process-wide pool
/// ([`WorkerPool::global`]); independent pools exist for tests and for
/// callers that need isolation:
///
/// ```
/// let pool = exec::WorkerPool::new();
/// let hits = std::sync::atomic::AtomicUsize::new(0);
/// pool.run(4, &|_worker| {
///     hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
/// });
/// assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 4);
/// // threads persist, parked, for the next region
/// assert_eq!(pool.threads(), 4);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// An empty pool; threads are spawned on demand by [`WorkerPool::run`]
    /// and live until the pool is dropped.
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState { region: None, shutdown: false }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool every façade in this crate runs on. Grows to
    /// the largest worker count ever requested and never shrinks (parked
    /// threads cost only their stacks).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Current number of pool threads (spawned so far, all parked or
    /// working).
    pub fn threads(&self) -> usize {
        self.handles.lock().expect("pool handles lock poisoned").len()
    }

    fn ensure_threads(&self, want: usize) {
        let mut handles = self.handles.lock().expect("pool handles lock poisoned");
        while handles.len() < want {
            let shared = Arc::clone(&self.shared);
            let idx = handles.len();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("exec-pool-{idx}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn exec pool worker"),
            );
            telemetry::counter_add("exec.pool.spawned", 1);
        }
        if telemetry::enabled() {
            telemetry::gauge_set("exec.pool.threads", handles.len() as f64);
        }
    }

    /// Execute `job(0), …, job(participants - 1)` concurrently on pool
    /// threads and return once all have finished.
    ///
    /// Each participant index runs exactly once. With `participants <= 1`,
    /// or when called from a pool thread (nested region), the jobs run
    /// inline and sequentially on the calling thread — same results, by
    /// the determinism contract. A panic in any `job` resurfaces on the
    /// caller's thread after the region drains; when several participants
    /// panic, the lowest index's payload is re-thrown.
    pub fn run(&self, participants: usize, job: &(dyn Fn(usize) + Sync)) {
        if participants == 0 {
            return;
        }
        if participants == 1 || on_pool_thread() {
            for w in 0..participants {
                job(w);
            }
            return;
        }
        self.ensure_threads(participants);
        if telemetry::enabled() {
            telemetry::counter_add("exec.pool.regions", 1);
            let size = self.threads().max(1);
            telemetry::observe("exec.pool.occupancy", participants as f64 / size as f64);
        }
        // SAFETY: this frame blocks until `finished == participants`, so
        // the erased borrow never outlives the closure it points to.
        let raw: RawJob = RawJob(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job)
        });
        let mut st = self.shared.state.lock().expect("pool state lock poisoned");
        while st.region.is_some() {
            st = self.shared.done_cv.wait(st).expect("pool state lock poisoned");
        }
        st.region =
            Some(Region { job: raw, participants, next: 0, finished: 0, panics: Vec::new() });
        self.shared.work_cv.notify_all();
        while st.region.as_ref().map(|r| r.finished < r.participants).unwrap_or(false) {
            st = self.shared.done_cv.wait(st).expect("pool state lock poisoned");
        }
        let region = st.region.take().expect("region is owned by this caller until taken");
        // Free the region slot for any queued caller.
        self.shared.done_cv.notify_all();
        drop(st);
        let mut panics = region.panics;
        if !panics.is_empty() {
            panics.sort_by_key(|(w, _)| *w);
            let (_, payload) = panics.swap_remove(0);
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state lock poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        let handles =
            std::mem::take(&mut *self.handles.lock().expect("pool handles lock poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    IN_POOL_WORKER.with(|c| c.set(true));
    let mut st = shared.state.lock().expect("pool state lock poisoned");
    loop {
        if st.shutdown {
            return;
        }
        let claim = st.region.as_mut().and_then(|r| {
            (r.next < r.participants).then(|| {
                let w = r.next;
                r.next += 1;
                (w, r.job)
            })
        });
        match claim {
            Some((w, job)) => {
                drop(st);
                // SAFETY: `run` keeps the closure alive until the region
                // drains; participant w was claimed exactly once above.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                    (*job.0)(w)
                }));
                st = shared.state.lock().expect("pool state lock poisoned");
                let r = st.region.as_mut().expect("region outlives its participants");
                if let Err(payload) = result {
                    r.panics.push((w, payload));
                }
                r.finished += 1;
                if r.finished >= r.participants {
                    shared.done_cv.notify_all();
                }
            }
            None => {
                st = shared.work_cv.wait(st).expect("pool state lock poisoned");
            }
        }
    }
}

/// Pick the per-claim chunk length for `n_items` spread over `workers`:
/// roughly four chunks per worker, so stragglers can be stolen without
/// paying a claim per item.
pub(crate) fn chunk_len(n_items: usize, workers: usize) -> usize {
    n_items.div_ceil(workers.max(1) * 4).max(1)
}

/// Shared claim cursor + steal accounting for chunked work distribution.
pub(crate) struct ChunkCursor {
    next: AtomicUsize,
    n_chunks: usize,
    workers: usize,
}

impl ChunkCursor {
    pub(crate) fn new(n_chunks: usize, workers: usize) -> ChunkCursor {
        ChunkCursor { next: AtomicUsize::new(0), n_chunks, workers }
    }

    /// Claim the next chunk for participant `w`; returns the chunk index
    /// and whether it was a steal (claimed off the participant's home
    /// stride `chunk % workers == w`).
    pub(crate) fn claim(&self, w: usize) -> Option<(usize, bool)> {
        let c = self.next.fetch_add(1, Ordering::Relaxed);
        (c < self.n_chunks).then_some((c, c % self.workers != w))
    }
}

/// Record per-participant chunk/steal counts once per region (instead of
/// one atomic per chunk).
pub(crate) fn record_claims(claimed: u64, steals: u64) {
    if claimed > 0 && telemetry::enabled() {
        telemetry::counter_add("exec.pool.chunks", claimed);
        if steals > 0 {
            telemetry::counter_add("exec.pool.steals", steals);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_every_participant_once() {
        let pool = WorkerPool::new();
        for participants in [1usize, 2, 5, 9] {
            let counts: Vec<AtomicUsize> = (0..participants).map(|_| AtomicUsize::new(0)).collect();
            pool.run(participants, &|w| {
                counts[w].fetch_add(1, Ordering::SeqCst);
            });
            for (w, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "participant {w}");
            }
        }
        // grew once to the max requested width, never per call
        assert_eq!(pool.threads(), 9);
    }

    #[test]
    fn threads_are_reused_across_regions() {
        let pool = WorkerPool::new();
        pool.run(4, &|_| {});
        let after_first = pool.threads();
        for _ in 0..50 {
            pool.run(4, &|_| {});
        }
        assert_eq!(pool.threads(), after_first, "regions must not spawn new threads");
    }

    #[test]
    fn panicked_region_leaves_pool_usable() {
        let pool = WorkerPool::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(3, &|w| {
                assert!(w != 1, "participant 1 dies");
            });
        }));
        assert!(caught.is_err(), "the panic must propagate to the caller");
        let threads = pool.threads();
        // the surviving threads accept the next region
        let sum = AtomicUsize::new(0);
        pool.run(3, &|w| {
            sum.fetch_add(w + 1, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 6);
        assert_eq!(pool.threads(), threads, "a caught panic must not cost a thread");
    }

    #[test]
    fn lowest_participant_panic_wins() {
        let pool = WorkerPool::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, &|w| {
                if w >= 2 {
                    // both high participants panic; the re-thrown payload
                    // must be the lower index's, independent of timing
                    std::thread::sleep(std::time::Duration::from_millis((4 - w) as u64));
                    panic!("participant {w} died");
                }
            });
        }));
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "participant 2 died");
    }

    #[test]
    fn nested_regions_run_inline() {
        let pool = WorkerPool::global();
        let total = AtomicUsize::new(0);
        pool.run(2, &|_| {
            // a fan-out from a pool thread must not deadlock the region slot
            WorkerPool::global().run(3, &|inner| {
                total.fetch_add(inner + 1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 2 * (1 + 2 + 3));
    }

    #[test]
    fn chunk_cursor_claims_each_chunk_once() {
        let cur = ChunkCursor::new(10, 3);
        let mut seen = [false; 10];
        while let Some((c, _steal)) = cur.claim(0) {
            assert!(!seen[c], "chunk {c} claimed twice");
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(cur.claim(1), None);
    }

    #[test]
    fn chunk_len_targets_four_chunks_per_worker() {
        assert_eq!(chunk_len(96, 4), 6);
        assert_eq!(chunk_len(3, 8), 1);
        assert_eq!(chunk_len(0, 4), 1);
        assert_eq!(chunk_len(100, 1), 25);
    }
}
