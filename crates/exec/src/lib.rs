//! Deterministic worker-pool execution engine.
//!
//! Everything in this crate obeys one contract: **the result of a parallel
//! run is a pure function of its inputs — never of thread scheduling.**
//! That is what lets `rl::Ppo::train_vec` collect rollouts on N threads and
//! still train bit-for-bit reproducibly, and lets the bench binaries replay
//! trace sets in parallel while writing byte-identical CSVs.
//!
//! All façades run on one process-wide **persistent worker pool**
//! ([`WorkerPool`]): threads are spawned once, parked between fan-outs, and
//! handed work by pointer — no per-call spawn, no per-call allocation in
//! the pool itself (see the [`pool`] module docs for the cost model).
//!
//! The façades:
//!
//! * [`par_map`] — an order-preserving parallel map over an item list.
//!   Workers claim *chunks* of items from an atomic cursor (so an
//!   expensive tail doesn't stall a fixed shard, without paying a
//!   synchronized claim per item) and write results straight into their
//!   input slots — the output is in input order by construction.
//! * [`par_map_fold`] — [`par_map`] followed by an in-input-order fold on
//!   the caller's thread; the order-sensitive-reduction primitive behind
//!   gradient-style accumulations.
//! * [`par_chunks`] — chunked fan-out over **reusable caller-owned
//!   buffers**: per-worker scratch slots plus per-chunk output buffers,
//!   claimed via the same stealing cursor. This is the zero-allocation
//!   fan-out behind `rl`'s parallel PPO gradients: the caller zeroes and
//!   reuses its buffers across calls and merges chunks in index order.
//! * [`run_workers`] / [`run_on_slots`] — fixed worker-per-slot execution
//!   for stateful jobs (e.g. one cloned environment per worker). Results
//!   come back in worker order `0..n`, with per-worker wall-clock in
//!   [`WorkerStats`].
//!
//! Randomness is decorrelated across workers with [`split_seed`], a
//! SplitMix64-style mixer: worker `w` seeds its own `StdRng` from
//! `split_seed(seed, w)`, so streams are independent of each other and of
//! how many workers run elsewhere.
//!
//! Fault isolation is built on the workspace-wide [`fault::Backoff`]
//! policy, and [`run_on_slots_watchdog`] adds per-slot heartbeats with a
//! monitor thread that cancels a stalled slot and re-runs it under the
//! same deterministic rollback-and-retry path a panicked slot takes.
//! Fault points `exec.worker.<w>` (per slot attempt) and `exec.item`
//! (per item attempt) let `ADVNET_FAULT_PLAN` inject panics and stalls
//! right where the retry machinery must absorb them.
//!
//! Pure `std` — no runtime dependencies.

#![warn(missing_docs)]

pub mod pool;

pub use pool::{on_pool_thread, WorkerPool};

use pool::{chunk_len, record_claims, ChunkCursor};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Which façade a failed job was running under (see [`ExecError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecErrorKind {
    /// A stateful worker slot ([`run_on_slots_retry`]) panicked.
    WorkerPanicked,
    /// An item-level job ([`try_par_map`]) panicked.
    ItemPanicked,
}

/// Structured failure report from a fault-isolated parallel run.
///
/// Instead of poisoning the whole fan-out via `resume_unwind`, the
/// fault-isolated entry points ([`try_par_map`], [`run_on_slots_retry`])
/// catch each worker panic, retry on a fresh clone up to the caller's
/// budget, and surface the first (lowest-index) exhausted failure as one of
/// these. The merge of the surviving results stays deterministic — results
/// are ordered by input index / slot, never by scheduling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecError {
    /// Which façade the failed job was running under.
    pub kind: ExecErrorKind,
    /// Worker slot index or item index, depending on `kind`.
    pub index: usize,
    /// Attempts made (1 initial + retries) before giving up.
    pub attempts: usize,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            ExecErrorKind::WorkerPanicked => "worker slot",
            ExecErrorKind::ItemPanicked => "item",
        };
        write!(
            f,
            "{what} {} panicked after {} attempt(s): {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for ExecError {}

/// Best-effort extraction of a panic payload into readable text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A `Vec` of optional values that pool participants fill (or drain) at
/// disjoint indices. The unsafe cell is what lets workers write results
/// directly into input order without a lock or a sort; exclusivity comes
/// from the chunk/participant claim discipline of every caller.
struct OptCells<T>(Vec<UnsafeCell<Option<T>>>);

unsafe impl<T: Send> Sync for OptCells<T> {}

impl<T> OptCells<T> {
    fn filled(items: impl Iterator<Item = T>) -> OptCells<T> {
        OptCells(items.map(|t| UnsafeCell::new(Some(t))).collect())
    }

    fn empty(n: usize) -> OptCells<T> {
        OptCells((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// # Safety
    /// The caller must hold the exclusive claim on index `i`.
    unsafe fn take(&self, i: usize) -> Option<T> {
        (*self.0[i].get()).take()
    }

    /// # Safety
    /// The caller must hold the exclusive claim on index `i`.
    unsafe fn put(&self, i: usize, v: T) {
        *self.0[i].get() = Some(v);
    }

    fn into_values(self) -> impl Iterator<Item = Option<T>> {
        self.0.into_iter().map(|c| c.into_inner())
    }
}

/// A raw `*mut T` that participants offset by their claimed index;
/// `Send` + `Sync` so a pool job can capture it. Exclusivity comes from
/// the claim discipline (each participant/chunk index is claimed once).
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    /// The caller must hold the exclusive claim on index `i` and `i` must
    /// be in bounds of the underlying slice.
    #[allow(clippy::mut_from_ref)]
    unsafe fn at(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

/// Per-worker execution record from one [`run_workers`] call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker slot index in `0..n_workers`.
    pub worker: usize,
    /// Wall-clock seconds this worker's job took.
    pub wall_s: f64,
    /// Attempts the job took on this slot: 1 on the plain (retry-free)
    /// fan-out paths, and `1 + rollbacks` under
    /// [`run_on_slots_watchdog`] — a fleet supervisor reads this to
    /// account shard retries without threading its own counters.
    pub attempts: usize,
}

/// Result bundle of [`run_workers`]: per-worker results in slot order.
#[derive(Debug, Clone)]
pub struct WorkerRun<R> {
    /// One result per worker, indexed by slot.
    pub results: Vec<R>,
    /// Per-worker wall-clock stats, same order as `results`.
    pub stats: Vec<WorkerStats>,
}

/// Derive an independent RNG seed for stream `stream` from a base seed.
///
/// SplitMix64 finalizer over `seed + golden_ratio * (stream + 1)`: nearby
/// seeds and nearby stream ids both map to uncorrelated outputs, unlike the
/// `seed ^ stream` folk scheme where streams of seed `s` and seed `s ^ 1`
/// collide pairwise.
///
/// ```
/// // streams are decorrelated and asymmetric in (seed, stream)
/// assert_ne!(exec::split_seed(2, 3), exec::split_seed(3, 2));
/// ```
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Worker count to use when the caller does not specify one: the
/// `EXEC_WORKERS` environment variable if set, else the machine's available
/// parallelism.
pub fn default_workers() -> usize {
    if let Ok(s) = std::env::var("EXEC_WORKERS") {
        if let Ok(n) = s.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Parallel map preserving input order.
///
/// Applies `f` to every item on up to `n_workers` pool threads and returns
/// the outputs in input order. `f` receives `(input_index, item)`; use the
/// index with [`split_seed`] when per-item randomness is needed. With
/// `n_workers <= 1` (or one item) everything runs inline on the caller's
/// thread — the serial path and the parallel path produce identical output.
///
/// Work is distributed in chunks of several items claimed from an atomic
/// cursor: cheaper than a per-item claim, while still letting an idle
/// worker steal the tail of a straggler's range (`exec.pool.steals`
/// counts those). Each worker writes results directly into the output
/// slot of the item's input index, so no post-hoc sort is needed and the
/// merge cannot depend on scheduling.
///
/// Panics in `f` propagate to the caller after all workers stop.
pub fn par_map<T, U, F>(items: Vec<T>, n_workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n_items = items.len();
    let workers = n_workers.min(n_items);
    telemetry::counter_add("exec.items", n_items as u64);
    if workers <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let chunk = chunk_len(n_items, workers);
    let n_chunks = n_items.div_ceil(chunk);
    let inputs = OptCells::filled(items.into_iter());
    let outputs: OptCells<U> = OptCells::empty(n_items);
    let cursor = ChunkCursor::new(n_chunks, workers);
    WorkerPool::global().run(workers, &|w| {
        let (mut claimed, mut steals) = (0u64, 0u64);
        while let Some((c, stolen)) = cursor.claim(w) {
            claimed += 1;
            steals += stolen as u64;
            let lo = c * chunk;
            let hi = (lo + chunk).min(n_items);
            for i in lo..hi {
                // SAFETY: chunk c is claimed exactly once, so index i is
                // touched by exactly one participant.
                let item = unsafe { inputs.take(i) }.expect("each item is taken once");
                let out = f(i, item);
                unsafe { outputs.put(i, out) };
            }
        }
        record_claims(claimed, steals);
    });
    outputs.into_values().map(|o| o.expect("every chunk was drained")).collect()
}

/// Parallel map with a deterministic in-order fold — the gradient
/// accumulation primitive behind order-sensitive reductions.
///
/// `map` runs over the items on up to `n_workers` pool threads via
/// [`par_map`]; the per-item outputs are then folded into `init` **in
/// input order** on the caller's thread. Floating-point reduction is
/// order-sensitive, so folding in input order — never slot or completion
/// order — makes the result a pure function of the inputs: the same bits
/// come back for every worker count, including the inline
/// `n_workers <= 1` path.
///
/// ```
/// // an order-sensitive float reduction: same bits at every worker count
/// let items: Vec<f64> = (0..64).map(|i| (i as f64).sin() * 1e3f64.powi(i % 3)).collect();
/// let sum = |workers| {
///     exec::par_map_fold(items.clone(), workers, |_, x| x * 0.5, 0.0_f64, |acc, x| acc + x)
/// };
/// assert_eq!(sum(1).to_bits(), sum(4).to_bits());
/// ```
///
/// Registers the `exec.grad_accum` fault point once per call before the
/// fold, so a plan like `panic@exec.grad_accum:1` crashes the merge step
/// (recovered at the training layer by checkpoint/resume). `Nan`/`Corrupt`
/// injections carry no meaning for a generic fold and are ignored, like
/// the `exec.worker.<w>` points.
pub fn par_map_fold<T, U, A, M, F>(items: Vec<T>, n_workers: usize, map: M, init: A, fold: F) -> A
where
    T: Send,
    U: Send,
    M: Fn(usize, T) -> U + Sync,
    F: FnMut(A, U) -> A,
{
    let mapped = par_map(items, n_workers, map);
    if fault::active() {
        let _ = fault::check("exec.grad_accum");
    }
    mapped.into_iter().fold(init, fold)
}

/// Chunked fan-out over reusable caller-owned buffers: the
/// zero-allocation sibling of [`par_map_fold`].
///
/// `slots` is per-worker scratch (forward caches, RNGs, …): participant
/// `w` gets exclusive `&mut slots[w]` for the whole call. `chunks` is one
/// reusable output buffer per work chunk; workers claim chunk indices
/// from a stealing cursor and fill `f(chunk_idx, &mut chunks[chunk_idx],
/// &mut slots[w])`. When the call returns, every chunk has been filled
/// exactly once and the caller merges `chunks` **in index order** — which
/// is what keeps order-sensitive (floating-point) merges bit-identical at
/// every worker count.
///
/// Nothing is allocated here and nothing is cloned: buffers live across
/// calls in the caller (zeroed or overwritten by `f`), which is what
/// removes the per-sample `alloc + free` traffic that made the original
/// fan-out slower than serial.
///
/// With one slot (or fewer than two chunks) everything runs inline on the
/// caller's thread, bit-identical to the parallel path.
///
/// Panics in `f` propagate after all workers stop.
pub fn par_chunks<S, C, F>(slots: &mut [S], chunks: &mut [C], f: F)
where
    S: Send,
    C: Send,
    F: Fn(usize, &mut C, &mut S) + Sync,
{
    let n_chunks = chunks.len();
    if n_chunks == 0 {
        return;
    }
    assert!(!slots.is_empty(), "par_chunks: at least one worker slot is required");
    let workers = slots.len().min(n_chunks);
    if workers <= 1 {
        let slot = &mut slots[0];
        for (c, chunk) in chunks.iter_mut().enumerate() {
            f(c, chunk, slot);
        }
        return;
    }
    let slot_ptr = SendPtr(slots.as_mut_ptr());
    let chunk_ptr = SendPtr(chunks.as_mut_ptr());
    let cursor = ChunkCursor::new(n_chunks, workers);
    WorkerPool::global().run(workers, &|w| {
        // SAFETY: each participant index w runs exactly once per region,
        // so slot w has a single exclusive borrower.
        let slot = unsafe { slot_ptr.at(w) };
        let (mut claimed, mut steals) = (0u64, 0u64);
        while let Some((c, stolen)) = cursor.claim(w) {
            claimed += 1;
            steals += stolen as u64;
            // SAFETY: chunk c is claimed exactly once across participants.
            let chunk = unsafe { chunk_ptr.at(c) };
            f(c, chunk, slot);
        }
        record_claims(claimed, steals);
    });
}

/// Fault-isolated [`par_map`]: every job runs under `catch_unwind`, a
/// panicked item is retried on a fresh clone of its input up to
/// `backoff.retries` extra times (pausing `backoff.delay(attempt)` between
/// attempts), and an exhausted item surfaces as a structured [`ExecError`]
/// instead of unwinding through the pool.
///
/// Output order and values are identical to [`par_map`] when nothing
/// panics; the lowest-index exhausted failure wins when several items fail
/// (deterministic regardless of scheduling). Note a *deterministic* panic
/// will re-fire on every retry — the retry budget buys recovery from
/// transient faults, not from buggy jobs.
///
/// Each attempt registers the `exec.item` fault point, so a plan such as
/// `ADVNET_FAULT_PLAN=panic@exec.item:3` crashes the third item attempt of
/// the process and must be absorbed by this very retry path.
pub fn try_par_map<T, U, F>(
    items: Vec<T>,
    n_workers: usize,
    backoff: &fault::Backoff,
    f: F,
) -> Result<Vec<U>, ExecError>
where
    T: Clone + Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n_items = items.len();
    let workers = n_workers.min(n_items).max(1);
    let run_one = |i: usize, item: T| -> Result<U, ExecError> {
        let backup = if backoff.retries > 0 { Some(item.clone()) } else { None };
        let mut cur = item;
        let mut attempts = 0;
        loop {
            attempts += 1;
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if fault::active() {
                    // Only panic injections are meaningful for stateless
                    // items; a panic inside check() lands in this
                    // catch_unwind and exercises the retry path.
                    let _ = fault::check("exec.item");
                }
                f(i, cur)
            })) {
                Ok(u) => return Ok(u),
                Err(payload) => {
                    if attempts > backoff.retries {
                        return Err(ExecError {
                            kind: ExecErrorKind::ItemPanicked,
                            index: i,
                            attempts,
                            message: panic_message(payload.as_ref()),
                        });
                    }
                    telemetry::counter_add("exec.retry.item", 1);
                    cur = backup.as_ref().expect("backup exists when retries > 0").clone();
                    backoff.pause(attempts);
                }
            }
        }
    };
    if workers <= 1 {
        let mut out = Vec::with_capacity(n_items);
        for (i, item) in items.into_iter().enumerate() {
            out.push(run_one(i, item)?);
        }
        return Ok(out);
    }
    let chunk = chunk_len(n_items, workers);
    let n_chunks = n_items.div_ceil(chunk);
    let inputs = OptCells::filled(items.into_iter());
    let outputs: OptCells<U> = OptCells::empty(n_items);
    let cursor = ChunkCursor::new(n_chunks, workers);
    let first_err: Mutex<Option<ExecError>> = Mutex::new(None);
    WorkerPool::global().run(workers, &|w| {
        'claims: while let Some((c, _stolen)) = cursor.claim(w) {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n_items);
            for i in lo..hi {
                // SAFETY: chunk c is claimed exactly once.
                let item = unsafe { inputs.take(i) }.expect("each item is taken once");
                match run_one(i, item) {
                    Ok(u) => unsafe { outputs.put(i, u) },
                    Err(e) => {
                        let mut slot = first_err.lock().expect("exec error slot poisoned");
                        if slot.as_ref().map(|p| e.index < p.index).unwrap_or(true) {
                            *slot = Some(e);
                        }
                        break 'claims;
                    }
                }
            }
        }
    });
    if let Some(e) = first_err.into_inner().expect("exec error slot poisoned") {
        return Err(e);
    }
    let out: Vec<U> = outputs.into_values().map(|o| o.expect("every chunk was drained")).collect();
    debug_assert_eq!(out.len(), n_items);
    Ok(out)
}

/// Per-slot utilization telemetry for one fan-out: every slot's wall time
/// goes into the `exec.slot.busy_s` histogram and its idle tail relative
/// to the slowest slot into `exec.slot.idle_s` (straggler imbalance).
/// Observational only; no-op when telemetry is disabled.
fn record_slot_stats(stats: &[WorkerStats]) {
    if !telemetry::enabled() || stats.is_empty() {
        return;
    }
    let max = stats.iter().map(|s| s.wall_s).fold(0.0_f64, f64::max);
    for s in stats {
        telemetry::observe("exec.slot.busy_s", s.wall_s);
        telemetry::observe("exec.slot.idle_s", max - s.wall_s);
    }
}

/// Run `job(worker, &mut slots[worker])` once per slot, in parallel on the
/// pool, returning results in slot order plus per-worker wall-clock stats.
///
/// The stateful sibling of [`run_workers`]: each worker gets exclusive
/// `&mut` access to its own slot (a cloned environment, an RNG, carried
/// observations…), which persists across calls. Used by
/// `rl::Ppo::train_vec`, where slot `w` holds environment clone `w` and its
/// `split_seed`-derived RNG stream, and by the serving fleet, where slot
/// `w` is a session shard.
///
/// With one slot the job runs inline on the caller's thread.
pub fn run_on_slots<S, R, F>(slots: &mut [S], job: F) -> WorkerRun<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, &mut S) -> R + Sync,
{
    let _span = telemetry::span!("exec.slots");
    let n = slots.len();
    if n <= 1 {
        let t0 = Instant::now();
        let results: Vec<R> = slots.iter_mut().enumerate().map(|(w, slot)| job(w, slot)).collect();
        let stats: Vec<WorkerStats> = results
            .iter()
            .enumerate()
            .map(|(w, _)| WorkerStats {
                worker: w,
                wall_s: t0.elapsed().as_secs_f64(),
                attempts: 1,
            })
            .collect();
        record_slot_stats(&stats);
        return WorkerRun { results, stats };
    }
    let slot_ptr = SendPtr(slots.as_mut_ptr());
    let outcomes: OptCells<(R, f64)> = OptCells::empty(n);
    WorkerPool::global().run(n, &|w| {
        let t0 = Instant::now();
        // SAFETY: participant w runs exactly once; slot w is its exclusive
        // property for the region.
        let slot = unsafe { slot_ptr.at(w) };
        let result = job(w, slot);
        unsafe { outcomes.put(w, (result, t0.elapsed().as_secs_f64())) };
    });
    let mut run = WorkerRun { results: Vec::with_capacity(n), stats: Vec::with_capacity(n) };
    for (w, outcome) in outcomes.into_values().enumerate() {
        let (result, wall_s) = outcome.expect("every slot ran");
        run.results.push(result);
        run.stats.push(WorkerStats { worker: w, wall_s, attempts: 1 });
    }
    record_slot_stats(&run.stats);
    run
}

/// Watchdog settings for [`run_on_slots_watchdog`]: a slot whose last
/// heartbeat is older than `timeout` is cancelled and re-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// A slot is considered stalled when its last heartbeat is older
    /// than this.
    pub timeout: Duration,
    /// How often the monitor thread scans the slots.
    pub poll: Duration,
}

impl WatchdogConfig {
    /// A timeout with a poll interval of one tenth of it (at least 1 ms).
    pub fn with_timeout_ms(ms: u64) -> WatchdogConfig {
        WatchdogConfig {
            timeout: Duration::from_millis(ms.max(1)),
            poll: Duration::from_millis((ms / 10).max(1)),
        }
    }

    /// Read `ADVNET_WATCHDOG_MS` (0 or unset = no watchdog).
    pub fn from_env() -> Option<WatchdogConfig> {
        let ms: u64 = std::env::var("ADVNET_WATCHDOG_MS").ok()?.trim().parse().ok()?;
        (ms > 0).then(|| WatchdogConfig::with_timeout_ms(ms))
    }
}

/// Per-slot liveness record shared between a worker and the monitor.
struct SlotMon {
    /// Milliseconds since the run's epoch at the last heartbeat.
    last_beat_ms: AtomicU64,
    /// Set by the monitor; observed (and cleared) at the slot's next
    /// heartbeat, which panics into the retry path.
    cancelled: AtomicBool,
    /// Set once the slot's job has finished (ok or exhausted).
    done: AtomicBool,
}

impl SlotMon {
    fn new() -> SlotMon {
        SlotMon {
            last_beat_ms: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
            done: AtomicBool::new(false),
        }
    }
}

/// Liveness handle passed to every [`run_on_slots_watchdog`] job.
///
/// Call [`beat`](Heartbeat::beat) at natural progress boundaries (e.g.
/// once per environment step). A beat is one atomic store; when the
/// monitor has flagged the slot as stalled, the beat panics instead —
/// landing in the slot's `catch_unwind`, which rolls the slot back and
/// re-runs it deterministically. A job that loops without ever beating
/// can be *flagged* but never *interrupted* (threads cannot be killed),
/// so heartbeat placement is part of the job's contract.
pub struct Heartbeat<'a> {
    mon: &'a SlotMon,
    epoch: Instant,
    worker: usize,
}

impl Heartbeat<'_> {
    /// Record progress; panics into the retry path if the watchdog
    /// cancelled this slot.
    pub fn beat(&self) {
        if self.mon.cancelled.swap(false, Ordering::SeqCst) {
            panic!("[watchdog] worker {} cancelled: heartbeat older than timeout", self.worker);
        }
        self.mon.last_beat_ms.store(self.epoch.elapsed().as_millis() as u64, Ordering::SeqCst);
    }

    /// Block for `d` *without* heartbeating, while still honouring
    /// cancellation — this is how `stall@exec.worker.<w>` faults simulate
    /// a wedged slot that the watchdog can actually recover.
    pub fn stall_for(&self, d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            if self.mon.cancelled.swap(false, Ordering::SeqCst) {
                panic!("[watchdog] worker {} cancelled: heartbeat older than timeout", self.worker);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Fault-isolated, watchdog-supervised [`run_on_slots`].
///
/// Each slot's job runs under `catch_unwind` on a pool thread; a panicked
/// slot is rolled back to a clone taken before the attempt and retried up
/// to `backoff.retries` extra times (pausing `backoff.delay(attempt)`
/// between attempts). The deterministic slot-order merge is unchanged,
/// and a slot that exhausts its budget surfaces as a structured
/// [`ExecError`] (lowest slot index wins when several fail) instead of
/// poisoning the whole fan-out. A cancelled or panicked attempt never
/// costs a pool thread: the unwind is caught on the worker, which simply
/// claims the next piece of work (see `pool` module docs).
///
/// When `watchdog` is `Some`, a monitor thread scans every slot's
/// [`Heartbeat`] each `poll` and cancels any slot whose last beat is
/// older than `timeout`; the cancelled slot panics at its next beat (or
/// mid-[`stall_for`](Heartbeat::stall_for)) and re-runs under the same
/// rollback path — so a stalled slot completes with the same merged
/// result as a stall-free run, provided the job beats and is
/// deterministic. The monitor runs on a short-lived scoped thread of its
/// own (one per call, not per attempt), so supervision works even when
/// the slot jobs execute inline.
///
/// Every attempt registers the `exec.worker.<w>` fault point:
/// `panic@exec.worker.1:2` crashes slot 1's second attempt, and
/// `stall@exec.worker.2:1` makes slot 2 hang for the plan's `stall_ms`
/// without beating — the scenario the watchdog exists to recover.
///
/// With `backoff.retries == 0` no backup clones are taken — the call
/// costs the same as [`run_on_slots`] but converts panics into errors.
/// Retries recover *transient* faults only; a deterministic panic recurs
/// on the restored clone.
pub fn run_on_slots_watchdog<S, R, F>(
    slots: &mut [S],
    backoff: &fault::Backoff,
    watchdog: Option<&WatchdogConfig>,
    job: F,
) -> Result<WorkerRun<R>, ExecError>
where
    S: Clone + Send,
    R: Send,
    F: Fn(usize, &mut S, &Heartbeat) -> R + Sync,
{
    let _span = telemetry::span!("exec.slots");
    let epoch = Instant::now();
    let n = slots.len();
    let mons: Vec<SlotMon> = (0..n).map(|_| SlotMon::new()).collect();
    let run_one = |w: usize, slot: &mut S, mon: &SlotMon| -> Result<(R, f64, usize), ExecError> {
        let t0 = Instant::now();
        let backup = if backoff.retries > 0 { Some(slot.clone()) } else { None };
        let mut attempts = 0;
        loop {
            attempts += 1;
            // arm this attempt: fresh beat, no pending cancellation
            mon.cancelled.store(false, Ordering::SeqCst);
            mon.last_beat_ms.store(epoch.elapsed().as_millis() as u64, Ordering::SeqCst);
            let hb = Heartbeat { mon, epoch, worker: w };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if fault::active() {
                    // Panic fires inside check(); Nan/Corrupt have no
                    // meaning for a worker slot and are ignored.
                    if let Some(fault::Injection::Stall(d)) =
                        fault::check(&format!("exec.worker.{w}"))
                    {
                        hb.stall_for(d)
                    }
                }
                job(w, &mut *slot, &hb)
            }));
            match outcome {
                Ok(r) => {
                    mon.done.store(true, Ordering::SeqCst);
                    return Ok((r, t0.elapsed().as_secs_f64(), attempts));
                }
                Err(payload) => {
                    if attempts > backoff.retries {
                        mon.done.store(true, Ordering::SeqCst);
                        return Err(ExecError {
                            kind: ExecErrorKind::WorkerPanicked,
                            index: w,
                            attempts,
                            message: panic_message(payload.as_ref()),
                        });
                    }
                    // roll the slot back to its pre-attempt state
                    telemetry::counter_add("exec.retry.slot", 1);
                    *slot = backup.as_ref().expect("backup exists when retries > 0").clone();
                    backoff.pause(attempts);
                }
            }
        }
    };
    let inline = n <= 1 && watchdog.is_none();
    let outcomes: Vec<Result<(R, f64, usize), ExecError>> = if inline {
        slots
            .iter_mut()
            .zip(&mons)
            .enumerate()
            .map(|(w, (slot, mon))| run_one(w, slot, mon))
            .collect()
    } else {
        let slot_ptr = SendPtr(slots.as_mut_ptr());
        let outs: OptCells<Result<(R, f64, usize), ExecError>> = OptCells::empty(n);
        std::thread::scope(|scope| {
            if let Some(cfg) = watchdog {
                let mons = &mons;
                scope.spawn(move || {
                    let timeout_ms = cfg.timeout.as_millis() as u64;
                    loop {
                        if mons.iter().all(|m| m.done.load(Ordering::SeqCst)) {
                            break;
                        }
                        let now = epoch.elapsed().as_millis() as u64;
                        for m in mons {
                            if m.done.load(Ordering::SeqCst) || m.cancelled.load(Ordering::SeqCst) {
                                continue;
                            }
                            if now.saturating_sub(m.last_beat_ms.load(Ordering::SeqCst))
                                > timeout_ms
                            {
                                telemetry::counter_add("exec.watchdog.cancel", 1);
                                m.cancelled.store(true, Ordering::SeqCst);
                            }
                        }
                        std::thread::sleep(cfg.poll);
                    }
                });
            }
            WorkerPool::global().run(n, &|w| {
                // SAFETY: participant w runs exactly once per region.
                let slot = unsafe { slot_ptr.at(w) };
                let out = run_one(w, slot, &mons[w]);
                unsafe { outs.put(w, out) };
            });
        });
        outs.into_values().map(|o| o.expect("every slot ran")).collect()
    };
    let mut run = WorkerRun {
        results: Vec::with_capacity(outcomes.len()),
        stats: Vec::with_capacity(outcomes.len()),
    };
    for (w, outcome) in outcomes.into_iter().enumerate() {
        let (result, wall_s, attempts) = outcome?;
        run.results.push(result);
        run.stats.push(WorkerStats { worker: w, wall_s, attempts });
    }
    record_slot_stats(&run.stats);
    Ok(run)
}

/// Fault-isolated [`run_on_slots`] without watchdog supervision: the
/// rollback-and-retry semantics of [`run_on_slots_watchdog`] for jobs
/// that don't heartbeat. See there for the full contract.
pub fn run_on_slots_retry<S, R, F>(
    slots: &mut [S],
    backoff: &fault::Backoff,
    job: F,
) -> Result<WorkerRun<R>, ExecError>
where
    S: Clone + Send,
    R: Send,
    F: Fn(usize, &mut S) -> R + Sync,
{
    run_on_slots_watchdog(slots, backoff, None, |w, slot, _hb| job(w, slot))
}

/// Run `job(worker)` once per worker slot `0..n_workers`, in parallel on
/// the pool, returning results in slot order plus per-worker wall-clock
/// stats.
///
/// This is the façade for stateful jobs that own a slot-indexed resource —
/// e.g. rollout collection where worker `w` steps its own cloned
/// environment with its own `split_seed(seed, w)`-derived RNG. Because the
/// results are merged by slot index, downstream consumers see the same
/// sequence no matter how the OS schedules the threads.
///
/// With `n_workers == 1` the job runs inline on the caller's thread.
pub fn run_workers<R, F>(n_workers: usize, job: F) -> WorkerRun<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let _span = telemetry::span!("exec.slots");
    let n = n_workers.max(1);
    if n == 1 {
        let t0 = Instant::now();
        let result = job(0);
        let run = WorkerRun {
            results: vec![result],
            stats: vec![WorkerStats { worker: 0, wall_s: t0.elapsed().as_secs_f64(), attempts: 1 }],
        };
        record_slot_stats(&run.stats);
        return run;
    }
    let outcomes: OptCells<(R, f64)> = OptCells::empty(n);
    WorkerPool::global().run(n, &|w| {
        let t0 = Instant::now();
        let result = job(w);
        // SAFETY: participant w runs exactly once per region.
        unsafe { outcomes.put(w, (result, t0.elapsed().as_secs_f64())) };
    });
    let mut run = WorkerRun { results: Vec::with_capacity(n), stats: Vec::with_capacity(n) };
    for (w, outcome) in outcomes.into_values().enumerate() {
        let (result, wall_s) = outcome.expect("every worker ran");
        run.results.push(result);
        run.stats.push(WorkerStats { worker: w, wall_s, attempts: 1 });
    }
    record_slot_stats(&run.stats);
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(items, 8, |i, x| {
            // stagger so late indices often finish first
            std::thread::sleep(std::time::Duration::from_micros(((100 - i) % 7) as u64 * 50));
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial() {
        let f = |i: usize, x: u64| x.wrapping_mul(31).wrapping_add(i as u64);
        let items: Vec<u64> = (0..57).map(|x| x * 13).collect();
        let serial = par_map(items.clone(), 1, f);
        for workers in [2, 3, 8, 64] {
            assert_eq!(par_map(items.clone(), workers, f), serial, "{workers} workers");
        }
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        assert_eq!(par_map(Vec::<u32>::new(), 4, |_, x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![5], 4, |_, x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            par_map((0..16).collect::<Vec<usize>>(), 4, |_, x| {
                assert!(x != 11, "boom on {x}");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_map_fold_bits_independent_of_worker_count() {
        // A deliberately order-sensitive floating-point reduction: summing
        // these in any other order than input order changes the bits.
        let items: Vec<f64> =
            (0..200).map(|i| (i as f64 * 0.7).sin() * 10f64.powi(i % 7)).collect();
        let run = |workers: usize| {
            par_map_fold(items.clone(), workers, |_, x| x * 1.000000001, 0.0_f64, |acc, x| acc + x)
        };
        let serial = run(1);
        for workers in [2, 3, 4, 8] {
            assert_eq!(run(workers).to_bits(), serial.to_bits(), "{workers} workers");
        }
    }

    #[test]
    fn par_map_fold_reused_pool_is_bit_identical_to_fresh() {
        // The global pool's threads persist across calls; repeated calls
        // (warm pool, reused threads) must keep producing the serial bits.
        let items: Vec<f64> =
            (0..150).map(|i| (i as f64 * 1.3).cos() * 10f64.powi(i % 5)).collect();
        let run = |workers: usize| {
            par_map_fold(items.clone(), workers, |_, x| x + 1.0e-9, 0.0_f64, |acc, x| acc + x)
        };
        let serial = run(1);
        for round in 0..20 {
            assert_eq!(run(4).to_bits(), serial.to_bits(), "round {round}");
        }
    }

    #[test]
    fn par_chunks_fills_every_chunk_once() {
        let mut slots = vec![0u64; 4];
        let mut chunks = vec![0u64; 13];
        par_chunks(&mut slots, &mut chunks, |c, chunk, slot| {
            *chunk += (c as u64 + 1) * 10;
            *slot += 1;
        });
        let expect: Vec<u64> = (0..13).map(|c| (c + 1) * 10).collect();
        assert_eq!(chunks, expect, "each chunk filled exactly once");
        assert_eq!(slots.iter().sum::<u64>(), 13, "every claim used a worker slot");
    }

    #[test]
    fn par_chunks_results_independent_of_slot_count() {
        // Chunk contents must be a pure function of the chunk index, never
        // of which worker slot computed it or how many there were.
        let fill = |n_slots: usize| {
            let mut slots = vec![(); n_slots];
            let mut chunks = vec![0.0f64; 9];
            par_chunks(&mut slots, &mut chunks, |c, chunk, _slot| {
                *chunk = (c as f64 * 0.37).sin() * 1e6;
            });
            chunks
        };
        let serial = fill(1);
        for n_slots in [2, 3, 8] {
            let par = fill(n_slots);
            for (c, (a, b)) in par.iter().zip(serial.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{n_slots} slots, chunk {c}");
            }
        }
    }

    #[test]
    fn par_chunks_propagates_panics() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut slots = vec![(); 3];
            let mut chunks = vec![0u32; 8];
            par_chunks(&mut slots, &mut chunks, |c, _chunk, _slot| {
                assert!(c != 5, "chunk 5 dies");
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn try_par_map_matches_par_map_without_faults() {
        let f = |i: usize, x: u64| x.wrapping_mul(31).wrapping_add(i as u64);
        let items: Vec<u64> = (0..57).map(|x| x * 13).collect();
        let plain = par_map(items.clone(), 4, f);
        for workers in [1, 3, 8] {
            assert_eq!(
                try_par_map(items.clone(), workers, &fault::Backoff::none(1), f).unwrap(),
                plain
            );
        }
    }

    #[test]
    fn try_par_map_retries_transient_panic() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let tripped = AtomicBool::new(false);
        let f = |_i: usize, x: usize| {
            if x == 7 && !tripped.swap(true, Ordering::SeqCst) {
                panic!("transient fault on {x}");
            }
            x * 2
        };
        let out =
            try_par_map((0..16).collect::<Vec<usize>>(), 4, &fault::Backoff::none(1), f).unwrap();
        assert_eq!(out, (0..16).map(|x| x * 2).collect::<Vec<_>>());
        assert!(tripped.load(Ordering::SeqCst), "the fault should have fired once");
    }

    #[test]
    fn try_par_map_reports_exhausted_item() {
        let err =
            try_par_map((0..8).collect::<Vec<usize>>(), 2, &fault::Backoff::none(2), |_, x| {
                assert!(x != 5, "always fails");
                x
            })
            .unwrap_err();
        assert_eq!(err.kind, ExecErrorKind::ItemPanicked);
        assert_eq!(err.index, 5);
        assert_eq!(err.attempts, 3);
        assert!(err.message.contains("always fails"), "{}", err.message);
        assert!(err.to_string().contains("item 5"));
    }

    #[test]
    fn run_on_slots_retry_matches_run_on_slots_without_faults() {
        let job = |w: usize, slot: &mut Vec<u32>| {
            slot.push(w as u32 + 10);
            slot.iter().sum::<u32>()
        };
        let mut a: Vec<Vec<u32>> = (0..5).map(|w| vec![w]).collect();
        let mut b = a.clone();
        let plain = run_on_slots(&mut a, job);
        let retried = run_on_slots_retry(&mut b, &fault::Backoff::none(1), job).unwrap();
        assert_eq!(plain.results, retried.results);
        assert_eq!(a, b, "slot mutations must match");
    }

    #[test]
    fn run_on_slots_retry_restores_slot_and_recovers() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let tripped = AtomicBool::new(false);
        let job = |w: usize, slot: &mut Vec<u32>| {
            slot.push(99); // poison the slot state...
            if w == 2 && !tripped.swap(true, Ordering::SeqCst) {
                panic!("transient fault mid-mutation");
            }
            slot.pop(); // ...and undo it on the non-panicking path
            slot.push(w as u32);
            slot.len()
        };
        let mut slots: Vec<Vec<u32>> = (0..4).map(|_| vec![0]).collect();
        let run = run_on_slots_retry(&mut slots, &fault::Backoff::none(1), job).unwrap();
        // the retried slot must have been rolled back before the rerun:
        // every slot ends as [0, w], never carrying the poisoned 99
        assert_eq!(run.results, vec![2; 4]);
        for (w, s) in slots.iter().enumerate() {
            assert_eq!(s, &vec![0, w as u32], "slot {w} state");
        }
    }

    #[test]
    fn run_on_slots_retry_reports_exhausted_worker() {
        let mut slots: Vec<u32> = (0..3).collect();
        let err = run_on_slots_retry(&mut slots, &fault::Backoff::none(1), |w, _slot: &mut u32| {
            assert!(w != 1, "slot always dies");
            w
        })
        .unwrap_err();
        assert_eq!(err.kind, ExecErrorKind::WorkerPanicked);
        assert_eq!(err.index, 1);
        assert_eq!(err.attempts, 2);
    }

    #[test]
    fn run_workers_results_in_slot_order() {
        let run = run_workers(6, |w| {
            std::thread::sleep(std::time::Duration::from_micros((6 - w) as u64 * 100));
            w * 10
        });
        assert_eq!(run.results, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(run.stats.len(), 6);
        for (w, s) in run.stats.iter().enumerate() {
            assert_eq!(s.worker, w);
            assert!(s.wall_s >= 0.0);
        }
    }

    #[test]
    fn run_on_slots_gives_each_worker_its_slot() {
        let mut slots: Vec<Vec<u32>> = (0..5).map(|w| vec![w]).collect();
        let run = run_on_slots(&mut slots, |w, slot| {
            std::thread::sleep(std::time::Duration::from_micros((5 - w) as u64 * 100));
            slot.push(w as u32 + 10);
            slot.iter().sum::<u32>()
        });
        assert_eq!(run.results, vec![10, 12, 14, 16, 18]);
        // slot mutations persist for the next call
        assert_eq!(slots[3], vec![3, 13]);
        let run2 = run_on_slots(&mut slots, |_, slot| slot.len());
        assert_eq!(run2.results, vec![2; 5]);
    }

    #[test]
    fn split_seed_decorrelates_streams() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64_u64 {
            for stream in 0..8 {
                assert!(seen.insert(split_seed(seed, stream)), "collision at {seed}/{stream}");
            }
        }
        // the folk `seed ^ stream` scheme collides here; split_seed must not
        assert_ne!(split_seed(2, 3), split_seed(3, 2));
        assert_ne!(split_seed(0, 1), split_seed(1, 0));
    }

    #[test]
    fn watchdog_recovers_a_stalled_slot_with_identical_results() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Reference: stall-free run.
        let job_plain = |w: usize, slot: &mut Vec<u32>, hb: &Heartbeat| {
            for step in 0..5u32 {
                hb.beat();
                slot.push(w as u32 * 100 + step);
            }
            slot.iter().sum::<u32>()
        };
        let mut ref_slots: Vec<Vec<u32>> = (0..3).map(|w| vec![w]).collect();
        let reference =
            run_on_slots_watchdog(&mut ref_slots, &fault::Backoff::none(1), None, job_plain)
                .unwrap();

        // Same job, but slot 1 stalls (no beats) on its first attempt.
        let stalls = AtomicUsize::new(0);
        let job = |w: usize, slot: &mut Vec<u32>, hb: &Heartbeat| {
            if w == 1 && stalls.fetch_add(1, Ordering::SeqCst) == 0 {
                // far longer than the timeout; only cancellation ends it
                hb.stall_for(Duration::from_secs(10));
            }
            job_plain(w, slot, hb)
        };
        let cfg = WatchdogConfig::with_timeout_ms(50);
        let mut slots: Vec<Vec<u32>> = (0..3).map(|w| vec![w]).collect();
        let t0 = Instant::now();
        let run =
            run_on_slots_watchdog(&mut slots, &fault::Backoff::none(1), Some(&cfg), job).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "stall must be cancelled, not waited out");
        assert_eq!(stalls.load(Ordering::SeqCst), 2, "slot 1 ran twice: stalled, then retried");
        assert_eq!(run.results, reference.results, "recovered run must merge identically");
        assert_eq!(slots, ref_slots, "slot state must match a stall-free run");
    }

    #[test]
    fn watchdog_cancelled_slot_rejoins_the_pool_cleanly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // One stalled-then-cancelled attempt must not wedge or leak the
        // pool thread it ran on: follow-up fan-outs over the same slots
        // complete with first-attempt stats and identical results.
        let stalls = AtomicUsize::new(0);
        let job = |w: usize, slot: &mut u64, hb: &Heartbeat| {
            if w == 1 && stalls.fetch_add(1, Ordering::SeqCst) == 0 {
                hb.stall_for(Duration::from_secs(10));
            }
            hb.beat();
            *slot += 1;
            w as u64 + *slot
        };
        let cfg = WatchdogConfig::with_timeout_ms(40);
        let mut slots: Vec<u64> = vec![10, 20, 30];
        let first =
            run_on_slots_watchdog(&mut slots, &fault::Backoff::none(2), Some(&cfg), job).unwrap();
        assert_eq!(first.results, vec![11, 22, 33]);
        assert_eq!(first.stats[1].attempts, 2, "slot 1 was cancelled once, then re-run");
        // The pool threads that absorbed the cancellation panic keep
        // serving: re-run the same fan-out (now stall-free) twice.
        for round in 0..2u64 {
            let again =
                run_on_slots_watchdog(&mut slots, &fault::Backoff::none(2), Some(&cfg), job)
                    .unwrap();
            let bump = round + 2;
            assert_eq!(again.results, vec![10 + bump, 21 + bump, 32 + bump], "round {round}");
            assert!(again.stats.iter().all(|s| s.attempts == 1), "round {round} stall-free");
        }
    }

    #[test]
    fn watchdog_exhausted_stall_surfaces_as_exec_error() {
        let cfg = WatchdogConfig::with_timeout_ms(30);
        let mut slots: Vec<u32> = (0..2).collect();
        let err = run_on_slots_watchdog(
            &mut slots,
            &fault::Backoff::none(1),
            Some(&cfg),
            |w, _slot, hb: &Heartbeat| {
                if w == 1 {
                    hb.stall_for(Duration::from_secs(10)); // stalls every attempt
                }
                w
            },
        )
        .unwrap_err();
        assert_eq!(err.kind, ExecErrorKind::WorkerPanicked);
        assert_eq!(err.index, 1);
        assert_eq!(err.attempts, 2);
        assert!(err.message.contains("[watchdog]"), "{}", err.message);
    }

    #[test]
    fn fault_plan_stall_on_worker_point_is_recovered_by_watchdog() {
        // Serialized with other fault-plan tests via the fault crate's own
        // global registry; exec has only this one plan-installing test.
        fault::install(fault::FaultPlan::parse("stall@exec.worker.1:1,stall_ms=5000").unwrap());
        let cfg = WatchdogConfig::with_timeout_ms(40);
        let job = |w: usize, slot: &mut u64, hb: &Heartbeat| {
            hb.beat();
            *slot += 1;
            w as u64 + *slot
        };
        let mut slots: Vec<u64> = vec![10, 20, 30];
        let t0 = Instant::now();
        let run = run_on_slots_watchdog(&mut slots, &fault::Backoff::none(2), Some(&cfg), job);
        fault::clear();
        let run = run.unwrap();
        assert!(t0.elapsed() < Duration::from_secs(4), "injected stall must be cut short");
        assert_eq!(run.results, vec![11, 22, 33]);
        assert_eq!(slots, vec![11, 21, 31], "rolled-back slot re-ran exactly once");
    }

    #[test]
    fn watchdog_config_from_env() {
        std::env::set_var("ADVNET_WATCHDOG_MS", "250");
        assert_eq!(
            WatchdogConfig::from_env(),
            Some(WatchdogConfig {
                timeout: Duration::from_millis(250),
                poll: Duration::from_millis(25)
            })
        );
        std::env::set_var("ADVNET_WATCHDOG_MS", "0");
        assert_eq!(WatchdogConfig::from_env(), None);
        std::env::remove_var("ADVNET_WATCHDOG_MS");
        assert_eq!(WatchdogConfig::from_env(), None);
    }

    #[test]
    fn default_workers_env_override() {
        std::env::set_var("EXEC_WORKERS", "3");
        assert_eq!(default_workers(), 3);
        std::env::set_var("EXEC_WORKERS", "0");
        assert_eq!(default_workers(), 1);
        std::env::remove_var("EXEC_WORKERS");
        assert!(default_workers() >= 1);
    }
}
