//! Criterion micro-benchmarks of the training stack: policy forward
//! passes, gradient accumulation, and one full PPO iteration for each of
//! the paper's adversary architectures.

use adversary::{AbrAdversaryConfig, AbrAdversaryEnv, CcAdversaryConfig, CcAdversaryEnv};
use cc::Bbr;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{Ppo, PpoConfig};
use std::hint::black_box;

fn small_ppo_cfg(n_steps: usize) -> PpoConfig {
    PpoConfig { n_steps, minibatch_size: 64, epochs: 3, ..PpoConfig::default() }
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    // the ABR adversary's network: 110 -> 32 -> 16 -> 1
    let net = nn::Mlp::new(&[110, 32, 16, 1], nn::Activation::Tanh, &mut rng);
    let x: Vec<f64> = (0..110).map(|i| (i as f64 * 0.1).sin()).collect();
    c.bench_function("mlp_forward_110x32x16", |b| b.iter(|| black_box(net.forward(&x))));

    let mut grads = nn::MlpGrads::zeros_like(&net);
    let mut cache = net.new_cache();
    c.bench_function("mlp_forward_backward_110x32x16", |b| {
        b.iter(|| {
            net.forward_cached(&x, &mut cache);
            black_box(net.backward(&cache, &[1.0], &mut grads));
        })
    });
}

fn bench_ppo_iterations(c: &mut Criterion) {
    c.bench_function("ppo_iteration_abr_adversary_vs_bb", |b| {
        b.iter_batched(
            || {
                let env = AbrAdversaryEnv::new(
                    abr::BufferBased::pensieve_defaults(),
                    abr::Video::cbr(),
                    AbrAdversaryConfig::default(),
                );
                let ppo = Ppo::new_gaussian(
                    adversary::abr_env::OBS_DIM,
                    1,
                    &[32, 16],
                    0.8,
                    small_ppo_cfg(192),
                );
                (env, ppo)
            },
            |(mut env, mut ppo)| black_box(ppo.train_iteration(&mut env)),
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("ppo_iteration_cc_adversary_vs_bbr", |b| {
        b.iter_batched(
            || {
                let env = CcAdversaryEnv::new(
                    Box::new(|| Box::new(Bbr::new())),
                    CcAdversaryConfig { episode_steps: 200, ..CcAdversaryConfig::default() },
                );
                let ppo = Ppo::new_gaussian(2, 3, &[4], 0.8, small_ppo_cfg(200));
                (env, ppo)
            },
            |(mut env, mut ppo)| black_box(ppo.train_iteration(&mut env)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_nn, bench_ppo_iterations);
criterion_main!(benches);
