//! Criterion micro-benchmarks of the training stack: policy forward
//! passes, gradient accumulation (per-sample and batched), and one full
//! PPO iteration for each of the paper's adversary architectures.
//!
//! Besides the Criterion timings, the benchmark measures the PPO
//! *update-phase* wall time (from the trainer's own
//! `TrainReport::update_wall_s`) under the legacy per-sample path, the
//! batched matrix–matrix path, and the exec-parallel path, and writes
//! `results/BENCH_train.json` — the numbers quoted in `docs/PERF.md`.
//! All paths produce bit-identical training trajectories (see the
//! `update_equivalence` test suite); only the wall clock differs.

use adv_bench::results_dir;
use adversary::{AbrAdversaryConfig, AbrAdversaryEnv, CcAdversaryConfig, CcAdversaryEnv};
use cc::Bbr;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{Ppo, PpoConfig};
use serde::Serialize;
use std::hint::black_box;

fn small_ppo_cfg(n_steps: usize) -> PpoConfig {
    PpoConfig { n_steps, minibatch_size: 64, epochs: 3, ..PpoConfig::default() }
}

const BATCH: usize = 64;

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    // the ABR adversary's network: 110 -> 32 -> 16 -> 1
    let net = nn::Mlp::new(&[110, 32, 16, 1], nn::Activation::Tanh, &mut rng);
    let x: Vec<f64> = (0..110).map(|i| (i as f64 * 0.1).sin()).collect();
    c.bench_function("mlp_forward_110x32x16", |b| b.iter(|| black_box(net.forward(&x))));

    let mut grads = nn::MlpGrads::zeros_like(&net);
    let mut cache = net.new_cache();
    c.bench_function("mlp_forward_backward_110x32x16", |b| {
        b.iter(|| {
            net.forward_cached(&x, &mut cache);
            black_box(net.backward(&cache, &[1.0], &mut grads));
        })
    });

    // batched kernels on a 64-row batch, vs the per-sample loop above
    let xdata: Vec<f64> = (0..BATCH * 110).map(|i| (i as f64 * 0.1).sin()).collect();
    let xb = nn::Matrix::from_vec(BATCH, 110, xdata);
    c.bench_function("mlp_forward_batch64_110x32x16", |b| {
        b.iter(|| black_box(net.forward_batch(&xb)))
    });

    let mut bgrads = nn::MlpGrads::zeros_like(&net);
    let mut bcache = net.new_batch_cache(BATCH);
    let dl = nn::Matrix::from_vec(BATCH, 1, vec![1.0; BATCH]);
    c.bench_function("mlp_forward_backward_batch64_110x32x16", |b| {
        b.iter(|| {
            net.forward_batch_cached(&xb, &mut bcache);
            net.grads_batch(&bcache, &dl, &mut bgrads);
            black_box(&bgrads);
        })
    });
}

#[derive(Debug, Clone, Serialize)]
struct UpdateRow {
    path: String,
    grad_workers: usize,
    update_wall_s: f64,
    speedup_vs_legacy: f64,
}

#[derive(Debug, Clone, Serialize)]
struct TrainBenchReport {
    /// Git commit the numbers were measured at (provenance).
    commit: String,
    /// Host the numbers were measured on (provenance).
    hostname: String,
    /// Physical parallelism of that host (provenance).
    cores: usize,
    /// Toolchain that compiled the benchmark (provenance).
    rustc: String,
    host_parallelism: usize,
    n_steps: usize,
    minibatch_size: usize,
    epochs: usize,
    iterations_averaged: usize,
    rows: Vec<UpdateRow>,
}

/// Mean update-phase wall time under a given path, from the trainer's
/// own `TrainReport::update_wall_s`, averaged over `iters` iterations
/// after a warm-up iteration.
fn measure_update(batched: bool, grad_workers: usize, iters: usize) -> f64 {
    let mut env = AbrAdversaryEnv::new(
        abr::BufferBased::pensieve_defaults(),
        abr::Video::cbr(),
        AbrAdversaryConfig::default(),
    );
    let cfg = PpoConfig { batched_updates: batched, grad_workers, ..small_ppo_cfg(192) };
    let mut ppo = Ppo::new_gaussian(adversary::abr_env::OBS_DIM, 1, &[32, 16], 0.8, cfg);
    let reports = ppo.train(&mut env, 192 * (iters + 1));
    let tail = &reports[1..];
    tail.iter().map(|r| r.update_wall_s).sum::<f64>() / tail.len() as f64
}

/// PPO update-phase wall time across the three gradient paths, written
/// to `results/BENCH_train.json`.
fn bench_update_paths(_c: &mut Criterion) {
    let iters = 5;
    let variants: [(&str, bool, usize); 4] = [
        ("legacy_per_sample", false, 1),
        ("batched", true, 1),
        ("batched_parallel", true, 2),
        ("batched_parallel", true, 4),
    ];
    let mut rows = Vec::new();
    let mut legacy_wall = f64::NAN;
    for (path, batched, workers) in variants {
        let wall = measure_update(batched, workers, iters);
        if !batched {
            legacy_wall = wall;
        }
        rows.push(UpdateRow {
            path: path.to_string(),
            grad_workers: workers,
            update_wall_s: wall,
            speedup_vs_legacy: legacy_wall / wall,
        });
        eprintln!(
            "[train_perf] {path} (workers={workers}): update {:.4}s/iter ({:.2}x vs legacy)",
            wall,
            legacy_wall / wall
        );
    }
    let prov = telemetry::provenance();
    let report = TrainBenchReport {
        commit: prov.commit,
        hostname: prov.hostname,
        cores: prov.cores,
        rustc: prov.rustc,
        host_parallelism: exec::default_workers(),
        n_steps: 192,
        minibatch_size: 64,
        epochs: 3,
        iterations_averaged: iters,
        rows,
    };
    let path = results_dir().join("BENCH_train.json");
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            std::fs::write(&path, json).expect("write BENCH_train.json");
            eprintln!("[train_perf] wrote {}", path.display());
        }
        Err(e) => eprintln!("[train_perf] could not serialize report: {e}"),
    }
}

fn bench_ppo_iterations(c: &mut Criterion) {
    c.bench_function("ppo_iteration_abr_adversary_vs_bb", |b| {
        b.iter_batched(
            || {
                let env = AbrAdversaryEnv::new(
                    abr::BufferBased::pensieve_defaults(),
                    abr::Video::cbr(),
                    AbrAdversaryConfig::default(),
                );
                let ppo = Ppo::new_gaussian(
                    adversary::abr_env::OBS_DIM,
                    1,
                    &[32, 16],
                    0.8,
                    small_ppo_cfg(192),
                );
                (env, ppo)
            },
            |(mut env, mut ppo)| black_box(ppo.train_iteration(&mut env)),
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("ppo_iteration_cc_adversary_vs_bbr", |b| {
        b.iter_batched(
            || {
                let env = CcAdversaryEnv::new(
                    Box::new(|| Box::new(Bbr::new())),
                    CcAdversaryConfig { episode_steps: 200, ..CcAdversaryConfig::default() },
                );
                let ppo = Ppo::new_gaussian(2, 3, &[4], 0.8, small_ppo_cfg(200));
                (env, ppo)
            },
            |(mut env, mut ppo)| black_box(ppo.train_iteration(&mut env)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_nn, bench_ppo_iterations, bench_update_paths);
criterion_main!(benches);
