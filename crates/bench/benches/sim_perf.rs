//! Criterion micro-benchmarks of the simulators — the substrate the
//! training loops hammer: packet-level link simulation, ABR chunk
//! simulation, the MPC lookahead, and the offline-optimal DP.

use abr::{optimal_qoe_dp, run_session, AbrPolicy, BufferBased, Mpc, QoeParams, Video};
use cc::Bbr;
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::{FlowSim, LinkParams, SimConfig, MS, SEC};
use std::hint::black_box;

fn bench_netsim(c: &mut Criterion) {
    c.bench_function("netsim_bbr_1s_12mbps", |b| {
        b.iter_batched(
            || {
                FlowSim::new(
                    Box::new(Bbr::new()),
                    LinkParams::new(12.0, 25.0, 0.0),
                    SimConfig::default(),
                )
            },
            |mut sim| black_box(sim.run_for(SEC)),
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("netsim_bbr_30ms_interval", |b| {
        let mut sim = FlowSim::new(
            Box::new(Bbr::new()),
            LinkParams::new(12.0, 25.0, 0.0),
            SimConfig::default(),
        );
        sim.run_for(2 * SEC);
        b.iter(|| black_box(sim.run_for(30 * MS)))
    });
}

fn bench_abr(c: &mut Criterion) {
    let video = Video::cbr();
    let qoe = QoeParams::default();

    c.bench_function("abr_session_bb_48_chunks", |b| {
        b.iter(|| {
            let mut bb = BufferBased::pensieve_defaults();
            let mut net = abr::FixedConditions::new(2.5, 80.0);
            black_box(run_session(&video, &mut bb, &mut net, &qoe))
        })
    });

    c.bench_function("abr_session_mpc_48_chunks", |b| {
        b.iter(|| {
            let mut mpc = Mpc::default();
            let mut net = abr::FixedConditions::new(2.5, 80.0);
            black_box(run_session(&video, &mut mpc, &mut net, &qoe))
        })
    });

    let bw: Vec<f64> = (0..48).map(|i| 1.0 + 0.07 * (i % 30) as f64).collect();
    c.bench_function("abr_offline_optimal_dp", |b| {
        b.iter(|| black_box(optimal_qoe_dp(&video, &qoe, &bw, 0.08)))
    });

    c.bench_function("abr_windowed_optimum_4", |b| {
        b.iter(|| {
            black_box(abr::windowed_optimal_qoe(
                &video,
                &qoe,
                10,
                &[2.0, 1.1, 3.4, 0.9],
                0.08,
                12.0,
                Some(3),
            ))
        })
    });

    // protocol decision latency: matters because the MPC lookahead is the
    // bottleneck of adversary training against MPC
    c.bench_function("mpc_single_decision", |b| {
        let mut mpc = Mpc::default();
        let mut bb = BufferBased::pensieve_defaults();
        let mut net = abr::FixedConditions::new(2.5, 80.0);
        let mut player = abr::Player::new(&video, qoe.clone());
        for _ in 0..10 {
            let obs = player.observation(&net);
            player.step(bb.select(&obs), &mut net);
        }
        let obs = player.observation(&net);
        b.iter(|| black_box(mpc.select(&obs)))
    });
}

criterion_group!(benches, bench_netsim, bench_abr);
criterion_main!(benches);
