//! Criterion benchmark of the `exec` rollout engine: serial vs 2/4/8-worker
//! parallel collection on the ABR adversary environment.
//!
//! Besides the usual Criterion timings, the benchmark measures steady-state
//! collection throughput per worker count from the trainer's own
//! `TrainReport` timing fields and writes `results/BENCH_exec.json`. The
//! numbers are whatever the host actually delivers: on a single-core
//! machine the parallel rows will not beat the serial row — that is the
//! honest result, not a bug in the engine (merge order, and therefore the
//! learned policy, is identical regardless).

use adv_bench::results_dir;
use adversary::{AbrAdversaryConfig, AbrAdversaryEnv};
use criterion::{criterion_group, criterion_main, Criterion};
use rl::{Ppo, PpoConfig};
use serde::Serialize;
use std::hint::black_box;

const N_STEPS: usize = 960;

fn ppo_cfg(n_envs: usize) -> PpoConfig {
    PpoConfig { n_steps: N_STEPS, minibatch_size: 96, epochs: 1, n_envs, ..PpoConfig::default() }
}

fn env() -> AbrAdversaryEnv<abr::BufferBased> {
    AbrAdversaryEnv::new(
        abr::BufferBased::pensieve_defaults(),
        abr::Video::cbr(),
        AbrAdversaryConfig::default(),
    )
}

fn ppo(n_envs: usize) -> Ppo {
    Ppo::new_gaussian(adversary::abr_env::OBS_DIM, 1, &[32, 16], 0.8, ppo_cfg(n_envs))
}

#[derive(Debug, Clone, Serialize)]
struct ThroughputRow {
    n_envs: usize,
    rollout_wall_s: f64,
    steps_per_s: f64,
    speedup_vs_serial: f64,
}

#[derive(Debug, Clone, Serialize)]
struct UpdateFanoutRow {
    grad_workers: usize,
    update_wall_s: f64,
    speedup_vs_one: f64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    /// Git commit the numbers were measured at (provenance).
    commit: String,
    /// Host the numbers were measured on (provenance).
    hostname: String,
    /// Physical parallelism of that host (provenance).
    cores: usize,
    /// Toolchain that compiled the benchmark (provenance).
    rustc: String,
    host_parallelism: usize,
    n_steps: usize,
    iterations_averaged: usize,
    rows: Vec<ThroughputRow>,
    /// PPO update-phase wall time when minibatch gradients fan out over
    /// `exec` workers (`PpoConfig::grad_workers`); the learned policy is
    /// bit-identical at every worker count, only the wall clock moves.
    update_fanout: Vec<UpdateFanoutRow>,
}

/// Steady-state collection throughput from the trainer's own timing
/// fields, averaged over a few iterations (the first is discarded as
/// warm-up).
fn measure_throughput(n_envs: usize, iters: usize) -> (f64, f64) {
    let mut e = env();
    let mut p = ppo(n_envs);
    let reports = p.train_vec(&mut e, N_STEPS * (iters + 1));
    let tail = &reports[1..];
    let wall: f64 = tail.iter().map(|r| r.rollout_wall_s).sum::<f64>() / tail.len() as f64;
    let sps: f64 = tail.iter().map(|r| r.rollout_steps_per_s).sum::<f64>() / tail.len() as f64;
    (wall, sps)
}

/// Mean update-phase wall time with `grad_workers` gradient workers
/// (serial rollout, so the measurement isolates the update fan-out).
fn measure_update_fanout(grad_workers: usize, iters: usize) -> f64 {
    let mut e = env();
    let mut p = Ppo::new_gaussian(
        adversary::abr_env::OBS_DIM,
        1,
        &[32, 16],
        0.8,
        PpoConfig { grad_workers, ..ppo_cfg(1) },
    );
    let reports = p.train_vec(&mut e, N_STEPS * (iters + 1));
    let tail = &reports[1..];
    tail.iter().map(|r| r.update_wall_s).sum::<f64>() / tail.len() as f64
}

fn bench_rollout_workers(c: &mut Criterion) {
    for n_envs in [1usize, 2, 4, 8] {
        c.bench_function(&format!("rollout_abr_{N_STEPS}steps_{n_envs}env"), |b| {
            b.iter_batched(
                || (env(), ppo(n_envs)),
                |(mut e, mut p)| black_box(p.train_vec(&mut e, N_STEPS)),
                criterion::BatchSize::SmallInput,
            )
        });
    }

    // structured throughput report for the acceptance log
    let iters = 3;
    let mut rows = Vec::new();
    let mut serial_sps = f64::NAN;
    for n_envs in [1usize, 2, 4, 8] {
        let (wall, sps) = measure_throughput(n_envs, iters);
        if n_envs == 1 {
            serial_sps = sps;
        }
        rows.push(ThroughputRow {
            n_envs,
            rollout_wall_s: wall,
            steps_per_s: sps,
            speedup_vs_serial: sps / serial_sps,
        });
        eprintln!(
            "[exec_perf] n_envs={n_envs}: {:.0} steps/s ({:.2}x vs serial)",
            sps,
            sps / serial_sps
        );
    }
    let mut update_fanout = Vec::new();
    let mut one_worker_wall = f64::NAN;
    for grad_workers in [1usize, 2, 4, 8] {
        let wall = measure_update_fanout(grad_workers, iters);
        if grad_workers == 1 {
            one_worker_wall = wall;
        }
        update_fanout.push(UpdateFanoutRow {
            grad_workers,
            update_wall_s: wall,
            speedup_vs_one: one_worker_wall / wall,
        });
        eprintln!(
            "[exec_perf] grad_workers={grad_workers}: update {:.4}s/iter ({:.2}x vs 1)",
            wall,
            one_worker_wall / wall
        );
    }

    let prov = telemetry::provenance();
    let report = BenchReport {
        commit: prov.commit,
        hostname: prov.hostname,
        cores: prov.cores,
        rustc: prov.rustc,
        host_parallelism: exec::default_workers(),
        n_steps: N_STEPS,
        iterations_averaged: iters,
        rows,
        update_fanout,
    };
    let path = results_dir().join("BENCH_exec.json");
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            std::fs::write(&path, json).expect("write BENCH_exec.json");
            eprintln!("[exec_perf] wrote {}", path.display());
        }
        Err(e) => eprintln!("[exec_perf] could not serialize report: {e}"),
    }
}

criterion_group!(benches, bench_rollout_workers);
criterion_main!(benches);
