//! Saving/loading trained policies so expensive artifacts are shared
//! between experiment binaries (fig5/fig6 reuse one CC adversary; fig1/fig2
//! reuse one ABR evaluation).

use rl::{PolicyKind, RunningMeanStd};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// A trained policy with its frozen observation statistics — everything
/// needed to roll it out (the optimizer state is deliberately dropped).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedPolicy {
    pub policy: PolicyKind,
    pub obs_norm: Option<RunningMeanStd>,
    /// Provenance notes (target protocol, training steps, seed, scale).
    pub meta: String,
}

impl SavedPolicy {
    pub fn from_ppo(ppo: &rl::Ppo, meta: impl Into<String>) -> Self {
        let mut obs_norm = ppo.obs_norm.clone();
        if let Some(n) = &mut obs_norm {
            n.updating = false;
        }
        SavedPolicy { policy: ppo.policy.clone(), obs_norm, meta: meta.into() }
    }

    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, json)
    }

    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_actions() {
        let mut rng = StdRng::seed_from_u64(1);
        let policy = PolicyKind::Gaussian(rl::GaussianPolicy::new(&[2, 4, 3], 0.5, &mut rng));
        let saved = SavedPolicy { policy, obs_norm: None, meta: "test".into() };
        let dir = std::env::temp_dir().join("saved-policy-test");
        let path = dir.join("p.json");
        saved.save(&path).unwrap();
        let back = SavedPolicy::load(&path).unwrap();
        let obs = [0.3, -0.7];
        assert_eq!(saved.policy.mode(&obs), back.policy.mode(&obs));
        assert_eq!(back.meta, "test");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frozen_norm_on_save() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = rl::PpoConfig { n_steps: 8, minibatch_size: 8, epochs: 1, ..Default::default() };
        let ppo = rl::Ppo::new_gaussian(2, 1, &[4], 0.5, cfg);
        let saved = SavedPolicy::from_ppo(&ppo, "m");
        assert!(!saved.obs_norm.as_ref().unwrap().updating);
        let _ = &mut rng;
    }
}
