//! Shared infrastructure for the experiment binaries (one per paper
//! table/figure) and the Criterion micro-benchmarks.
//!
//! Every binary:
//! * runs at a **reduced scale by default** (minutes, not hours) and at the
//!   paper's scale with `FULL=1`;
//! * prints the same rows/series the paper reports;
//! * writes CSV (and JSON caches of expensive artifacts) under `results/`.

pub mod abr_eval;
pub mod cc_adv;
pub mod pipeline;
pub mod saved;

use std::path::PathBuf;

/// Experiment scale, selected by the `FULL` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly: tens of thousands of adversary steps, tens of traces.
    Reduced,
    /// The paper's scale: ~600 k adversary steps, 200 traces.
    Full,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Scale::Full,
            _ => Scale::Reduced,
        }
    }

    /// Adversary training steps (paper: 600 k).
    pub fn adversary_steps(self) -> usize {
        match self {
            Scale::Reduced => 90_000,
            Scale::Full => 600_000,
        }
    }

    /// Pensieve training steps.
    pub fn pensieve_steps(self) -> usize {
        match self {
            Scale::Reduced => 360_000,
            Scale::Full => 600_000,
        }
    }

    /// Traces per evaluation set (paper: 200).
    pub fn n_traces(self) -> usize {
        match self {
            Scale::Reduced => 60,
            Scale::Full => 200,
        }
    }

    /// Training corpus size for Fig. 4.
    pub fn corpus_size(self) -> usize {
        match self {
            Scale::Reduced => 40,
            Scale::Full => 120,
        }
    }

    pub fn tag(self) -> &'static str {
        match self {
            Scale::Reduced => "reduced",
            Scale::Full => "full",
        }
    }
}

/// `results/` at the workspace root (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var("RESULTS_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => PathBuf::from("results"),
    };
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create results dir {}: {e}", dir.display()));
    dir
}

/// Print a section header to stdout.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a float series compactly for stdout tables.
pub fn fmt_row(name: &str, values: &[f64]) -> String {
    let mut s = format!("{name:>28}");
    for v in values {
        s.push_str(&format!(" {v:>8.3}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_convention() {
        // from_env reads the live environment; test the mapping directly
        assert_eq!(Scale::Reduced.n_traces(), 60);
        assert_eq!(Scale::Full.n_traces(), 200);
        assert_eq!(Scale::Full.adversary_steps(), 600_000);
        assert!(Scale::Reduced.adversary_steps() < Scale::Full.adversary_steps());
    }

    #[test]
    fn fmt_row_aligns() {
        let r = fmt_row("mean", &[1.0, 2.5]);
        assert!(r.contains("mean"));
        assert!(r.contains("1.000"));
        assert!(r.contains("2.500"));
    }
}
