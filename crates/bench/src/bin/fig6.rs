//! Figure 6: the CC adversary's **deterministic** actions (bandwidth,
//! latency, loss) over 30 seconds — 1000 intervals of 30 ms — "without
//! training noise".
//!
//! The paper's reading: the rapid fluctuations in bandwidth and latency
//! correspond exactly to BBR's probing phases (every ~10 seconds), which is
//! how the adversary keeps BBR's bandwidth model pessimistic. Raw policy
//! outputs may lie outside the Table 1 ranges; clipping returns them to the
//! acceptable box, exactly as the paper notes for PPO.
//!
//! Run: `cargo run -p adv-bench --release --bin fig6` (reuses fig5's cached
//! adversary). Writes `results/fig6.csv` with `series,interval,value` rows.

use adv_bench::cc_adv::{bbr_train_env, cc_adversary_in};
use adv_bench::pipeline::Pipeline;
use adv_bench::{banner, results_dir, Scale};
use adversary::generate_cc_trace_with;

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Figure 6 — adversary's deterministic actions ({} scale)", scale.tag()));
    let mut pipe = Pipeline::new("fig6", scale);
    let adv = cc_adversary_in(&mut pipe, scale);

    let mut env = bbr_train_env();
    // deterministic = the policy mode, i.e. "before exploration noise"
    let trace = generate_cc_trace_with(&mut env, &adv.policy, adv.obs_norm.as_ref(), true, 601);
    // and the actions as actually played (with exploration noise) — our PPO
    // keeps part of the attack strategy in its action noise, so both views
    // are recorded (see EXPERIMENTS.md)
    let played = generate_cc_trace_with(&mut env, &adv.policy, adv.obs_norm.as_ref(), false, 601);

    println!(
        "\n{:>9} {:>10} {:>10} {:>10} {:>12}",
        "interval", "bw_mbps", "lat_ms", "loss", "tput_mbps"
    );
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for (i, p) in trace.params.iter().enumerate() {
        rows.push(("det_bandwidth_mbps".into(), i as f64, p.bandwidth_mbps));
        rows.push(("det_latency_ms".into(), i as f64, p.latency_ms));
        rows.push(("det_loss_rate".into(), i as f64, p.loss_rate));
        let q = &played.params[i];
        rows.push(("played_bandwidth_mbps".into(), i as f64, q.bandwidth_mbps));
        rows.push(("played_latency_ms".into(), i as f64, q.latency_ms));
        rows.push(("played_loss_rate".into(), i as f64, q.loss_rate));
        if i % 25 == 0 {
            println!(
                "{i:>9} {:>10.2} {:>10.2} {:>10.4} {:>12.2}",
                p.bandwidth_mbps, p.latency_ms, p.loss_rate, trace.throughput_mbps[i]
            );
        }
    }

    // quantify the probing synchronization the paper describes: compare
    // the adversary's action variance inside vs. outside BBR's probe
    // windows (ProbeRTT every ~10 s)
    let bw: Vec<f64> = played.params.iter().map(|p| p.bandwidth_mbps).collect();
    let step_changes: Vec<f64> = bw.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
    let mean_change = nn::ops::mean(&step_changes);
    let burst_threshold = mean_change * 3.0 + 1e-9;
    let bursts: Vec<usize> = step_changes
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > burst_threshold)
        .map(|(i, _)| i)
        .collect();
    println!(
        "\nmean |Δbandwidth| per 30 ms: {mean_change:.3} Mbit/s; {} bursty intervals (>3x mean)",
        bursts.len()
    );
    if !bursts.is_empty() {
        let times: Vec<f64> = bursts.iter().map(|&i| i as f64 * 0.03).collect();
        println!(
            "burst times (s): {}",
            times.iter().take(20).map(|t| format!("{t:.1}")).collect::<Vec<_>>().join(", ")
        );
    }
    println!(
        "mean utilization: deterministic run {:.1}%, as-played run {:.1}%",
        100.0 * trace.mean_utilization(),
        100.0 * played.mean_utilization()
    );

    let path = results_dir().join("fig6.csv");
    if let Err(e) = traces::io::write_csv_series(&path, "series,interval,value", &rows) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {}", path.display());
}
