//! Figure 4: adversarial training improves Pensieve's QoE — mean (top) and
//! 5th percentile (bottom) — across {broadband, 3G} × {train, test}
//! combinations, for {no adversarial traces, injected at 90 %, injected at
//! 70 %}.
//!
//! The paper's headline: improvements everywhere, largest when training on
//! broadband and testing on 3G (the broadband corpus "lacks the challenges
//! found in 3G networks"), and the biggest gains in the 5th percentile
//! (≈1.22× on broadband/broadband).
//!
//! Run: `cargo run -p adv-bench --release --bin fig4`. Writes
//! `results/fig4.csv` with `combo|variant|stat,x,value` rows.

use abr::{Pensieve, QoeParams, Video};
use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::{banner, fmt_row, results_dir, Scale};
use adversary::robustify::{eval_pensieve, robustify_variants};
use adversary::{AdversaryTrainConfig, RobustifyConfig};
use traces::{fcc_like, hsdpa_like, GenConfig, Trace};

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Figure 4 — adversarial training of Pensieve ({} scale)", scale.tag()));
    let video = Video::cbr();
    let qoe = QoeParams::default();
    let gen_cfg = GenConfig::default();
    let n = scale.corpus_size();
    let mut pipe = Pipeline::new("fig4", scale);

    let broadband_train: Vec<Trace> = (0..n as u64).map(|i| fcc_like(i, &gen_cfg)).collect();
    let broadband_test: Vec<Trace> =
        (0..n as u64).map(|i| fcc_like(10_000 + i, &gen_cfg)).collect();
    let mobile_train: Vec<Trace> = (0..n as u64).map(|i| hsdpa_like(i, &gen_cfg)).collect();
    let mobile_test: Vec<Trace> = (0..n as u64).map(|i| hsdpa_like(10_000 + i, &gen_cfg)).collect();

    // keep the adversarial fraction of the corpus modest — the paper
    // injects the traces late precisely "to avoid over-fitting to
    // adversarial examples", and a large fraction regresses in-domain QoE
    let base_cfg = RobustifyConfig {
        total_steps: scale.pensieve_steps(),
        n_adv_traces: (n / 4).max(8),
        adversary: AdversaryTrainConfig {
            total_steps: scale.adversary_steps() / 2,
            ..AdversaryTrainConfig::default()
        },
        ..RobustifyConfig::default()
    };

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    // (training corpus label, corpus, [(test label, test corpus)])
    let setups = [
        ("broadband", &broadband_train, [("broadband", &broadband_test), ("3g", &mobile_test)]),
        ("3g", &mobile_train, [("3g", &mobile_test), ("broadband", &broadband_test)]),
    ];

    for (train_label, train_corpus, tests) in setups {
        banner(&format!("training on {train_label} (baseline + adv@90% + adv@70%)"));
        // one pipeline unit per training corpus: the six Pensieve
        // trainings are by far the expensive part of this figure
        let train_key = UnitKey::of_trace_set(
            train_corpus,
            &format!("robustify_{train_label}"),
            &(base_cfg.total_steps, base_cfg.n_adv_traces, base_cfg.adversary.total_steps),
        );
        type Variants = Vec<(f64, Pensieve, Vec<Trace>)>;
        let (baseline, variants): (Pensieve, Variants) = Pipeline::require(
            pipe.unit(&format!("robustify on {train_label}"), &train_key, || {
                robustify_variants(
                    (*train_corpus).clone(),
                    video.clone(),
                    qoe.clone(),
                    &base_cfg,
                    &[0.9, 0.7],
                )
            }),
            "robustify training unit",
        );
        for (test_label, test_corpus) in tests {
            let combo = format!("{train_label} training/{test_label} testing");
            let eval_unit = |pipe: &mut Pipeline, model: &Pensieve, tag: &str| -> Vec<f64> {
                let key = UnitKey::of_trace_set(
                    test_corpus,
                    "pensieve_eval",
                    &(UnitKey::hash_of(model), "v1"),
                );
                Pipeline::require(
                    pipe.unit(&format!("eval {tag} on {test_label}"), &key, || {
                        eval_pensieve(model, test_corpus, &video, &qoe)
                    }),
                    "pensieve eval unit",
                )
            };
            let base = eval_unit(&mut pipe, &baseline, &format!("{train_label} baseline"));
            for (inject_at, robust_model, _) in &variants {
                let robust = eval_unit(
                    &mut pipe,
                    robust_model,
                    &format!("{train_label} adv@{:.0}%", inject_at * 100.0),
                );
                // empty eval sets render as NaN instead of panicking
                let p5 = |xs: &[f64]| nn::ops::try_percentile(xs, 5.0).unwrap_or(f64::NAN);
                let stats = [
                    ("mean", nn::ops::mean(&base), nn::ops::mean(&robust)),
                    ("p5", p5(&base), p5(&robust)),
                ];
                for (stat, b, r) in stats {
                    println!(
                        "{}",
                        fmt_row(
                            &format!("{combo} adv@{:.0}% [{stat}]", inject_at * 100.0),
                            &[b, r, if b.abs() > 1e-9 { r / b } else { f64::NAN }],
                        )
                    );
                    rows.push((format!("{combo}|without_adv|{stat}"), 0.0, b));
                    rows.push((format!("{combo}|adv_at_{:.0}|{stat}", inject_at * 100.0), 0.0, r));
                }
            }
        }
    }

    println!("\n(columns: baseline, adversarially trained, ratio)");
    let path = results_dir().join("fig4.csv");
    if let Err(e) = traces::io::write_csv_series(&path, "combo_variant_stat,x,value", &rows) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {}", path.display());
    println!("(paper reference: improvement across all cells, biggest at the 5th percentile, ~1.22x broadband/broadband p5)");
}
