//! Figure 1: per-video QoE CDFs of Pensieve, MPC and BB on
//! (a) traces from the adversary trained against MPC,
//! (b) traces from the adversary trained against Pensieve,
//! (c) random traces.
//!
//! Run: `cargo run -p adv-bench --release --bin fig1` (`FULL=1` for paper
//! scale). Writes `results/fig1{a,b,c}.csv` with `protocol,qoe,cdf` rows.

use adv_bench::abr_eval::run_or_load;
use adv_bench::{banner, results_dir, Scale};
use adversary::qoe_cdf;

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Figure 1 — QoE CDFs ({} scale)", scale.tag()));
    let data = run_or_load(scale);

    for (sub, set_name) in [("a", "mpc_targeted"), ("b", "pensieve_targeted"), ("c", "random")] {
        let set = data.set(set_name);
        banner(&format!("Fig. 1{sub}: {set_name} ({} traces)", set.traces.len()));
        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        // a protocol with no replayed traces renders as NaN instead of
        // panicking the whole figure
        let pct = |xs: &[f64], p: f64| nn::ops::try_percentile(xs, p).unwrap_or(f64::NAN);
        println!("{:>10} {:>10} {:>10} {:>10} {:>10}", "protocol", "mean", "p25", "median", "p75");
        for (proto, qoe) in &set.qoe {
            println!(
                "{:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                proto,
                nn::ops::mean(qoe),
                pct(qoe, 25.0),
                pct(qoe, 50.0),
                pct(qoe, 75.0),
            );
            for (x, f) in qoe_cdf(qoe) {
                rows.push((proto.clone(), x, f));
            }
        }
        let path = results_dir().join(format!("fig1{sub}.csv"));
        if let Err(e) = traces::io::write_csv_series(&path, "protocol,qoe,cdf", &rows) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }

    // the paper's qualitative checks
    banner("Shape checks vs. the paper");
    let mpc_set = data.set("mpc_targeted");
    let pen_set = data.set("pensieve_targeted");
    let mpc_on_own = nn::ops::mean(&mpc_set.qoe["mpc"]);
    let pen_on_mpc_traces = nn::ops::mean(&mpc_set.qoe["pensieve"]);
    let pen_on_own = nn::ops::mean(&pen_set.qoe["pensieve"]);
    let mpc_on_pen_traces = nn::ops::mean(&pen_set.qoe["mpc"]);
    println!("targeted MPC QoE {mpc_on_own:.3} vs bystander Pensieve {pen_on_mpc_traces:.3} (paper: target suffers most)");
    println!("targeted Pensieve QoE {pen_on_own:.3} vs bystander MPC {mpc_on_pen_traces:.3}");
}
