//! Contest matrix: protocol × protocol × queueing-discipline grid at a
//! shared bottleneck.
//!
//! The single-sender paper setup cannot ask "who wins when BBR meets Cubic
//! at a drop-tail queue?" — the multi-flow simulator can. This binary runs
//! every unordered protocol pair (with repetition, so `bbr+bbr` measures
//! intra-protocol fairness) plus one all-protocols "mix" cell, under each
//! requested AQM, and reports per-flow throughput shares and the Jain
//! fairness index per cell.
//!
//! Run: `cargo run -p adv-bench --release --bin contest_matrix`.
//! Writes `results/contest_matrix.csv` (one row per flow per cell).
//!
//! Knobs (env):
//! * `CONTEST_PROTOCOLS` — comma list from bbr/cubic/reno/copa/vivace
//!   (default `bbr,cubic,copa`).
//! * `CONTEST_QDISCS` — comma list from droptail/red/dctcp (default all).
//! * `CONTEST_SECS` — measured seconds per cell after a 5 s warmup
//!   (default 30).
//! * `CONTEST_SEED` — simulator seed (default 7).
//! * `CONTEST_BW_MBPS` / `CONTEST_LAT_MS` — bottleneck link (default
//!   24 Mbit/s, 20 ms).
//!
//! Each cell is a cached [`Pipeline`] unit: a killed run resumes
//! byte-identically from `results/cache/units/`.

use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::{banner, results_dir, Scale};
use cc::{Bbr, Copa, Cubic, Reno, Vivace};
use netsim::{jain_index, CongestionControl, LinkParams, MultiFlowSim, QdiscKind, SimConfig, SEC};
use serde::{Deserialize, Serialize};

fn make_cc(name: &str) -> Box<dyn CongestionControl> {
    match name {
        "bbr" => Box::new(Bbr::new()),
        "cubic" => Box::new(Cubic::new()),
        "reno" => Box::new(Reno::new()),
        "copa" => Box::new(Copa::new()),
        "vivace" => Box::new(Vivace::new()),
        other => {
            eprintln!("unknown protocol {other:?} (expected bbr|cubic|reno|copa|vivace)");
            std::process::exit(2);
        }
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    match std::env::var(name) {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("{name}={v:?} is not a number");
            std::process::exit(2);
        }),
        Err(_) => default,
    }
}

fn env_list(name: &str, default: &str) -> Vec<String> {
    std::env::var(name)
        .unwrap_or_else(|_| default.to_string())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// What one flow achieved in one contest cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ContestFlow {
    key: u64,
    protocol: String,
    throughput_mbps: f64,
    avg_rtt_ms: f64,
    avg_queue_delay_ms: f64,
    /// Fraction of the *achieved aggregate* this flow took.
    share: f64,
    /// Fraction of the *link capacity* this flow delivered.
    utilization: f64,
}

/// One (cell, qdisc) grid entry: the flows, their fairness, and the
/// bottleneck's drop/mark counters over the whole run.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ContestCell {
    qdisc: String,
    cell: String,
    flows: Vec<ContestFlow>,
    jain: f64,
    drops: u64,
    ecn_marks: u64,
}

struct Knobs {
    secs: u64,
    seed: u64,
    bw_mbps: f64,
    lat_ms: f64,
}

fn run_cell(protocols: &[String], qdisc: QdiscKind, k: &Knobs) -> ContestCell {
    let params = LinkParams::new(k.bw_mbps, k.lat_ms, 0.0);
    let cfg = SimConfig { seed: k.seed, ..SimConfig::default() };
    let mut sim = MultiFlowSim::with_qdisc(params, cfg, qdisc.build());
    for (i, p) in protocols.iter().enumerate() {
        sim.add_flow(i as u64, make_cc(p));
    }
    sim.run_for(5 * SEC); // warmup: let windows open before measuring
    let stats = sim.run_for(k.secs * SEC);

    let total: f64 = stats.iter().map(|(_, s)| s.throughput_mbps).sum();
    let tputs: Vec<f64> = stats.iter().map(|(_, s)| s.throughput_mbps).collect();
    let flows = stats
        .iter()
        .map(|(key, s)| ContestFlow {
            key: *key,
            protocol: protocols[*key as usize].clone(),
            throughput_mbps: s.throughput_mbps,
            avg_rtt_ms: s.avg_rtt_ms,
            avg_queue_delay_ms: s.avg_queue_delay_ms,
            share: if total > 0.0 { s.throughput_mbps / total } else { 0.0 },
            utilization: s.utilization,
        })
        .collect();
    ContestCell {
        qdisc: qdisc.label().to_string(),
        cell: protocols.join("+"),
        flows,
        jain: jain_index(&tputs),
        drops: sim.total_drops(),
        ecn_marks: sim.total_ecn_marks(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let protocols = env_list("CONTEST_PROTOCOLS", "bbr,cubic,copa");
    let qdiscs: Vec<QdiscKind> = env_list("CONTEST_QDISCS", "droptail,red,dctcp")
        .iter()
        .map(|s| {
            QdiscKind::parse(s).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .collect();
    let knobs = Knobs {
        secs: env_f64("CONTEST_SECS", 30.0) as u64,
        seed: env_f64("CONTEST_SEED", 7.0) as u64,
        bw_mbps: env_f64("CONTEST_BW_MBPS", 24.0),
        lat_ms: env_f64("CONTEST_LAT_MS", 20.0),
    };
    for p in &protocols {
        drop(make_cc(p)); // fail fast on typos before spending sim time
    }

    banner(&format!(
        "Contest matrix — {{{}}} × {{{}}} at {} Mbit/s / {} ms",
        protocols.join(","),
        qdiscs.iter().map(|q| q.label()).collect::<Vec<_>>().join(","),
        knobs.bw_mbps,
        knobs.lat_ms,
    ));
    let mut pipe = Pipeline::new("contest_matrix", scale);

    // the grid: unordered pairs with repetition, then the all-in mix cell
    let mut cells: Vec<Vec<String>> = Vec::new();
    for i in 0..protocols.len() {
        for j in i..protocols.len() {
            cells.push(vec![protocols[i].clone(), protocols[j].clone()]);
        }
    }
    if protocols.len() > 2 {
        cells.push(protocols.clone());
    }

    let mut results: Vec<ContestCell> = Vec::new();
    for qdisc in &qdiscs {
        for cell in &cells {
            let label = format!("{}@{}", cell.join("+"), qdisc.label());
            let key = UnitKey::of(
                &(cell.clone(), qdisc.label()),
                "contest_matrix",
                &(knobs.secs, knobs.seed, knobs.bw_mbps, knobs.lat_ms),
            );
            let result = Pipeline::require(
                pipe.unit(&label, &key, || run_cell(cell, *qdisc, &knobs)),
                "contest cell",
            );
            results.push(result);
        }
    }

    println!(
        "\n{:>8} {:>24} {:>8} {:>8} {:>10} {:>8}",
        "qdisc", "cell", "flow", "share", "tput_mbps", "jain"
    );
    let mut csv = String::from(
        "qdisc,cell,flow,protocol,throughput_mbps,share,utilization,\
         avg_rtt_ms,avg_queue_delay_ms,jain,drops,ecn_marks\n",
    );
    let mut jain_sum = 0.0;
    for cell in &results {
        jain_sum += cell.jain;
        for f in &cell.flows {
            println!(
                "{:>8} {:>24} {:>8} {:>8.3} {:>10.2} {:>8.3}",
                cell.qdisc, cell.cell, f.protocol, f.share, f.throughput_mbps, cell.jain
            );
            csv.push_str(&format!(
                "{},{},{},{},{:.4},{:.4},{:.4},{:.3},{:.3},{:.4},{},{}\n",
                cell.qdisc,
                cell.cell,
                f.key,
                f.protocol,
                f.throughput_mbps,
                f.share,
                f.utilization,
                f.avg_rtt_ms,
                f.avg_queue_delay_ms,
                cell.jain,
                cell.drops,
                cell.ecn_marks,
            ));
        }
    }
    let mean_jain = if results.is_empty() { 0.0 } else { jain_sum / results.len() as f64 };
    telemetry::gauge_set("netsim.contest.jain", mean_jain);
    println!("\nmean Jain fairness across {} cells: {mean_jain:.3}", results.len());

    let path = results_dir().join("contest_matrix.csv");
    if let Err(e) = std::fs::write(&path, csv) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {}", path.display());
}
