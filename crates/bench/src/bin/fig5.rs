//! Figure 5: BBR running on a 30-second adversarial trace — achieved
//! throughput vs. the adversary's chosen bandwidth, per 30 ms interval.
//!
//! The paper's headline: despite Table 1's benign ranges, the adversary
//! pulls BBR's average throughput down to **45–65 % of link capacity** by
//! attacking its infrequent probing.
//!
//! Run: `cargo run -p adv-bench --release --bin fig5` (`FULL=1` for the
//! paper's 600 k training steps). The trained adversary is cached in
//! `results/cc_adversary_<scale>.json` and reused by fig6. Writes
//! `results/fig5.csv` with `series,time_s,value` rows.

use adv_bench::cc_adv::{bbr_train_env, cc_adversary_in};
use adv_bench::pipeline::Pipeline;
use adv_bench::{banner, results_dir, Scale};
use adversary::generate_cc_trace_with;
use cc::Bbr;

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Figure 5 — BBR on a 30 s adversarial trace ({} scale)", scale.tag()));
    let mut pipe = Pipeline::new("fig5", scale);
    let adv = cc_adversary_in(&mut pipe, scale);

    let mut env = bbr_train_env();
    let trace = generate_cc_trace_with(&mut env, &adv.policy, adv.obs_norm.as_ref(), false, 501);

    println!("\n{:>7} {:>12} {:>12}", "time_s", "tput_mbps", "bw_mbps");
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for (i, p) in trace.params.iter().enumerate() {
        let t = i as f64 * 0.030;
        rows.push(("throughput_mbps".into(), t, trace.throughput_mbps[i]));
        rows.push(("bandwidth_mbps".into(), t, p.bandwidth_mbps));
        if i % 10 == 0 {
            println!("{t:>7.2} {:>12.2} {:>12.2}", trace.throughput_mbps[i], p.bandwidth_mbps);
        }
    }
    let util = trace.mean_utilization();
    println!("\nmean link utilization over the trace: {:.1}%", util * 100.0);
    println!("(paper reference: the adversary reduces BBR to 45-65% of link capacity)");

    // baseline: what a benign random trace does to BBR, for contrast
    let random = traces::random_cc_trace(77, trace.len());
    let mut sim = netsim::FlowSim::new(
        Box::new(Bbr::new()),
        netsim::LinkParams::new(12.0, 30.0, 0.0),
        netsim::SimConfig::default(),
    );
    let mut rand_capacity = 0.0;
    let mut rand_delivered = 0.0;
    for seg in &random.segments {
        sim.set_link(netsim::LinkParams::new(seg.bandwidth_mbps, seg.latency_ms, seg.loss_rate));
        let st = sim.run_for(30 * netsim::MS);
        rand_capacity += st.capacity_bytes;
        rand_delivered += st.delivered_bytes as f64;
    }
    // random traces include loss (mean ~5%), which caps achievable goodput
    println!(
        "random-trace baseline utilization: {:.1}% (uniform Table 1 conditions incl. loss)",
        100.0 * rand_delivered / rand_capacity
    );

    let path = results_dir().join("fig5.csv");
    if let Err(e) = traces::io::write_csv_series(&path, "series,time_s,value", &rows) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {}", path.display());
}
