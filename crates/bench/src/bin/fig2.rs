//! Figure 2: the QoE ratio (mean / 95th percentile / max) of the
//! *non-target* protocol over the *target* protocol on targeted and random
//! traces. The paper reports: MPC achieves up to 1.38× Pensieve's QoE on
//! Pensieve-targeting traces, Pensieve up to 2.55× MPC's on MPC-targeting
//! traces, and in >75 % of targeted traces the target does worse.
//!
//! Run: `cargo run -p adv-bench --release --bin fig2`. Writes
//! `results/fig2.csv` with `pair,statistic,value` rows.

use adv_bench::abr_eval::run_or_load;
use adv_bench::{banner, results_dir, Scale};
use adversary::RatioSummary;

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Figure 2 — QoE ratios ({} scale)", scale.tag()));
    let data = run_or_load(scale);

    // (label, trace set, target protocol, other protocol)
    let pairs = [
        ("Pensieve/MPC on MPC traces", "mpc_targeted", "mpc", "pensieve"),
        ("MPC/Pensieve on Pensieve traces", "pensieve_targeted", "pensieve", "mpc"),
        ("Pensieve/MPC on random traces", "random", "mpc", "pensieve"),
        ("MPC/Pensieve on random traces", "random", "pensieve", "mpc"),
    ];

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    println!("{:>34} {:>8} {:>8} {:>8} {:>14}", "pair", "mean", "p95", "max", "target-worse %");
    for (label, set_name, target, other) in pairs {
        let set = data.set(set_name);
        let s = RatioSummary::compute(&set.qoe[target], &set.qoe[other]);
        println!(
            "{label:>34} {:>8.3} {:>8.3} {:>8.3} {:>13.1}%",
            s.mean,
            s.p95,
            s.max,
            100.0 * s.target_worse_frac
        );
        for (stat, v) in [
            ("mean", s.mean),
            ("p95", s.p95),
            ("max", s.max),
            ("target_worse_frac", s.target_worse_frac),
        ] {
            rows.push((format!("{label}|{stat}"), 0.0, v));
        }
    }
    let path = results_dir().join("fig2.csv");
    if let Err(e) = traces::io::write_csv_series(&path, "pair_stat,x,value", &rows) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", path.display());
    println!("(paper reference: 2.55x max Pensieve/MPC on MPC traces, 1.38x MPC/Pensieve on Pensieve traces, >75% target-worse on targeted sets, weaker effects on random)");
}
