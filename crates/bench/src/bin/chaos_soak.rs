//! Chaos soak harness for the supervised serving fleet (DESIGN.md §15):
//! long sequences of fleet runs under randomized-but-seeded
//! `ADVNET_FAULT_PLAN` schedules — panics, NaN observations, poisoned
//! policy outputs and stalls across the `serve.shard.<id>` /
//! `serve.obs` / `serve.policy` fault points — asserting after every
//! run that the robustness layer kept its contract:
//!
//! 1. **Accounting** — `quarantined + completed + shed == admitted`.
//! 2. **Sketch purity** — no non-finite QoE reached the aggregation
//!    sketch (`rejected == 0`), the sketch holds exactly the completed
//!    sessions, and mean/p5 are finite.
//! 3. **Blast-radius isolation** — every *non-quarantined* session's
//!    result is bit-identical to the undisturbed baseline: a fault only
//!    ever affects the session (or shard window) it hit.
//! 4. **Bit-transparency** — with an empty plan (and whenever nothing
//!    was quarantined or shed) the whole summary is byte-identical to
//!    the baseline, fallbacks and retries included.
//!
//! Any violation exits non-zero. Run:
//! `cargo run -p adv-bench --release --bin chaos_soak`.
//!
//! Knobs (env):
//!
//! * `ADVNET_FAULT_PLAN` — when set, soak under exactly this plan
//!   (reinstalled before every run so hit counters restart) instead of
//!   generating randomized ones. This is how CI's chaos-smoke job pins
//!   a deterministic schedule.
//! * `CHAOS_RUNS` — fleet runs per policy mode (default 6).
//! * `CHAOS_SESSIONS` — fleet size (default 24).
//! * `CHAOS_SHARDS` — worker shards (default 3).
//! * `CHAOS_SEED` — seed of the randomized plan generator (default 1);
//!   a soak is fully replayable from its seed.

use abr::protocols::pensieve::PENSIEVE_OBS_DIM;
use abr::{BufferBased, Pensieve};
use serve::{try_run_fleet, FleetConfig, FleetPolicy, FleetSummary, SupervisorConfig};
use std::time::{Duration, Instant};
use traces::{GenConfig, TraceFamily, TraceStream};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// SplitMix64 — the workspace-standard seeded generator, so a soak is
/// replayable from `CHAOS_SEED` alone.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generate one seeded random plan: 2–4 specs over all fault kinds and
/// every serving fault point. Panic/stall specs (each costs one window
/// attempt when it fires) are capped at 3 per plan and 2 per point so a
/// schedule can never exhaust the supervisor's retry budget by itself —
/// the soak tests absorption, not designed-to-lose overload.
fn random_plan(rng: &mut u64, shards: usize, ticks: usize) -> String {
    let mut points: Vec<String> = (0..shards).map(|s| format!("serve.shard.{s}")).collect();
    points.push("serve.obs".to_string());
    points.push("serve.policy".to_string());
    let kinds = ["panic", "nan", "corrupt", "stall"];

    let n_specs = 2 + (splitmix(rng) % 3) as usize;
    let mut specs: Vec<String> = Vec::with_capacity(n_specs + 1);
    let mut hard_total = 0usize; // panic+stall across the plan
    let mut hard_per_point: Vec<usize> = vec![0; points.len()];
    for _ in 0..n_specs {
        let p = (splitmix(rng) % points.len() as u64) as usize;
        let mut kind = kinds[(splitmix(rng) % kinds.len() as u64) as usize];
        let hard = matches!(kind, "panic" | "stall");
        if hard && (hard_total >= 3 || hard_per_point[p] >= 2) {
            kind = "nan"; // soften: keep the schedule absorbable
        } else if hard {
            hard_total += 1;
            hard_per_point[p] += 1;
        }
        // shard points are hit once per window attempt, obs/policy once
        // per tick; draw triggers from the matching range (some never
        // fire — that exercises the no-fault transparency path too)
        let trigger = if points[p].starts_with("serve.shard.") {
            1 + splitmix(rng) % 5
        } else {
            1 + splitmix(rng) % (ticks as u64 + 8)
        };
        specs.push(format!("{kind}@{}:{trigger}", points[p]));
    }
    specs.push("stall_ms=1500".to_string());
    specs.join(",")
}

/// Supervision armed for chaos: generous retry budget, a watchdog that
/// cancels injected 1.5 s stalls in ~200 ms (explicit fast poll — the
/// monitor thread is joined at run end).
fn chaos_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        backoff: fault::Backoff::none(3),
        watchdog: Some(exec::WatchdogConfig {
            timeout: Duration::from_millis(200),
            poll: Duration::from_millis(5),
        }),
        snapshot_ticks: 12,
        spool_dir: None,
    }
}

/// Assert every soak invariant for one disturbed run against the
/// undisturbed baseline of the same policy.
fn check_invariants(tag: &str, summary: &FleetSummary, baseline: &FleetSummary) {
    // 1. accounting
    assert_eq!(
        summary.quarantined as usize + summary.completed + summary.shed,
        summary.admitted,
        "{tag}: quarantined + completed + shed != admitted"
    );
    assert_eq!(summary.sessions, summary.admitted - summary.shed, "{tag}: session accounting");
    // 2. sketch purity
    assert_eq!(summary.sketch.rejected(), 0, "{tag}: non-finite QoE reached the sketch");
    assert_eq!(
        summary.sketch.count(),
        summary.completed as u64,
        "{tag}: sketch must hold exactly the completed sessions"
    );
    assert!(summary.mean_qoe.is_finite(), "{tag}: poisoned mean QoE");
    assert!(summary.p5_qoe.is_finite(), "{tag}: poisoned p5 QoE");
    // 3. blast-radius isolation: un-quarantined sessions are untouched
    for r in &summary.per_session {
        let want = &baseline.per_session[r.id as usize];
        assert_eq!(r.chunks, want.chunks, "{tag}: session {} chunk count drifted", r.id);
        if !r.quarantined {
            assert_eq!(
                r.mean_qoe.to_bits(),
                want.mean_qoe.to_bits(),
                "{tag}: un-quarantined session {} drifted from baseline QoE",
                r.id
            );
        }
    }
    // 4. full byte-identity whenever nothing was quarantined or shed
    if summary.quarantined == 0 && summary.shed == 0 {
        assert_eq!(
            summary.per_session, baseline.per_session,
            "{tag}: fault-free-result run must be bit-identical to baseline"
        );
        assert_eq!(
            serde_json::to_string(&summary.sketch).expect("sketch serializes"),
            serde_json::to_string(&baseline.sketch).expect("sketch serializes"),
            "{tag}: aggregation sketch bytes drifted from baseline"
        );
    }
}

/// Silence the panic-hook output of *expected* chaos — injected faults
/// and watchdog cancellations are absorbed by supervision and would
/// otherwise spray backtraces over the soak log. Anything else (a real
/// bug, an invariant assert) still prints in full.
fn quiet_expected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.starts_with("fault-plan:") || msg.starts_with("[watchdog]") {
            return;
        }
        default_hook(info);
    }));
}

fn main() {
    telemetry::init_from_env();
    quiet_expected_panics();
    let runs = env_u64("CHAOS_RUNS", 6) as usize;
    let sessions = env_u64("CHAOS_SESSIONS", 24) as usize;
    let shards = env_u64("CHAOS_SHARDS", 3) as usize;
    let seed = env_u64("CHAOS_SEED", 1);
    let env_plan = std::env::var("ADVNET_FAULT_PLAN").ok().filter(|s| !s.trim().is_empty());

    let cfg = FleetConfig::new(sessions, shards);
    let ticks = cfg.video.n_chunks();
    let stream = TraceStream::new(TraceFamily::BenignMix, seed ^ 0x5eed, GenConfig::default());
    let sup = chaos_supervisor();

    // an untrained but deterministic Pensieve: the soak exercises
    // execution paths, not model quality
    let ppo = rl::Ppo::new_categorical(
        PENSIEVE_OBS_DIM,
        6,
        &[16],
        rl::PpoConfig { seed: 17, ..rl::PpoConfig::default() },
    );
    let policies: Vec<(&str, FleetPolicy)> = vec![
        ("bb", FleetPolicy::per_session(|_id| Box::new(BufferBased::pensieve_defaults()) as _)),
        ("pensieve", FleetPolicy::batched(Pensieve::new(ppo.policy.clone(), ppo.obs_norm.clone()))),
    ];

    println!(
        "=== chaos_soak — {runs} runs x {} policies, {sessions} sessions / {shards} shards, \
         seed {seed}{} ===",
        policies.len(),
        if env_plan.is_some() { " (plan from ADVNET_FAULT_PLAN)" } else { "" }
    );

    let mut rng = seed;
    let mut total = (0u64, 0u64, 0u64); // quarantined, fallbacks, retries
    for (name, policy) in &policies {
        // undisturbed baseline: identical supervision, empty plan
        fault::clear();
        let baseline = try_run_fleet(&cfg, policy, &stream, &sup).expect("baseline run");
        // bit-transparency of the armed-but-empty plan
        check_invariants(&format!("{name}/empty-plan"), &baseline, &baseline);

        for run in 0..runs {
            let plan = match &env_plan {
                Some(p) => p.clone(),
                None => random_plan(&mut rng, shards, ticks),
            };
            // every 3rd run also sheds, so the accounting identity is
            // soaked with all three terms non-trivial
            let mut cfg_run = cfg.clone();
            if run % 3 == 2 {
                cfg_run.max_inflight = Some((sessions * 3) / 4);
            }
            fault::install(fault::FaultPlan::parse(&plan).expect("generated plan parses"));
            let t0 = Instant::now();
            let summary = match try_run_fleet(&cfg_run, policy, &stream, &sup) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("chaos_soak: run {run} [{name}] plan '{plan}' NOT absorbed: {e}");
                    std::process::exit(1);
                }
            };
            fault::clear();
            check_invariants(&format!("{name}/run{run}"), &summary, &baseline);
            println!(
                "run {run:>2} [{name:>8}] plan '{plan}' -> quarantined={} fallbacks={} \
                 shed={} retries={} ({:.2}s)",
                summary.quarantined,
                summary.fallbacks,
                summary.shed,
                summary.shard_retries,
                t0.elapsed().as_secs_f64()
            );
            total.0 += summary.quarantined;
            total.1 += summary.fallbacks;
            total.2 += summary.shard_retries;
        }
    }

    println!(
        "chaos_soak: {} runs absorbed — {} quarantines, {} fallback decisions, {} shard \
         retries; all invariants held",
        runs * policies.len(),
        total.0,
        total.1,
        total.2
    );
    let config = [
        ("bench".to_string(), "chaos_soak".to_string()),
        ("sessions".to_string(), sessions.to_string()),
        ("shards".to_string(), shards.to_string()),
        ("runs".to_string(), runs.to_string()),
    ];
    match telemetry::write_manifest_default(Some(seed), &config) {
        Ok(Some(path)) => println!("telemetry run manifest {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write telemetry run manifest: {e}"),
    }
}
