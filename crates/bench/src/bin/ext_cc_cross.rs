//! Extension experiment: protocol-specificity of CC adversaries.
//!
//! The paper's §1 argues that "conditions under which one protocol fails
//! miserably might be quite good for other protocols" and demonstrates it
//! for ABR (Fig. 1). This extension repeats the exercise for congestion
//! control: train one adversary against *each* protocol family (BBR, Cubic,
//! Reno, Copa, Vivace), then replay every adversary's trace against every
//! protocol — a full cross matrix, plus a loss-free random baseline.
//!
//! Reading the matrix: the diagonal (adversary vs its own target) should be
//! the worst cell of its row *relative to that protocol's baseline*, and
//! different adversaries should find different weaknesses (loss for
//! Cubic/Reno, latency dynamics for Copa/Vivace, probe poisoning for BBR).
//!
//! Run: `cargo run -p adv-bench --release --bin ext_cc_cross`.
//! Writes `results/ext_cc_cross.csv`.

use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::{banner, results_dir, Scale};
use adversary::{
    generate_cc_trace_with, train_cc_adversary, AdversaryTrainConfig, CcAdversaryConfig,
    CcAdversaryEnv,
};
use cc::{Bbr, Copa, Cubic, Reno, Vivace};
use netsim::{CongestionControl, FlowSim, LinkParams, SimConfig, MS};

type Factory = Box<dyn Fn() -> Box<dyn CongestionControl> + Send + Sync>;

fn protocols() -> Vec<(&'static str, Factory)> {
    vec![
        ("bbr", Box::new(|| Box::new(Bbr::new()) as Box<dyn CongestionControl>)),
        ("cubic", Box::new(|| Box::new(Cubic::new()) as Box<dyn CongestionControl>)),
        ("reno", Box::new(|| Box::new(Reno::new()) as Box<dyn CongestionControl>)),
        ("copa", Box::new(|| Box::new(Copa::new()) as Box<dyn CongestionControl>)),
        ("vivace", Box::new(|| Box::new(Vivace::new()) as Box<dyn CongestionControl>)),
    ]
}

/// Replay a parameter schedule against a fresh protocol; mean utilization.
fn replay(params: &[LinkParams], make: &dyn Fn() -> Box<dyn CongestionControl>) -> f64 {
    let mut sim = FlowSim::new(make(), params[0], SimConfig::default());
    let mut delivered = 0.0;
    let mut capacity = 0.0;
    for p in params {
        sim.set_link(*p);
        let st = sim.run_for(30 * MS);
        delivered += st.delivered_bytes as f64;
        capacity += st.capacity_bytes;
    }
    delivered / capacity
}

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Extension — CC adversary cross matrix ({} scale)", scale.tag()));
    let steps = scale.adversary_steps().clamp(150_000, 300_000);
    let mut pipe = Pipeline::new("ext_cc_cross", scale);

    // one adversary per target protocol; the five training runs are
    // independent, so they fan out over exec::par_map (each with its own
    // fixed seed — results are in protocol order and scheduling-invariant).
    // The whole fan-out is one cached pipeline unit: a resumed run replays
    // the trained schedules instead of re-training five adversaries.
    let names: Vec<&'static str> = protocols().iter().map(|(n, _)| *n).collect();
    let train_key = UnitKey::of(&(steps, 23u64, 900u64), "cross_adversaries", &names);
    let mut schedules: Vec<(String, Vec<LinkParams>)> = Pipeline::require(
        pipe.unit("train adversaries vs all protocols", &train_key, || {
            exec::par_map(names.clone(), exec::default_workers(), |i, name| {
                eprintln!("[ext_cc_cross] training adversary vs {name} ({steps} steps)...");
                let factory: Factory = match name {
                    "bbr" => Box::new(|| Box::new(Bbr::new())),
                    "cubic" => Box::new(|| Box::new(Cubic::new())),
                    "reno" => Box::new(|| Box::new(Reno::new())),
                    "copa" => Box::new(|| Box::new(Copa::new())),
                    _ => Box::new(|| Box::new(Vivace::new())),
                };
                // the tuned recipe from cc_adv: 300 ms action persistence and
                // wide initial exploration (see EXPERIMENTS.md Fig. 5 notes)
                let mut env = CcAdversaryEnv::new(
                    factory,
                    CcAdversaryConfig {
                        episode_steps: 100,
                        action_repeat: 10,
                        ..CcAdversaryConfig::default()
                    },
                );
                let cfg = AdversaryTrainConfig {
                    total_steps: steps,
                    ppo: rl::PpoConfig {
                        n_steps: 6000,
                        minibatch_size: 250,
                        epochs: 8,
                        lr: 3e-4,
                        gamma: 0.99,
                        lambda: 0.97,
                        ent_coef: 0.0005,
                        seed: 23 + i as u64,
                        ..rl::PpoConfig::default()
                    },
                    init_std: 1.0,
                    ..AdversaryTrainConfig::default()
                };
                let (ppo, _) = train_cc_adversary(&mut env, &cfg);
                let trace = generate_cc_trace_with(
                    &mut env,
                    &ppo.policy,
                    ppo.obs_norm.as_ref(),
                    false,
                    900 + i as u64,
                );
                (name.to_string(), trace.params)
            })
        }),
        "cross-matrix adversary training unit",
    );
    // loss-free random baseline (bandwidth/latency jitter only)
    let rnd = traces::random_cc_trace(912, 1000);
    let random_params: Vec<LinkParams> =
        rnd.segments.iter().map(|s| LinkParams::new(s.bandwidth_mbps, s.latency_ms, 0.0)).collect();
    schedules.push(("random(no-loss)".to_string(), random_params));

    // the matrix: every (schedule, protocol) replay is independent, so
    // all cells run in parallel and come back in row-major order; the
    // full matrix is a second cached unit keyed by the schedules
    let protos = protocols();
    let matrix_key = UnitKey::of(&schedules, "cross_matrix", &names);
    let utils: Vec<f64> = Pipeline::require(
        pipe.unit("replay cross matrix", &matrix_key, || {
            let cells: Vec<(usize, usize)> =
                (0..schedules.len()).flat_map(|a| (0..protos.len()).map(move |p| (a, p))).collect();
            let schedules_ref = &schedules;
            let protos_ref = &protos;
            exec::par_map(cells, exec::default_workers(), |_, (a, p)| {
                replay(&schedules_ref[a].1, protos_ref[p].1.as_ref())
            })
        }),
        "cross-matrix replay unit",
    );

    print!("\n{:>16}", "adversary \\ run");
    for (pname, _) in &protos {
        print!(" {pname:>8}");
    }
    println!();
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut cell = utils.into_iter();
    for (aname, _) in &schedules {
        print!("{aname:>16}");
        for (pname, _) in &protos {
            let u = cell.next().expect("one utilization per matrix cell");
            print!(" {:>7.1}%", 100.0 * u);
            rows.push((format!("{aname}->{pname}"), 0.0, u));
        }
        println!();
    }

    println!("\n(each row is one adversary's trace replayed against all protocols;");
    println!("compare each cell to the protocol's own random-baseline column entry)");
    let path = results_dir().join("ext_cc_cross.csv");
    if let Err(e) = traces::io::write_csv_series(&path, "adversary_to_proto,x,value", &rows) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {}", path.display());
}
