//! Ablation: different adversarial goals (paper §5).
//!
//! "An ABR adversary could be created with the specific goal of causing
//! rebuffering or low bit-rate playback. Specific goals like these might
//! yield better insights about protocol behavior than general goals."
//!
//! This trains two adversaries against MPC — one with the general linear
//! QoE goal and one with a rebuffer-only goal — and compares how much
//! stalling and how much bitrate loss each induces.
//!
//! Run: `cargo run -p adv-bench --release --bin ablation_goals`.
//! Writes `results/ablation_goals.csv`.

use abr::{Mpc, QoeParams, Video};
use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::{banner, results_dir, Scale};
use adversary::{
    generate_abr_traces_with, replay_abr_trace_detailed, train_abr_adversary, AbrAdversaryConfig,
    AbrAdversaryEnv, AdversaryTrainConfig,
};

struct GoalResult {
    rebuffer_s: f64,
    mean_bitrate: f64,
    qoe: f64,
}

/// Train + evaluate one goal as a cached pipeline unit (the value is the
/// `(rebuffer, bitrate, qoe)` triple, so a resumed run replays it).
fn run_goal(
    pipe: &mut Pipeline,
    label: &str,
    qoe_goal: QoeParams,
    video: &Video,
    steps: usize,
) -> GoalResult {
    let key = UnitKey::of(&(steps, 20usize, 31u64), &format!("goal_{label}"), &qoe_goal);
    let (rebuffer_s, mean_bitrate, qoe) = Pipeline::require(
        pipe.unit(&format!("goal ablation: {label}"), &key, || {
            let cfg = AbrAdversaryConfig { qoe: qoe_goal.clone(), ..AbrAdversaryConfig::default() };
            let mut env = AbrAdversaryEnv::new(Mpc::default(), video.clone(), cfg.clone());
            let (adv, _) = train_abr_adversary(
                &mut env,
                &AdversaryTrainConfig { total_steps: steps, ..AdversaryTrainConfig::default() },
            );
            let traces = generate_abr_traces_with(
                &mut env,
                &adv.policy,
                adv.obs_norm.as_ref(),
                20,
                false,
                31,
            );
            // evaluation always uses the *standard* QoE so results are comparable
            let eval_cfg = AbrAdversaryConfig::default();
            let mut rebuffer = 0.0;
            let mut bitrate = 0.0;
            let mut qoe = 0.0;
            let mut chunks = 0.0;
            for t in &traces {
                let outcomes = replay_abr_trace_detailed(t, &mut Mpc::default(), video, &eval_cfg);
                rebuffer += outcomes.iter().map(|o| o.rebuffer_s).sum::<f64>();
                bitrate += outcomes.iter().map(|o| o.bitrate_mbps).sum::<f64>();
                qoe += outcomes.iter().map(|o| o.qoe).sum::<f64>();
                chunks += outcomes.len() as f64;
            }
            let per_video = traces.len() as f64;
            (rebuffer / per_video, bitrate / chunks, qoe / chunks)
        }),
        "goal ablation unit",
    );
    let r = GoalResult { rebuffer_s, mean_bitrate, qoe };
    println!(
        "{label:>16}: rebuffer {:7.2} s/video, mean bitrate {:5.2} Mbit/s, QoE {:7.3}/chunk",
        r.rebuffer_s, r.mean_bitrate, r.qoe
    );
    r
}

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Ablation — adversarial goals vs MPC ({} scale)", scale.tag()));
    let video = Video::cbr();
    let steps = scale.adversary_steps() / 3;
    let mut pipe = Pipeline::new("ablation_goals", scale);

    let general = run_goal(&mut pipe, "general QoE", QoeParams::default(), &video, steps);
    let stall = run_goal(&mut pipe, "rebuffer-only", QoeParams::rebuffer_only(), &video, steps);

    println!("\n(the rebuffer-goal adversary should induce more stalling even if");
    println!("its overall QoE damage is smaller — goals shape the found weakness)");
    let rows = vec![
        ("general|rebuffer_s".to_string(), 0.0, general.rebuffer_s),
        ("general|mean_bitrate".to_string(), 0.0, general.mean_bitrate),
        ("general|qoe".to_string(), 0.0, general.qoe),
        ("rebuffer_only|rebuffer_s".to_string(), 0.0, stall.rebuffer_s),
        ("rebuffer_only|mean_bitrate".to_string(), 0.0, stall.mean_bitrate),
        ("rebuffer_only|qoe".to_string(), 0.0, stall.qoe),
    ];
    let path = results_dir().join("ablation_goals.csv");
    if let Err(e) = traces::io::write_csv_series(&path, "goal_metric,x,value", &rows) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}
