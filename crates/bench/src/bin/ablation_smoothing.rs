//! Ablation: the smoothness penalty (Eq. 1's `p_smoothing`).
//!
//! §2.1 of the paper argues the adversary "should only introduce changes to
//! the environment if these trigger bad behavior and avoid injecting
//! unnecessary noise", which the smoothing term enforces. This ablation
//! trains the BB adversary at several smoothing coefficients and reports
//! the explainability metric (mean |Δbandwidth| between chunks) against the
//! damage achieved (the Eq.-1 gap on generated traces).
//!
//! Run: `cargo run -p adv-bench --release --bin ablation_smoothing`.
//! Writes `results/ablation_smoothing.csv`.

use abr::{BufferBased, Video};
use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::{banner, results_dir, Scale};
use adversary::{
    generate_abr_traces_with, replay_abr_trace, train_abr_adversary, AbrAdversaryConfig,
    AbrAdversaryEnv, AdversaryTrainConfig,
};

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Ablation — smoothing coefficient ({} scale)", scale.tag()));
    let video = Video::cbr();
    let steps = scale.adversary_steps() / 3;
    let n_traces = 20;
    let mut pipe = Pipeline::new("ablation_smoothing", scale);

    println!("{:>10} {:>14} {:>14} {:>14}", "lambda", "bb_qoe", "opt_gap/chunk", "mean |Δbw|");
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for lambda in [0.0, 0.25, 1.0, 4.0] {
        // one cached unit per coefficient: train + generate + replay, the
        // value is the `(bb_qoe, gap, jump)` per-trace means
        let key = UnitKey::of(&(steps, n_traces, 2024u64), "smoothing_lambda", &lambda);
        let (mean_qoe, mean_gap, mean_jump) = Pipeline::require(
            pipe.unit(&format!("smoothing lambda={lambda}"), &key, || {
                let cfg =
                    AbrAdversaryConfig { smoothing_coef: lambda, ..AbrAdversaryConfig::default() };
                let mut env = AbrAdversaryEnv::new(
                    BufferBased::pensieve_defaults(),
                    video.clone(),
                    cfg.clone(),
                );
                let train_cfg =
                    AdversaryTrainConfig { total_steps: steps, ..AdversaryTrainConfig::default() };
                let (adv, _) = train_abr_adversary(&mut env, &train_cfg);
                let traces = generate_abr_traces_with(
                    &mut env,
                    &adv.policy,
                    adv.obs_norm.as_ref(),
                    n_traces,
                    false,
                    2024,
                );

                let mut bb_qoe = 0.0;
                let mut gap = 0.0;
                let mut jump = 0.0;
                for t in &traces {
                    let q =
                        replay_abr_trace(t, &mut BufferBased::pensieve_defaults(), &video, &cfg);
                    let (opt, _) =
                        abr::optimal_qoe_dp(&video, &cfg.qoe, t, cfg.latency_ms / 1000.0);
                    bb_qoe += q;
                    gap += opt / video.n_chunks() as f64 - q;
                    jump += t.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>()
                        / (t.len() - 1) as f64;
                }
                let n = n_traces as f64;
                (bb_qoe / n, gap / n, jump / n)
            }),
            "smoothing ablation unit",
        );
        println!("{lambda:>10.2} {mean_qoe:>14.3} {mean_gap:>14.3} {mean_jump:>14.3}");
        rows.push((format!("lambda_{lambda}|bb_qoe"), 0.0, mean_qoe));
        rows.push((format!("lambda_{lambda}|opt_gap"), 0.0, mean_gap));
        rows.push((format!("lambda_{lambda}|mean_bw_jump"), 0.0, mean_jump));
    }
    println!("\n(higher lambda should buy smoother, more explainable traces at");
    println!("some cost in raw damage — the paper's §2.1 trade-off)");
    let path = results_dir().join("ablation_smoothing.csv");
    if let Err(e) = traces::io::write_csv_series(&path, "setting,x,value", &rows) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {}", path.display());
}
