//! Ablation: trace-based vs online adversaries (paper §2.1).
//!
//! At a matched simulation budget, compare three ways of finding a bad
//! trace for a protocol: uniform random search, the whole-trace CEM
//! adversary, and the online PPO adversary. The paper chose the online
//! design for sample efficiency; this makes the comparison concrete.
//!
//! Run: `cargo run -p adv-bench --release --bin ablation_tracebased`.
//! Writes `results/ablation_tracebased.csv`.

use abr::{AbrPolicy, BufferBased, Mpc, Video};
use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::{banner, results_dir, Scale};
use adversary::{
    cem_search, generate_abr_traces_with, random_abr_traces, score_trace, train_abr_adversary,
    AbrAdversaryConfig, AbrAdversaryEnv, AdversaryTrainConfig, CemConfig,
};

/// Matched budget in protocol-chunk simulations.
fn budget(scale: Scale) -> usize {
    scale.adversary_steps() / 3
}

/// Random-search baseline. Scoring a trace is independent of every other
/// trace, so the candidates fan out over [`exec::par_map`], each worker
/// scoring against its own clone of the target.
fn best_random<P: AbrPolicy + Clone + Send + Sync>(
    target: &P,
    video: &Video,
    cfg: &AbrAdversaryConfig,
    chunks: usize,
) -> f64 {
    let n_traces = chunks / video.n_chunks();
    let candidates = random_abr_traces(n_traces, video.n_chunks(), 77);
    exec::par_map(candidates, exec::default_workers(), |_, t| {
        let mut target = target.clone();
        score_trace(&t, &mut target, video, cfg, 1.0)
    })
    .into_iter()
    .fold(f64::NEG_INFINITY, f64::max)
}

fn cem_best(
    target: &mut dyn AbrPolicy,
    video: &Video,
    cfg: &AbrAdversaryConfig,
    chunks: usize,
) -> f64 {
    let evals = chunks / video.n_chunks();
    let population = 64;
    let generations = (evals / population).max(2);
    let cem = CemConfig { population, generations, seed: 5, ..CemConfig::default() };
    cem_search(target, video, cfg, &cem).score
}

fn online_best<P: AbrPolicy + Clone + Send>(
    target: P,
    video: &Video,
    cfg: &AbrAdversaryConfig,
    chunks: usize,
) -> f64 {
    let mut env = AbrAdversaryEnv::new(target.clone(), video.clone(), cfg.clone());
    let train_cfg = AdversaryTrainConfig { total_steps: chunks, ..AdversaryTrainConfig::default() };
    let (adv, _) = train_abr_adversary(&mut env, &train_cfg);
    // best of a handful of sampled traces, scored the same way
    let traces =
        generate_abr_traces_with(&mut env, &adv.policy, adv.obs_norm.as_ref(), 10, false, 66);
    let mut t = target;
    traces
        .iter()
        .map(|tr| score_trace(tr, &mut t, video, cfg, 1.0))
        .fold(f64::NEG_INFINITY, f64::max)
}

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Ablation — trace-based vs online adversaries ({} scale)", scale.tag()));
    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();
    let chunks = budget(scale);
    let mut pipe = Pipeline::new("ablation_tracebased", scale);
    println!("budget: {chunks} protocol-chunk simulations per method\n");
    println!("{:>10} {:>12} {:>12} {:>12}", "target", "random", "cem", "online-ppo");

    // each target × method cell is one cached unit (the value is its score)
    let cell = |pipe: &mut Pipeline, target: &str, method: &str, f: &mut dyn FnMut() -> f64| {
        let key = UnitKey::of(&(chunks, target), method, &"v1");
        Pipeline::require(
            pipe.unit(&format!("{method} vs {target}"), &key, f),
            "trace-search ablation unit",
        )
    };

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    // BB
    let r = cell(&mut pipe, "bb", "random", &mut || {
        best_random(&BufferBased::pensieve_defaults(), &video, &cfg, chunks)
    });
    let c = cell(&mut pipe, "bb", "cem", &mut || {
        cem_best(&mut BufferBased::pensieve_defaults(), &video, &cfg, chunks)
    });
    let o = cell(&mut pipe, "bb", "online", &mut || {
        online_best(BufferBased::pensieve_defaults(), &video, &cfg, chunks)
    });
    println!("{:>10} {r:>12.3} {c:>12.3} {o:>12.3}", "bb");
    for (m, v) in [("random", r), ("cem", c), ("online", o)] {
        rows.push((format!("bb|{m}"), 0.0, v));
    }
    // MPC
    let r = cell(&mut pipe, "mpc", "random", &mut || {
        best_random(&Mpc::default(), &video, &cfg, chunks)
    });
    let c =
        cell(&mut pipe, "mpc", "cem", &mut || cem_best(&mut Mpc::default(), &video, &cfg, chunks));
    let o =
        cell(&mut pipe, "mpc", "online", &mut || online_best(Mpc::default(), &video, &cfg, chunks));
    println!("{:>10} {r:>12.3} {c:>12.3} {o:>12.3}", "mpc");
    for (m, v) in [("random", r), ("cem", c), ("online", o)] {
        rows.push((format!("mpc|{m}"), 0.0, v));
    }

    println!("\n(score = per-chunk gap between the offline optimum and the target's");
    println!("QoE, minus the smoothness penalty; higher = a better adversarial trace)");
    let path = results_dir().join("ablation_tracebased.csv");
    if let Err(e) = traces::io::write_csv_series(&path, "target_method,x,value", &rows) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {}", path.display());
}
