//! Smoke test for the crash-resumable evaluation pipeline.
//!
//! Runs a miniature end-to-end campaign (train a tiny BB adversary,
//! generate traces, replay three protocols) entirely through
//! `bench::pipeline` units. Running it twice demonstrates the cache: the
//! second run should report only cache hits and produce a byte-identical
//! CSV. The CI fault-matrix job drives this binary under
//! `ADVNET_FAULT_PLAN` to exercise kill/resume and corruption recovery.
//!
//! Run: `cargo run -p adv-bench --release --bin pipeline_smoke`.
//! Writes `results/pipeline_smoke.csv` and its completion manifest.

use adv_bench::pipeline::smoke;

fn main() {
    match smoke::run(4, 2024) {
        Ok(out) => {
            let m = &out.manifest;
            println!(
                "pipeline_smoke: {} units ({} cached, {} computed, {} quarantined, {} failed)",
                m.units.len(),
                m.cache_hits,
                m.computed,
                m.quarantined,
                m.failed
            );
            println!("wrote {}", out.csv.display());
        }
        Err(e) => {
            eprintln!("pipeline_smoke failed: {e}");
            std::process::exit(2);
        }
    }
}
