//! Fleet-scale serving benchmark: run tens of thousands of concurrent
//! ABR sessions through the session-sharded batch-inference engine
//! (`crates/serve`) under benign and adversarial trace streams, for
//! each of {BB, MPC, Pensieve}.
//!
//! Per (protocol, stream) cell the binary reports the fleet mean and
//! 5th-percentile session QoE from the engine's constant-memory
//! quantile sketch, plus the serving throughput in **decisions/s**
//! (policy decisions = chunks fetched; see docs/PERF.md). Deterministic
//! results are cached through the crash-resumable [`Pipeline`];
//! throughput is a measurement, so it is printed fresh on every compute
//! and recorded only in the telemetry manifest — never in the cache.
//!
//! Run: `cargo run -p adv-bench --release --bin fleet_eval`. Writes
//! `results/fleet_eval.csv`.
//!
//! Knobs (env):
//!
//! * `FLEET_SESSIONS` — fleet size (default 20 000). MPC runs
//!   `max(sessions / 20, 1)` sessions: its per-decision odometer search
//!   is ~1000× a batched forward, and fleet QoE statistics converge
//!   long before 20 000 sessions.
//! * `FLEET_SHARDS` — worker shards (default [`exec::default_workers`]).
//!   Shard count never changes results (DESIGN.md §13), only speed.
//! * `FLEET_PROTOCOLS` — comma list from {bb, mpc, pensieve}
//!   (default all three).
//! * `FLEET_TRAIN_STEPS` — PPO steps for the served Pensieve model
//!   (default 24 000: a serving-workload model, not a paper-grade one).

use abr::{BufferBased, Mpc, Pensieve};
use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::{banner, fmt_row, results_dir, Scale};
use serde::{Deserialize, Serialize};
use serve::{run_fleet, FleetConfig, FleetPolicy};
use std::cell::Cell;
use traces::{GenConfig, TraceFamily, TraceStream};

/// Deterministic part of a fleet run: pure function of
/// `(protocol, stream, sessions)` — shard count and wall-clock are
/// excluded by the engine's shard-invariance contract, so the cached
/// value replays byte-identically on resume.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FleetCell {
    sessions: usize,
    decisions: u64,
    mean_qoe: f64,
    p5_qoe: f64,
    /// Sketch memory footprint (tuples), to make the constant-memory
    /// claim auditable from the CSV/manifest.
    sketch_tuples: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let scale = Scale::from_env();
    let sessions = env_usize("FLEET_SESSIONS", 20_000);
    let shards = env_usize("FLEET_SHARDS", exec::default_workers());
    let train_steps = env_usize("FLEET_TRAIN_STEPS", 24_000);
    let protocols: Vec<String> = std::env::var("FLEET_PROTOCOLS")
        .unwrap_or_else(|_| "bb,mpc,pensieve".to_string())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    banner(&format!(
        "fleet_eval — {sessions} sessions x {} protocols over {shards} shards",
        protocols.len()
    ));
    let mut pipe = Pipeline::new("fleet_eval", scale);

    // ---- serving model: one modest Pensieve, trained once and cached.
    // Same corpus recipe as abr_eval's unit so the policy has no trivial
    // out-of-distribution holes, but far fewer steps — this binary
    // measures serving, not training.
    let ppo_cfg = rl::PpoConfig {
        n_steps: 1920,
        minibatch_size: 96,
        epochs: 5,
        lr: 3e-4,
        ent_coef: 0.01,
        seed: 41,
        ..rl::PpoConfig::default()
    };
    let need_pensieve = protocols.iter().any(|p| p == "pensieve");
    let pensieve: Option<Pensieve> = need_pensieve.then(|| {
        let key =
            UnitKey::of(&("pensieve-corpus-v1", train_steps), "fleet_pensieve_train", &ppo_cfg);
        Pipeline::require(
            pipe.unit("train serving pensieve", &key, || {
                eprintln!("[fleet_eval] training serving pensieve ({train_steps} steps)...");
                let latency_ms = 80.0;
                let mut corpus: Vec<traces::Trace> = (0..80)
                    .map(|i| traces::random_abr_trace(1000 + i, 80, 4.0, latency_ms))
                    .collect();
                for i in 0..10u64 {
                    let bw = 0.8 + 0.15 * i as f64;
                    corpus.push(traces::Trace::new(
                        format!("const-low-{i}"),
                        vec![traces::Segment::bw(320.0, bw, latency_ms)],
                    ));
                }
                let gen_cfg = traces::GenConfig { latency_ms, ..Default::default() };
                for i in 0..10u64 {
                    corpus.push(traces::hsdpa_like(3000 + i, &gen_cfg));
                }
                let (pensieve, _, _) = abr::env::train_pensieve(
                    corpus,
                    abr::Video::cbr(),
                    abr::QoeParams::default(),
                    train_steps,
                    ppo_cfg.clone(),
                );
                pensieve
            }),
            "serving pensieve training",
        )
    });

    // ---- the fleet matrix: protocol x {benign, adversarial} stream.
    let streams = [
        ("benign", TraceFamily::BenignMix, 9001u64),
        ("adversarial", TraceFamily::AdversarialLike, 9002u64),
    ];
    let mut rows: Vec<String> = Vec::new();
    for proto in &protocols {
        let n_sessions = match proto.as_str() {
            "bb" => sessions,
            // MPC's odometer search is ~1000x a batched forward
            "mpc" => (sessions / 20).max(1),
            "pensieve" => sessions,
            other => {
                eprintln!("[fleet_eval] unknown protocol {other:?}, skipping");
                continue;
            }
        };
        for (stream_tag, family, base_seed) in streams {
            let stream = TraceStream::new(family, base_seed, GenConfig::default());
            let key = UnitKey::of(
                &(family.tag(), base_seed, n_sessions as u64),
                &format!("fleet_{proto}"),
                &(pensieve.as_ref().map(UnitKey::hash_of).unwrap_or(0), "fleet v1"),
            );
            // wall-clock is a fresh measurement, captured outside the
            // cacheable value (cache hits have no meaningful timing)
            let timing: Cell<Option<(f64, f64)>> = Cell::new(None);
            // robustness accounting (quarantined / fallbacks / shed /
            // shard retries) is all zero on a healthy fleet and only
            // meaningful on the run that computed the cell, so it is
            // printed fresh and kept out of the cached value
            let accounting: Cell<Option<(u64, u64, usize, u64)>> = Cell::new(None);
            let cell: FleetCell = Pipeline::require(
                pipe.unit(&format!("fleet {proto} on {stream_tag}"), &key, || {
                    let cfg = FleetConfig::new(n_sessions, shards);
                    let policy = match proto.as_str() {
                        "bb" => FleetPolicy::per_session(|_id| {
                            Box::new(BufferBased::pensieve_defaults()) as _
                        }),
                        "mpc" => FleetPolicy::per_session(|_id| Box::new(Mpc::default()) as _),
                        _ => {
                            FleetPolicy::batched(pensieve.clone().expect("pensieve trained above"))
                        }
                    };
                    let summary = run_fleet(&cfg, &policy, &stream);
                    timing.set(Some((summary.wall_s, summary.decisions_per_s)));
                    accounting.set(Some((
                        summary.quarantined,
                        summary.fallbacks,
                        summary.shed,
                        summary.shard_retries,
                    )));
                    FleetCell {
                        sessions: summary.sessions,
                        decisions: summary.decisions,
                        mean_qoe: summary.mean_qoe,
                        p5_qoe: summary.p5_qoe,
                        sketch_tuples: summary.sketch.tuples_len(),
                    }
                }),
                "fleet cell",
            );
            println!(
                "{}",
                fmt_row(
                    &format!("{proto} on {stream_tag} ({} sessions)", cell.sessions),
                    &[cell.mean_qoe, cell.p5_qoe],
                )
            );
            match timing.get() {
                Some((wall_s, dps)) => println!(
                    "    {} decisions in {wall_s:.2}s -> {dps:.0} decisions/s \
                     ({} sketch tuples)",
                    cell.decisions, cell.sketch_tuples
                ),
                None => println!(
                    "    {} decisions (cached; re-run with a cold cache to measure \
                     throughput)",
                    cell.decisions
                ),
            }
            if let Some((quarantined, fallbacks, shed, retries)) = accounting.get() {
                println!(
                    "    robustness: {quarantined} quarantined, {fallbacks} fallback \
                     decisions, {shed} shed, {retries} shard retries"
                );
            }
            rows.push(format!(
                "{proto},{stream_tag},{},{shards},{},{:.6},{:.6},{}",
                cell.sessions, cell.decisions, cell.mean_qoe, cell.p5_qoe, cell.sketch_tuples
            ));
        }
    }

    println!("\n(columns: mean QoE, p5 QoE)");
    let path = results_dir().join("fleet_eval.csv");
    let csv = format!(
        "protocol,stream,sessions,shards,decisions,mean_qoe,p5_qoe,sketch_tuples\n{}\n",
        rows.join("\n")
    );
    if let Err(e) = std::fs::write(&path, csv) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {}", path.display());
}
