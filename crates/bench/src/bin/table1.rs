//! Table 1: the ranges of link parameters the congestion-control adversary
//! may produce — bandwidth 6–24 Mbit/s, latency 15–60 ms, loss 0–10 %.
//!
//! This binary prints the configured action space, verifies it against the
//! paper's numbers, and exercises the clipping that keeps every adversary
//! action inside it (the property the paper leans on: the conditions are
//! "clearly within BBR's expected design range").
//!
//! Run: `cargo run -p adv-bench --release --bin table1`. Writes
//! `results/table1.csv`.

use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::{banner, results_dir, Scale};
use adversary::CcActionSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner("Table 1 — CC adversary action ranges");
    let mut pipe = Pipeline::new("table1", Scale::from_env());
    let space = CcActionSpace::default();
    println!("{:>12} {:>12} {:>12}", "Bandwidth", "Latency", "Loss rate");
    println!(
        "{:>12} {:>12} {:>12}",
        format!("{}-{} Mbps", space.bandwidth_mbps.0, space.bandwidth_mbps.1),
        format!("{}-{} ms", space.latency_ms.0, space.latency_ms.1),
        format!("{}-{}%", space.loss_rate.0 * 100.0, space.loss_rate.1 * 100.0),
    );

    assert_eq!(space.bandwidth_mbps, (6.0, 24.0), "paper Table 1: bandwidth");
    assert_eq!(space.latency_ms, (15.0, 60.0), "paper Table 1: latency");
    assert_eq!(space.loss_rate, (0.0, 0.10), "paper Table 1: loss");

    // fuzz the clipper: no raw action may escape the box. The shards run
    // in parallel via exec::par_map, each on its own seed-split RNG
    // stream, so the fuzz corpus is identical for any worker count. The
    // whole fuzz is one cached pipeline unit.
    let fuzz_key = UnitKey::of(&(8u64, 12_500usize, 1u64), "clip_fuzz", &"v1");
    let violations: usize = Pipeline::require(
        pipe.unit("clip fuzz (100k raw actions)", &fuzz_key, || {
            let shards: Vec<u64> = (0..8).collect();
            let space_ref = &space;
            exec::par_map(shards, exec::default_workers(), |_, shard| {
                let mut rng = StdRng::seed_from_u64(exec::split_seed(1, shard));
                let mut bad = 0usize;
                for _ in 0..12_500 {
                    let raw = [
                        rng.gen_range(-100.0..100.0),
                        rng.gen_range(-100.0..100.0),
                        rng.gen_range(-10.0..10.0),
                    ];
                    let p = space_ref.to_params(&raw);
                    if !(6.0..=24.0).contains(&p.bandwidth_mbps)
                        || !(15.0..=60.0).contains(&p.latency_ms)
                        || !(0.0..=0.10).contains(&p.loss_rate)
                    {
                        bad += 1;
                    }
                }
                bad
            })
            .into_iter()
            .sum()
        }),
        "clip fuzz unit",
    );
    assert_eq!(violations, 0, "raw actions escaped the Table 1 box");
    println!(
        "verified against the paper's ranges; 100k random raw actions all clip inside the box"
    );

    let rows = vec![
        ("bandwidth_mbps_min".to_string(), 0.0, space.bandwidth_mbps.0),
        ("bandwidth_mbps_max".to_string(), 0.0, space.bandwidth_mbps.1),
        ("latency_ms_min".to_string(), 0.0, space.latency_ms.0),
        ("latency_ms_max".to_string(), 0.0, space.latency_ms.1),
        ("loss_rate_min".to_string(), 0.0, space.loss_rate.0),
        ("loss_rate_max".to_string(), 0.0, space.loss_rate.1),
    ];
    let path = results_dir().join("table1.csv");
    if let Err(e) = traces::io::write_csv_series(&path, "parameter,x,value", &rows) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {}", path.display());
}
