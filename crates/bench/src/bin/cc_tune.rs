//! Internal experiment: hyperparameter search for a CC adversary whose
//! *deterministic* policy (paper Fig. 6: actions "before exploration
//! noise") carries the attack, rather than relying on exploration noise.
//! Not part of the figure pipeline; kept for reproducibility of the tuning
//! decision recorded in EXPERIMENTS.md.

use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::Scale;
use adversary::{
    generate_cc_trace_with, train_cc_adversary, AdversaryTrainConfig, CcAdversaryConfig,
    CcAdversaryEnv,
};
use cc::Bbr;

fn main() {
    let mut pipe = Pipeline::new("cc_tune", Scale::from_env());
    for (gamma, lambda, std0, steps, seed, repeat) in
        [(0.99, 0.97, 1.0, 300_000usize, 17u64, 10usize), (0.99, 0.97, 1.0, 300_000, 23, 10)]
    {
        // one unit per hyperparameter combination; the value is the
        // (first reward, last reward, stochastic util, deterministic util)
        // summary, so a resumed sweep skips finished combinations
        let key = UnitKey::of(&(steps, seed, repeat), "cc_tune", &(gamma, lambda, std0, "tune v1"));
        let (first_reward, last_reward, stoch_util, det_util) = Pipeline::require(
            pipe.unit(&format!("tune seed={seed} repeat={repeat}"), &key, || {
                let mut env = CcAdversaryEnv::new(
                    Box::new(|| Box::new(Bbr::new())),
                    CcAdversaryConfig {
                        episode_steps: 3000 / repeat,
                        action_repeat: repeat,
                        ..CcAdversaryConfig::default()
                    },
                );
                let cfg = AdversaryTrainConfig {
                    total_steps: steps,
                    ppo: rl::PpoConfig {
                        n_steps: 6000,
                        minibatch_size: 250,
                        epochs: 8,
                        lr: 3e-4,
                        gamma,
                        lambda,
                        ent_coef: 0.0005,
                        seed,
                        ..rl::PpoConfig::default()
                    },
                    init_std: std0,
                    ..AdversaryTrainConfig::default()
                };
                let (ppo, reports) = train_cc_adversary(&mut env, &cfg);
                let stoch =
                    generate_cc_trace_with(&mut env, &ppo.policy, ppo.obs_norm.as_ref(), false, 1);
                let det =
                    generate_cc_trace_with(&mut env, &ppo.policy, ppo.obs_norm.as_ref(), true, 2);
                // a run short enough to produce no progress reports is a
                // configuration error, not a panic: surface NaN instead
                let first = reports.first().map_or(f64::NAN, |r| r.mean_step_reward);
                let last = reports.last().map_or(f64::NAN, |r| r.mean_step_reward);
                (first, last, stoch.mean_utilization(), det.mean_utilization())
            }),
            "cc tuning unit",
        );
        println!(
            "gamma={gamma} lambda={lambda} std0={std0} seed={seed} repeat={repeat}: reward {first_reward:.3}->{last_reward:.3} | stochastic util {:.1}% | deterministic util {:.1}%",
            100.0 * stoch_util,
            100.0 * det_util,
        );
    }
    pipe.finish();
}
