//! Internal experiment: hyperparameter search for a CC adversary whose
//! *deterministic* policy (paper Fig. 6: actions "before exploration
//! noise") carries the attack, rather than relying on exploration noise.
//! Not part of the figure pipeline; kept for reproducibility of the tuning
//! decision recorded in EXPERIMENTS.md.

use adversary::{
    generate_cc_trace_with, train_cc_adversary, AdversaryTrainConfig, CcAdversaryConfig,
    CcAdversaryEnv,
};
use cc::Bbr;

fn main() {
    for (gamma, lambda, std0, steps, seed, repeat) in
        [(0.99, 0.97, 1.0, 300_000usize, 17u64, 10usize), (0.99, 0.97, 1.0, 300_000, 23, 10)]
    {
        let mut env = CcAdversaryEnv::new(
            Box::new(|| Box::new(Bbr::new())),
            CcAdversaryConfig {
                episode_steps: 3000 / repeat,
                action_repeat: repeat,
                ..CcAdversaryConfig::default()
            },
        );
        let cfg = AdversaryTrainConfig {
            total_steps: steps,
            ppo: rl::PpoConfig {
                n_steps: 6000,
                minibatch_size: 250,
                epochs: 8,
                lr: 3e-4,
                gamma,
                lambda,
                ent_coef: 0.0005,
                seed,
                ..rl::PpoConfig::default()
            },
            init_std: std0,
            ..AdversaryTrainConfig::default()
        };
        let (ppo, reports) = train_cc_adversary(&mut env, &cfg);
        let stoch = generate_cc_trace_with(&mut env, &ppo.policy, ppo.obs_norm.as_ref(), false, 1);
        let det = generate_cc_trace_with(&mut env, &ppo.policy, ppo.obs_norm.as_ref(), true, 2);
        println!(
            "gamma={gamma} lambda={lambda} std0={std0} seed={seed} repeat={repeat}: reward {:.3}->{:.3} | stochastic util {:.1}% | deterministic util {:.1}%",
            reports.first().unwrap().mean_step_reward,
            reports.last().unwrap().mean_step_reward,
            100.0 * stoch.mean_utilization(),
            100.0 * det.mean_utilization(),
        );
    }
}
