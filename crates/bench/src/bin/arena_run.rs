//! Generational self-play robustification driver (`crates/arena`).
//!
//! Runs the arena — alternating adversary/protocol training with the
//! persistent damage-scored trace pool — and emits the robustness
//! trajectory: one CSV row per generation with the protocol's held-out
//! fleet QoE (benign and adversarial, mean and p5) and the pool's shape.
//!
//! Run: `cargo run -p adv-bench --release --bin arena_run`. Writes
//! `results/arena_trajectory.csv`; working state (checkpoints, the pool
//! file, `trajectory.csv`) lives under `ARENA_DIR`. Kill the process at
//! any point and re-run with the same knobs: every leg resumes from its
//! checkpoint and the completed run is byte-identical to an
//! uninterrupted one. The finished trajectory is additionally cached as
//! a pipeline unit, so a re-invocation after completion is instant.
//!
//! Knobs (env):
//!
//! * `ARENA_GENERATIONS` — adversarial generations after gen 0 (default 3).
//! * `ARENA_INITIAL_STEPS` / `ARENA_STEPS_PER_GEN` — protocol training
//!   budget for generation 0 / each later generation (defaults 12 000 /
//!   6 000).
//! * `ARENA_ADV_STEPS` — adversary budget per generation (default 8 000).
//! * `ARENA_N_STEPS` — PPO rollout length for both trainers (default
//!   960; lower it together with the step budgets for smoke runs).
//! * `ARENA_TRACES_PER_GEN` — harvest size (default 12).
//! * `ARENA_SESSIONS` / `ARENA_SHARDS` — held-out evaluation fleet size
//!   and worker shards (defaults 2 000 / [`exec::default_workers`];
//!   shard count never changes results).
//! * `ARENA_EVICT_DAMAGE` / `ARENA_EVICT_PATIENCE` — eviction threshold
//!   and consecutive beaten generations required (defaults 0.05 / 1).
//! * `ARENA_SEED` — master seed (default 7).
//! * `ARENA_DIR` — working directory (default `results/arena`).

use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::{banner, fmt_row, results_dir, Scale};
use arena::{run_arena, trajectory_csv, ArenaConfig, GenerationRow};
use rl::PpoConfig;
use std::path::PathBuf;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let scale = Scale::from_env();
    let generations = env_u64("ARENA_GENERATIONS", 3);
    let initial_steps = env_usize("ARENA_INITIAL_STEPS", 12_000);
    let steps_per_gen = env_usize("ARENA_STEPS_PER_GEN", 6_000);
    let adv_steps = env_usize("ARENA_ADV_STEPS", 8_000);
    let n_steps = env_usize("ARENA_N_STEPS", 960);
    let traces_per_gen = env_usize("ARENA_TRACES_PER_GEN", 12);
    let sessions = env_usize("ARENA_SESSIONS", 2_000);
    let shards = env_usize("ARENA_SHARDS", exec::default_workers());
    let evict_damage = env_f64("ARENA_EVICT_DAMAGE", 0.05);
    let evict_patience = env_u64("ARENA_EVICT_PATIENCE", 1);
    let seed = env_u64("ARENA_SEED", 7);
    let dir = std::env::var("ARENA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| results_dir().join("arena"));
    banner(&format!(
        "arena_run — {generations}+1 generations, {traces_per_gen} traces/gen, \
         fleet {sessions}x2 ({} scale)",
        scale.tag()
    ));

    let mut cfg = ArenaConfig {
        generations,
        initial_steps,
        steps_per_gen,
        protocol_ppo: PpoConfig {
            n_steps,
            minibatch_size: 96,
            epochs: 5,
            lr: 3e-4,
            ent_coef: 0.01,
            ..PpoConfig::default()
        },
        traces_per_gen,
        fleet_sessions: sessions,
        fleet_shards: shards,
        evict_damage,
        evict_patience,
        seed,
        dir: dir.clone(),
        ..ArenaConfig::default()
    };
    cfg.adversary.total_steps = adv_steps;
    cfg.adversary.ppo.n_steps = n_steps;
    cfg.adversary.ppo.minibatch_size = 96;

    // the trajectory is a pure function of these knobs (shards excluded
    // by the fleet engine's invariance contract; dir holds only working
    // state), so a finished arena replays from the unit cache
    let key = UnitKey::of(
        &(generations, initial_steps as u64, steps_per_gen as u64, adv_steps as u64, seed),
        "arena_run",
        &(
            n_steps as u64,
            traces_per_gen as u64,
            sessions as u64,
            evict_damage,
            evict_patience,
            "arena v1",
        ),
    );
    let mut pipe = Pipeline::new("arena_run", scale)
        // a panic in the arena (including injected `pool.write` faults) is
        // deterministic — retrying in-process would just repeat it, and a
        // kill+resume test wants the process to die visibly instead
        .with_backoff(fault::Backoff::none(0));
    let rows: Vec<GenerationRow> = Pipeline::require(
        pipe.unit("generational self-play arena", &key, || {
            let outcome = run_arena(&cfg).unwrap_or_else(|e| panic!("arena failed: {e}"));
            outcome.rows
        }),
        "arena run",
    );

    for r in &rows {
        println!(
            "{}",
            fmt_row(
                &format!(
                    "gen {} (pool {}, evicted {})",
                    r.generation, r.pool_size, r.pool_evicted_total
                ),
                &[r.benign_mean_qoe, r.benign_p5_qoe, r.adv_mean_qoe, r.adv_p5_qoe],
            )
        );
    }
    println!("\n(columns: benign mean, benign p5, adversarial mean, adversarial p5)");

    let path = results_dir().join("arena_trajectory.csv");
    if let Err(e) = std::fs::write(&path, trajectory_csv(&rows)) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {}", path.display());
}
