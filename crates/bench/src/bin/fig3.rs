//! Figure 3: Buffer-Based (BB) running on one adversarial trace — the
//! time series of (i) BB's bitrate selection vs. the offline optimum,
//! (ii) the client buffer, and (iii) the adversary's bandwidth.
//!
//! The paper's reading: the adversary parks BB's buffer inside its
//! 10–15 s switching band, forcing constant bitrate oscillation, while the
//! optimal strategy starts low and climbs smoothly.
//!
//! Run: `cargo run -p adv-bench --release --bin fig3`. Writes
//! `results/fig3.csv` with `series,time_s,value` rows. The adversary
//! training runs as a cached pipeline unit under `results/cache/`, so a
//! killed run resumes instead of retraining.

use abr::{optimal_qoe_dp, AbrPolicy, BufferBased, QoeParams, Video};
use adv_bench::pipeline::{Pipeline, UnitKey};
use adv_bench::{banner, results_dir, Scale};
use adversary::{
    generate_abr_traces_with, replay_abr_trace_detailed, train_abr_adversary, AbrAdversaryConfig,
    AbrAdversaryEnv, AdversaryTrainConfig,
};

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Figure 3 — BB on an adversarial trace ({} scale)", scale.tag()));
    let video = Video::cbr();
    let cfg = AbrAdversaryConfig::default();
    let mut pipe = Pipeline::new("fig3", scale);

    let train_cfg = AdversaryTrainConfig {
        total_steps: scale.adversary_steps(),
        ..AdversaryTrainConfig::default()
    };
    let key = UnitKey::of(
        &(train_cfg.total_steps, 99u64),
        "bb_adversary_trace",
        &(train_cfg.ppo.clone(), train_cfg.init_std),
    );
    let trace: Vec<f64> = Pipeline::require(
        pipe.unit("train BB adversary + deterministic trace", &key, || {
            eprintln!("[fig3] training adversary vs BB ({} steps)...", scale.adversary_steps());
            let mut env =
                AbrAdversaryEnv::new(BufferBased::pensieve_defaults(), video.clone(), cfg.clone());
            let (adv, reports) = train_abr_adversary(&mut env, &train_cfg);
            eprintln!(
                "[fig3] adversary reward: first {:.3} last {:.3}",
                reports.first().map(|r| r.mean_step_reward).unwrap_or(f64::NAN),
                reports.last().map(|r| r.mean_step_reward).unwrap_or(f64::NAN)
            );
            // the deterministic trace (paper: the most interpretable artifact)
            let mut ts =
                generate_abr_traces_with(&mut env, &adv.policy, adv.obs_norm.as_ref(), 1, true, 99);
            ts.pop().unwrap_or_else(|| panic!("trace generation returned no traces"))
        }),
        "fig3 adversary unit",
    );

    // replay BB and compute the offline optimum on the same bandwidths
    let mut bb = BufferBased::pensieve_defaults();
    let outcomes = replay_abr_trace_detailed(&trace, &mut bb, &video, &cfg);
    let qoe = QoeParams::default();
    let (opt_total, opt_schedule) = optimal_qoe_dp(&video, &qoe, &trace, cfg.latency_ms / 1000.0);
    let bb_total: f64 = outcomes.iter().map(|o| o.qoe).sum();

    println!(
        "\nBB total QoE {bb_total:.2} vs offline optimum {opt_total:.2} (gap {:.2} QoE ≈ {:.2}/chunk)",
        opt_total - bb_total,
        (opt_total - bb_total) / outcomes.len() as f64
    );
    println!(
        "\n{:>6} {:>14} {:>14} {:>11} {:>11}",
        "time_s", "bb_kbps", "opt_kbps", "buffer_s", "bw_mbps"
    );
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut t = 0.0;
    let mut in_band = 0usize;
    for (i, o) in outcomes.iter().enumerate() {
        let bb_kbps = video.bitrate_kbps(o.quality);
        let opt_kbps = video.bitrate_kbps(opt_schedule[i]);
        println!(
            "{t:>6.1} {bb_kbps:>14.0} {opt_kbps:>14.0} {:>11.2} {:>11.2}",
            o.buffer_after_s, trace[i]
        );
        rows.push(("bb_bitrate_kbps".into(), t, bb_kbps));
        rows.push(("opt_bitrate_kbps".into(), t, opt_kbps));
        rows.push(("buffer_s".into(), t, o.buffer_after_s));
        rows.push(("bandwidth_mbps".into(), t, trace[i]));
        if (bb.reservoir_s..=bb.reservoir_s + bb.cushion_s).contains(&o.buffer_after_s) {
            in_band += 1;
        }
        t += o.download_s + o.sleep_s;
    }
    let switches = outcomes.windows(2).filter(|w| w[0].quality != w[1].quality).count();
    println!(
        "\nBB switched bitrate {switches} times over {} chunks; buffer inside the 10-15 s switching band for {in_band} chunks",
        outcomes.len()
    );
    let name = bb.name().to_string();
    let path = results_dir().join("fig3.csv");
    if let Err(e) = traces::io::write_csv_series(&path, "series,time_s,value", &rows) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    pipe.finish();
    println!("wrote {} (target protocol: {name})", path.display());
}
