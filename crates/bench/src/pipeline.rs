//! Crash-resumable evaluation pipeline for the experiment binaries.
//!
//! Long bench runs (hours at `FULL=1`) die for mundane reasons — OOM
//! kills, preempted CI runners, injected faults. The pipeline splits a
//! run into **units** keyed by *what they compute* (trace-set hash ×
//! protocol × config — the workspace-wide evaluation cache key from the
//! roadmap) and persists every finished unit as a checksummed entry
//! under `results/cache/`, reusing the `ADVNET-CKPT` envelope and the
//! atomic tmp+fsync+rename discipline of training checkpoints
//! ([`rl::ckpt`]). A re-run after a crash replays cached units
//! byte-identically and computes only what is missing; a corrupt entry
//! is quarantined (renamed to `*.quarantined`) and recomputed — it is
//! never served and never panics the run.
//!
//! Every pipeline writes a completion manifest
//! (`results/cache/<name>_<scale>.manifest.json`) with per-unit status
//! and cache-hit / recompute / quarantine counts, so partial progress
//! is visible even when a run aborts between units.
//!
//! Fault points (see the `fault` crate):
//!
//! * `bench.unit` fires at every unit boundary *outside* the retry
//!   guard — `panic@bench.unit:2` kills the process at the second unit,
//!   which is how the kill+resume tests chop a run in half;
//! * `cache.write` targets the entry just persisted
//!   (`corrupt@cache.write:1` rots the first entry on disk);
//! * `cache.read` targets a cache lookup (`corrupt@cache.read:1` makes
//!   the first lookup behave as if the entry had rotted).
//!
//! Unit compute closures must be **restartable**: they run again from
//! scratch after a retry or on a fresh process, so they should build
//! their own environments/RNGs from the key's inputs rather than mutate
//! ambient state.

use crate::{results_dir, Scale};
use rl::ckpt::{fnv1a64, read_checkpoint_file, write_checkpoint_file};
use serde::{Deserialize, Serialize};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Identity of one unit of work: which traces, which protocol, which
/// configuration. Two units with equal keys must compute the same value
/// (everything else — worker counts, schedulers, restarts — is excluded
/// by construction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UnitKey {
    /// FNV-1a 64 over the serialized trace inputs.
    pub trace_hash: u64,
    /// Protocol (or stage) name; becomes part of the on-disk file name.
    pub protocol: String,
    /// FNV-1a 64 over the serialized evaluation config.
    pub config_hash: u64,
}

impl UnitKey {
    /// Hash any serializable value (stable across runs: serialization is
    /// deterministic and floats round-trip bit-exactly).
    pub fn hash_of<T: Serialize>(v: &T) -> u64 {
        let json = serde_json::to_string(v).expect("unit-key inputs serialize");
        fnv1a64(json.as_bytes())
    }

    /// The canonical constructor: `(traces, protocol, config)`.
    pub fn of<T: Serialize, C: Serialize>(traces: &T, protocol: &str, config: &C) -> UnitKey {
        UnitKey {
            trace_hash: UnitKey::hash_of(traces),
            protocol: protocol.to_string(),
            config_hash: UnitKey::hash_of(config),
        }
    }

    /// Canonical constructor for units keyed by a set of
    /// [`traces::Trace`]s: the trace hash is FNV-1a 64 over each trace's
    /// [`traces::Trace::content_hash`] (little-endian, in order). The key
    /// therefore sees exactly the network conditions — renaming a trace
    /// does not invalidate the cache; editing or reordering one does.
    /// Prefer this over [`UnitKey::of`] whenever the inputs are traces:
    /// it skips the full JSON serialization and shares one hash
    /// discipline with the arena's pool deduplication.
    pub fn of_trace_set<C: Serialize>(
        traces: &[traces::Trace],
        protocol: &str,
        config: &C,
    ) -> UnitKey {
        let mut bytes = Vec::with_capacity(traces.len() * 8);
        for t in traces {
            bytes.extend_from_slice(&t.content_hash().to_le_bytes());
        }
        UnitKey {
            trace_hash: fnv1a64(&bytes),
            protocol: protocol.to_string(),
            config_hash: UnitKey::hash_of(config),
        }
    }

    /// Filesystem-safe identifier; the cache entry lives at
    /// `results/cache/units/<id>.unit`.
    pub fn id(&self) -> String {
        let proto: String = self
            .protocol
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
            .collect();
        format!("{proto}-{:016x}-{:016x}", self.config_hash, self.trace_hash)
    }
}

/// On-disk cache entry: the unit's id plus its value as JSON text. The
/// value is double-encoded so the envelope stays a fixed, simple shape
/// and the payload round-trips byte-exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    key: String,
    value: String,
}

/// Per-unit outcome recorded in the manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnitRecord {
    /// [`UnitKey::id`] of the unit.
    pub id: String,
    /// Human-readable label ("replay mpc on pensieve_targeted").
    pub label: String,
    /// "cached", "computed", "recomputed" (after a quarantine), or
    /// "failed" (retries exhausted; the run carries on without it).
    pub status: String,
    /// Compute attempts (0 for a pure cache hit).
    pub attempts: usize,
    /// Failure or quarantine detail, empty otherwise.
    pub message: String,
}

/// Completion manifest for one pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    pub pipeline: String,
    pub scale: String,
    /// True iff no unit failed.
    pub complete: bool,
    pub cache_hits: usize,
    pub computed: usize,
    pub quarantined: usize,
    pub failed: usize,
    /// Malformed trace files skipped while loading inputs (from
    /// `traces::load_traces_dir`).
    pub skipped_traces: usize,
    pub units: Vec<UnitRecord>,
}

impl Manifest {
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Manifest> {
        let json = fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// A resumable evaluation pipeline: hand it units, get cached values
/// back where possible, and a [`Manifest`] at the end.
pub struct Pipeline {
    name: String,
    scale_tag: String,
    units_dir: PathBuf,
    manifest_path: PathBuf,
    backoff: fault::Backoff,
    cache_hits: usize,
    computed: usize,
    quarantined: usize,
    skipped_traces: usize,
    units: Vec<UnitRecord>,
}

impl Pipeline {
    /// Standard constructor: cache under `results/cache/`, one immediate
    /// retry per unit. Also (re)arms the fault plan from the environment
    /// so `ADVNET_FAULT_PLAN` works for pure-eval binaries; a malformed
    /// plan fails loudly here rather than silently skipping injections.
    pub fn new(name: &str, scale: Scale) -> Pipeline {
        match fault::reload_from_env() {
            Ok(Some(plan)) => eprintln!("[{name}] fault plan armed: {plan}"),
            Ok(None) => {}
            Err(e) => panic!("invalid {}: {e}", fault::PLAN_ENV),
        }
        Pipeline::new_at(results_dir().join("cache"), name, scale.tag())
    }

    /// Test/embedding constructor with an explicit cache directory (no
    /// env access, no fault-plan reload).
    pub fn new_at(cache_dir: PathBuf, name: &str, scale_tag: &str) -> Pipeline {
        let units_dir = cache_dir.join("units");
        fs::create_dir_all(&units_dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", units_dir.display()));
        let manifest_path = cache_dir.join(format!("{name}_{scale_tag}.manifest.json"));
        Pipeline {
            name: name.to_string(),
            scale_tag: scale_tag.to_string(),
            units_dir,
            manifest_path,
            backoff: fault::Backoff::none(1),
            cache_hits: 0,
            computed: 0,
            quarantined: 0,
            skipped_traces: 0,
            units: Vec::new(),
        }
    }

    /// Replace the per-unit retry policy (default: one immediate retry).
    pub fn with_backoff(mut self, backoff: fault::Backoff) -> Pipeline {
        self.backoff = backoff;
        self
    }

    /// Record input-trace files skipped as malformed (shows up in the
    /// manifest so silent corpus shrinkage is visible).
    pub fn note_skipped_traces(&mut self, n: usize) {
        self.skipped_traces += n;
    }

    /// Where [`finish`](Self::finish) writes the manifest.
    pub fn manifest_path(&self) -> &Path {
        &self.manifest_path
    }

    /// Run (or replay) one unit. Returns `None` only when `compute`
    /// panicked on every allowed attempt; the failure is recorded in the
    /// manifest and the pipeline carries on, so a run yields partial
    /// results instead of nothing.
    pub fn unit<T, F>(&mut self, label: &str, key: &UnitKey, mut compute: F) -> Option<T>
    where
        T: Serialize + Deserialize,
        F: FnMut() -> T,
    {
        let id = key.id();
        // Outside the retry guard on purpose: `panic@bench.unit:<n>`
        // must kill the run at a unit boundary, not be retried away.
        let _ = fault::check("bench.unit");
        let path = self.units_dir.join(format!("{id}.unit"));

        let mut was_quarantined = false;
        if path.exists() {
            match self.read_cached::<T>(&path, &id) {
                Ok(v) => {
                    self.cache_hits += 1;
                    telemetry::counter_add("bench.cache.hit", 1);
                    self.push_record(&id, label, "cached", 0, String::new());
                    eprintln!("[{}] unit {id} ({label}): cache hit", self.name);
                    return Some(v);
                }
                Err(why) => {
                    self.quarantine(&path, &why);
                    telemetry::counter_add("bench.cache.quarantine", 1);
                    was_quarantined = true;
                }
            }
        }

        telemetry::counter_add("bench.cache.miss", 1);
        let _span = telemetry::span!("bench.unit");
        let t_unit = telemetry::enabled().then(std::time::Instant::now);
        let mut attempts = 0usize;
        let value = loop {
            attempts += 1;
            match catch_unwind(AssertUnwindSafe(&mut compute)) {
                Ok(v) => break v,
                Err(payload) => {
                    let msg = panic_msg(payload.as_ref());
                    if attempts > self.backoff.retries {
                        eprintln!(
                            "[{}] error: unit {id} ({label}) failed after {attempts} attempt(s): {msg}",
                            self.name
                        );
                        self.push_record(&id, label, "failed", attempts, msg);
                        return None;
                    }
                    telemetry::counter_add("bench.unit.retry", 1);
                    eprintln!(
                        "[{}] warning: unit {id} ({label}) attempt {attempts} panicked: {msg}; retrying",
                        self.name
                    );
                    self.backoff.pause(attempts);
                }
            }
        };

        if let Some(t0) = t_unit {
            telemetry::observe("bench.unit.wall_s", t0.elapsed().as_secs_f64());
        }
        self.write_cached(&path, &id, &value);
        self.computed += 1;
        let status = if was_quarantined { "recomputed" } else { "computed" };
        self.push_record(&id, label, status, attempts, String::new());
        Some(value)
    }

    /// Early-exit helper for binaries: a `None` unit result becomes a
    /// clean non-zero exit pointing at the partial results, instead of
    /// an `unwrap` panic.
    pub fn require<T>(value: Option<T>, what: &str) -> T {
        value.unwrap_or_else(|| {
            eprintln!(
                "fatal: {what} failed after retries; completed units stay cached under results/cache/ — rerun to resume"
            );
            std::process::exit(2);
        })
    }

    /// Write the manifest (atomically) and return it.
    pub fn finish(self) -> Manifest {
        let failed = self.units.iter().filter(|u| u.status == "failed").count();
        let manifest = Manifest {
            pipeline: self.name.clone(),
            scale: self.scale_tag.clone(),
            complete: failed == 0,
            cache_hits: self.cache_hits,
            computed: self.computed,
            quarantined: self.quarantined,
            failed,
            skipped_traces: self.skipped_traces,
            units: self.units,
        };
        let json = serde_json::to_string_pretty(&manifest).expect("manifest serializes");
        let tmp = self.manifest_path.with_extension("json.tmp");
        let write = fs::write(&tmp, &json).and_then(|()| fs::rename(&tmp, &self.manifest_path));
        if let Err(e) = write {
            eprintln!(
                "[{}] warning: could not write manifest {}: {e}",
                self.name,
                self.manifest_path.display()
            );
        }
        eprintln!(
            "[{}] {} unit(s): {} cached, {} computed, {} quarantined, {} failed — manifest {}",
            self.name,
            manifest.units.len(),
            manifest.cache_hits,
            manifest.computed,
            manifest.quarantined,
            manifest.failed,
            self.manifest_path.display()
        );
        // with ADVNET_TELEMETRY=on, also flush the process-wide metric
        // registry as a checksummed run manifest under results/runs/
        let config = [
            ("pipeline".to_string(), manifest.pipeline.clone()),
            ("scale".to_string(), manifest.scale.clone()),
        ];
        match telemetry::write_manifest_default(None, &config) {
            Ok(Some(path)) => {
                eprintln!("[{}] telemetry run manifest {}", manifest.pipeline, path.display());
            }
            Ok(None) => {}
            Err(e) => eprintln!(
                "[{}] warning: could not write telemetry run manifest: {e}",
                manifest.pipeline
            ),
        }
        manifest
    }

    fn push_record(
        &mut self,
        id: &str,
        label: &str,
        status: &str,
        attempts: usize,
        message: String,
    ) {
        self.units.push(UnitRecord {
            id: id.to_string(),
            label: label.to_string(),
            status: status.to_string(),
            attempts,
            message,
        });
    }

    fn read_cached<T: Deserialize>(&self, path: &Path, id: &str) -> Result<T, String> {
        match fault::check("cache.read") {
            Some(fault::Injection::Corrupt) => {
                return Err("fault-plan: injected cache read corruption".to_string())
            }
            Some(fault::Injection::Stall(d)) => std::thread::sleep(d),
            _ => {}
        }
        let body = read_checkpoint_file(path).map_err(|e| e.to_string())?;
        let entry: Entry =
            serde_json::from_str(&body).map_err(|e| format!("invalid cache entry: {e}"))?;
        if entry.key != id {
            return Err(format!("cache entry key mismatch: expected {id}, found {}", entry.key));
        }
        serde_json::from_str(&entry.value).map_err(|e| format!("invalid cached value: {e}"))
    }

    /// Persist a computed value. A failure here only costs the *cache*
    /// (the value is still returned to the caller), so it warns instead
    /// of erroring.
    fn write_cached<T: Serialize>(&mut self, path: &Path, id: &str, value: &T) {
        let entry = Entry {
            key: id.to_string(),
            value: match serde_json::to_string(value) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("[{}] warning: unit {id} value does not serialize: {e}", self.name);
                    return;
                }
            },
        };
        let body = serde_json::to_string(&entry).expect("cache entry serializes");
        // `corrupt@cache.write:<n>` rots the entry after a *successful*
        // write — the checksum must catch it on the next read.
        let injection = fault::check("cache.write");
        if let Err(e) = write_checkpoint_file(path, &body) {
            eprintln!("[{}] warning: could not cache unit {id}: {e}", self.name);
            return;
        }
        if injection == Some(fault::Injection::Corrupt) {
            if let Err(e) = fault::corrupt_file(path) {
                eprintln!("[{}] warning: corrupt injection at {id} failed: {e}", self.name);
            } else {
                eprintln!("[{}] fault-plan: corrupted cache entry {id} on disk", self.name);
            }
        }
    }

    fn quarantine(&mut self, path: &Path, why: &str) {
        self.quarantined += 1;
        let qpath = path.with_extension("unit.quarantined");
        if fs::rename(path, &qpath).is_err() {
            fs::remove_file(path).ok();
        }
        eprintln!(
            "[{}] warning: quarantined corrupt cache entry {} ({why}); recomputing",
            self.name,
            path.display()
        );
    }
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

pub mod smoke {
    //! A minutes-scale end-to-end exercise of the pipeline, shared by
    //! the `pipeline_smoke` binary, the workspace resume tests, and the
    //! CI fault matrix: a tiny vectorized adversary training (so worker
    //! heartbeats and the watchdog have a real rollout path to guard),
    //! trace generation, and per-protocol replays — all as cached units,
    //! ending in a deterministic CSV. Same inputs ⇒ byte-identical CSV,
    //! interrupted or not.

    use super::{Manifest, Pipeline, UnitKey};
    use crate::{results_dir, Scale};
    use abr::{AbrPolicy, BufferBased, Mpc, RateBased, Video};
    use adversary::{
        generate_abr_traces_with, random_abr_traces, replay_abr_trace, try_train_abr_adversary,
        AbrAdversaryConfig, AbrAdversaryEnv, AbrTrace, AdversaryTrainConfig,
    };
    use std::path::PathBuf;

    /// What a smoke run produced.
    pub struct Outcome {
        pub csv: PathBuf,
        pub manifest: Manifest,
    }

    /// Run the smoke pipeline: one training+generation unit plus one
    /// replay unit per protocol (bb, rate, mpc) over `n_random` random
    /// traces and 2 adversarial ones. Writes
    /// `results/pipeline_smoke.csv` with one `(protocol, trace, qoe)`
    /// row per replay.
    pub fn run(n_random: usize, seed: u64) -> Result<Outcome, String> {
        let pipe = Pipeline::new("pipeline_smoke", Scale::Reduced);
        let csv = results_dir().join("pipeline_smoke.csv");
        run_at(pipe, csv, n_random, seed)
    }

    /// [`run`] with an explicit pipeline and CSV path (for tests that
    /// need isolated cache directories).
    pub fn run_at(
        mut pipe: Pipeline,
        csv: PathBuf,
        n_random: usize,
        seed: u64,
    ) -> Result<Outcome, String> {
        let video = Video::cbr();
        let adv_cfg = AbrAdversaryConfig::default();

        // Two 96-step iterations over two vectorized envs: enough to run
        // the heartbeat/watchdog rollout path without taking minutes.
        let train = AdversaryTrainConfig {
            total_steps: 2 * 96,
            ppo: rl::PpoConfig {
                n_steps: 96,
                minibatch_size: 48,
                epochs: 2,
                n_envs: 2,
                seed: 11,
                ..rl::PpoConfig::default()
            },
            init_std: 0.6,
            checkpoint_path: None,
            checkpoint_every: 1,
        };
        let train_key =
            UnitKey::of(&(n_random, seed, train.total_steps), "smoke-adv-bb", &"train+gen v1");
        let adv_traces: Vec<AbrTrace> = Pipeline::require(
            pipe.unit("adversary train + trace gen", &train_key, || {
                let mut env = AbrAdversaryEnv::new(
                    BufferBased::pensieve_defaults(),
                    video.clone(),
                    adv_cfg.clone(),
                );
                let (adv, _) = try_train_abr_adversary(&mut env, &train)
                    .unwrap_or_else(|e| panic!("smoke adversary training failed: {e}"));
                generate_abr_traces_with(
                    &mut env,
                    &adv.policy,
                    adv.obs_norm.as_ref(),
                    2,
                    false,
                    seed,
                )
            }),
            "smoke adversary training unit",
        );

        let mut all: Vec<AbrTrace> = adv_traces;
        all.extend(random_abr_traces(n_random, video.n_chunks(), seed));

        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for pname in ["bb", "rate", "mpc"] {
            let key = UnitKey::of(&all, pname, &"replay v1");
            let qoe: Vec<f64> = Pipeline::require(
                pipe.unit(&format!("replay {pname}"), &key, || {
                    all.iter()
                        .map(|t| {
                            let mut proto: Box<dyn AbrPolicy> = match pname {
                                "bb" => Box::new(BufferBased::pensieve_defaults()),
                                "rate" => Box::new(RateBased::default()),
                                _ => Box::new(Mpc::default()),
                            };
                            replay_abr_trace(t, proto.as_mut(), &video, &adv_cfg)
                        })
                        .collect()
                }),
                "smoke replay unit",
            );
            for (i, q) in qoe.iter().enumerate() {
                rows.push((pname.to_string(), i as f64, *q));
            }
        }

        traces::io::write_csv_series(&csv, "protocol,trace,qoe", &rows)
            .map_err(|e| e.to_string())?;
        let manifest = pipe.finish();
        Ok(Outcome { csv, manifest })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("advnet-pipeline-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn unit_id_is_stable_and_filesystem_safe() {
        let key = UnitKey::of(&vec![vec![1.0f64, 2.0]], "mpc/targeted v1", &(48usize, 80.0f64));
        let id = key.id();
        assert_eq!(id, key.id(), "id is a pure function of the key");
        assert!(id.starts_with("mpc-targeted-v1-"), "{id}");
        assert!(id.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'), "{id}");
        // order of traces matters (it changes what the unit computes)…
        let swapped = UnitKey::of(&vec![vec![2.0f64, 1.0]], "mpc/targeted v1", &(48usize, 80.0f64));
        assert_ne!(swapped.id(), id);
        // …but the protocol string round-trips into distinct ids
        let other = UnitKey::of(&vec![vec![1.0f64, 2.0]], "bb", &(48usize, 80.0f64));
        assert_ne!(other.id(), id);
    }

    #[test]
    fn trace_set_keys_see_content_not_names() {
        let mk = |name: &str, bw: f64| {
            traces::Trace::new(name, vec![traces::Segment::bw(4.0, bw, 80.0)])
        };
        let a = UnitKey::of_trace_set(&[mk("x", 1.0), mk("y", 2.0)], "eval", &"v1");
        // renaming traces must hit the same cache entry…
        let renamed = UnitKey::of_trace_set(&[mk("p", 1.0), mk("q", 2.0)], "eval", &"v1");
        assert_eq!(a, renamed);
        // …while changing conditions, order, or config must miss
        let edited = UnitKey::of_trace_set(&[mk("x", 1.0), mk("y", 2.5)], "eval", &"v1");
        assert_ne!(a, edited);
        let reordered = UnitKey::of_trace_set(&[mk("y", 2.0), mk("x", 1.0)], "eval", &"v1");
        assert_ne!(a, reordered);
        let reconfigured = UnitKey::of_trace_set(&[mk("x", 1.0), mk("y", 2.0)], "eval", &"v2");
        assert_ne!(a, reconfigured);
    }

    #[test]
    fn second_run_hits_the_cache_with_identical_value() {
        let cache = tmp_cache("hit");
        let key = UnitKey::of(&vec![1.0f64, 2.0], "proto", &"cfg");
        let mut computes = 0;
        let mut run = |cache: PathBuf| {
            let mut pipe = Pipeline::new_at(cache, "t", "reduced");
            let v: Vec<f64> = pipe
                .unit("unit under test", &key, || {
                    computes += 1;
                    // an awkward mantissa + negative zero: bit-exactness
                    // or bust
                    vec![1.5, f64::from_bits(0x3FF5_5555_5555_5555), -0.0]
                })
                .unwrap();
            (v, pipe.finish())
        };
        let (v1, m1) = run(cache.clone());
        let (v2, m2) = run(cache.clone());
        assert_eq!(computes, 1, "second run must not recompute");
        assert_eq!(
            v1.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            v2.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            "cached value is bit-identical"
        );
        assert_eq!((m1.computed, m1.cache_hits), (1, 0));
        assert_eq!((m2.computed, m2.cache_hits), (0, 1));
        assert!(m1.complete && m2.complete);
        std::fs::remove_dir_all(&cache).ok();
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_recomputed() {
        let cache = tmp_cache("quarantine");
        let key = UnitKey::of(&[9.0f64], "p", &"c");
        let path = cache.join("units").join(format!("{}.unit", key.id()));

        let mut pipe = Pipeline::new_at(cache.clone(), "t", "reduced");
        let _ = pipe.unit("first", &key, || vec![3.25f64]).unwrap();
        pipe.finish();
        fault::corrupt_file(&path).unwrap();

        let mut pipe = Pipeline::new_at(cache.clone(), "t", "reduced");
        let v: Vec<f64> = pipe.unit("second", &key, || vec![3.25f64]).unwrap();
        let m = pipe.finish();
        assert_eq!(v, vec![3.25]);
        assert_eq!(m.quarantined, 1);
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.computed, 1);
        assert_eq!(m.units[0].status, "recomputed");
        assert!(path.with_extension("unit.quarantined").exists(), "original moved aside");
        // the recomputed entry is valid again
        let mut pipe = Pipeline::new_at(cache.clone(), "t", "reduced");
        let _: Vec<f64> = pipe.unit("third", &key, || panic!("must not recompute")).unwrap();
        assert_eq!(pipe.finish().cache_hits, 1);
        std::fs::remove_dir_all(&cache).ok();
    }

    #[test]
    fn key_mismatch_is_treated_as_corruption() {
        let cache = tmp_cache("mismatch");
        let a = UnitKey::of(&[1.0f64], "p", &"c");
        let b = UnitKey::of(&[2.0f64], "p", &"c");
        let mut pipe = Pipeline::new_at(cache.clone(), "t", "reduced");
        let _ = pipe.unit("a", &a, || 1.0f64).unwrap();
        pipe.finish();
        // splice a's entry into b's slot: checksum passes, key does not
        let units = cache.join("units");
        std::fs::copy(
            units.join(format!("{}.unit", a.id())),
            units.join(format!("{}.unit", b.id())),
        )
        .unwrap();
        let mut pipe = Pipeline::new_at(cache.clone(), "t", "reduced");
        let v: f64 = pipe.unit("b", &b, || 2.0f64).unwrap();
        let m = pipe.finish();
        assert_eq!(v, 2.0, "never serves another unit's value");
        assert_eq!(m.quarantined, 1);
        std::fs::remove_dir_all(&cache).ok();
    }

    #[test]
    fn exhausted_retries_yield_partial_results_and_a_manifest() {
        let cache = tmp_cache("fail");
        let mut pipe =
            Pipeline::new_at(cache.clone(), "t", "reduced").with_backoff(fault::Backoff::none(1));
        let good = pipe.unit("good", &UnitKey::of(&[1.0f64], "ok", &"c"), || 7usize);
        let mut tries = 0;
        let bad: Option<usize> = pipe.unit("bad", &UnitKey::of(&[2.0f64], "boom", &"c"), || {
            tries += 1;
            panic!("always fails");
        });
        assert_eq!(good, Some(7));
        assert_eq!(bad, None);
        assert_eq!(tries, 2, "initial attempt + one retry");
        let m = pipe.finish();
        assert!(!m.complete);
        assert_eq!(m.failed, 1);
        assert_eq!(m.units[1].status, "failed");
        assert!(m.units[1].message.contains("always fails"));
        let back = Manifest::load(cache.join("t_reduced.manifest.json")).unwrap();
        assert_eq!(back.failed, 1);
        assert_eq!(back.units.len(), 2);
        std::fs::remove_dir_all(&cache).ok();
    }
}
