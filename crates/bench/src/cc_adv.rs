//! The shared CC adversary behind Figs. 5 and 6: trained once against BBR,
//! cached under `results/` (legacy JSON) and as a checksummed pipeline
//! unit under `results/cache/`, so both figures — and a run killed
//! mid-training — share one adversary.

use crate::pipeline::{Pipeline, UnitKey};
use crate::saved::SavedPolicy;
use crate::{results_dir, Scale};
use adversary::{try_train_cc_adversary, AdversaryTrainConfig, CcAdversaryConfig, CcAdversaryEnv};
use cc::Bbr;

/// A fresh BBR-vs-adversary environment with the paper's defaults
/// (decisions every 30 ms).
pub fn bbr_env() -> CcAdversaryEnv {
    CcAdversaryEnv::new(Box::new(|| Box::new(Bbr::new())), CcAdversaryConfig::default())
}

/// The training environment: identical except decisions are held for ten
/// 30 ms intervals. BBR's BtlBw max-filter only decays after ~10 poisoned
/// rounds, so per-interval iid exploration noise never experiences the
/// payoff of an attack; holding actions for 300 ms makes the valley
/// crossable (see EXPERIMENTS.md, Fig. 5 notes). Recorded traces still
/// carry one entry per 30 ms interval.
pub fn bbr_train_env() -> CcAdversaryEnv {
    CcAdversaryEnv::new(
        Box::new(|| Box::new(Bbr::new())),
        CcAdversaryConfig {
            episode_steps: 100, // 100 × 300 ms = the paper's 30 s episode
            action_repeat: 10,
            ..CcAdversaryConfig::default()
        },
    )
}

/// Train (or load from cache) the CC adversary against BBR, standalone
/// (owns a throwaway pipeline — figure binaries with their own pipeline
/// use [`cc_adversary_in`] so the unit shows up in their manifest).
pub fn cc_adversary(scale: Scale) -> SavedPolicy {
    let mut pipe = Pipeline::new("cc_adv", scale);
    let saved = cc_adversary_in(&mut pipe, scale);
    pipe.finish();
    saved
}

/// Train (or load from cache) the CC adversary against BBR, as a unit of
/// the caller's pipeline. Figs. 5 and 6 both call this with the same key,
/// so whichever runs first trains and the other replays the cache.
pub fn cc_adversary_in(pipe: &mut Pipeline, scale: Scale) -> SavedPolicy {
    let path = results_dir().join(format!("cc_adversary_{}.json", scale.tag()));
    // Hyperparameters selected by the sweep recorded in `cc_tune` (see
    // EXPERIMENTS.md): wide initial exploration noise plus 300 ms action
    // persistence is what lets PPO discover the probe attack; this
    // configuration lands the adversary's achieved utilization in the
    // paper's 45-65% band.
    let ckpt_path = results_dir().join(format!("cc_adversary_{}.ckpt", scale.tag()));
    let cfg = AdversaryTrainConfig {
        total_steps: scale.adversary_steps().clamp(300_000, 600_000),
        ppo: rl::PpoConfig {
            n_steps: 6000,
            minibatch_size: 250,
            epochs: 8,
            lr: 3e-4,
            // the payoff of a successful probe attack is spread over many
            // intervals; a long credit horizon is needed
            gamma: 0.99,
            lambda: 0.97,
            ent_coef: 0.0005,
            seed: 23,
            ..rl::PpoConfig::default()
        },
        init_std: 1.0,
        checkpoint_path: Some(ckpt_path.clone()),
        checkpoint_every: 5,
    };
    let key = UnitKey::of(
        &(cfg.total_steps, 23u64),
        "cc_adversary_bbr",
        &(cfg.ppo.clone(), cfg.init_std),
    );
    Pipeline::require(
        pipe.unit("train CC adversary vs BBR", &key, || {
            // legacy pre-pipeline cache; still honored and still written,
            // since external tooling may reference the plain JSON path
            if let Ok(saved) = SavedPolicy::load(&path) {
                eprintln!("[cc_adv] loaded cached adversary {}", path.display());
                return saved;
            }
            eprintln!(
                "[cc_adv] training CC adversary vs BBR ({} steps)...",
                scale.adversary_steps()
            );
            // This is the longest single training run in the bench suite,
            // so it is doubly crash-safe: a training checkpoint lands next
            // to the cache every 5 iterations and a re-run of this unit
            // resumes from it bit-identically (removed once the caches
            // exist).
            let mut env = bbr_train_env();
            let (ppo, reports) = try_train_cc_adversary(&mut env, &cfg)
                .unwrap_or_else(|e| panic!("[cc_adv] adversary training failed: {e}"));
            eprintln!(
                "[cc_adv] adversary reward: first {:.3} last {:.3}",
                reports.first().map(|r| r.mean_step_reward).unwrap_or(f64::NAN),
                reports.last().map(|r| r.mean_step_reward).unwrap_or(f64::NAN)
            );
            let saved = SavedPolicy::from_ppo(
                &ppo,
                format!("CC adversary vs BBR, {} steps, seed 23", scale.adversary_steps()),
            );
            saved.save(&path).unwrap_or_else(|e| {
                panic!("[cc_adv] cannot cache adversary to {}: {e}", path.display())
            });
            std::fs::remove_file(&ckpt_path).ok();
            saved
        }),
        "CC adversary training",
    )
}
