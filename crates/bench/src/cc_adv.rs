//! The shared CC adversary behind Figs. 5 and 6: trained once against BBR,
//! cached under `results/`.

use crate::saved::SavedPolicy;
use crate::{results_dir, Scale};
use adversary::{try_train_cc_adversary, AdversaryTrainConfig, CcAdversaryConfig, CcAdversaryEnv};
use cc::Bbr;

/// A fresh BBR-vs-adversary environment with the paper's defaults
/// (decisions every 30 ms).
pub fn bbr_env() -> CcAdversaryEnv {
    CcAdversaryEnv::new(Box::new(|| Box::new(Bbr::new())), CcAdversaryConfig::default())
}

/// The training environment: identical except decisions are held for ten
/// 30 ms intervals. BBR's BtlBw max-filter only decays after ~10 poisoned
/// rounds, so per-interval iid exploration noise never experiences the
/// payoff of an attack; holding actions for 300 ms makes the valley
/// crossable (see EXPERIMENTS.md, Fig. 5 notes). Recorded traces still
/// carry one entry per 30 ms interval.
pub fn bbr_train_env() -> CcAdversaryEnv {
    CcAdversaryEnv::new(
        Box::new(|| Box::new(Bbr::new())),
        CcAdversaryConfig {
            episode_steps: 100, // 100 × 300 ms = the paper's 30 s episode
            action_repeat: 10,
            ..CcAdversaryConfig::default()
        },
    )
}

/// Train (or load from cache) the CC adversary against BBR.
pub fn cc_adversary(scale: Scale) -> SavedPolicy {
    let path = results_dir().join(format!("cc_adversary_{}.json", scale.tag()));
    if let Ok(saved) = SavedPolicy::load(&path) {
        eprintln!("[cc_adv] loaded cached adversary {}", path.display());
        return saved;
    }
    eprintln!("[cc_adv] training CC adversary vs BBR ({} steps)...", scale.adversary_steps());
    let mut env = bbr_train_env();
    // Hyperparameters selected by the sweep recorded in `cc_tune` (see
    // EXPERIMENTS.md): wide initial exploration noise plus 300 ms action
    // persistence is what lets PPO discover the probe attack; this
    // configuration lands the adversary's achieved utilization in the
    // paper's 45-65% band.
    // This is the longest single training run in the bench suite, so it is
    // crash-safe: a checkpoint lands next to the cache every 5 iterations
    // and a re-run resumes from it (and removes it once the cache exists).
    let ckpt_path = results_dir().join(format!("cc_adversary_{}.ckpt", scale.tag()));
    let cfg = AdversaryTrainConfig {
        total_steps: scale.adversary_steps().clamp(300_000, 600_000),
        ppo: rl::PpoConfig {
            n_steps: 6000,
            minibatch_size: 250,
            epochs: 8,
            lr: 3e-4,
            // the payoff of a successful probe attack is spread over many
            // intervals; a long credit horizon is needed
            gamma: 0.99,
            lambda: 0.97,
            ent_coef: 0.0005,
            seed: 23,
            ..rl::PpoConfig::default()
        },
        init_std: 1.0,
        checkpoint_path: Some(ckpt_path.clone()),
        checkpoint_every: 5,
    };
    let (ppo, reports) = try_train_cc_adversary(&mut env, &cfg)
        .unwrap_or_else(|e| panic!("[cc_adv] adversary training failed: {e}"));
    eprintln!(
        "[cc_adv] adversary reward: first {:.3} last {:.3}",
        reports.first().map(|r| r.mean_step_reward).unwrap_or(f64::NAN),
        reports.last().map(|r| r.mean_step_reward).unwrap_or(f64::NAN)
    );
    let saved = SavedPolicy::from_ppo(
        &ppo,
        format!("CC adversary vs BBR, {} steps, seed 17", scale.adversary_steps()),
    );
    saved
        .save(&path)
        .unwrap_or_else(|e| panic!("[cc_adv] cannot cache adversary to {}: {e}", path.display()));
    std::fs::remove_file(&ckpt_path).ok();
    saved
}
