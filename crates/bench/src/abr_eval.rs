//! The shared ABR adversarial evaluation behind Figs. 1 and 2.
//!
//! Pipeline (paper §3.1):
//! 1. train Pensieve (the paper uses the authors' pre-trained model; we
//!    train one with our PPO on random traces spanning the adversary's
//!    action space),
//! 2. train one adversary against MPC and one against Pensieve,
//! 3. produce `n` traces from each adversary plus `n` random traces,
//! 4. replay Pensieve, MPC and BB on all three trace sets.
//!
//! The result is cached as JSON under `results/` because two figures share
//! it and the full-scale run is expensive. Internally the run is split
//! into [`crate::pipeline`] units — Pensieve training, each adversary's
//! train+generate stage, and one replay unit per (trace set × protocol)
//! — so a killed run resumes from the per-unit cache under
//! `results/cache/` instead of starting over, and two figures executed
//! back to back share every unit.

use crate::pipeline::{Pipeline, UnitKey};
use crate::{results_dir, Scale};
use abr::{AbrPolicy, BufferBased, Mpc, Pensieve, QoeParams, Video};
use adversary::{
    generate_abr_traces_with, random_abr_traces, replay_abr_trace, try_train_abr_adversary,
    AbrAdversaryConfig, AbrAdversaryEnv, AbrTrace, AdversaryTrainConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Evaluation of one trace set: per-protocol per-trace mean QoE.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSetEval {
    /// "mpc_targeted", "pensieve_targeted", or "random".
    pub name: String,
    /// The traces themselves (bandwidth per chunk).
    pub traces: Vec<AbrTrace>,
    /// protocol name → per-trace mean QoE (same order as `traces`).
    pub qoe: BTreeMap<String, Vec<f64>>,
}

/// Everything Figs. 1 and 2 need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AbrEvalData {
    pub scale: String,
    pub sets: Vec<TraceSetEval>,
}

impl AbrEvalData {
    pub fn set(&self, name: &str) -> &TraceSetEval {
        self.sets.iter().find(|s| s.name == name).unwrap_or_else(|| {
            panic!(
                "no trace set named {name:?} (have: {:?})",
                self.sets.iter().map(|s| &s.name).collect::<Vec<_>>()
            )
        })
    }
}

fn cache_path(scale: Scale) -> PathBuf {
    results_dir().join(format!("abr_eval_{}.json", scale.tag()))
}

/// Load the cached evaluation or run the whole pipeline.
pub fn run_or_load(scale: Scale) -> AbrEvalData {
    let path = cache_path(scale);
    if let Ok(json) = std::fs::read_to_string(&path) {
        if let Ok(data) = serde_json::from_str::<AbrEvalData>(&json) {
            eprintln!("[abr_eval] loaded cache {}", path.display());
            return data;
        }
    }
    let data = run(scale);
    if let Ok(json) = serde_json::to_string(&data) {
        let _ = std::fs::write(&path, json);
        eprintln!("[abr_eval] cached to {}", path.display());
    }
    data
}

/// Train the protocols + adversaries and evaluate all trace sets, as a
/// crash-resumable pipeline (see the module docs).
pub fn run(scale: Scale) -> AbrEvalData {
    let mut pipe = Pipeline::new("abr_eval", scale);
    let data = run_units(scale, &mut pipe);
    pipe.finish();
    data
}

/// The unit breakdown of [`run`], on a caller-provided pipeline (so
/// tests can aim the cache at a scratch directory).
pub fn run_units(scale: Scale, pipe: &mut Pipeline) -> AbrEvalData {
    let video = Video::cbr();
    let qoe = QoeParams::default();
    let adv_cfg = AbrAdversaryConfig::default();
    let n = scale.n_traces();

    // ---- 1. a competent Pensieve over the adversary's bandwidth regime.
    // The corpus is mostly random traces spanning the adversary's action
    // space, plus a handful of sustained-low-bandwidth and regime-switching
    // traces so the policy has no catastrophic out-of-distribution holes
    // for the adversary to drive it into. Built inside the unit closure:
    // units must be restartable from their key alone.
    let ppo_cfg = rl::PpoConfig {
        n_steps: 1920,
        minibatch_size: 96,
        epochs: 5,
        lr: 3e-4,
        ent_coef: 0.01,
        seed: 41,
        ..rl::PpoConfig::default()
    };
    let pen_key =
        UnitKey::of(&("pensieve-corpus-v1", scale.pensieve_steps()), "pensieve_train", &ppo_cfg);
    let pensieve: Pensieve = Pipeline::require(
        pipe.unit("train pensieve", &pen_key, || {
            eprintln!("[abr_eval] training pensieve ({} steps)...", scale.pensieve_steps());
            let mut corpus: Vec<traces::Trace> = (0..80)
                .map(|i| traces::random_abr_trace(1000 + i, 80, 4.0, adv_cfg.latency_ms))
                .collect();
            for i in 0..10u64 {
                let bw = 0.8 + 0.15 * i as f64;
                corpus.push(traces::Trace::new(
                    format!("const-low-{i}"),
                    vec![traces::Segment::bw(320.0, bw, adv_cfg.latency_ms)],
                ));
            }
            let gen_cfg =
                traces::GenConfig { latency_ms: adv_cfg.latency_ms, ..Default::default() };
            for i in 0..10u64 {
                corpus.push(traces::hsdpa_like(3000 + i, &gen_cfg));
            }
            let (pensieve, _, _) = abr::env::train_pensieve(
                corpus,
                video.clone(),
                qoe.clone(),
                scale.pensieve_steps(),
                ppo_cfg.clone(),
            );
            pensieve
        }),
        "pensieve training",
    );

    // ---- 2+3. adversaries: train + generate traces, one unit each. The
    // inner checkpoint file still makes a *mid-training* kill resumable
    // (the restarted unit auto-resumes from it bit-identically); it is
    // removed once the unit's cached value takes over.
    let steps = scale.adversary_steps();
    let train_cfg = |tag: &str| AdversaryTrainConfig {
        total_steps: steps,
        checkpoint_path: Some(results_dir().join(format!("abr_adv_{tag}_{}.ckpt", scale.tag()))),
        checkpoint_every: 5,
        ..AdversaryTrainConfig::default()
    };
    let base = AdversaryTrainConfig::default();
    let train_sig = (steps, base.ppo.clone(), base.init_std);

    let mpc_key = UnitKey::of(&(n as u64, 7001u64), "mpc_adversary", &train_sig);
    let mpc_traces: Vec<AbrTrace> = Pipeline::require(
        pipe.unit("train MPC adversary + generate traces", &mpc_key, || {
            eprintln!("[abr_eval] training adversary vs MPC ({steps} steps)...");
            let mut env = AbrAdversaryEnv::new(Mpc::default(), video.clone(), adv_cfg.clone());
            let cfg = train_cfg("mpc");
            let (adv, _) = try_train_abr_adversary(&mut env, &cfg)
                .unwrap_or_else(|e| panic!("[abr_eval] MPC adversary training failed: {e}"));
            if let Some(p) = cfg.checkpoint_path {
                std::fs::remove_file(p).ok();
            }
            generate_abr_traces_with(&mut env, &adv.policy, adv.obs_norm.as_ref(), n, false, 7001)
        }),
        "MPC adversary unit",
    );

    // the Pensieve-targeted traces depend on *which* Pensieve was trained
    let pen_sig = (steps, base.ppo.clone(), base.init_std, UnitKey::hash_of(&pensieve));
    let pen_adv_key = UnitKey::of(&(n as u64, 7002u64), "pensieve_adversary", &pen_sig);
    let pen_traces: Vec<AbrTrace> = Pipeline::require(
        pipe.unit("train Pensieve adversary + generate traces", &pen_adv_key, || {
            eprintln!("[abr_eval] training adversary vs Pensieve ({steps} steps)...");
            let mut env = AbrAdversaryEnv::new(pensieve.clone(), video.clone(), adv_cfg.clone());
            let cfg = train_cfg("pensieve");
            let (adv, _) = try_train_abr_adversary(&mut env, &cfg)
                .unwrap_or_else(|e| panic!("[abr_eval] Pensieve adversary training failed: {e}"));
            if let Some(p) = cfg.checkpoint_path {
                std::fs::remove_file(p).ok();
            }
            generate_abr_traces_with(&mut env, &adv.policy, adv.obs_norm.as_ref(), n, false, 7002)
        }),
        "Pensieve adversary unit",
    );

    let random_traces = random_abr_traces(n, video.n_chunks(), 7003);

    // ---- 4. cross-evaluation: one unit per (trace set × protocol),
    // keyed by trace-set hash × protocol × config — the workspace-wide
    // evaluation cache key, so any binary replaying the same set under
    // the same config shares the entry.
    let pensieve_hash = UnitKey::hash_of(&pensieve);
    let sets = [
        ("mpc_targeted", mpc_traces),
        ("pensieve_targeted", pen_traces),
        ("random", random_traces),
    ]
    .into_iter()
    .map(|(name, ts)| {
        let mut qoe = BTreeMap::new();
        for pname in ["pensieve", "mpc", "bb"] {
            let key = UnitKey::of(&ts, pname, &("replay-v1", pensieve_hash, adv_cfg.latency_ms));
            let values: Vec<f64> = Pipeline::require(
                pipe.unit(&format!("replay {pname} on {name}"), &key, || {
                    replay_protocol(&ts, pname, &pensieve, &video, &adv_cfg)
                }),
                "replay unit",
            );
            qoe.insert(pname.to_string(), values);
        }
        TraceSetEval { name: name.to_string(), traces: ts, qoe }
    })
    .collect();

    AbrEvalData { scale: scale.tag().to_string(), sets }
}

/// Replay one protocol on every trace of a set (fresh protocol instance
/// per replay, fanned out over [`exec::par_map`]; QoE stays in trace
/// order).
fn replay_protocol(
    traces_in: &[AbrTrace],
    pname: &str,
    pensieve: &Pensieve,
    video: &Video,
    cfg: &AbrAdversaryConfig,
) -> Vec<f64> {
    exec::par_map(traces_in.to_vec(), exec::default_workers(), |_, t| {
        let mut proto: Box<dyn AbrPolicy> = match pname {
            "pensieve" => Box::new(pensieve.clone()),
            "mpc" => Box::new(Mpc::default()),
            _ => Box::new(BufferBased::pensieve_defaults()),
        };
        replay_abr_trace(&t, proto.as_mut(), video, cfg)
    })
}

/// Replay every protocol on every trace of a set.
///
/// Replays are independent (`run_session` resets the protocol per trace),
/// so each protocol's traces fan out over [`exec::par_map`] with a fresh
/// protocol instance per replay; QoE vectors stay in trace order.
pub fn evaluate_set(
    name: &str,
    traces_in: Vec<AbrTrace>,
    pensieve: &Pensieve,
    video: &Video,
    cfg: &AbrAdversaryConfig,
) -> TraceSetEval {
    let mut qoe = BTreeMap::new();
    for pname in ["pensieve", "mpc", "bb"] {
        qoe.insert(pname.to_string(), replay_protocol(&traces_in, pname, pensieve, video, cfg));
    }
    TraceSetEval { name: name.to_string(), traces: traces_in, qoe }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_set_shapes() {
        let video = Video::cbr();
        let cfg = AbrAdversaryConfig::default();
        // an untrained pensieve is fine for shape checks
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let policy = rl::PolicyKind::Categorical(rl::CategoricalPolicy::new(
            &[abr::protocols::pensieve::PENSIEVE_OBS_DIM, 8, 6],
            &mut rng,
        ));
        let pensieve = Pensieve::new(policy, None);
        let ts = random_abr_traces(4, 48, 3);
        let eval = evaluate_set("random", ts, &pensieve, &video, &cfg);
        assert_eq!(eval.qoe.len(), 3);
        for v in eval.qoe.values() {
            assert_eq!(v.len(), 4);
            assert!(v.iter().all(|q| q.is_finite()));
        }
    }
}
