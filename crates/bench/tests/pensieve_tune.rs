//! Offline tuning sweep for Pensieve training quality (ignored by default).
use abr::{QoeParams, Video};

fn eval_on_random(p: &abr::Pensieve, video: &Video) -> f64 {
    let cfg = adversary::AbrAdversaryConfig::default();
    let traces = adversary::random_abr_traces(30, video.n_chunks(), 999);
    let mut total = 0.0;
    for t in &traces {
        total += adversary::replay_abr_trace(t, &mut p.clone(), video, &cfg);
    }
    total / traces.len() as f64
}

#[test]
#[ignore]
fn sweep_entropy_and_steps() {
    let video = Video::cbr();
    let qoe = QoeParams::default();
    for (ent, lr, steps) in [(0.02, 3e-4, 480_000usize), (0.01, 3e-4, 480_000)] {
        let corpus: Vec<traces::Trace> =
            (0..80).map(|i| traces::random_abr_trace(1000 + i, 80, 4.0, 80.0)).collect();
        let cfg = rl::PpoConfig {
            n_steps: 1920,
            minibatch_size: 96,
            epochs: 5,
            lr,
            ent_coef: ent,
            seed: 41,
            ..rl::PpoConfig::default()
        };
        let (p, _, _) = abr::env::train_pensieve(corpus, video.clone(), qoe.clone(), steps, cfg);
        let q = eval_on_random(&p, &video);
        println!("ent={ent} lr={lr} steps={steps}: pensieve random-trace QoE {q:.3}");
    }
    let cfgref = adversary::AbrAdversaryConfig::default();
    let traces_r = adversary::random_abr_traces(30, video.n_chunks(), 999);
    let mpc: f64 = traces_r
        .iter()
        .map(|t| adversary::replay_abr_trace(t, &mut abr::Mpc::default(), &video, &cfgref))
        .sum::<f64>()
        / traces_r.len() as f64;
    println!("mpc reference: {mpc:.3}");
}
