//! Telemetry acceptance for the full pipeline (ISSUE PR 5):
//!
//! * running the smoke pipeline with `ADVNET_TELEMETRY=on` produces a
//!   result CSV byte-identical to a run with telemetry off — recording
//!   is purely observational, down to the last bit of every QoE row;
//! * the instrumented run flushes a checksum-sealed run manifest whose
//!   counters and spans cover at least five crates (`rl.`, `exec.`,
//!   `bench.`, `fault.`, `nn.`), proving the wiring reaches every layer.

use adv_bench::pipeline::{smoke, Pipeline};
use std::path::PathBuf;

/// Telemetry state, the fault registry, and the env vars below are all
/// process-global; serialize every test in this binary on one lock.
static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("advnet-telemetry-manifest").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Crate prefixes the manifest must cover (acceptance: ≥ 5 crates).
const REQUIRED_PREFIXES: [&str; 5] = ["rl.", "exec.", "bench.", "fault.", "nn."];

#[test]
fn smoke_csv_is_bit_identical_and_manifest_covers_five_crates() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // reference run, telemetry off
    telemetry::set_enabled(false);
    telemetry::reset();
    let off_dir = scratch("off");
    let off_csv = off_dir.join("smoke.csv");
    let pipe = Pipeline::new_at(off_dir.join("cache"), "pipeline_smoke", "reduced");
    let off = smoke::run_at(pipe, off_csv.clone(), 2, 77).unwrap();
    assert!(off.manifest.complete);
    let off_bytes = std::fs::read(&off_csv).unwrap();

    // instrumented run: same inputs, fresh cache, telemetry on, manifest
    // routed into the scratch dir via the same env vars the CI jobs use
    let on_dir = scratch("on");
    let on_csv = on_dir.join("smoke.csv");
    std::env::set_var("RESULTS_DIR", &on_dir);
    std::env::set_var(telemetry::ENV_RUN_ID, "manifest-test");
    telemetry::set_enabled(true);
    telemetry::reset();
    let pipe = Pipeline::new_at(on_dir.join("cache"), "pipeline_smoke", "reduced");
    let on = smoke::run_at(pipe, on_csv.clone(), 2, 77).unwrap();
    assert!(on.manifest.complete);
    telemetry::set_enabled(false);
    telemetry::reset();
    std::env::remove_var("RESULTS_DIR");
    std::env::remove_var(telemetry::ENV_RUN_ID);

    // bit-identity: telemetry cannot change a single CSV byte
    let on_bytes = std::fs::read(&on_csv).unwrap();
    assert_eq!(on_bytes, off_bytes, "telemetry changed the pipeline result CSV");

    // the manifest Pipeline::finish flushed must verify and parse
    let manifest_path = on_dir.join("runs").join("manifest-test.json");
    let text = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| panic!("missing run manifest {}: {e}", manifest_path.display()));
    let body = telemetry::manifest_body(text.trim_end()).expect("manifest checksum");
    let doc: serde::Value = serde_json::from_str(body).expect("manifest body parses");
    assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(telemetry::MANIFEST_SCHEMA),);
    assert_eq!(doc.get("run_id").and_then(|v| v.as_str()), Some("manifest-test"));

    // coverage: counter/span names from ≥ 5 crates made it into the file
    let names: Vec<&str> = ["counters", "spans", "gauges", "histograms"]
        .iter()
        .filter_map(|sec| doc.get(sec))
        .filter_map(|v| v.as_object())
        .flatten()
        .map(|(k, _)| k.as_str())
        .collect();
    for prefix in REQUIRED_PREFIXES {
        // span names use phase groups (train./sim./bench.) rather than
        // crate prefixes, so counters are the canonical coverage signal;
        // accept either to keep the assertion about reach, not naming
        let hit = names.iter().any(|n| n.starts_with(prefix))
            || matches!(prefix, "rl." if names.iter().any(|n| n.starts_with("train.")))
            || matches!(prefix, "bench." if names.iter().any(|n| n.starts_with("bench.")));
        assert!(hit, "manifest has no metric from crate prefix {prefix:?}; names: {names:?}");
    }
}
