//! The crash-resume contract of `bench::pipeline` (ISSUE acceptance):
//!
//! * cache keys are a pure function of their inputs — stable across runs
//!   and insensitive to the order units are executed in (property test);
//! * a randomly truncated or bit-flipped cache entry is always
//!   quarantined and recomputed, never silently served (property test);
//! * killing the smoke fig-pipeline at a unit boundary via
//!   `panic@bench.unit:2` and restarting produces a CSV byte-identical
//!   to an uninterrupted run, with manifest cache hits > 0.

use adv_bench::pipeline::{smoke, Pipeline, UnitKey};
use proptest::prelude::*;
use std::path::PathBuf;

/// The fault plan and the `bench.unit` fault point are process-global, so
/// every test that runs pipeline units (or installs a plan) serializes on
/// this lock to keep one test's plan from firing inside another.
static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("advnet-pipeline-resume").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Keys are stable (same inputs ⇒ same id, run after run) and the
    /// cache is order-insensitive: executing the same units in reverse
    /// order on a second run serves every one from cache.
    #[test]
    fn cache_keys_are_stable_and_order_insensitive(
        vals in collection::vec(-1.0e3f64..1.0e3, 2usize..=6),
        salt in 0u64..1_000_000,
    ) {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let keys: Vec<UnitKey> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| UnitKey::of(&vec![*v], &format!("proto{i}"), &salt))
            .collect();
        // stability: recomputing the key from the same inputs is a no-op
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(
                UnitKey::of(&vec![*v], &format!("proto{i}"), &salt).id(),
                keys[i].id()
            );
        }
        // order-insensitivity: first run computes in order, second run
        // replays in reverse order purely from cache
        let cache = scratch(&format!("order-{salt}"));
        let mut pipe = Pipeline::new_at(cache.clone(), "order", "reduced");
        let first: Vec<f64> = keys
            .iter()
            .zip(&vals)
            .map(|(k, v)| pipe.unit("fwd", k, || *v * 2.0).unwrap())
            .collect();
        prop_assert_eq!(pipe.finish().computed, keys.len());

        let mut pipe = Pipeline::new_at(cache.clone(), "order", "reduced");
        let second: Vec<f64> = keys
            .iter()
            .rev()
            .map(|k| pipe.unit("rev", k, || panic!("must come from cache")).unwrap())
            .collect();
        let m = pipe.finish();
        prop_assert_eq!(m.cache_hits, keys.len());
        prop_assert_eq!(m.computed, 0);
        let forward: Vec<u64> = first.iter().map(|f| f.to_bits()).collect();
        let mut reversed: Vec<u64> = second.iter().map(|f| f.to_bits()).collect();
        reversed.reverse();
        prop_assert_eq!(forward, reversed);
        std::fs::remove_dir_all(&cache).ok();
    }

    /// Any single truncation or bit flip of a cache entry is caught: the
    /// entry is quarantined, the value recomputed — never served corrupt.
    #[test]
    fn damaged_cache_entry_is_always_quarantined(
        vals in collection::vec(-1.0e6f64..1.0e6, 1usize..=5),
        damage_at in 0usize..100_000,
        flip in 0u8..2,
        salt in 0u64..1_000_000,
    ) {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cache = scratch(&format!("damage-{salt}-{damage_at}-{flip}"));
        let key = UnitKey::of(&vals, "victim", &salt);
        let path = cache.join("units").join(format!("{}.unit", key.id()));

        let mut pipe = Pipeline::new_at(cache.clone(), "damage", "reduced");
        let original: Vec<f64> = pipe.unit("seed", &key, || vals.clone()).unwrap();
        pipe.finish();

        let mut bytes = std::fs::read(&path).unwrap();
        if flip == 0 {
            // flip one bit somewhere in the entry
            let i = damage_at % bytes.len();
            bytes[i] ^= 1 << (damage_at % 8);
        } else {
            // truncate to a strictly shorter prefix
            bytes.truncate(damage_at % bytes.len());
        }
        std::fs::write(&path, &bytes).unwrap();

        let mut pipe = Pipeline::new_at(cache.clone(), "damage", "reduced");
        let healed: Vec<f64> = pipe.unit("heal", &key, || vals.clone()).unwrap();
        let m = pipe.finish();
        prop_assert_eq!(m.quarantined, 1);
        prop_assert_eq!(m.cache_hits, 0);
        prop_assert_eq!(m.computed, 1);
        let a: Vec<u64> = healed.iter().map(|f| f.to_bits()).collect();
        let b: Vec<u64> = original.iter().map(|f| f.to_bits()).collect();
        // recomputed value must match the pristine one
        prop_assert_eq!(a, b);
        std::fs::remove_dir_all(&cache).ok();
    }
}

/// Kill the smoke fig-pipeline at the second unit boundary, restart it,
/// and require a byte-identical CSV plus cache hits in the manifest.
#[test]
fn killed_pipeline_resumes_to_byte_identical_csv() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // uninterrupted reference run in its own cache directory
    let ref_dir = scratch("smoke-ref");
    let ref_csv = ref_dir.join("smoke.csv");
    let pipe = Pipeline::new_at(ref_dir.join("cache"), "pipeline_smoke", "reduced");
    let reference = smoke::run_at(pipe, ref_csv.clone(), 2, 77).unwrap();
    assert!(reference.manifest.complete);
    let ref_bytes = std::fs::read(&ref_csv).unwrap();

    // interrupted run: die at the second unit boundary
    let kill_dir = scratch("smoke-kill");
    let kill_csv = kill_dir.join("smoke.csv");
    fault::install(fault::FaultPlan::parse("panic@bench.unit:2").unwrap());
    let crashed = std::panic::catch_unwind({
        let (cache, csv) = (kill_dir.join("cache"), kill_csv.clone());
        move || {
            let pipe = Pipeline::new_at(cache, "pipeline_smoke", "reduced");
            let _ = smoke::run_at(pipe, csv, 2, 77);
        }
    });
    fault::clear();
    assert!(crashed.is_err(), "the fault plan should have killed the run mid-pipeline");
    assert!(!kill_csv.exists(), "no CSV should exist from the interrupted run");

    // resume with the plan disarmed: must finish from the cached prefix
    let pipe = Pipeline::new_at(kill_dir.join("cache"), "pipeline_smoke", "reduced");
    let resumed = smoke::run_at(pipe, kill_csv.clone(), 2, 77).unwrap();
    assert!(resumed.manifest.complete);
    assert!(resumed.manifest.cache_hits > 0, "resume must reuse units cached before the kill");
    assert_eq!(
        std::fs::read(&kill_csv).unwrap(),
        ref_bytes,
        "resumed CSV is byte-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&kill_dir).ok();
}
