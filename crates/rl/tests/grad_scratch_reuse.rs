//! The parallel gradient fan-out must *reuse* its per-sample scratch
//! buffers: allocation happens on first use and then stops (the persistent
//! pool + reused buffers are what make `grad_workers > 1` pay — see
//! docs/PERF.md §4). `Ppo::grad_scratch_allocs` counts every per-sample
//! gradient buffer ever allocated, so a flat counter across further
//! training proves steady-state reuse.

use rand::rngs::StdRng;
use rand::Rng;
use rl::{Action, ActionSpace, Env, Ppo, PpoConfig, Step};

#[derive(Clone)]
struct Walk {
    pos: f64,
    t: usize,
}

impl Env for Walk {
    fn obs_dim(&self) -> usize {
        2
    }
    fn action_space(&self) -> ActionSpace {
        ActionSpace::Continuous { low: vec![-2.0], high: vec![2.0] }
    }
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.t = 0;
        self.pos = rng.gen_range(-1.0..1.0);
        vec![self.pos, 0.0]
    }
    fn step(&mut self, action: &Action, rng: &mut StdRng) -> Step {
        let a = self.action_space().clip(action.vector())[0];
        let reward = -(a - self.pos) * (a - self.pos);
        self.t += 1;
        self.pos = (self.pos + rng.gen_range(-0.3..0.3)).clamp(-1.0, 1.0);
        Step { obs: vec![self.pos, self.t as f64 / 8.0], reward, done: self.t >= 8 }
    }
}

fn parallel_trainer() -> Ppo {
    let cfg = PpoConfig {
        n_steps: 64,
        minibatch_size: 32,
        epochs: 2,
        seed: 5,
        grad_workers: 4,
        ..PpoConfig::default()
    };
    Ppo::new_gaussian(2, 1, &[4], 0.5, cfg)
}

#[test]
fn grad_scratch_is_reused_across_updates() {
    let mut ppo = parallel_trainer();
    let mut env = Walk { pos: 0.0, t: 0 };
    assert_eq!(ppo.grad_scratch_allocs(), 0, "no scratch before the first update");

    // First iteration: buffers are allocated once, lazily.
    ppo.try_train_vec(&mut env, 64).unwrap();
    let after_first = ppo.grad_scratch_allocs();
    assert!(after_first > 0, "the parallel path must have run");

    // Every later update reuses them: the counter must not move again.
    ppo.try_train_vec(&mut env, 3 * 64).unwrap();
    assert_eq!(
        ppo.grad_scratch_allocs(),
        after_first,
        "steady-state updates must not allocate new per-sample gradient buffers"
    );
}

#[test]
fn serial_paths_never_touch_grad_scratch() {
    let cfg = PpoConfig {
        n_steps: 64,
        minibatch_size: 32,
        epochs: 2,
        seed: 5,
        grad_workers: 1,
        ..PpoConfig::default()
    };
    let mut ppo = Ppo::new_gaussian(2, 1, &[4], 0.5, cfg);
    let mut env = Walk { pos: 0.0, t: 0 };
    ppo.try_train_vec(&mut env, 2 * 64).unwrap();
    assert_eq!(ppo.grad_scratch_allocs(), 0, "batched path must not build parallel scratch");
}
