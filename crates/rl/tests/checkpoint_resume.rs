//! Crash-safety contract of `Ppo::train_checkpointed` (see `rl::ckpt`):
//!
//! * killing training at *any* iteration and re-invoking resumes from the
//!   last checkpoint and finishes **bit-identical** to an uninterrupted
//!   run — weights, optimizer moments, RNG streams, normalizer state, and
//!   every deterministic report field (property-tested over kill points
//!   and worker counts);
//! * a truncated checkpoint is rejected as `TrainError::Corrupt`;
//! * resuming an already-finished run returns its reports without
//!   training further.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rl::ppo::TrainReport;
use rl::{Action, ActionSpace, Checkpointer, Env, Ppo, PpoConfig, Snapshot, Step, TrainError};
use serde::{Deserialize, Serialize, Value};
use std::path::PathBuf;

/// A small stateful environment: the agent chases a randomly drifting
/// target. All of its state is two serializable fields, so `Snapshot`
/// is a direct field capture.
#[derive(Clone, Serialize, Deserialize)]
struct Walk {
    pos: f64,
    t: usize,
}

impl Walk {
    fn new() -> Self {
        Walk { pos: 0.0, t: 0 }
    }
}

impl Env for Walk {
    fn obs_dim(&self) -> usize {
        2
    }
    fn action_space(&self) -> ActionSpace {
        ActionSpace::Continuous { low: vec![-2.0], high: vec![2.0] }
    }
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.t = 0;
        self.pos = rng.gen_range(-1.0..1.0);
        vec![self.pos, 0.0]
    }
    fn step(&mut self, action: &Action, rng: &mut StdRng) -> Step {
        let a = self.action_space().clip(action.vector())[0];
        let reward = -(a - self.pos) * (a - self.pos);
        self.t += 1;
        self.pos = (self.pos + rng.gen_range(-0.3..0.3)).clamp(-1.0, 1.0);
        Step { obs: vec![self.pos, self.t as f64 / 8.0], reward, done: self.t >= 8 }
    }
}

impl Snapshot for Walk {
    fn snapshot(&self) -> Value {
        serde::Serialize::to_value(self)
    }
    fn restore(&mut self, v: &Value) -> Result<(), serde::Error> {
        *self = <Walk as serde::Deserialize>::from_value(v)?;
        Ok(())
    }
}

const TOTAL_STEPS: usize = 6 * 64; // six 64-step iterations

fn trainer(n_envs: usize) -> Ppo {
    let cfg = PpoConfig {
        n_steps: 64,
        minibatch_size: 32,
        epochs: 2,
        seed: 5,
        n_envs,
        ..PpoConfig::default()
    };
    Ppo::new_gaussian(2, 1, &[4], 0.5, cfg)
}

/// Every deterministic report field, floats as bits (wall-clock timing
/// fields excluded — they legitimately differ run to run).
type ReportSig = (usize, usize, u64, u64, usize, u64, u64, u64, usize, usize);

fn report_sig(r: &TrainReport) -> ReportSig {
    (
        r.iteration,
        r.total_steps,
        r.mean_step_reward.to_bits(),
        r.mean_episode_reward.to_bits(),
        r.episodes_completed,
        r.entropy.to_bits(),
        r.policy_loss.to_bits(),
        r.value_loss.to_bits(),
        r.n_envs,
        r.guard_trips,
    )
}

fn ckpt_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("advnet-resume-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Uninterrupted `train_checkpointed` run: full trainer-state JSON (every
/// f64 bit-exact) plus the deterministic report signature.
fn run_uninterrupted(n_envs: usize, path: PathBuf) -> (String, Vec<ReportSig>) {
    std::fs::remove_file(&path).ok();
    let mut env = Walk::new();
    let mut ppo = trainer(n_envs);
    let ck = Checkpointer { path: path.clone(), every: 1, fault_at: None };
    let reports = ppo.train_checkpointed(&mut env, TOTAL_STEPS, &ck).unwrap();
    std::fs::remove_file(&path).ok();
    (
        serde_json::to_string(&ppo.to_train_state()).unwrap(),
        reports.iter().map(report_sig).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill at iteration k (1..=5 of 6), resume with a fresh trainer and a
    /// fresh pristine environment: the finished run must be bit-identical
    /// to the uninterrupted one, serial and vectorized alike.
    #[test]
    fn kill_and_resume_is_bit_identical(k in 1usize..=5, n_envs in 1usize..=2) {
        let path = ckpt_path(&format!("kill-k{k}-n{n_envs}.ckpt"));
        std::fs::remove_file(&path).ok();

        let (ref_state, ref_reports) = run_uninterrupted(n_envs, ckpt_path(&format!("ref-k{k}-n{n_envs}.ckpt")));

        // Crash: the injected fault fires after iteration k's update,
        // before its checkpoint is written.
        let crash_path = path.clone();
        let crashed = std::panic::catch_unwind(move || {
            let mut env = Walk::new();
            let mut ppo = trainer(n_envs);
            let ck = Checkpointer { path: crash_path, every: 1, fault_at: Some(k) };
            let _ = ppo.train_checkpointed(&mut env, TOTAL_STEPS, &ck);
        });
        prop_assert!(crashed.is_err(), "the injected fault should have crashed the run");

        // Resume: fresh process state, fault cleared, same pristine env.
        let mut env = Walk::new();
        let mut ppo = trainer(n_envs);
        let ck = Checkpointer { path: path.clone(), every: 1, fault_at: None };
        let reports = ppo.train_checkpointed(&mut env, TOTAL_STEPS, &ck).unwrap();

        let state = serde_json::to_string(&ppo.to_train_state()).unwrap();
        prop_assert_eq!(state, ref_state);
        prop_assert_eq!(
            reports.iter().map(report_sig).collect::<Vec<_>>(),
            ref_reports
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn checkpointed_matches_plain_training() {
    // `train_checkpointed` must not perturb the math: same weights and
    // reports as `try_train_vec` for both collection paths.
    for n_envs in [1, 2] {
        let path = ckpt_path(&format!("plain-match-n{n_envs}.ckpt"));
        std::fs::remove_file(&path).ok();
        let (ck_state, ck_reports) = run_uninterrupted(n_envs, path);

        let mut env = Walk::new();
        let mut ppo = trainer(n_envs);
        let reports = ppo.try_train_vec(&mut env, TOTAL_STEPS).unwrap();
        assert_eq!(serde_json::to_string(&ppo.to_train_state()).unwrap(), ck_state);
        assert_eq!(reports.iter().map(report_sig).collect::<Vec<_>>(), ck_reports);
    }
}

#[test]
fn finished_checkpoint_resumes_to_same_reports_without_training() {
    let path = ckpt_path("finished.ckpt");
    std::fs::remove_file(&path).ok();
    let mut env = Walk::new();
    let mut ppo = trainer(2);
    let ck = Checkpointer { path: path.clone(), every: 2, fault_at: None };
    let reports = ppo.train_checkpointed(&mut env, TOTAL_STEPS, &ck).unwrap();

    let mut env2 = Walk::new();
    let mut ppo2 = trainer(2);
    let again = ppo2.train_checkpointed(&mut env2, TOTAL_STEPS, &ck).unwrap();
    assert_eq!(
        again.iter().map(report_sig).collect::<Vec<_>>(),
        reports.iter().map(report_sig).collect::<Vec<_>>()
    );
    assert_eq!(ppo2.total_steps(), ppo.total_steps(), "no extra training on resume");
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_checkpoint_is_rejected_on_resume() {
    let path = ckpt_path("truncated-resume.ckpt");
    std::fs::remove_file(&path).ok();
    let mut env = Walk::new();
    let mut ppo = trainer(1);
    let ck = Checkpointer { path: path.clone(), every: 1, fault_at: None };
    ppo.train_checkpointed(&mut env, 2 * 64, &ck).unwrap();

    // Simulate a torn write the atomic rename is meant to prevent.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();

    let mut env2 = Walk::new();
    let mut ppo2 = trainer(1);
    match ppo2.train_checkpointed(&mut env2, 2 * 64, &ck) {
        Err(TrainError::Corrupt(msg)) => assert!(msg.contains("truncated"), "{msg}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn fault_injection_env_var_is_parsed() {
    // Environment-driven injection migrated to `ADVNET_FAULT_PLAN` (the
    // legacy `ADVNET_FAULT_ITER=<n>` aliases to `panic@ppo.iter:<n>` —
    // exercised end to end, with the env lock it needs, in the workspace
    // `fault_tolerance` suite). `Checkpointer::new` therefore leaves the
    // programmatic `fault_at` hook unset; this test must not set the env
    // vars, because `new()` would arm the process-global plan under the
    // feet of concurrently running training tests.
    let ck = Checkpointer::new(ckpt_path("envvar.ckpt"), 4);
    assert_eq!(ck.fault_at, None, "legacy env hook now routes through the fault plan");
    assert_eq!(ck.every, 4);
    let ck = Checkpointer::new(ckpt_path("envvar.ckpt"), 0);
    assert_eq!(ck.fault_at, None);
    assert_eq!(ck.every, 1, "every is clamped to at least 1");
}
