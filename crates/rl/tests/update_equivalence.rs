//! Bit-identity contract of the PPO update paths (see `docs/PERF.md`):
//!
//! the legacy per-sample loop (`batched_updates: false`), the batched
//! matrix–matrix path (`batched_updates: true`), and the exec-parallel
//! path (`grad_workers > 1`, any worker count) must all produce the
//! **same bits** — weights, optimizer moments, RNG streams, reports —
//! after full training runs, for Gaussian and categorical policies alike.
//! This is the same invariant `train_vec` upholds for rollout collection,
//! extended to the update phase.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rl::{Action, ActionSpace, Env, Ppo, PpoConfig, Step};

/// Continuous control: chase a drifting target (same shape as the
/// checkpoint-resume suite's environment).
#[derive(Clone)]
struct Walk {
    pos: f64,
    t: usize,
}

impl Env for Walk {
    fn obs_dim(&self) -> usize {
        2
    }
    fn action_space(&self) -> ActionSpace {
        ActionSpace::Continuous { low: vec![-2.0], high: vec![2.0] }
    }
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.t = 0;
        self.pos = rng.gen_range(-1.0..1.0);
        vec![self.pos, 0.0]
    }
    fn step(&mut self, action: &Action, rng: &mut StdRng) -> Step {
        let a = self.action_space().clip(action.vector())[0];
        let reward = -(a - self.pos) * (a - self.pos);
        self.t += 1;
        self.pos = (self.pos + rng.gen_range(-0.3..0.3)).clamp(-1.0, 1.0);
        Step { obs: vec![self.pos, self.t as f64 / 8.0], reward, done: self.t >= 8 }
    }
}

/// Discrete control: pick the arm matching the observed context bit.
#[derive(Clone)]
struct Context {
    side: usize,
    t: usize,
}

impl Env for Context {
    fn obs_dim(&self) -> usize {
        2
    }
    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete { n: 3 }
    }
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.t = 0;
        self.side = rng.gen_range(0..2usize);
        vec![self.side as f64, 1.0 - self.side as f64]
    }
    fn step(&mut self, action: &Action, rng: &mut StdRng) -> Step {
        let reward = if action.index() == self.side { 1.0 } else { -0.2 };
        self.t += 1;
        self.side = rng.gen_range(0..2usize);
        Step { obs: vec![self.side as f64, 1.0 - self.side as f64], reward, done: self.t >= 8 }
    }
}

const TOTAL_STEPS: usize = 3 * 64; // three 64-step iterations

fn config(seed: u64, n_envs: usize, batched: bool, workers: usize) -> PpoConfig {
    PpoConfig {
        n_steps: 64,
        minibatch_size: 32,
        epochs: 2,
        seed,
        n_envs,
        batched_updates: batched,
        grad_workers: workers,
        ..PpoConfig::default()
    }
}

/// Train to completion, return the full trainer state as JSON — every
/// `f64` round-trips bit-exactly through this serialization, so string
/// equality is bit equality of weights, Adam moments, and RNG state.
///
/// The two path-selection flags are normalized before serializing: they
/// are *inputs* that legitimately differ between the runs under
/// comparison, and everything else in the state must not.
fn train_state(mut ppo: Ppo, discrete: bool) -> String {
    if discrete {
        let mut env = Context { side: 0, t: 0 };
        ppo.try_train_vec(&mut env, TOTAL_STEPS).unwrap();
    } else {
        let mut env = Walk { pos: 0.0, t: 0 };
        ppo.try_train_vec(&mut env, TOTAL_STEPS).unwrap();
    }
    ppo.cfg.batched_updates = true;
    ppo.cfg.grad_workers = 1;
    serde_json::to_string(&ppo.to_train_state()).unwrap()
}

fn trainer(cfg: PpoConfig, discrete: bool) -> Ppo {
    if discrete {
        Ppo::new_categorical(2, 3, &[4], cfg)
    } else {
        Ppo::new_gaussian(2, 1, &[4], 0.5, cfg)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Legacy serial, batched, and parallel (1, 2, and 4 gradient
    /// workers) updates finish full training runs bit-identical, for
    /// both policy heads and both rollout collection paths.
    #[test]
    fn update_paths_are_bit_identical(
        seed in 0_u64..10_000,
        n_envs in 1_usize..=2,
        discrete in any::<bool>(),
    ) {
        let reference = train_state(
            trainer(config(seed, n_envs, false, 1), discrete),
            discrete,
        );
        let batched = train_state(
            trainer(config(seed, n_envs, true, 1), discrete),
            discrete,
        );
        prop_assert_eq!(&batched, &reference);
        for workers in [2, 4] {
            let parallel = train_state(
                trainer(config(seed, n_envs, true, workers), discrete),
                discrete,
            );
            prop_assert_eq!(&parallel, &reference);
        }
    }
}

/// Belt-and-braces alongside the JSON comparison: directly compare the
/// trained policy's deterministic action (a pure function of its
/// weights) across all four path configurations.
#[test]
fn update_path_flags_do_not_leak_into_weights() {
    let probe = [0.3, -0.7];
    let mut outs: Vec<Vec<f64>> = Vec::new();
    for (batched, workers) in [(false, 1), (true, 1), (true, 2), (true, 4)] {
        let mut ppo = trainer(config(11, 2, batched, workers), false);
        let mut env = Walk { pos: 0.0, t: 0 };
        ppo.try_train_vec(&mut env, TOTAL_STEPS).unwrap();
        outs.push(ppo.policy.mode(&probe).vector().to_vec());
    }
    for o in &outs[1..] {
        assert_eq!(o, &outs[0], "policy weights diverged across update paths");
    }
}
