//! Crash-safe training: checkpoint files, structured training errors, and
//! the environment-snapshot interface.
//!
//! # Checkpoint file format
//!
//! A checkpoint is a single UTF-8 file:
//!
//! ```text
//! ADVNET-CKPT v1 fnv1a=<16 hex digits> len=<body bytes>\n
//! <JSON body>
//! ```
//!
//! The header carries an FNV-1a 64 checksum and the exact byte length of
//! the body, so truncated or bit-flipped files are rejected as
//! [`TrainError::Corrupt`] instead of being half-loaded. Writes go through
//! a temporary file in the same directory, `fsync`, then an atomic rename —
//! a crash mid-write leaves either the old checkpoint or the new one,
//! never a torn file.
//!
//! JSON keeps `f64` values bit-exact (the in-tree `serde_json` round-trips
//! the shortest representation losslessly), which is what makes resuming
//! from a checkpoint bit-identical to an uninterrupted run.

use crate::ppo::{PpoConfig, TrainReport};
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Capture and restore environment state for mid-training checkpoints.
///
/// Implementations must restore **bit-identically**: stepping a restored
/// environment must produce exactly the trajectory the original would
/// have produced. Environments whose internals are expensive to serialize
/// can record their reset parameters plus the actions taken since and
/// replay them on restore (the adversary environments do this).
pub trait Snapshot {
    /// Serialize enough state to reconstruct `self` exactly.
    fn snapshot(&self) -> Value;

    /// Restore from a value produced by [`Snapshot::snapshot`]. `self` is
    /// a fresh clone of the environment the snapshot was taken from.
    fn restore(&mut self, v: &Value) -> Result<(), serde::Error>;
}

/// Everything [`crate::Ppo`] needs to continue training exactly where it
/// stopped: nets, optimizer moments, RNG stream, normalizer statistics,
/// and the iteration/step counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainState {
    pub cfg: PpoConfig,
    pub policy: crate::ppo::PolicyKind,
    pub value: crate::policy::ValueNet,
    pub opt_policy: nn::Adam,
    pub opt_value: nn::Adam,
    pub opt_log_std: Option<nn::optim::AdamVec>,
    pub obs_norm: Option<crate::normalize::RunningMeanStd>,
    /// Raw xoshiro256++ state of the trainer RNG (always 4 words).
    pub rng: Vec<u64>,
    pub cur_obs: Option<Vec<f64>>,
    pub ret_acc: f64,
    pub ret_stats: crate::normalize::RunningMeanStd,
    pub total_steps: usize,
    pub iteration: usize,
    /// Divergence-guard learning-rate backoff factor currently in effect.
    pub lr_scale: f64,
    /// Divergence-guard trips so far.
    pub guard_trips: usize,
}

/// Per-worker environment slot state for vectorized training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotState {
    /// The slot environment's [`Snapshot::snapshot`] value.
    pub env: Value,
    /// Raw xoshiro256++ state of the slot RNG (always 4 words).
    pub rng: Vec<u64>,
    pub cur_obs: Option<Vec<f64>>,
    pub ret_acc: f64,
}

/// On-disk checkpoint: trainer state plus everything the training loop
/// itself carries (environment snapshots, accumulated reports, and the
/// step budget of the interrupted call).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    pub state: TrainState,
    /// Serial-path environment snapshot (`n_envs == 1`), else `None`.
    pub env: Option<Value>,
    /// Vectorized-path slot snapshots (`n_envs > 1`), else empty.
    pub slots: Vec<SlotState>,
    /// Reports for all completed iterations of the interrupted call.
    pub reports: Vec<TrainReport>,
    /// `total_steps` when the checkpointed call began.
    pub start_steps: usize,
    /// Step budget of the checkpointed call.
    pub target_steps: usize,
}

/// Structured account of a divergence-guard trip: what went non-finite,
/// when, and what the guard did about it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// Training iteration the trip happened in.
    pub iteration: usize,
    /// Cumulative trips including this one.
    pub trips: usize,
    /// Learning-rate scale in effect after this trip's backoff.
    pub lr_scale: f64,
    /// What was detected (non-finite losses, gradients, or weights).
    pub reason: String,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "divergence at iteration {}: {} (trip {}, lr scale now {:.3e})",
            self.iteration, self.reason, self.trips, self.lr_scale
        )
    }
}

/// Why training (or checkpoint I/O) failed.
#[derive(Debug)]
pub enum TrainError {
    /// The divergence guard tripped more than `guard_max_trips` times.
    Diverged(DivergenceReport),
    /// A rollout worker panicked past its retry budget.
    Worker(exec::ExecError),
    /// Filesystem failure reading or writing a checkpoint.
    Io(String),
    /// A checkpoint file failed format or checksum validation.
    Corrupt(String),
    /// A checkpoint does not match this trainer (config or shape drift).
    Mismatch(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged(r) => write!(f, "training diverged: {r}"),
            TrainError::Worker(e) => write!(f, "rollout worker failed: {e}"),
            TrainError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            TrainError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            TrainError::Mismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<exec::ExecError> for TrainError {
    fn from(e: exec::ExecError) -> Self {
        TrainError::Worker(e)
    }
}

/// FNV-1a 64-bit hash — small, dependency-free, and plenty to catch
/// truncation and bit rot in checkpoint files.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const MAGIC: &str = "ADVNET-CKPT";
const VERSION: &str = "v1";

/// Atomically write a checkpoint body: temporary file in the target
/// directory, `fsync`, rename over `path`.
pub fn write_checkpoint_file(path: &Path, body: &str) -> Result<(), TrainError> {
    telemetry::counter_add("rl.ckpt.writes", 1);
    let _span = telemetry::span!("train.ckpt.write");
    let io = |what: &'static str| {
        let p = path.display().to_string();
        move |e: std::io::Error| TrainError::Io(format!("{what} {p}: {e}"))
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(io("create checkpoint directory for"))?;
        }
    }
    let header =
        format!("{MAGIC} {VERSION} fnv1a={:016x} len={}\n", fnv1a64(body.as_bytes()), body.len());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp).map_err(io("create temporary checkpoint"))?;
    f.write_all(header.as_bytes())
        .and_then(|()| f.write_all(body.as_bytes()))
        .and_then(|()| f.sync_all())
        .map_err(io("write temporary checkpoint"))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(io("move checkpoint into place at"))
}

/// Read and validate a checkpoint file, returning the JSON body.
///
/// Rejects wrong magic/version, truncated bodies (length mismatch), and
/// corrupted bodies (checksum mismatch) as [`TrainError::Corrupt`].
pub fn read_checkpoint_file(path: &Path) -> Result<String, TrainError> {
    telemetry::counter_add("rl.ckpt.reads", 1);
    let text = std::fs::read_to_string(path)
        .map_err(|e| TrainError::Io(format!("read checkpoint {}: {e}", path.display())))?;
    let corrupt = |why: String| TrainError::Corrupt(format!("{}: {why}", path.display()));
    let (header, body) =
        text.split_once('\n').ok_or_else(|| corrupt("missing checkpoint header line".into()))?;
    let mut tokens = header.split(' ');
    if tokens.next() != Some(MAGIC) {
        return Err(corrupt(format!("not a checkpoint file (missing `{MAGIC}` magic)")));
    }
    match tokens.next() {
        Some(VERSION) => {}
        Some(v) => return Err(corrupt(format!("unsupported checkpoint version `{v}`"))),
        None => return Err(corrupt("missing checkpoint version".into())),
    }
    let mut sum = None;
    let mut len = None;
    for tok in tokens {
        if let Some(hex) = tok.strip_prefix("fnv1a=") {
            sum = u64::from_str_radix(hex, 16).ok();
        } else if let Some(n) = tok.strip_prefix("len=") {
            len = n.parse::<usize>().ok();
        }
    }
    let sum = sum.ok_or_else(|| corrupt("missing or malformed fnv1a= checksum".into()))?;
    let len = len.ok_or_else(|| corrupt("missing or malformed len= field".into()))?;
    if body.len() != len {
        return Err(corrupt(format!(
            "truncated or padded checkpoint: body is {} bytes, header declares {len}",
            body.len()
        )));
    }
    let actual = fnv1a64(body.as_bytes());
    if actual != sum {
        return Err(corrupt(format!(
            "checksum mismatch: body hashes to {actual:016x}, header declares {sum:016x}"
        )));
    }
    Ok(body.to_string())
}

/// Serialize and atomically write a [`TrainCheckpoint`].
///
/// Registers the `ckpt.write` fault point: `panic@ckpt.write:<n>`
/// crashes before the nth training-checkpoint write (the previous
/// checkpoint survives untouched thanks to the tmp+rename protocol), and
/// `corrupt@ckpt.write:<n>` bit-flips the freshly written file — which
/// the checksum validation in [`read_checkpoint_file`] must then reject.
pub fn save_train_checkpoint(path: &Path, ckpt: &TrainCheckpoint) -> Result<(), TrainError> {
    let injection = fault::check("ckpt.write");
    let body = serde_json::to_string(ckpt)
        .map_err(|e| TrainError::Io(format!("serialize checkpoint: {e}")))?;
    write_checkpoint_file(path, &body)?;
    if injection == Some(fault::Injection::Corrupt) {
        fault::corrupt_file(path)
            .map_err(|e| TrainError::Io(format!("corrupt injection on {}: {e}", path.display())))?;
    }
    Ok(())
}

/// Read, validate, and deserialize a [`TrainCheckpoint`].
///
/// Registers the `ckpt.read` fault point (`panic@ckpt.read:<n>` crashes
/// the nth checkpoint load of the process).
pub fn load_train_checkpoint(path: &Path) -> Result<TrainCheckpoint, TrainError> {
    let _ = fault::check("ckpt.read");
    let body = read_checkpoint_file(path)?;
    serde_json::from_str(&body).map_err(|e| {
        TrainError::Corrupt(format!("{}: invalid checkpoint body: {e}", path.display()))
    })
}

/// Periodic-checkpoint policy for [`crate::Ppo::train_checkpointed`], plus
/// a programmatic fault-injection hook for crash-safety tests.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    /// Checkpoint file location (also the auto-resume source).
    pub path: PathBuf,
    /// Write a checkpoint every this many iterations (≥ 1).
    pub every: usize,
    /// Programmatic fault injection: panic when the training iteration
    /// counter equals this value — after that iteration's update, before
    /// its checkpoint is written. Environment-driven injection goes
    /// through `ADVNET_FAULT_PLAN` instead (the `ppo.iter` value point,
    /// which the deprecated `ADVNET_FAULT_ITER=<n>` env var aliases to
    /// `panic@ppo.iter:<n>`); [`Checkpointer::new`] therefore leaves this
    /// `None`. Either spelling recurs every run while set; clear it (or
    /// the env var) to resume past the fault.
    pub fault_at: Option<usize>,
}

impl Checkpointer {
    /// Checkpoint to `path` every `every` iterations.
    ///
    /// (Re)loads the fault plan from the environment, so a checkpointed
    /// training run picks up `ADVNET_FAULT_PLAN` / `ADVNET_FAULT_ITER`
    /// set after process start (the crash-safety tests rely on this).
    /// Note the reload resets the plan's per-point hit counters; a
    /// malformed plan panics here rather than silently skipping its
    /// injections.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        if let Err(e) = fault::reload_from_env() {
            panic!("{e}");
        }
        Checkpointer { path: path.into(), every: every.max(1), fault_at: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("advnet-ckpt-file-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn file_roundtrip() {
        let path = tmp_path("roundtrip.ckpt");
        write_checkpoint_file(&path, r#"{"hello":1}"#).unwrap();
        assert_eq!(read_checkpoint_file(&path).unwrap(), r#"{"hello":1}"#);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_body_is_rejected() {
        let path = tmp_path("truncated.ckpt");
        write_checkpoint_file(&path, r#"{"a":[1,2,3,4,5]}"#).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 4]).unwrap();
        match read_checkpoint_file(&path) {
            Err(TrainError::Corrupt(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_is_rejected() {
        let path = tmp_path("flipped.ckpt");
        write_checkpoint_file(&path, r#"{"a":1234}"#).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let flipped = text.replace("1234", "1235");
        assert_ne!(text, flipped);
        std::fs::write(&path, flipped).unwrap();
        match read_checkpoint_file(&path) {
            Err(TrainError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let path = tmp_path("magic.ckpt");
        std::fs::write(&path, "NOT-A-CKPT v1 fnv1a=0 len=0\n").unwrap();
        assert!(matches!(read_checkpoint_file(&path), Err(TrainError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_not_corrupt() {
        let path = tmp_path("never-written.ckpt");
        assert!(matches!(read_checkpoint_file(&path), Err(TrainError::Io(_))));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
