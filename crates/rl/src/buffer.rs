//! Rollout storage and generalized advantage estimation.

use crate::env::Action;

/// One environment transition as stored during rollout collection.
#[derive(Debug, Clone)]
pub struct Transition {
    pub obs: Vec<f64>,
    pub action: Action,
    pub reward: f64,
    pub done: bool,
    /// log π(a|s) at collection time (for the PPO ratio).
    pub log_prob: f64,
    /// V(s) at collection time (for GAE).
    pub value: f64,
}

/// A batch of transitions collected under one policy snapshot.
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    pub transitions: Vec<Transition>,
    /// Value of the observation *after* the final transition, for
    /// bootstrapping when the rollout ends mid-episode.
    pub last_value: f64,
    /// GAE advantages, filled by [`RolloutBuffer::compute_gae`].
    pub advantages: Vec<f64>,
    /// Discounted return targets (`advantage + value`).
    pub returns: Vec<f64>,
}

impl RolloutBuffer {
    pub fn with_capacity(n: usize) -> Self {
        RolloutBuffer {
            transitions: Vec::with_capacity(n),
            last_value: 0.0,
            advantages: Vec::new(),
            returns: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    pub fn clear(&mut self) {
        self.transitions.clear();
        self.advantages.clear();
        self.returns.clear();
        self.last_value = 0.0;
    }

    /// Compute GAE(λ) advantages and return targets in place.
    pub fn compute_gae(&mut self, gamma: f64, lambda: f64) {
        let (adv, ret) = gae(
            &self.transitions.iter().map(|t| t.reward).collect::<Vec<_>>(),
            &self.transitions.iter().map(|t| t.value).collect::<Vec<_>>(),
            &self.transitions.iter().map(|t| t.done).collect::<Vec<_>>(),
            self.last_value,
            gamma,
            lambda,
        );
        self.advantages = adv;
        self.returns = ret;
    }

    /// Normalize advantages to zero mean / unit std (PPO's standard trick).
    pub fn normalize_advantages(&mut self) {
        let m = nn::ops::mean(&self.advantages);
        let s = nn::ops::std_dev(&self.advantages).max(1e-8);
        for a in &mut self.advantages {
            *a = (*a - m) / s;
        }
    }

    /// Mean reward per transition in the buffer.
    pub fn mean_reward(&self) -> f64 {
        nn::ops::mean(&self.transitions.iter().map(|t| t.reward).collect::<Vec<_>>())
    }

    /// Gather the observations of minibatch `indices` into one row-major
    /// batch matrix (row `s` holds the observation of `indices[s]`), the
    /// input format of `nn`'s batched forward/backward kernels.
    pub fn gather_obs(&self, indices: &[usize]) -> nn::Matrix {
        assert!(!indices.is_empty(), "gather_obs of an empty minibatch");
        let dim = self.transitions[indices[0]].obs.len();
        let mut data = Vec::with_capacity(indices.len() * dim);
        for &i in indices {
            let obs = &self.transitions[i].obs;
            assert_eq!(obs.len(), dim, "ragged observations in rollout buffer");
            data.extend_from_slice(obs);
        }
        nn::Matrix::from_vec(indices.len(), dim, data)
    }
}

/// Generalized advantage estimation.
///
/// `δ_t = r_t + γ·V(s_{t+1})·(1−done_t) − V(s_t)`,
/// `A_t = δ_t + γλ·(1−done_t)·A_{t+1}`; the value after the final
/// transition is `last_value`. Returns `(advantages, returns)` where
/// `returns[t] = advantages[t] + values[t]`.
pub fn gae(
    rewards: &[f64],
    values: &[f64],
    dones: &[bool],
    last_value: f64,
    gamma: f64,
    lambda: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(rewards.len(), values.len());
    assert_eq!(rewards.len(), dones.len());
    let n = rewards.len();
    let mut adv = vec![0.0; n];
    let mut running = 0.0;
    for t in (0..n).rev() {
        let next_value = if t + 1 < n { values[t + 1] } else { last_value };
        let non_terminal = if dones[t] { 0.0 } else { 1.0 };
        let delta = rewards[t] + gamma * next_value * non_terminal - values[t];
        running = delta + gamma * lambda * non_terminal * running;
        adv[t] = running;
    }
    let ret: Vec<f64> = adv.iter().zip(values.iter()).map(|(a, v)| a + v).collect();
    (adv, ret)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gae_single_step_terminal() {
        // One terminal step: A = r − V(s).
        let (adv, ret) = gae(&[1.0], &[0.4], &[true], 99.0, 0.99, 0.95);
        assert!((adv[0] - 0.6).abs() < 1e-12);
        assert!((ret[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gae_bootstraps_nonterminal_tail() {
        let (adv, _) = gae(&[0.0], &[0.0], &[false], 1.0, 0.5, 1.0);
        // δ = 0 + 0.5·1 − 0 = 0.5
        assert!((adv[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gae_lambda_one_equals_discounted_returns() {
        // With λ=1, advantage = discounted return − value.
        let rewards = [1.0, 2.0, 3.0];
        let values = [0.5, 0.5, 0.5];
        let dones = [false, false, true];
        let gamma = 0.9;
        let (adv, ret) = gae(&rewards, &values, &dones, 0.0, gamma, 1.0);
        let g2 = 3.0;
        let g1 = 2.0 + gamma * g2;
        let g0 = 1.0 + gamma * g1;
        assert!((ret[0] - g0).abs() < 1e-12);
        assert!((ret[1] - g1).abs() < 1e-12);
        assert!((ret[2] - g2).abs() < 1e-12);
        assert!((adv[0] - (g0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn gae_resets_across_episode_boundary() {
        // done at t=0 must stop credit flowing from t=1's big reward.
        let (adv, _) = gae(&[0.0, 100.0], &[0.0, 0.0], &[true, true], 0.0, 0.99, 0.95);
        assert!(adv[0].abs() < 1e-12, "advantage leaked across done: {}", adv[0]);
        assert!((adv[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_gae_and_normalize() {
        let mut buf = RolloutBuffer::with_capacity(3);
        for (r, d) in [(1.0, false), (0.0, false), (2.0, true)] {
            buf.transitions.push(Transition {
                obs: vec![0.0],
                action: Action::Discrete(0),
                reward: r,
                done: d,
                log_prob: 0.0,
                value: 0.0,
            });
        }
        buf.compute_gae(0.99, 0.95);
        assert_eq!(buf.advantages.len(), 3);
        buf.normalize_advantages();
        let m = nn::ops::mean(&buf.advantages);
        let s = nn::ops::std_dev(&buf.advantages);
        assert!(m.abs() < 1e-9);
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn buffer_clear() {
        let mut buf = RolloutBuffer::with_capacity(1);
        buf.transitions.push(Transition {
            obs: vec![],
            action: Action::Discrete(0),
            reward: 1.0,
            done: true,
            log_prob: 0.0,
            value: 0.0,
        });
        buf.compute_gae(0.9, 0.9);
        buf.clear();
        assert!(buf.is_empty());
        assert!(buf.advantages.is_empty());
    }
}
