//! Running mean/variance statistics for observation normalization.

use serde::{Deserialize, Serialize};

/// Welford-style running mean and variance over vectors.
///
/// Policies train much more reliably when observations are roughly
/// zero-mean/unit-variance; this mirrors stable-baselines' `VecNormalize`.
/// Updating can be frozen (e.g. during evaluation) so a trained policy sees
/// the same normalization it was trained with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunningMeanStd {
    mean: Vec<f64>,
    /// Sum of squared deviations (Welford's M2).
    m2: Vec<f64>,
    count: f64,
    /// When false, `observe` is a no-op.
    pub updating: bool,
}

impl RunningMeanStd {
    pub fn new(dim: usize) -> Self {
        RunningMeanStd { mean: vec![0.0; dim], m2: vec![0.0; dim], count: 0.0, updating: true }
    }

    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    pub fn count(&self) -> f64 {
        self.count
    }

    /// Fold one observation into the statistics.
    pub fn observe(&mut self, x: &[f64]) {
        if !self.updating {
            return;
        }
        assert_eq!(x.len(), self.mean.len(), "RunningMeanStd dimension mismatch");
        self.count += 1.0;
        for (i, xi) in x.iter().enumerate() {
            let delta = xi - self.mean[i];
            self.mean[i] += delta / self.count;
            let delta2 = xi - self.mean[i];
            self.m2[i] += delta * delta2;
        }
    }

    /// Per-dimension standard deviation (1.0 until two samples are seen).
    pub fn std(&self) -> Vec<f64> {
        self.m2
            .iter()
            .map(|m2| if self.count > 1.0 { (m2 / self.count).sqrt().max(1e-6) } else { 1.0 })
            .collect()
    }

    /// Normalize `x` to `(x − mean) / std`, clipping to ±10.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "RunningMeanStd dimension mismatch");
        let std = self.std();
        x.iter()
            .enumerate()
            .map(|(i, v)| ((v - self.mean[i]) / std[i]).clamp(-10.0, 10.0))
            .collect()
    }

    /// Observe then normalize — the common rollout-collection path.
    pub fn observe_and_normalize(&mut self, x: &[f64]) -> Vec<f64> {
        self.observe(x);
        self.normalize(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_sample_statistics() {
        let mut rms = RunningMeanStd::new(1);
        // deterministic data with mean 5, std 2 (values 3 and 7 alternating)
        for i in 0..1000 {
            rms.observe(&[if i % 2 == 0 { 3.0 } else { 7.0 }]);
        }
        let std = rms.std();
        assert!((rms.mean[0] - 5.0).abs() < 1e-9);
        assert!((std[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_centers_data() {
        let mut rms = RunningMeanStd::new(2);
        for i in 0..100 {
            rms.observe(&[i as f64, 10.0 * i as f64]);
        }
        let z = rms.normalize(&[49.5, 495.0]);
        assert!(z[0].abs() < 1e-9);
        assert!(z[1].abs() < 1e-9);
    }

    #[test]
    fn frozen_stats_do_not_move() {
        let mut rms = RunningMeanStd::new(1);
        rms.observe(&[1.0]);
        rms.observe(&[3.0]);
        rms.updating = false;
        let before = rms.mean.clone();
        rms.observe(&[100.0]);
        assert_eq!(rms.mean, before);
    }

    #[test]
    fn clips_extreme_values() {
        let mut rms = RunningMeanStd::new(1);
        rms.observe(&[0.0]);
        rms.observe(&[1.0]);
        let z = rms.normalize(&[1e9]);
        assert_eq!(z[0], 10.0);
    }

    #[test]
    fn unit_std_before_enough_samples() {
        let rms = RunningMeanStd::new(3);
        assert_eq!(rms.std(), vec![1.0, 1.0, 1.0]);
    }
}
