//! The environment interface.

use rand::rngs::StdRng;

/// What kind of actions an environment accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionSpace {
    /// A single choice among `n` alternatives (e.g. a bitrate index).
    Discrete { n: usize },
    /// A vector of reals, each bounded to `[low[i], high[i]]`.
    ///
    /// Policies emit unbounded values; the PPO convention (followed by the
    /// paper: "exploration and clipping done by PPO will return the actions
    /// to the acceptable range") is to clip at the environment boundary.
    Continuous { low: Vec<f64>, high: Vec<f64> },
}

impl ActionSpace {
    /// Dimensionality of the action vector (1 for discrete).
    pub fn dim(&self) -> usize {
        match self {
            ActionSpace::Discrete { .. } => 1,
            ActionSpace::Continuous { low, .. } => low.len(),
        }
    }

    /// Clip a raw continuous action into the box. No-op for discrete spaces.
    pub fn clip(&self, raw: &[f64]) -> Vec<f64> {
        match self {
            ActionSpace::Discrete { .. } => raw.to_vec(),
            ActionSpace::Continuous { low, high } => raw
                .iter()
                .zip(low.iter().zip(high.iter()))
                .map(|(x, (lo, hi))| x.max(*lo).min(*hi))
                .collect(),
        }
    }
}

/// A single action, matching the environment's [`ActionSpace`].
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    Discrete(usize),
    Continuous(Vec<f64>),
}

impl Action {
    /// The discrete index; panics if continuous.
    pub fn index(&self) -> usize {
        match self {
            Action::Discrete(i) => *i,
            Action::Continuous(_) => panic!("expected a discrete action"),
        }
    }

    /// The continuous vector; panics if discrete.
    pub fn vector(&self) -> &[f64] {
        match self {
            Action::Continuous(v) => v,
            Action::Discrete(_) => panic!("expected a continuous action"),
        }
    }
}

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct Step {
    /// Observation after the transition.
    pub obs: Vec<f64>,
    /// Scalar reward for the transition.
    pub reward: f64,
    /// Whether the episode terminated with this step.
    pub done: bool,
}

/// A sequential decision environment.
///
/// Implementations must be deterministic given the RNG: all randomness goes
/// through the `rng` arguments so experiments replay exactly.
pub trait Env {
    /// Length of observation vectors.
    fn obs_dim(&self) -> usize;

    /// Action space accepted by [`Env::step`].
    fn action_space(&self) -> ActionSpace;

    /// Start a new episode, returning the initial observation.
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64>;

    /// Advance one step. For continuous spaces the caller passes the raw
    /// policy output; the environment is expected to clip via
    /// [`ActionSpace::clip`].
    fn step(&mut self, action: &Action, rng: &mut StdRng) -> Step;

    /// Decorrelate a cloned environment's *internal* randomness from its
    /// siblings. Vectorized training calls this once on each slot clone
    /// with a distinct stream seed (disjoint from the per-slot policy RNG
    /// streams) before collection starts. The default is a no-op — only
    /// environments that keep their own noise source (e.g. a simulator
    /// seed baked in at construction) need to override it.
    fn decorrelate(&mut self, _stream_seed: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_clip() {
        let sp = ActionSpace::Continuous { low: vec![0.0, -1.0], high: vec![1.0, 1.0] };
        assert_eq!(sp.clip(&[2.0, -3.0]), vec![1.0, -1.0]);
        assert_eq!(sp.clip(&[0.5, 0.5]), vec![0.5, 0.5]);
        assert_eq!(sp.dim(), 2);
    }

    #[test]
    fn discrete_dim() {
        let sp = ActionSpace::Discrete { n: 6 };
        assert_eq!(sp.dim(), 1);
    }

    #[test]
    fn action_accessors() {
        assert_eq!(Action::Discrete(3).index(), 3);
        assert_eq!(Action::Continuous(vec![1.0]).vector(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "expected a discrete action")]
    fn wrong_accessor_panics() {
        let _ = Action::Continuous(vec![1.0]).index();
    }
}
