//! A compact reinforcement-learning stack: environments, stochastic
//! policies, generalized advantage estimation, and PPO.
//!
//! The HotNets '19 paper trains its adversaries with PPO
//! (stable-baselines defaults, constant learning rate); this crate
//! reimplements that algorithm in pure Rust on top of the [`nn`] crate:
//!
//! * [`env::Env`] — the environment interface both the adversary
//!   environments (crate `adversary`) and the Pensieve training environment
//!   (crate `abr`) implement.
//! * [`policy::GaussianPolicy`] — diagonal-Gaussian policy for continuous
//!   actions (network-condition tuples), with state-independent learnable
//!   log-standard-deviations and PPO-style action clipping at the
//!   environment boundary.
//! * [`policy::CategoricalPolicy`] — softmax policy for discrete actions
//!   (bitrate indices, as in Pensieve).
//! * [`policy::ValueNet`] — state-value baseline.
//! * [`buffer`] — rollout storage plus GAE(λ) advantage computation.
//! * [`ppo`] — the clipped-surrogate PPO training loop with minibatch
//!   epochs, entropy bonus, and gradient-norm clipping.
//! * [`normalize`] — running mean/std observation normalization.
//! * [`ckpt`] — crash-safe checkpoint files (atomic, checksummed),
//!   environment snapshots, and the structured [`TrainError`] taxonomy
//!   behind [`Ppo::train_checkpointed`](ppo::Ppo::train_checkpointed)'s
//!   kill-and-resume guarantee.
//!
//! Everything is deterministic given the seed: one `StdRng` drives
//! exploration and minibatch shuffling.

pub mod buffer;
pub mod ckpt;
pub mod env;
pub mod eval;
pub mod normalize;
pub mod policy;
pub mod ppo;

pub use buffer::{gae, RolloutBuffer, Transition};
pub use ckpt::{
    load_train_checkpoint, save_train_checkpoint, Checkpointer, DivergenceReport, SlotState,
    Snapshot, TrainCheckpoint, TrainError, TrainState,
};
pub use env::{Action, ActionSpace, Env, Step};
pub use eval::{rollout_episode, EpisodeStats};
pub use normalize::RunningMeanStd;
pub use policy::{CategoricalPolicy, GaussianPolicy, PolicyHead, ValueNet};
pub use ppo::{save_reports_csv, PolicyKind, Ppo, PpoConfig, TrainReport};
