//! Policy evaluation helpers.

use crate::env::{Action, Env};
use crate::normalize::RunningMeanStd;
use crate::ppo::PolicyKind;
use rand::rngs::StdRng;

/// Summary of one evaluated episode.
#[derive(Debug, Clone)]
pub struct EpisodeStats {
    /// Sum of raw rewards.
    pub total_reward: f64,
    /// Number of steps until `done`.
    pub steps: usize,
    /// Per-step rewards.
    pub rewards: Vec<f64>,
    /// Actions taken (post-policy, pre-environment-clipping).
    pub actions: Vec<Action>,
}

/// Roll one episode of `env` under `policy`.
///
/// `obs_norm`, if given, must be the (frozen) statistics the policy was
/// trained with. `deterministic` selects the distribution mode instead of
/// sampling — the paper's Fig. 6 uses exactly this to show the adversary's
/// actions "before exploration noise from training is added".
///
/// `max_steps` bounds runaway episodes.
pub fn rollout_episode<E: Env>(
    env: &mut E,
    policy: &PolicyKind,
    obs_norm: Option<&RunningMeanStd>,
    deterministic: bool,
    max_steps: usize,
    rng: &mut StdRng,
) -> EpisodeStats {
    let mut raw_obs = env.reset(rng);
    let mut stats =
        EpisodeStats { total_reward: 0.0, steps: 0, rewards: Vec::new(), actions: Vec::new() };
    for _ in 0..max_steps {
        let obs = match obs_norm {
            Some(n) => n.normalize(&raw_obs),
            None => raw_obs.clone(),
        };
        let action = if deterministic { policy.mode(&obs) } else { policy.sample(&obs, rng).0 };
        let step = env.step(&action, rng);
        stats.total_reward += step.reward;
        stats.rewards.push(step.reward);
        stats.actions.push(action);
        stats.steps += 1;
        if step.done {
            break;
        }
        raw_obs = step.obs;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ActionSpace, Step};
    use crate::policy::CategoricalPolicy;
    use rand::SeedableRng;

    struct CountDown {
        left: usize,
    }

    impl Env for CountDown {
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_space(&self) -> ActionSpace {
            ActionSpace::Discrete { n: 2 }
        }
        fn reset(&mut self, _rng: &mut StdRng) -> Vec<f64> {
            self.left = 5;
            vec![self.left as f64]
        }
        fn step(&mut self, _action: &Action, _rng: &mut StdRng) -> Step {
            self.left -= 1;
            Step { obs: vec![self.left as f64], reward: 1.0, done: self.left == 0 }
        }
    }

    #[test]
    fn episode_runs_to_done() {
        let mut rng = StdRng::seed_from_u64(0);
        let policy = PolicyKind::Categorical(CategoricalPolicy::new(&[1, 4, 2], &mut rng));
        let mut env = CountDown { left: 0 };
        let stats = rollout_episode(&mut env, &policy, None, true, 100, &mut rng);
        assert_eq!(stats.steps, 5);
        assert_eq!(stats.total_reward, 5.0);
        assert_eq!(stats.actions.len(), 5);
    }

    #[test]
    fn max_steps_bounds_episode() {
        let mut rng = StdRng::seed_from_u64(0);
        let policy = PolicyKind::Categorical(CategoricalPolicy::new(&[1, 4, 2], &mut rng));
        let mut env = CountDown { left: 0 };
        let stats = rollout_episode(&mut env, &policy, None, false, 3, &mut rng);
        assert_eq!(stats.steps, 3);
    }

    #[test]
    fn deterministic_rollouts_repeat() {
        let policy = {
            let mut rng = StdRng::seed_from_u64(1);
            PolicyKind::Categorical(CategoricalPolicy::new(&[1, 4, 2], &mut rng))
        };
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut env = CountDown { left: 0 };
            rollout_episode(&mut env, &policy, None, true, 100, &mut rng).actions
        };
        assert_eq!(run(), run());
    }
}
