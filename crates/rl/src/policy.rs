//! Stochastic policy heads and the value baseline.

use crate::env::Action;
use nn::ops::{log_softmax, softmax};
use nn::{init, Activation, Mlp, MlpGrads};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Common interface PPO needs from a policy.
pub trait PolicyHead {
    /// Sample an action and its log-probability.
    fn sample(&self, obs: &[f64], rng: &mut StdRng) -> (Action, f64);

    /// The mode of the action distribution (no exploration noise) — used for
    /// the paper's "deterministic actions" traces (Fig. 6).
    fn mode(&self, obs: &[f64]) -> Action;

    /// Log-probability of `action` under the current parameters.
    fn log_prob(&self, obs: &[f64], action: &Action) -> f64;

    /// Entropy of the action distribution at `obs`.
    fn entropy(&self, obs: &[f64]) -> f64;
}

/// Diagonal-Gaussian policy for continuous actions.
///
/// The mean comes from an MLP; the per-dimension log-standard-deviations are
/// free parameters independent of the state (the stable-baselines PPO
/// default the paper uses). Raw samples are unbounded; environments clip.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianPolicy {
    pub mean_net: Mlp,
    pub log_std: Vec<f64>,
}

const LOG_STD_MIN: f64 = -5.0;
const LOG_STD_MAX: f64 = 2.0;
const HALF_LOG_2PI: f64 = 0.918_938_533_204_672_7; // 0.5 * ln(2π)

impl GaussianPolicy {
    /// New policy with hidden `sizes` (e.g. `&[obs, 32, 16, act]`) and an
    /// initial standard deviation `init_std` on every dimension.
    pub fn new(sizes: &[usize], init_std: f64, rng: &mut StdRng) -> Self {
        let act_dim = *sizes.last().expect("sizes non-empty");
        GaussianPolicy {
            mean_net: Mlp::new(sizes, Activation::Tanh, rng),
            log_std: vec![init_std.ln(); act_dim],
        }
    }

    pub fn action_dim(&self) -> usize {
        self.log_std.len()
    }

    /// Per-dimension standard deviations (log-stds clamped to the active
    /// range, then exponentiated). Pure function of `log_std`, so callers
    /// that hoist it out of per-sample loops get bit-identical results.
    pub fn stds(&self) -> Vec<f64> {
        self.log_std.iter().map(|l| l.clamp(LOG_STD_MIN, LOG_STD_MAX).exp()).collect()
    }

    /// Accumulate ∂L/∂θ given upstream coefficients:
    /// `L = c_logp · log π(a|s) + c_ent · H(π(·|s))`.
    ///
    /// Gradients w.r.t. the mean network go into `grads`; gradients w.r.t.
    /// the log-std vector are *added* into `log_std_grad`.
    #[allow(clippy::too_many_arguments)]
    pub fn accumulate_grads(
        &self,
        obs: &[f64],
        action: &[f64],
        c_logp: f64,
        c_ent: f64,
        cache: &mut nn::Cache,
        grads: &mut MlpGrads,
        log_std_grad: &mut [f64],
    ) {
        let mean = self.mean_net.forward_cached(obs, cache);
        let stds = self.stds();
        // dL/dμ_i = c_logp * (a_i − μ_i)/σ_i²
        let dmean: Vec<f64> = mean
            .iter()
            .zip(action.iter().zip(stds.iter()))
            .map(|(mu, (a, s))| c_logp * (a - mu) / (s * s))
            .collect();
        self.mean_net.backward(cache, &dmean, grads);
        // dL/dlogσ_i = c_logp * (((a_i − μ_i)/σ_i)² − 1) + c_ent * 1
        for i in 0..self.log_std.len() {
            let z = (action[i] - mean[i]) / stds[i];
            // clamped log-stds have zero gradient outside the active range
            let active = (LOG_STD_MIN..=LOG_STD_MAX).contains(&self.log_std[i]);
            if active {
                log_std_grad[i] += c_logp * (z * z - 1.0) + c_ent;
            }
        }
    }

    /// Per-sample head math for the batched update path: given this
    /// sample's `mean` row (from a batched forward) and the hoisted `stds`,
    /// write `dL/dμ` into `dmean` and accumulate the log-std gradient.
    ///
    /// Performs the exact per-element operations of
    /// [`GaussianPolicy::accumulate_grads`] — `c_logp · (a − μ)/σ²` for the
    /// mean and `c_logp · (z² − 1) + c_ent` for active log-stds — so the
    /// batched update stays bit-identical to the per-sample path.
    #[allow(clippy::too_many_arguments)]
    pub fn dmean_row(
        &self,
        mean: &[f64],
        action: &[f64],
        stds: &[f64],
        c_logp: f64,
        c_ent: f64,
        dmean: &mut [f64],
        log_std_grad: &mut [f64],
    ) {
        for (d, (mu, (a, s))) in mean.iter().zip(action.iter().zip(stds.iter())).enumerate() {
            dmean[d] = c_logp * (a - mu) / (s * s);
        }
        for i in 0..self.log_std.len() {
            let z = (action[i] - mean[i]) / stds[i];
            let active = (LOG_STD_MIN..=LOG_STD_MAX).contains(&self.log_std[i]);
            if active {
                log_std_grad[i] += c_logp * (z * z - 1.0) + c_ent;
            }
        }
    }
}

impl PolicyHead for GaussianPolicy {
    fn sample(&self, obs: &[f64], rng: &mut StdRng) -> (Action, f64) {
        let mean = self.mean_net.forward(obs);
        let stds = self.stds();
        let mut a = Vec::with_capacity(mean.len());
        for (mu, s) in mean.iter().zip(stds.iter()) {
            a.push(mu + s * init::gaussian(rng));
        }
        let logp = gaussian_log_prob(&mean, &stds, &a);
        (Action::Continuous(a), logp)
    }

    fn mode(&self, obs: &[f64]) -> Action {
        Action::Continuous(self.mean_net.forward(obs))
    }

    fn log_prob(&self, obs: &[f64], action: &Action) -> f64 {
        let mean = self.mean_net.forward(obs);
        gaussian_log_prob(&mean, &self.stds(), action.vector())
    }

    fn entropy(&self, _obs: &[f64]) -> f64 {
        // H = Σ_i (log σ_i + ½ log 2πe); state-independent.
        self.stds().iter().map(|s| s.ln() + HALF_LOG_2PI + 0.5).sum()
    }
}

/// Log-density of a diagonal Gaussian, summed over dimensions in order.
/// Shared by the sampling, serial-update, and batched-update paths so all
/// three produce the same bits from the same `(mean, stds, action)`.
pub(crate) fn gaussian_log_prob(mean: &[f64], stds: &[f64], a: &[f64]) -> f64 {
    mean.iter()
        .zip(stds.iter().zip(a.iter()))
        .map(|(mu, (s, ai))| {
            let z = (ai - mu) / s;
            -0.5 * z * z - s.ln() - HALF_LOG_2PI
        })
        .sum()
}

/// Softmax policy over `n` discrete actions, logits from an MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoricalPolicy {
    pub logits_net: Mlp,
}

impl CategoricalPolicy {
    /// New policy; the last entry of `sizes` is the number of actions.
    pub fn new(sizes: &[usize], rng: &mut StdRng) -> Self {
        CategoricalPolicy { logits_net: Mlp::new(sizes, Activation::Tanh, rng) }
    }

    pub fn n_actions(&self) -> usize {
        self.logits_net.output_dim()
    }

    /// Action probabilities at `obs`.
    pub fn probs(&self, obs: &[f64]) -> Vec<f64> {
        softmax(&self.logits_net.forward(obs))
    }

    /// Accumulate ∂L/∂θ for `L = c_logp · log π(a|s) + c_ent · H(π(·|s))`.
    pub fn accumulate_grads(
        &self,
        obs: &[f64],
        action: usize,
        c_logp: f64,
        c_ent: f64,
        cache: &mut nn::Cache,
        grads: &mut MlpGrads,
    ) {
        let logits = self.logits_net.forward_cached(obs, cache);
        let logp = log_softmax(&logits);
        let p: Vec<f64> = logp.iter().map(|l| l.exp()).collect();
        let entropy: f64 = -p.iter().zip(logp.iter()).map(|(pi, li)| pi * li).sum::<f64>();
        // ∂logπ(a)/∂l_j = δ_{ja} − p_j ;  ∂H/∂l_j = −p_j (log p_j + H)
        let dlogits: Vec<f64> = (0..logits.len())
            .map(|j| {
                let dlp = if j == action { 1.0 - p[j] } else { -p[j] };
                let dent = -p[j] * (logp[j] + entropy);
                c_logp * dlp + c_ent * dent
            })
            .collect();
        self.logits_net.backward(cache, &dlogits, grads);
    }

    /// Per-sample head math for the batched update path: given this
    /// sample's log-softmax row `logp` (from a batched forward), write
    /// `dL/d(logits)` into `dlogits`.
    ///
    /// Same per-element formulas as [`CategoricalPolicy::accumulate_grads`]
    /// (`∂logπ(a)/∂l_j = δ_{ja} − p_j`, `∂H/∂l_j = −p_j(log p_j + H)`), so
    /// the batched update stays bit-identical to the per-sample path.
    pub fn dlogits_row(
        &self,
        logp: &[f64],
        action: usize,
        c_logp: f64,
        c_ent: f64,
        dlogits: &mut [f64],
    ) {
        let p: Vec<f64> = logp.iter().map(|l| l.exp()).collect();
        let entropy: f64 = -p.iter().zip(logp.iter()).map(|(pi, li)| pi * li).sum::<f64>();
        for j in 0..logp.len() {
            let dlp = if j == action { 1.0 - p[j] } else { -p[j] };
            let dent = -p[j] * (logp[j] + entropy);
            dlogits[j] = c_logp * dlp + c_ent * dent;
        }
    }
}

impl PolicyHead for CategoricalPolicy {
    fn sample(&self, obs: &[f64], rng: &mut StdRng) -> (Action, f64) {
        let logits = self.logits_net.forward(obs);
        let lp = log_softmax(&logits);
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = lp.len() - 1;
        for (i, l) in lp.iter().enumerate() {
            acc += l.exp();
            if u < acc {
                chosen = i;
                break;
            }
        }
        (Action::Discrete(chosen), lp[chosen])
    }

    fn mode(&self, obs: &[f64]) -> Action {
        let logits = self.logits_net.forward(obs);
        let best = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty logits");
        Action::Discrete(best)
    }

    fn log_prob(&self, obs: &[f64], action: &Action) -> f64 {
        log_softmax(&self.logits_net.forward(obs))[action.index()]
    }

    fn entropy(&self, obs: &[f64]) -> f64 {
        let lp = log_softmax(&self.logits_net.forward(obs));
        -lp.iter().map(|l| l.exp() * l).sum::<f64>()
    }
}

/// State-value network `V(s)` used as the PPO baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueNet {
    pub net: Mlp,
}

impl ValueNet {
    /// `sizes` must end in 1.
    pub fn new(sizes: &[usize], rng: &mut StdRng) -> Self {
        assert_eq!(*sizes.last().unwrap(), 1, "value net must output a scalar");
        ValueNet { net: Mlp::new(sizes, Activation::Tanh, rng) }
    }

    pub fn value(&self, obs: &[f64]) -> f64 {
        self.net.forward(obs)[0]
    }

    /// Accumulate gradient of `c * V(s)` into `grads`.
    pub fn accumulate_grads(
        &self,
        obs: &[f64],
        c: f64,
        cache: &mut nn::Cache,
        grads: &mut MlpGrads,
    ) {
        self.net.forward_cached(obs, cache);
        self.net.backward(cache, &[c], grads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gaussian_logprob_matches_formula() {
        let mut r = rng(1);
        let p = GaussianPolicy::new(&[2, 4, 1], 0.5, &mut r);
        let obs = [0.3, -0.7];
        let mean = p.mean_net.forward(&obs)[0];
        let a = Action::Continuous(vec![mean + 0.5]); // one std away
        let lp = p.log_prob(&obs, &a);
        let expected = -0.5 - (0.5_f64).ln() - HALF_LOG_2PI;
        assert!((lp - expected).abs() < 1e-9, "lp={lp} expected={expected}");
    }

    #[test]
    fn gaussian_mode_is_mean() {
        let mut r = rng(2);
        let p = GaussianPolicy::new(&[3, 4, 2], 1.0, &mut r);
        let obs = [0.1, 0.2, 0.3];
        assert_eq!(p.mode(&obs).vector(), p.mean_net.forward(&obs).as_slice());
    }

    #[test]
    fn gaussian_sample_statistics() {
        let mut r = rng(3);
        let p = GaussianPolicy::new(&[1, 4, 1], 0.3, &mut r);
        let obs = [0.5];
        let mean = p.mean_net.forward(&obs)[0];
        let n = 5000;
        let samples: Vec<f64> = (0..n).map(|_| p.sample(&obs, &mut r).0.vector()[0]).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        let v = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - mean).abs() < 0.02, "sample mean {m} vs {mean}");
        assert!((v.sqrt() - 0.3).abs() < 0.02, "sample std {}", v.sqrt());
    }

    #[test]
    fn gaussian_entropy_grows_with_std() {
        let mut r = rng(4);
        let small = GaussianPolicy::new(&[1, 2, 1], 0.1, &mut r);
        let big = GaussianPolicy::new(&[1, 2, 1], 1.0, &mut r);
        assert!(big.entropy(&[0.0]) > small.entropy(&[0.0]));
    }

    #[test]
    fn gaussian_grads_match_finite_differences() {
        let mut r = rng(5);
        let p = GaussianPolicy::new(&[2, 4, 2], 0.7, &mut r);
        let obs = [0.4, -0.2];
        let act = [0.9, -1.1];
        let action = Action::Continuous(act.to_vec());
        let mut cache = p.mean_net.new_cache();
        let mut grads = MlpGrads::zeros_like(&p.mean_net);
        let mut ls_grad = vec![0.0; 2];
        p.accumulate_grads(&obs, &act, 1.0, 0.0, &mut cache, &mut grads, &mut ls_grad);

        let h = 1e-6;
        // mean-net weight check
        let mut plus = p.clone();
        let v0 = plus.mean_net.layers()[0].w.get(0, 0);
        plus.mean_net.layers_mut()[0].w.set(0, 0, v0 + h);
        let mut minus = p.clone();
        minus.mean_net.layers_mut()[0].w.set(0, 0, v0 - h);
        let fd = (plus.log_prob(&obs, &action) - minus.log_prob(&obs, &action)) / (2.0 * h);
        assert!((fd - grads.w[0].get(0, 0)).abs() < 1e-5, "fd={fd}");

        // log-std check
        let mut plus = p.clone();
        plus.log_std[1] += h;
        let mut minus = p.clone();
        minus.log_std[1] -= h;
        let fd = (plus.log_prob(&obs, &action) - minus.log_prob(&obs, &action)) / (2.0 * h);
        assert!((fd - ls_grad[1]).abs() < 1e-5, "fd={fd} an={}", ls_grad[1]);
    }

    #[test]
    fn gaussian_entropy_grad_wrt_log_std() {
        let mut r = rng(6);
        let p = GaussianPolicy::new(&[1, 2, 1], 0.5, &mut r);
        let mut cache = p.mean_net.new_cache();
        let mut grads = MlpGrads::zeros_like(&p.mean_net);
        let mut ls_grad = vec![0.0; 1];
        p.accumulate_grads(&[0.0], &[0.0], 0.0, 1.0, &mut cache, &mut grads, &mut ls_grad);
        // dH/dlogσ = 1 exactly
        assert!((ls_grad[0] - 1.0).abs() < 1e-12);
        assert_eq!(grads.sq_norm(), 0.0, "entropy has no mean-net gradient");
    }

    #[test]
    fn categorical_probs_sum_to_one() {
        let mut r = rng(7);
        let p = CategoricalPolicy::new(&[3, 8, 6], &mut r);
        let probs = p.probs(&[0.2, 0.4, -0.1]);
        assert_eq!(probs.len(), 6);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn categorical_sampling_matches_probs() {
        let mut r = rng(8);
        let p = CategoricalPolicy::new(&[2, 6, 3], &mut r);
        let obs = [0.5, -0.5];
        let probs = p.probs(&obs);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[p.sample(&obs, &mut r).0.index()] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - probs[i]).abs() < 0.02, "action {i}: {freq} vs {}", probs[i]);
        }
    }

    #[test]
    fn categorical_mode_is_argmax() {
        let mut r = rng(9);
        let p = CategoricalPolicy::new(&[2, 6, 4], &mut r);
        let obs = [1.0, -1.0];
        let probs = p.probs(&obs);
        let argmax =
            probs.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(p.mode(&obs).index(), argmax);
    }

    #[test]
    fn categorical_grads_match_finite_differences() {
        let mut r = rng(10);
        let p = CategoricalPolicy::new(&[2, 5, 3], &mut r);
        let obs = [0.3, 0.8];
        let action = 1usize;
        let mut cache = p.logits_net.new_cache();
        let mut grads = MlpGrads::zeros_like(&p.logits_net);
        p.accumulate_grads(&obs, action, 1.0, 0.5, &mut cache, &mut grads);

        let h = 1e-6;
        let loss = |q: &CategoricalPolicy| -> f64 {
            q.log_prob(&obs, &Action::Discrete(action)) + 0.5 * q.entropy(&obs)
        };
        for &(li, rr, cc) in &[(0usize, 0usize, 0usize), (1, 2, 3), (1, 0, 1)] {
            let mut plus = p.clone();
            let v = plus.logits_net.layers()[li].w.get(rr, cc);
            plus.logits_net.layers_mut()[li].w.set(rr, cc, v + h);
            let mut minus = p.clone();
            minus.logits_net.layers_mut()[li].w.set(rr, cc, v - h);
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * h);
            let an = grads.w[li].get(rr, cc);
            assert!((fd - an).abs() < 1e-5, "layer {li} [{rr},{cc}]: fd={fd} an={an}");
        }
    }

    #[test]
    fn categorical_entropy_bounds() {
        let mut r = rng(11);
        let p = CategoricalPolicy::new(&[1, 4, 5], &mut r);
        let h = p.entropy(&[0.0]);
        assert!(h > 0.0 && h <= (5.0_f64).ln() + 1e-12);
    }

    #[test]
    fn value_net_grads_match_finite_differences() {
        let mut r = rng(12);
        let v = ValueNet::new(&[3, 6, 1], &mut r);
        let obs = [0.1, -0.4, 0.9];
        let mut cache = v.net.new_cache();
        let mut grads = MlpGrads::zeros_like(&v.net);
        v.accumulate_grads(&obs, 2.0, &mut cache, &mut grads);
        let h = 1e-6;
        let mut plus = v.clone();
        let w0 = plus.net.layers()[0].w.get(0, 0);
        plus.net.layers_mut()[0].w.set(0, 0, w0 + h);
        let mut minus = v.clone();
        minus.net.layers_mut()[0].w.set(0, 0, w0 - h);
        let fd = 2.0 * (plus.value(&obs) - minus.value(&obs)) / (2.0 * h);
        assert!((fd - grads.w[0].get(0, 0)).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "value net must output a scalar")]
    fn value_net_shape_enforced() {
        let mut r = rng(13);
        let _ = ValueNet::new(&[3, 6, 2], &mut r);
    }
}
