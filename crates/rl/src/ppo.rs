//! Proximal Policy Optimization (Schulman et al. 2017) with the
//! stable-baselines defaults the paper relies on: clipped surrogate
//! objective, GAE(λ), minibatch epochs, entropy bonus, constant learning
//! rate, and gradient-norm clipping.

use crate::buffer::{RolloutBuffer, Transition};
use crate::ckpt::{
    load_train_checkpoint, save_train_checkpoint, Checkpointer, DivergenceReport, SlotState,
    Snapshot, TrainCheckpoint, TrainError, TrainState,
};
use crate::env::{Action, Env};
use crate::normalize::RunningMeanStd;
use crate::policy::{CategoricalPolicy, GaussianPolicy, PolicyHead, ValueNet};
use nn::optim::AdamVec;
use nn::{Adam, MlpGrads};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// PPO hyper-parameters.
///
/// Defaults mirror stable-baselines PPO2 (the paper's training stack) with a
/// constant learning rate, which is the one deviation the paper calls out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Environment steps collected per training iteration.
    pub n_steps: usize,
    /// Minibatch size for the update epochs.
    pub minibatch_size: usize,
    /// Number of passes over each rollout.
    pub epochs: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE λ.
    pub lambda: f64,
    /// Clip range ε of the surrogate objective.
    pub clip: f64,
    /// Entropy bonus coefficient.
    pub ent_coef: f64,
    /// Value-loss coefficient.
    pub vf_coef: f64,
    /// Constant Adam learning rate.
    pub lr: f64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f64,
    /// Maintain running observation normalization.
    pub normalize_obs: bool,
    /// Scale rewards by the running std of the discounted return.
    pub normalize_reward: bool,
    /// RNG seed for exploration and shuffling.
    pub seed: u64,
    /// Parallel environment clones used by [`Ppo::train_vec`]; each collects
    /// `n_steps / n_envs` transitions per iteration on its own worker
    /// thread with its own seed-split RNG stream. `1` (the default) selects
    /// the serial collection path, bit-identical to [`Ppo::train`].
    pub n_envs: usize,
    /// How many times a panicked rollout worker is retried on a rolled-back
    /// clone of its slot before the iteration fails with
    /// [`TrainError::Worker`]. Retries recover *transient* faults; a
    /// deterministic panic recurs and exhausts the budget.
    pub worker_retries: usize,
    /// Divergence-guard budget: how many non-finite updates may be skipped
    /// (with state rollback and LR backoff) before training fails with
    /// [`TrainError::Diverged`].
    pub guard_max_trips: usize,
    /// Multiplier applied to the effective learning rate on every
    /// divergence-guard trip (in `(0, 1]`).
    pub guard_lr_backoff: f64,
    /// Use the batched matrix–matrix update kernels (`nn::Mlp::forward_batch`
    /// / `grads_batch`): one batched forward per net per minibatch instead
    /// of two per-sample forwards per net per transition. `true` (the
    /// default) and `false` (the legacy per-sample path, kept as the
    /// reference implementation and benchmark baseline) produce
    /// bit-identical training trajectories — the kernels replay the exact
    /// floating-point operation order of the serial path.
    pub batched_updates: bool,
    /// Worker threads for minibatch gradient computation. With > 1, each
    /// minibatch's per-sample gradients are computed in parallel via
    /// `exec::par_chunks` and merged **in global sample order**, so the
    /// summed gradients — and therefore the whole training trajectory — are
    /// bit-identical to the serial path for every worker count.
    /// `1` (the default) computes minibatch gradients on the caller's
    /// thread.
    pub grad_workers: usize,
    /// Watchdog timeout for vectorized rollout workers, in milliseconds.
    /// When > 0, a monitor thread cancels any worker slot whose heartbeat
    /// (one beat per environment step) is older than this and re-runs it
    /// under the deterministic rollback/retry path, so a stalled slot
    /// finishes with the same merged rollout as a stall-free run. `0`
    /// (the default) disables the watchdog; the `ADVNET_WATCHDOG_MS`
    /// environment variable supplies a timeout when this is 0.
    pub watchdog_timeout_ms: u64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            n_steps: 2048,
            minibatch_size: 64,
            epochs: 10,
            gamma: 0.99,
            lambda: 0.95,
            clip: 0.2,
            ent_coef: 0.003,
            vf_coef: 0.5,
            lr: 3e-4,
            max_grad_norm: 0.5,
            normalize_obs: true,
            normalize_reward: true,
            seed: 0,
            n_envs: 1,
            worker_retries: 1,
            guard_max_trips: 8,
            guard_lr_backoff: 0.5,
            batched_updates: true,
            grad_workers: 1,
            watchdog_timeout_ms: 0,
        }
    }
}

impl PpoConfig {
    /// Panics on configurations that cannot train (catching these at
    /// construction beats NaNs two hours into a run).
    pub fn validate(&self) {
        assert!(self.n_steps > 0, "n_steps must be positive");
        assert!(
            self.minibatch_size > 0 && self.minibatch_size <= self.n_steps,
            "minibatch_size must be in 1..=n_steps"
        );
        assert!(self.epochs > 0, "epochs must be positive");
        assert!((0.0..=1.0).contains(&self.gamma), "gamma must be in [0,1]");
        assert!((0.0..=1.0).contains(&self.lambda), "lambda must be in [0,1]");
        assert!(self.clip > 0.0, "clip range must be positive");
        assert!(self.lr > 0.0, "learning rate must be positive");
        assert!(self.ent_coef >= 0.0, "entropy coefficient must be non-negative");
        assert!(self.vf_coef >= 0.0, "value coefficient must be non-negative");
        assert!(self.max_grad_norm > 0.0, "max_grad_norm must be positive");
        assert!(self.n_envs >= 1, "n_envs must be at least 1");
        assert!(
            self.n_steps.is_multiple_of(self.n_envs),
            "n_steps ({}) must divide evenly across n_envs ({}) so every \
             worker collects the same segment length",
            self.n_steps,
            self.n_envs
        );
        assert!(
            self.guard_lr_backoff > 0.0 && self.guard_lr_backoff <= 1.0,
            "guard_lr_backoff must be in (0, 1]"
        );
        assert!(self.grad_workers >= 1, "grad_workers must be at least 1");
    }
}

/// The policy variant PPO is training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PolicyKind {
    Gaussian(GaussianPolicy),
    Categorical(CategoricalPolicy),
}

impl PolicyKind {
    fn net(&self) -> &nn::Mlp {
        match self {
            PolicyKind::Gaussian(p) => &p.mean_net,
            PolicyKind::Categorical(p) => &p.logits_net,
        }
    }

    /// Sample an action (and its log-prob) from the policy.
    pub fn sample(&self, obs: &[f64], rng: &mut StdRng) -> (Action, f64) {
        match self {
            PolicyKind::Gaussian(p) => p.sample(obs, rng),
            PolicyKind::Categorical(p) => p.sample(obs, rng),
        }
    }

    /// Deterministic (mode) action.
    pub fn mode(&self, obs: &[f64]) -> Action {
        match self {
            PolicyKind::Gaussian(p) => p.mode(obs),
            PolicyKind::Categorical(p) => p.mode(obs),
        }
    }

    /// Deterministic (mode) actions for a batch of observations, one per
    /// matrix row — the inference handle `serve`'s fleet engine amortizes
    /// per-tick policy calls through.
    ///
    /// Runs one [`nn::Mlp::forward_batch`] (bit-identical per row to the
    /// per-sample forward) and applies the same per-row head math as
    /// [`PolicyKind::mode`] — including the identical `max_by` argmax
    /// tie-breaking for categorical heads — so
    /// `mode_batch(m)[i] == mode(m.row(i))` bit-for-bit.
    pub fn mode_batch(&self, obs: &nn::Matrix) -> Vec<Action> {
        let out = self.net().forward_batch(obs);
        (0..out.rows())
            .map(|r| match self {
                PolicyKind::Gaussian(_) => Action::Continuous(out.row(r).to_vec()),
                PolicyKind::Categorical(_) => {
                    let best = out
                        .row(r)
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                        .map(|(i, _)| i)
                        .expect("non-empty logits");
                    Action::Discrete(best)
                }
            })
            .collect()
    }

    /// Log-probability of an action.
    pub fn log_prob(&self, obs: &[f64], action: &Action) -> f64 {
        match self {
            PolicyKind::Gaussian(p) => p.log_prob(obs, action),
            PolicyKind::Categorical(p) => p.log_prob(obs, action),
        }
    }

    /// Distribution entropy at `obs`.
    pub fn entropy(&self, obs: &[f64]) -> f64 {
        match self {
            PolicyKind::Gaussian(p) => p.entropy(obs),
            PolicyKind::Categorical(p) => p.entropy(obs),
        }
    }
}

/// Per-iteration training metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    pub iteration: usize,
    pub total_steps: usize,
    /// Mean raw (unnormalized) reward per environment step this iteration.
    pub mean_step_reward: f64,
    /// Mean total raw reward of episodes completed this iteration (NaN if none).
    pub mean_episode_reward: f64,
    pub episodes_completed: usize,
    /// Mean policy entropy over the rollout.
    pub entropy: f64,
    /// Mean clipped-surrogate policy loss of the final epoch.
    pub policy_loss: f64,
    /// Mean value loss of the final epoch.
    pub value_loss: f64,
    /// Environment clones that collected this iteration's rollout.
    pub n_envs: usize,
    /// Wall-clock seconds spent collecting the rollout.
    pub rollout_wall_s: f64,
    /// Collection throughput: `n_steps / rollout_wall_s`.
    pub rollout_steps_per_s: f64,
    /// Wall-clock seconds spent in the PPO update phase (the gradient
    /// epochs over the rollout, including optimizer steps).
    pub update_wall_s: f64,
    /// Wall-clock seconds per worker, in worker order (one entry when
    /// collection is serial). Timing fields vary run to run; everything
    /// else in the report is deterministic for a given seed.
    pub worker_wall_s: Vec<f64>,
    /// Cumulative divergence-guard trips at the end of this iteration.
    /// Losses are NaN for an iteration whose update the guard skipped.
    pub guard_trips: usize,
}

/// Write per-iteration training reports as CSV (`iteration,total_steps,
/// mean_step_reward,mean_episode_reward,episodes,entropy,policy_loss,
/// value_loss,n_envs,rollout_wall_s,rollout_steps_per_s,guard_trips`) —
/// the learning curves behind every trained artifact. Per-worker wall
/// times stay in the structured [`TrainReport`]; the CSV carries only the
/// aggregate timing.
pub fn save_reports_csv(
    reports: &[TrainReport],
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut out = String::from(
        "iteration,total_steps,mean_step_reward,mean_episode_reward,episodes,entropy,policy_loss,value_loss,n_envs,rollout_wall_s,rollout_steps_per_s,guard_trips\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.iteration,
            r.total_steps,
            r.mean_step_reward,
            r.mean_episode_reward,
            r.episodes_completed,
            r.entropy,
            r.policy_loss,
            r.value_loss,
            r.n_envs,
            r.rollout_wall_s,
            r.rollout_steps_per_s,
            r.guard_trips
        ));
    }
    std::fs::write(path, out)
}

/// The PPO trainer: owns the policy, value net, optimizers, and
/// normalization state.
pub struct Ppo {
    pub policy: PolicyKind,
    pub value: ValueNet,
    pub cfg: PpoConfig,
    pub obs_norm: Option<RunningMeanStd>,
    opt_policy: Adam,
    opt_value: Adam,
    opt_log_std: Option<AdamVec>,
    rng: StdRng,
    /// Raw (unnormalized) observation carried across iterations.
    cur_obs: Option<Vec<f64>>,
    /// Running discounted return, for reward normalization.
    ret_acc: f64,
    ret_stats: RunningMeanStd,
    total_steps: usize,
    iteration: usize,
    /// Divergence-guard learning-rate backoff factor currently in effect.
    lr_scale: f64,
    /// Divergence-guard trips so far.
    guard_trips: usize,
    /// Reusable buffers for the parallel gradient fan-out. Not part of
    /// [`TrainState`]: pure scratch, rebuilt empty on resume. A `Mutex`
    /// (never contended — locked once per minibatch on the caller thread)
    /// rather than `RefCell` so `&Ppo` stays `Sync` for the rollout
    /// fan-out.
    grad_scratch: Mutex<GradScratch>,
}

/// One transition's gradient contribution: per-sample buffers that start
/// from zero each use, so merging them in global sample order replays the
/// serial loop's exact element additions.
struct SampleGrad {
    pgrads: MlpGrads,
    vgrads: MlpGrads,
    log_std_grad: Vec<f64>,
    ploss: f64,
    vloss: f64,
}

/// Per-chunk output buffer for [`exec::par_chunks`]: a reusable run of
/// [`SampleGrad`]s plus how many of them this fan-out filled.
#[derive(Default)]
struct GradBlock {
    samples: Vec<SampleGrad>,
    used: usize,
}

/// Per-worker forward/backward caches, exclusive to one pool slot per
/// fan-out. Cache contents are fully overwritten by each sample's cached
/// forward (the serial path reuses caches the same way), so reuse cannot
/// change any bit.
struct WorkerCaches {
    pcache: nn::Cache,
    vcache: nn::Cache,
}

/// All reusable state behind [`Ppo::minibatch_grads_parallel`]. Buffers
/// grow on first use and are then reused for the life of the trainer;
/// `sample_allocs` counts every [`SampleGrad`] ever allocated so tests
/// can assert steady-state reuse (the counter stops moving after the
/// first update).
#[derive(Default)]
struct GradScratch {
    blocks: Vec<GradBlock>,
    workers: Vec<WorkerCaches>,
    sample_allocs: u64,
}

/// Per-worker environment state for [`Ppo::train_vec`]: one env clone, its
/// own RNG stream, the raw observation carried across iterations, and its
/// own discounted-return accumulator for reward normalization. `Clone` is
/// what lets a panicked worker retry on a rolled-back copy.
#[derive(Clone)]
struct EnvSlot<E> {
    env: E,
    rng: StdRng,
    cur_obs: Option<Vec<f64>>,
    ret_acc: f64,
}

/// What one worker hands back from a rollout segment: the raw observations
/// it acted on (in step order, for the merge-time statistics update),
/// transitions carrying *raw* rewards, the bootstrap value after the final
/// transition, the summed policy entropy, and how many non-finite values
/// the sanitizer rewrote.
struct SegOut {
    raw_obs: Vec<Vec<f64>>,
    transitions: Vec<Transition>,
    last_value: f64,
    entropy_acc: f64,
    poisoned: usize,
}

/// Zero out non-finite values in place, returning how many were rewritten.
/// One poisoned environment step must not corrupt the running normalizers
/// (a single NaN folded into [`RunningMeanStd`] sticks forever); the count
/// reaches the divergence guard, which skips the tainted update.
fn sanitize(values: &mut [f64]) -> usize {
    let mut n = 0;
    for v in values {
        if !v.is_finite() {
            *v = 0.0;
            n += 1;
        }
    }
    n
}

impl Ppo {
    /// Build a PPO trainer for a continuous-action environment.
    ///
    /// `hidden` are the hidden layer widths (e.g. `&[32, 16]` for the ABR
    /// adversary, `&[4]` for the CC adversary, per the paper).
    pub fn new_gaussian(
        obs_dim: usize,
        act_dim: usize,
        hidden: &[usize],
        init_std: f64,
        cfg: PpoConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sizes = vec![obs_dim];
        sizes.extend_from_slice(hidden);
        sizes.push(act_dim);
        let policy = GaussianPolicy::new(&sizes, init_std, &mut rng);
        *sizes.last_mut().unwrap() = 1;
        let value = ValueNet::new(&sizes, &mut rng);
        Self::assemble(PolicyKind::Gaussian(policy), value, cfg, rng)
    }

    /// Build a PPO trainer for a discrete-action environment.
    pub fn new_categorical(
        obs_dim: usize,
        n_actions: usize,
        hidden: &[usize],
        cfg: PpoConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sizes = vec![obs_dim];
        sizes.extend_from_slice(hidden);
        sizes.push(n_actions);
        let policy = CategoricalPolicy::new(&sizes, &mut rng);
        *sizes.last_mut().unwrap() = 1;
        let value = ValueNet::new(&sizes, &mut rng);
        Self::assemble(PolicyKind::Categorical(policy), value, cfg, rng)
    }

    fn assemble(policy: PolicyKind, value: ValueNet, cfg: PpoConfig, rng: StdRng) -> Self {
        cfg.validate();
        let opt_policy = Adam::new(policy.net(), cfg.lr);
        let opt_value = Adam::new(&value.net, cfg.lr);
        let opt_log_std = match &policy {
            PolicyKind::Gaussian(g) => Some(AdamVec::new(g.log_std.len(), cfg.lr)),
            PolicyKind::Categorical(_) => None,
        };
        let obs_dim = policy.net().input_dim();
        let obs_norm = if cfg.normalize_obs { Some(RunningMeanStd::new(obs_dim)) } else { None };
        Ppo {
            policy,
            value,
            cfg,
            obs_norm,
            opt_policy,
            opt_value,
            opt_log_std,
            rng,
            cur_obs: None,
            ret_acc: 0.0,
            ret_stats: RunningMeanStd::new(1),
            total_steps: 0,
            iteration: 0,
            lr_scale: 1.0,
            guard_trips: 0,
            grad_scratch: Mutex::new(GradScratch::default()),
        }
    }

    /// Total environment steps consumed so far.
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }

    /// Normalize a raw observation with the trainer's (frozen) statistics.
    pub fn normalize_obs(&self, raw: &[f64]) -> Vec<f64> {
        match &self.obs_norm {
            Some(n) => n.normalize(raw),
            None => raw.to_vec(),
        }
    }

    /// Train for (at least) `total_steps` environment steps; returns one
    /// report per iteration. Panics if training fails structurally (guard
    /// exhaustion, worker failure) — use [`Ppo::try_train`] to handle
    /// those as values.
    pub fn train<E: Env>(&mut self, env: &mut E, total_steps: usize) -> Vec<TrainReport> {
        self.try_train(env, total_steps).unwrap_or_else(|e| panic!("PPO training failed: {e}"))
    }

    /// Fallible [`Ppo::train`]: surfaces divergence-guard exhaustion as
    /// [`TrainError::Diverged`] instead of panicking.
    pub fn try_train<E: Env>(
        &mut self,
        env: &mut E,
        total_steps: usize,
    ) -> Result<Vec<TrainReport>, TrainError> {
        let mut reports = Vec::new();
        let start = self.total_steps;
        while self.total_steps - start < total_steps {
            reports.push(self.try_train_iteration(env)?);
        }
        Ok(reports)
    }

    /// Train with `cfg.n_envs` parallel environment clones.
    ///
    /// With `n_envs == 1` this delegates to [`Ppo::train`] and is
    /// bit-identical to it. With `n_envs > 1`, `env` is cloned into
    /// `n_envs` slots, each driven on its own worker thread with its own
    /// RNG stream derived from `cfg.seed` via [`exec::split_seed`]; every
    /// slot collects `n_steps / n_envs` transitions per iteration against
    /// a frozen snapshot of the policy and observation statistics, and the
    /// segments are merged in fixed slot order. The result is deterministic
    /// for a given `(seed, n_envs)` — independent of thread scheduling —
    /// but numerically different from the serial path, because observation
    /// statistics update per batch instead of per step.
    ///
    /// Slots (env state, RNG streams, episode continuations) persist across
    /// iterations within one call but are rebuilt per call, so repeated
    /// invocations with a fresh trainer reproduce exactly.
    ///
    /// Panics if training fails structurally — use [`Ppo::try_train_vec`]
    /// to handle worker failure and divergence as values.
    pub fn train_vec<E: Env + Clone + Send>(
        &mut self,
        env: &mut E,
        total_steps: usize,
    ) -> Vec<TrainReport> {
        self.try_train_vec(env, total_steps).unwrap_or_else(|e| panic!("PPO training failed: {e}"))
    }

    /// Fallible [`Ppo::train_vec`]: a worker panic that survives
    /// `cfg.worker_retries` rolled-back retries surfaces as
    /// [`TrainError::Worker`], divergence-guard exhaustion as
    /// [`TrainError::Diverged`].
    pub fn try_train_vec<E: Env + Clone + Send>(
        &mut self,
        env: &mut E,
        total_steps: usize,
    ) -> Result<Vec<TrainReport>, TrainError> {
        if self.cfg.n_envs <= 1 {
            return self.try_train(env, total_steps);
        }
        let mut slots = self.make_slots(env);
        let mut reports = Vec::new();
        let start = self.total_steps;
        while self.total_steps - start < total_steps {
            reports.push(self.try_train_iteration_vec(&mut slots)?);
        }
        Ok(reports)
    }

    /// Build the per-worker env slots for vectorized collection. Policy
    /// RNG streams use seed splits `0..n_envs`; each clone's *internal*
    /// noise source is decorrelated via [`Env::decorrelate`] with splits
    /// `n_envs..2·n_envs`, disjoint from the policy streams.
    fn make_slots<E: Env + Clone + Send>(&self, env: &E) -> Vec<EnvSlot<E>> {
        (0..self.cfg.n_envs)
            .map(|w| {
                let mut slot_env = env.clone();
                slot_env.decorrelate(exec::split_seed(self.cfg.seed, (self.cfg.n_envs + w) as u64));
                EnvSlot {
                    env: slot_env,
                    rng: StdRng::seed_from_u64(exec::split_seed(self.cfg.seed, w as u64)),
                    cur_obs: None,
                    ret_acc: 0.0,
                }
            })
            .collect()
    }

    /// One collect + update cycle. Panics on structural failure — use
    /// [`Ppo::try_train_iteration`] to handle it as a value.
    pub fn train_iteration<E: Env>(&mut self, env: &mut E) -> TrainReport {
        self.try_train_iteration(env).unwrap_or_else(|e| panic!("PPO training failed: {e}"))
    }

    /// One collect + update cycle behind the divergence guard.
    pub fn try_train_iteration<E: Env>(&mut self, env: &mut E) -> Result<TrainReport, TrainError> {
        self.iteration += 1;
        telemetry::counter_add("rl.iterations", 1);
        let t0 = std::time::Instant::now();
        let (buf, raw_step_reward, ep_rewards, mean_entropy, poisoned) = {
            let _span = telemetry::span!("train.rollout");
            self.collect_rollout(env)
        };
        let rollout_wall_s = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let (policy_loss, value_loss) = {
            let _span = telemetry::span!("train.update");
            self.guarded_update(&buf, poisoned)?
        };
        let update_wall_s = t1.elapsed().as_secs_f64();
        Ok(TrainReport {
            iteration: self.iteration,
            total_steps: self.total_steps,
            mean_step_reward: raw_step_reward,
            mean_episode_reward: nn::ops::mean(&ep_rewards),
            episodes_completed: ep_rewards.len(),
            entropy: mean_entropy,
            policy_loss,
            value_loss,
            n_envs: 1,
            rollout_wall_s,
            rollout_steps_per_s: self.cfg.n_steps as f64 / rollout_wall_s.max(1e-12),
            update_wall_s,
            worker_wall_s: vec![rollout_wall_s],
            guard_trips: self.guard_trips,
        })
    }

    /// Collect `cfg.n_steps` transitions, continuing episodes across
    /// iterations. Returns the buffer (with GAE computed), mean raw step
    /// reward, completed-episode raw rewards, mean entropy, and the count
    /// of non-finite values sanitized out of the stream.
    fn collect_rollout<E: Env>(
        &mut self,
        env: &mut E,
    ) -> (RolloutBuffer, f64, Vec<f64>, f64, usize) {
        let n = self.cfg.n_steps;
        let mut buf = RolloutBuffer::with_capacity(n);
        let mut raw_rewards = Vec::with_capacity(n);
        let mut ep_rewards = Vec::new();
        let mut cur_ep_reward = 0.0;
        let mut entropy_acc = 0.0;
        let mut poisoned = 0;

        let mut raw_obs = match self.cur_obs.take() {
            Some(o) => o,
            None => env.reset(&mut self.rng),
        };
        poisoned += sanitize(&mut raw_obs);
        for _ in 0..n {
            let obs = match &mut self.obs_norm {
                Some(norm) => norm.observe_and_normalize(&raw_obs),
                None => raw_obs.clone(),
            };
            let (action, log_prob) = self.policy.sample(&obs, &mut self.rng);
            entropy_acc += self.policy.entropy(&obs);
            let value = self.value.value(&obs);
            let mut step = env.step(&action, &mut self.rng);
            poisoned += sanitize(std::slice::from_mut(&mut step.reward));
            raw_rewards.push(step.reward);
            cur_ep_reward += step.reward;
            let reward = self.scale_reward(step.reward, step.done);
            buf.transitions.push(Transition {
                obs,
                action,
                reward,
                done: step.done,
                log_prob,
                value,
            });
            self.total_steps += 1;
            if step.done {
                ep_rewards.push(cur_ep_reward);
                cur_ep_reward = 0.0;
                raw_obs = env.reset(&mut self.rng);
            } else {
                raw_obs = step.obs;
            }
            poisoned += sanitize(&mut raw_obs);
        }
        // Bootstrap value for a rollout that ends mid-episode.
        let last_norm = match &self.obs_norm {
            Some(norm) => norm.normalize(&raw_obs),
            None => raw_obs.clone(),
        };
        buf.last_value = self.value.value(&last_norm);
        self.cur_obs = Some(raw_obs);

        buf.compute_gae(self.cfg.gamma, self.cfg.lambda);
        buf.normalize_advantages();
        let mean_raw = nn::ops::mean(&raw_rewards);
        (buf, mean_raw, ep_rewards, entropy_acc / n as f64, poisoned)
    }

    /// One collect + update cycle over parallel env slots.
    fn try_train_iteration_vec<E: Env + Clone + Send>(
        &mut self,
        slots: &mut [EnvSlot<E>],
    ) -> Result<TrainReport, TrainError> {
        self.iteration += 1;
        telemetry::counter_add("rl.iterations", 1);
        let t0 = std::time::Instant::now();
        let (buf, raw_step_reward, ep_rewards, mean_entropy, worker_wall_s, poisoned) = {
            let _span = telemetry::span!("train.rollout");
            self.collect_rollout_vec(slots)?
        };
        let rollout_wall_s = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let (policy_loss, value_loss) = {
            let _span = telemetry::span!("train.update");
            self.guarded_update(&buf, poisoned)?
        };
        let update_wall_s = t1.elapsed().as_secs_f64();
        Ok(TrainReport {
            iteration: self.iteration,
            total_steps: self.total_steps,
            mean_step_reward: raw_step_reward,
            mean_episode_reward: nn::ops::mean(&ep_rewards),
            episodes_completed: ep_rewards.len(),
            entropy: mean_entropy,
            policy_loss,
            value_loss,
            n_envs: slots.len(),
            rollout_wall_s,
            rollout_steps_per_s: self.cfg.n_steps as f64 / rollout_wall_s.max(1e-12),
            update_wall_s,
            worker_wall_s,
            guard_trips: self.guard_trips,
        })
    }

    /// Collect `cfg.n_steps` transitions split evenly across `slots`, each
    /// slot stepped on its own worker thread against a read-only snapshot
    /// of the policy, value net, and observation statistics.
    ///
    /// Workers record *raw* rewards and frozen-normalized observations;
    /// everything order-sensitive — observation-statistics updates, reward
    /// scaling against the shared return std, GAE, advantage
    /// normalization — happens at merge time in fixed slot order, which is
    /// what makes the result independent of thread scheduling. Returns the
    /// merged buffer, mean raw step reward, completed-episode raw rewards,
    /// mean entropy, per-worker wall-clock seconds, and the count of
    /// non-finite values sanitized out of the stream.
    ///
    /// Workers run fault-isolated: a panicked slot is rolled back to its
    /// pre-iteration state and retried up to `cfg.worker_retries` times
    /// (the rollout job is deterministic given the slot, so a successful
    /// retry merges identically); exhaustion fails the iteration with
    /// [`TrainError::Worker`].
    #[allow(clippy::type_complexity)]
    fn collect_rollout_vec<E: Env + Clone + Send>(
        &mut self,
        slots: &mut [EnvSlot<E>],
    ) -> Result<(RolloutBuffer, f64, Vec<f64>, f64, Vec<f64>, usize), TrainError> {
        let n = self.cfg.n_steps;
        let seg = n / slots.len();
        let policy = &self.policy;
        let value_net = &self.value;
        let frozen = self.obs_norm.clone();

        let job = |_w: usize, slot: &mut EnvSlot<E>, hb: &exec::Heartbeat| -> SegOut {
            let mut raw_obs_log = Vec::with_capacity(seg);
            let mut transitions = Vec::with_capacity(seg);
            let mut entropy_acc = 0.0;
            let mut poisoned = 0;
            let mut raw_obs = match slot.cur_obs.take() {
                Some(o) => o,
                None => slot.env.reset(&mut slot.rng),
            };
            poisoned += sanitize(&mut raw_obs);
            for _ in 0..seg {
                // One beat per environment step is the liveness contract
                // the watchdog supervises (and where a cancelled slot
                // panics into the rollback/retry path).
                hb.beat();
                let obs = match &frozen {
                    Some(norm) => norm.normalize(&raw_obs),
                    None => raw_obs.clone(),
                };
                let (action, log_prob) = policy.sample(&obs, &mut slot.rng);
                entropy_acc += policy.entropy(&obs);
                let value = value_net.value(&obs);
                let mut step = slot.env.step(&action, &mut slot.rng);
                poisoned += sanitize(std::slice::from_mut(&mut step.reward));
                let mut next_raw = if step.done { slot.env.reset(&mut slot.rng) } else { step.obs };
                poisoned += sanitize(&mut next_raw);
                raw_obs_log.push(std::mem::replace(&mut raw_obs, next_raw));
                transitions.push(Transition {
                    obs,
                    action,
                    // Raw reward; scaled deterministically at merge time.
                    reward: step.reward,
                    done: step.done,
                    log_prob,
                    value,
                });
            }
            let last_norm = match &frozen {
                Some(norm) => norm.normalize(&raw_obs),
                None => raw_obs.clone(),
            };
            let last_value = value_net.value(&last_norm);
            slot.cur_obs = Some(raw_obs);
            SegOut { raw_obs: raw_obs_log, transitions, last_value, entropy_acc, poisoned }
        };
        let watchdog = if self.cfg.watchdog_timeout_ms > 0 {
            Some(exec::WatchdogConfig::with_timeout_ms(self.cfg.watchdog_timeout_ms))
        } else {
            exec::WatchdogConfig::from_env()
        };
        let run = exec::run_on_slots_watchdog(
            slots,
            &fault::Backoff::none(self.cfg.worker_retries),
            watchdog.as_ref(),
            job,
        )?;
        let worker_wall_s: Vec<f64> = run.stats.iter().map(|s| s.wall_s).collect();

        // Merge in fixed slot order: batch the observation-statistics
        // update, then scale rewards sequentially and compute GAE per
        // segment (each segment bootstraps from its own last value).
        if let Some(norm) = &mut self.obs_norm {
            for seg_out in &run.results {
                for o in &seg_out.raw_obs {
                    norm.observe(o);
                }
            }
        }
        let mut buf = RolloutBuffer::with_capacity(n);
        let mut raw_sum = 0.0;
        let mut ep_rewards = Vec::new();
        let mut entropy_total = 0.0;
        let mut poisoned_total = 0;
        for (slot, seg_out) in slots.iter_mut().zip(run.results) {
            entropy_total += seg_out.entropy_acc;
            poisoned_total += seg_out.poisoned;
            let mut seg_buf = RolloutBuffer::with_capacity(seg);
            // Episode-reward accounting restarts each iteration, mirroring
            // the serial path's treatment of episodes that span iterations.
            let mut cur_ep_reward = 0.0;
            for mut t in seg_out.transitions {
                let raw = t.reward;
                raw_sum += raw;
                cur_ep_reward += raw;
                t.reward = Self::scale_reward_impl(
                    self.cfg.normalize_reward,
                    self.cfg.gamma,
                    &mut slot.ret_acc,
                    &mut self.ret_stats,
                    raw,
                    t.done,
                );
                if t.done {
                    ep_rewards.push(cur_ep_reward);
                    cur_ep_reward = 0.0;
                }
                seg_buf.transitions.push(t);
            }
            seg_buf.last_value = seg_out.last_value;
            seg_buf.compute_gae(self.cfg.gamma, self.cfg.lambda);
            buf.transitions.extend(seg_buf.transitions);
            buf.advantages.extend(seg_buf.advantages);
            buf.returns.extend(seg_buf.returns);
            self.total_steps += seg;
        }
        buf.normalize_advantages();
        Ok((
            buf,
            raw_sum / (seg * slots.len()) as f64,
            ep_rewards,
            entropy_total / n as f64,
            worker_wall_s,
            poisoned_total,
        ))
    }

    /// VecNormalize-style reward scaling by the running std of the
    /// discounted return.
    fn scale_reward(&mut self, r: f64, done: bool) -> f64 {
        Self::scale_reward_impl(
            self.cfg.normalize_reward,
            self.cfg.gamma,
            &mut self.ret_acc,
            &mut self.ret_stats,
            r,
            done,
        )
    }

    /// Shared implementation of [`Ppo::scale_reward`]: the parallel path
    /// applies it at merge time with each env slot's own discounted-return
    /// accumulator against the single shared `ret_stats`.
    fn scale_reward_impl(
        normalize: bool,
        gamma: f64,
        ret_acc: &mut f64,
        ret_stats: &mut RunningMeanStd,
        r: f64,
        done: bool,
    ) -> f64 {
        if !normalize {
            return r;
        }
        *ret_acc = gamma * *ret_acc + r;
        ret_stats.observe(&[*ret_acc]);
        if done {
            *ret_acc = 0.0;
        }
        let std = ret_stats.std()[0];
        (r / std.max(1e-4)).clamp(-10.0, 10.0)
    }

    /// Run the PPO update behind the divergence guard.
    ///
    /// A rollout that needed sanitizing, or an update that produced
    /// non-finite losses/gradients/weights, is *skipped*: the pre-update
    /// nets and optimizer moments are restored, the effective learning
    /// rate is multiplied by `cfg.guard_lr_backoff`, and training moves on
    /// to the next rollout. More than `cfg.guard_max_trips` trips fails
    /// with [`TrainError::Diverged`] carrying the last trip's
    /// [`DivergenceReport`]. A skipped update reports NaN losses.
    fn guarded_update(
        &mut self,
        buf: &RolloutBuffer,
        poisoned: usize,
    ) -> Result<(f64, f64), TrainError> {
        if poisoned > 0 {
            self.trip(format!(
                "{poisoned} non-finite value(s) sanitized out of the rollout; update skipped"
            ))?;
            return Ok((f64::NAN, f64::NAN));
        }
        let stash = self.stash_nets();
        match self.update_checked(buf) {
            Ok(losses) => Ok(losses),
            Err(reason) => {
                self.restore_nets(stash);
                self.trip(reason)?;
                Ok((f64::NAN, f64::NAN))
            }
        }
    }

    /// Record a divergence-guard trip: back off the learning rate, emit a
    /// telemetry event (`rl.guard.trips` counter + `rl.guard.trip` event —
    /// stderr stays reserved for fatal errors), and fail with
    /// [`TrainError::Diverged`] once the budget is spent.
    fn trip(&mut self, reason: String) -> Result<(), TrainError> {
        self.guard_trips += 1;
        self.lr_scale *= self.cfg.guard_lr_backoff;
        let report = DivergenceReport {
            iteration: self.iteration,
            trips: self.guard_trips,
            lr_scale: self.lr_scale,
            reason,
        };
        if self.guard_trips > self.cfg.guard_max_trips {
            return Err(TrainError::Diverged(report));
        }
        telemetry::counter_add("rl.guard.trips", 1);
        telemetry::event("rl.guard.trip", &format!("{report}; update skipped, nets rolled back"));
        Ok(())
    }

    /// Everything [`Ppo::update_checked`] mutates besides the RNG: nets
    /// and optimizer moments, stashed so a diverged update can be undone.
    fn stash_nets(&self) -> (PolicyKind, ValueNet, Adam, Adam, Option<AdamVec>) {
        (
            self.policy.clone(),
            self.value.clone(),
            self.opt_policy.clone(),
            self.opt_value.clone(),
            self.opt_log_std.clone(),
        )
    }

    fn restore_nets(&mut self, stash: (PolicyKind, ValueNet, Adam, Adam, Option<AdamVec>)) {
        (self.policy, self.value, self.opt_policy, self.opt_value, self.opt_log_std) = stash;
    }

    /// Clipped-surrogate update over the rollout. Returns the final epoch's
    /// mean (policy loss, value loss), or a description of the first
    /// non-finite quantity detected (gradients are checked before every
    /// optimizer step, losses and weights after the final epoch).
    ///
    /// Three interchangeable minibatch gradient paths sit underneath,
    /// selected by `cfg.batched_updates` / `cfg.grad_workers`; all produce
    /// bit-identical gradients, losses, and optimizer steps (see
    /// `docs/PERF.md` for the argument and the measured speedups):
    ///
    /// * **legacy serial** (`batched_updates: false`) — two per-sample
    ///   forwards per net per transition; the reference implementation.
    /// * **batched** (`batched_updates: true`, `grad_workers <= 1`) — one
    ///   batched forward per net per minibatch via `nn`'s matrix–matrix
    ///   kernels, backward via [`nn::Mlp::grads_batch`].
    /// * **parallel** (`grad_workers > 1`) — per-sample gradients fan out
    ///   over `exec::par_chunks` into reused scratch buffers and merge in
    ///   global sample order.
    fn update_checked(&mut self, buf: &RolloutBuffer) -> Result<(f64, f64), String> {
        // Fault point `ppo.update`: `panic@ppo.update:<n>` crashes the
        // process at the nth update step (the checkpoint written after the
        // previous iteration survives and a rerun resumes from it).
        let _ = fault::check("ppo.update");
        self.opt_policy.lr = self.cfg.lr * self.lr_scale;
        self.opt_value.lr = self.cfg.lr * self.lr_scale;
        if let Some(opt) = &mut self.opt_log_std {
            opt.lr = self.cfg.lr * self.lr_scale;
        }
        let n = buf.len();
        let mut indices: Vec<usize> = (0..n).collect();
        let mut pgrads = MlpGrads::zeros_like(self.policy.net());
        let mut vgrads = MlpGrads::zeros_like(&self.value.net);
        let mut pcache = self.policy.net().new_cache();
        let mut vcache = self.value.net.new_cache();
        let mut bpcache = nn::BatchCache::default();
        let mut bvcache = nn::BatchCache::default();
        let mut last_policy_loss = 0.0;
        let mut last_value_loss = 0.0;

        for epoch in 0..self.cfg.epochs {
            indices.shuffle(&mut self.rng);
            let mut epoch_ploss = 0.0;
            let mut epoch_vloss = 0.0;
            let mut batches = 0.0;
            for chunk in indices.chunks(self.cfg.minibatch_size) {
                pgrads.zero();
                vgrads.zero();
                let mut log_std_grad = match &self.policy {
                    PolicyKind::Gaussian(g) => vec![0.0; g.log_std.len()],
                    PolicyKind::Categorical(_) => Vec::new(),
                };
                let (ploss, vloss) = if !self.cfg.batched_updates {
                    self.minibatch_grads_serial(
                        buf,
                        chunk,
                        &mut pcache,
                        &mut vcache,
                        &mut pgrads,
                        &mut vgrads,
                        &mut log_std_grad,
                    )
                } else if self.cfg.grad_workers > 1 {
                    self.minibatch_grads_parallel(
                        buf,
                        chunk,
                        &mut pgrads,
                        &mut vgrads,
                        &mut log_std_grad,
                    )
                } else {
                    self.minibatch_grads_batched(
                        buf,
                        chunk,
                        &mut bpcache,
                        &mut bvcache,
                        &mut pgrads,
                        &mut vgrads,
                        &mut log_std_grad,
                    )
                };
                // Fault point `nn.grads`: `nan@nn.grads:<n>` poisons the
                // nth minibatch's policy gradients, which the finite
                // check below must catch — tripping the divergence guard
                // (net rollback + LR backoff), never stepping on NaNs.
                if fault::active() && fault::check("nn.grads") == Some(fault::Injection::Nan) {
                    pgrads.scale(f64::NAN);
                }
                let pnorm = pgrads.clip_global_norm(self.cfg.max_grad_norm);
                let vnorm = vgrads.clip_global_norm(self.cfg.max_grad_norm);
                if !pnorm.is_finite()
                    || !vnorm.is_finite()
                    || log_std_grad.iter().any(|g| !g.is_finite())
                {
                    return Err(format!(
                        "non-finite gradients in epoch {epoch}: policy norm {pnorm:e}, \
                         value norm {vnorm:e}"
                    ));
                }
                match &mut self.policy {
                    PolicyKind::Gaussian(g) => {
                        self.opt_policy.step(&mut g.mean_net, &pgrads);
                        self.opt_log_std
                            .as_mut()
                            .expect("gaussian policies have a log-std optimizer")
                            .step(&mut g.log_std, &log_std_grad);
                    }
                    PolicyKind::Categorical(c) => {
                        self.opt_policy.step(&mut c.logits_net, &pgrads);
                    }
                }
                self.opt_value.step(&mut self.value.net, &vgrads);
                epoch_ploss += ploss / chunk.len() as f64;
                epoch_vloss += vloss / chunk.len() as f64;
                batches += 1.0;
            }
            last_policy_loss = epoch_ploss / batches;
            last_value_loss = epoch_vloss / batches;
        }
        if !last_policy_loss.is_finite() || !last_value_loss.is_finite() {
            return Err(format!(
                "non-finite losses after update: policy {last_policy_loss}, \
                 value {last_value_loss}"
            ));
        }
        let log_std_ok = match &self.policy {
            PolicyKind::Gaussian(g) => g.log_std.iter().all(|v| v.is_finite()),
            PolicyKind::Categorical(_) => true,
        };
        if !self.policy.net().all_finite() || !self.value.net.all_finite() || !log_std_ok {
            return Err("non-finite weights after update".to_string());
        }
        Ok((last_policy_loss, last_value_loss))
    }

    /// Legacy per-sample minibatch gradients (`batched_updates: false`):
    /// the reference implementation the batched and parallel paths must
    /// match bit-for-bit. Two per-sample forwards per network per
    /// transition (one for the ratio, one cached for backprop). Returns
    /// the minibatch's summed (policy, value) loss; gradients accumulate
    /// into `pgrads` / `vgrads` / `log_std_grad`.
    #[allow(clippy::too_many_arguments)]
    fn minibatch_grads_serial(
        &self,
        buf: &RolloutBuffer,
        chunk: &[usize],
        pcache: &mut nn::Cache,
        vcache: &mut nn::Cache,
        pgrads: &mut MlpGrads,
        vgrads: &mut MlpGrads,
        log_std_grad: &mut [f64],
    ) -> (f64, f64) {
        let inv_b = 1.0 / chunk.len() as f64;
        let mut ploss = 0.0;
        let mut vloss = 0.0;
        for &i in chunk {
            let t = &buf.transitions[i];
            let adv = buf.advantages[i];
            let ret = buf.returns[i];
            let logp_new = self.policy.log_prob(&t.obs, &t.action);
            let ratio = (logp_new - t.log_prob).exp();
            let unclipped = ratio * adv;
            let clipped = ratio.clamp(1.0 - self.cfg.clip, 1.0 + self.cfg.clip) * adv;
            let surrogate = unclipped.min(clipped);
            ploss += -surrogate;
            // Gradient flows only when the unclipped branch is
            // active (min picks it), matching autograd through
            // min(ratio·A, clip(ratio)·A).
            let c_logp = if unclipped <= clipped { -adv * ratio * inv_b } else { 0.0 };
            let c_ent = -self.cfg.ent_coef * inv_b;
            match &self.policy {
                PolicyKind::Gaussian(g) => g.accumulate_grads(
                    &t.obs,
                    t.action.vector(),
                    c_logp,
                    c_ent,
                    pcache,
                    pgrads,
                    log_std_grad,
                ),
                PolicyKind::Categorical(c) => {
                    c.accumulate_grads(&t.obs, t.action.index(), c_logp, c_ent, pcache, pgrads)
                }
            }
            let v = self.value.value(&t.obs);
            vloss += 0.5 * (v - ret) * (v - ret);
            self.value.accumulate_grads(
                &t.obs,
                self.cfg.vf_coef * (v - ret) * inv_b,
                vcache,
                vgrads,
            );
        }
        (ploss, vloss)
    }

    /// Batched minibatch gradients (`batched_updates: true`, single
    /// worker): one batched cached forward per network per minibatch,
    /// per-sample head math in chunk order, then one
    /// [`nn::Mlp::grads_batch`] backward per network. Bit-identical to
    /// [`Ppo::minibatch_grads_serial`] because every batched kernel
    /// replays the serial path's per-element operation order (see
    /// `docs/PERF.md` for the argument).
    #[allow(clippy::too_many_arguments)]
    fn minibatch_grads_batched(
        &self,
        buf: &RolloutBuffer,
        chunk: &[usize],
        bpcache: &mut nn::BatchCache,
        bvcache: &mut nn::BatchCache,
        pgrads: &mut MlpGrads,
        vgrads: &mut MlpGrads,
        log_std_grad: &mut [f64],
    ) -> (f64, f64) {
        let inv_b = 1.0 / chunk.len() as f64;
        let c_ent = -self.cfg.ent_coef * inv_b;
        let obs = buf.gather_obs(chunk);
        let pout = self.policy.net().forward_batch_cached(&obs, bpcache);
        let vout = self.value.net.forward_batch_cached(&obs, bvcache);
        let mut dpol = nn::Matrix::zeros(chunk.len(), pout.cols());
        let mut dval = nn::Matrix::zeros(chunk.len(), 1);
        // `stds()` is a pure function of `log_std`, so hoisting it out of
        // the sample loop returns the exact bits the serial path recomputes
        // per sample.
        let stds = match &self.policy {
            PolicyKind::Gaussian(g) => g.stds(),
            PolicyKind::Categorical(_) => Vec::new(),
        };
        let mut lp = vec![0.0; pout.cols()];
        let mut ploss = 0.0;
        let mut vloss = 0.0;
        for (s, &i) in chunk.iter().enumerate() {
            let t = &buf.transitions[i];
            let adv = buf.advantages[i];
            let ret = buf.returns[i];
            let logp_new = match &self.policy {
                PolicyKind::Gaussian(_) => {
                    crate::policy::gaussian_log_prob(pout.row(s), &stds, t.action.vector())
                }
                PolicyKind::Categorical(_) => {
                    nn::ops::log_softmax_into(pout.row(s), &mut lp);
                    lp[t.action.index()]
                }
            };
            let ratio = (logp_new - t.log_prob).exp();
            let unclipped = ratio * adv;
            let clipped = ratio.clamp(1.0 - self.cfg.clip, 1.0 + self.cfg.clip) * adv;
            let surrogate = unclipped.min(clipped);
            ploss += -surrogate;
            let c_logp = if unclipped <= clipped { -adv * ratio * inv_b } else { 0.0 };
            match &self.policy {
                PolicyKind::Gaussian(g) => g.dmean_row(
                    pout.row(s),
                    t.action.vector(),
                    &stds,
                    c_logp,
                    c_ent,
                    dpol.row_mut(s),
                    log_std_grad,
                ),
                PolicyKind::Categorical(c) => {
                    c.dlogits_row(&lp, t.action.index(), c_logp, c_ent, dpol.row_mut(s))
                }
            }
            let v = vout.get(s, 0);
            vloss += 0.5 * (v - ret) * (v - ret);
            dval.set(s, 0, self.cfg.vf_coef * (v - ret) * inv_b);
        }
        self.policy.net().grads_batch(bpcache, &dpol, pgrads);
        self.value.net.grads_batch(bvcache, &dval, vgrads);
        // Fault point `nn.grads_batch`: the batched analogue of `nn.grads`
        // — `nan@nn.grads_batch:<n>` poisons the nth batched backward's
        // policy gradients, which the finite check in `update_checked`
        // must catch before any optimizer step.
        if fault::active() && fault::check("nn.grads_batch") == Some(fault::Injection::Nan) {
            pgrads.scale(f64::NAN);
        }
        (ploss, vloss)
    }

    /// Parallel minibatch gradients (`grad_workers > 1`): transitions fan
    /// out in blocks over [`exec::par_chunks`] into **reusable**
    /// per-sample gradient buffers ([`GradScratch`]), then merge **in
    /// global sample order** on the caller's thread. A per-sample buffer
    /// is zeroed before it is filled, so merging buffers in sample order
    /// performs the exact element additions of the serial loop — the
    /// result is bit-identical for *any* worker count (a per-worker
    /// partial-sum reduction would not be, since it re-associates the
    /// floating-point sum).
    ///
    /// All allocation happens serially on the caller thread *before* the
    /// fan-out, and only on first use (or growth) of each buffer: in
    /// steady state the pool workers allocate nothing, which — together
    /// with the persistent pool itself — is what turned this path from a
    /// 0.17× regression into a speedup (docs/PERF.md §4).
    fn minibatch_grads_parallel(
        &self,
        buf: &RolloutBuffer,
        chunk: &[usize],
        pgrads: &mut MlpGrads,
        vgrads: &mut MlpGrads,
        log_std_grad: &mut [f64],
    ) -> (f64, f64) {
        if telemetry::enabled() {
            telemetry::counter_add("rl.grad.fanout.minibatches", 1);
            telemetry::counter_add("rl.grad.fanout.samples", chunk.len() as u64);
            telemetry::gauge_set("rl.grad.workers", self.cfg.grad_workers as f64);
        }
        let inv_b = 1.0 / chunk.len() as f64;
        let c_ent = -self.cfg.ent_coef * inv_b;
        let (clip, vf_coef) = (self.cfg.clip, self.cfg.vf_coef);
        let policy = &self.policy;
        let value = &self.value;
        let log_std_len = log_std_grad.len();
        let workers = self.cfg.grad_workers.min(chunk.len()).max(1);
        // ~4 blocks per worker: coarse enough to amortize claim overhead,
        // fine enough that an idle worker can steal a straggler's tail.
        let block_len = chunk.len().div_ceil(workers * 4).max(1);
        let n_blocks = chunk.len().div_ceil(block_len);

        let mut scratch = self.grad_scratch.lock().expect("grad scratch lock poisoned");
        let scratch = &mut *scratch;
        // Serial pre-pass: grow every buffer the fan-out will touch, so
        // workers only zero and fill. Counted for the reuse assert.
        while scratch.workers.len() < workers {
            scratch.workers.push(WorkerCaches {
                pcache: policy.net().new_cache(),
                vcache: value.net.new_cache(),
            });
        }
        if scratch.blocks.len() < n_blocks {
            scratch.blocks.resize_with(n_blocks, GradBlock::default);
        }
        for (b, block) in scratch.blocks.iter_mut().enumerate().take(n_blocks) {
            let lo = b * block_len;
            let need = block_len.min(chunk.len() - lo);
            while block.samples.len() < need {
                block.samples.push(SampleGrad {
                    pgrads: MlpGrads::zeros_like(policy.net()),
                    vgrads: MlpGrads::zeros_like(&value.net),
                    log_std_grad: vec![0.0; log_std_len],
                    ploss: 0.0,
                    vloss: 0.0,
                });
                scratch.sample_allocs += 1;
            }
            block.used = need;
        }

        let fill = |b: usize, block: &mut GradBlock, caches: &mut WorkerCaches| {
            let lo = b * block_len;
            for (j, sg) in block.samples.iter_mut().enumerate().take(block.used) {
                let i = chunk[lo + j];
                let t = &buf.transitions[i];
                let adv = buf.advantages[i];
                let ret = buf.returns[i];
                sg.pgrads.zero();
                sg.vgrads.zero();
                sg.log_std_grad.iter_mut().for_each(|g| *g = 0.0);
                let logp_new = policy.log_prob(&t.obs, &t.action);
                let ratio = (logp_new - t.log_prob).exp();
                let unclipped = ratio * adv;
                let clipped = ratio.clamp(1.0 - clip, 1.0 + clip) * adv;
                let surrogate = unclipped.min(clipped);
                let c_logp = if unclipped <= clipped { -adv * ratio * inv_b } else { 0.0 };
                match policy {
                    PolicyKind::Gaussian(g) => g.accumulate_grads(
                        &t.obs,
                        t.action.vector(),
                        c_logp,
                        c_ent,
                        &mut caches.pcache,
                        &mut sg.pgrads,
                        &mut sg.log_std_grad,
                    ),
                    PolicyKind::Categorical(c) => c.accumulate_grads(
                        &t.obs,
                        t.action.index(),
                        c_logp,
                        c_ent,
                        &mut caches.pcache,
                        &mut sg.pgrads,
                    ),
                }
                let v = value.value(&t.obs);
                value.accumulate_grads(
                    &t.obs,
                    vf_coef * (v - ret) * inv_b,
                    &mut caches.vcache,
                    &mut sg.vgrads,
                );
                sg.ploss = -surrogate;
                sg.vloss = 0.5 * (v - ret) * (v - ret);
            }
        };
        exec::par_chunks(&mut scratch.workers[..workers], &mut scratch.blocks[..n_blocks], fill);

        // Fault point `exec.grad_accum`: `panic@exec.grad_accum:<n>`
        // crashes the nth merge step (recovered at the training layer by
        // checkpoint/resume), as it did when the merge lived inside
        // `exec::par_map_fold`.
        if fault::active() {
            let _ = fault::check("exec.grad_accum");
        }
        let mut losses = (0.0, 0.0);
        for block in scratch.blocks.iter().take(n_blocks) {
            for sg in block.samples.iter().take(block.used) {
                pgrads.add_assign(&sg.pgrads);
                vgrads.add_assign(&sg.vgrads);
                for (a, b) in log_std_grad.iter_mut().zip(sg.log_std_grad.iter()) {
                    *a += b;
                }
                losses = (losses.0 + sg.ploss, losses.1 + sg.vloss);
            }
        }
        losses
    }

    /// How many per-sample gradient buffers the parallel fan-out has ever
    /// allocated. In steady state this stops moving: successive updates
    /// reuse the same `GradScratch` buffers (asserted by
    /// `grad_scratch_is_reused_across_updates`).
    pub fn grad_scratch_allocs(&self) -> u64 {
        self.grad_scratch.lock().expect("grad scratch lock poisoned").sample_allocs
    }
}

/// Checkpoint/resume: everything here round-trips bit-exactly (the JSON
/// layer preserves `f64` values losslessly), so a resumed run continues
/// the exact trajectory of an uninterrupted one.
impl Ppo {
    /// Capture the full trainer state for checkpointing.
    pub fn to_train_state(&self) -> TrainState {
        TrainState {
            cfg: self.cfg.clone(),
            policy: self.policy.clone(),
            value: self.value.clone(),
            opt_policy: self.opt_policy.clone(),
            opt_value: self.opt_value.clone(),
            opt_log_std: self.opt_log_std.clone(),
            obs_norm: self.obs_norm.clone(),
            rng: self.rng.state().to_vec(),
            cur_obs: self.cur_obs.clone(),
            ret_acc: self.ret_acc,
            ret_stats: self.ret_stats.clone(),
            total_steps: self.total_steps,
            iteration: self.iteration,
            lr_scale: self.lr_scale,
            guard_trips: self.guard_trips,
        }
    }

    /// Reconstruct a trainer from a captured [`TrainState`].
    pub fn from_train_state(state: &TrainState) -> Result<Ppo, TrainError> {
        state.cfg.validate();
        let rng_words: [u64; 4] = state.rng.as_slice().try_into().map_err(|_| {
            TrainError::Mismatch(format!(
                "trainer RNG state has {} words, expected 4",
                state.rng.len()
            ))
        })?;
        Ok(Ppo {
            policy: state.policy.clone(),
            value: state.value.clone(),
            cfg: state.cfg.clone(),
            obs_norm: state.obs_norm.clone(),
            opt_policy: state.opt_policy.clone(),
            opt_value: state.opt_value.clone(),
            opt_log_std: state.opt_log_std.clone(),
            rng: StdRng::from_state(rng_words),
            cur_obs: state.cur_obs.clone(),
            ret_acc: state.ret_acc,
            ret_stats: state.ret_stats.clone(),
            total_steps: state.total_steps,
            iteration: state.iteration,
            lr_scale: state.lr_scale,
            guard_trips: state.guard_trips,
            grad_scratch: Mutex::new(GradScratch::default()),
        })
    }

    /// Replace this trainer's state with a checkpointed one. Fails with
    /// [`TrainError::Mismatch`] if the checkpoint was written under a
    /// different configuration.
    pub fn restore_train_state(&mut self, state: &TrainState) -> Result<(), TrainError> {
        if self.cfg.to_value() != state.cfg.to_value() {
            return Err(TrainError::Mismatch(
                "checkpoint was written with a different PpoConfig; refusing to resume".into(),
            ));
        }
        *self = Ppo::from_train_state(state)?;
        Ok(())
    }

    /// Write this trainer's state as a standalone checkpoint (atomic,
    /// checksummed). Pairs with [`Ppo::resume_from`]. For checkpointing
    /// *inside* a training loop — which also needs environment state —
    /// use [`Ppo::train_checkpointed`].
    pub fn save_checkpoint(&self, path: impl AsRef<std::path::Path>) -> Result<(), TrainError> {
        let ckpt = TrainCheckpoint {
            state: self.to_train_state(),
            env: None,
            slots: Vec::new(),
            reports: Vec::new(),
            start_steps: self.total_steps,
            target_steps: self.total_steps,
        };
        save_train_checkpoint(path.as_ref(), &ckpt)
    }

    /// Rebuild a trainer from a checkpoint written by
    /// [`Ppo::save_checkpoint`] or [`Ppo::train_checkpointed`].
    pub fn resume_from(path: impl AsRef<std::path::Path>) -> Result<Ppo, TrainError> {
        let ckpt = load_train_checkpoint(path.as_ref())?;
        Ppo::from_train_state(&ckpt.state)
    }

    /// [`Ppo::try_train_vec`] with crash safety: a checkpoint (trainer
    /// state, environment snapshots, accumulated reports) is written every
    /// `ckpt.every` iterations and once more on completion; if
    /// `ckpt.path` already exists, the run **auto-resumes** from it —
    /// `env` must then be the same pristine environment value the original
    /// call received, and the completed run is bit-identical to an
    /// uninterrupted one (kill the process at any point and re-invoke).
    ///
    /// The step budget of a resumed run comes from the checkpoint, so a
    /// finished checkpoint just returns its reports. With `cfg.n_envs == 1`
    /// collection is serial (bit-identical to [`Ppo::train`]); otherwise
    /// vectorized with fault-isolated workers.
    pub fn train_checkpointed<E>(
        &mut self,
        env: &mut E,
        total_steps: usize,
        ckpt: &Checkpointer,
    ) -> Result<Vec<TrainReport>, TrainError>
    where
        E: Env + Clone + Send + Snapshot,
    {
        let vec_path = self.cfg.n_envs > 1;
        let mut slots: Vec<EnvSlot<E>> = Vec::new();
        let mut reports: Vec<TrainReport>;
        let start: usize;
        let target: usize;
        if ckpt.path.exists() {
            let tc = load_train_checkpoint(&ckpt.path)?;
            self.restore_train_state(&tc.state)?;
            if vec_path {
                if tc.slots.len() != self.cfg.n_envs {
                    return Err(TrainError::Mismatch(format!(
                        "checkpoint has {} env slots, config wants {}",
                        tc.slots.len(),
                        self.cfg.n_envs
                    )));
                }
                slots = tc
                    .slots
                    .iter()
                    .map(|s| {
                        let mut slot_env = env.clone();
                        slot_env.restore(&s.env).map_err(|e| {
                            TrainError::Corrupt(format!("restore slot environment: {e}"))
                        })?;
                        let rng_words: [u64; 4] = s.rng.as_slice().try_into().map_err(|_| {
                            TrainError::Mismatch(format!(
                                "slot RNG state has {} words, expected 4",
                                s.rng.len()
                            ))
                        })?;
                        Ok(EnvSlot {
                            env: slot_env,
                            rng: StdRng::from_state(rng_words),
                            cur_obs: s.cur_obs.clone(),
                            ret_acc: s.ret_acc,
                        })
                    })
                    .collect::<Result<_, TrainError>>()?;
            } else {
                let snap = tc.env.as_ref().ok_or_else(|| {
                    TrainError::Corrupt("checkpoint has no serial environment snapshot".into())
                })?;
                env.restore(snap)
                    .map_err(|e| TrainError::Corrupt(format!("restore serial environment: {e}")))?;
            }
            reports = tc.reports;
            start = tc.start_steps;
            target = tc.target_steps;
        } else {
            if vec_path {
                slots = self.make_slots(env);
            }
            reports = Vec::new();
            start = self.total_steps;
            target = total_steps;
        }
        while self.total_steps - start < target {
            let report = if vec_path {
                self.try_train_iteration_vec(&mut slots)?
            } else {
                self.try_train_iteration(env)?
            };
            reports.push(report);
            if ckpt.fault_at == Some(self.iteration) {
                panic!("ADVNET_FAULT_ITER: injected crash at iteration {}", self.iteration);
            }
            // Fault point `ppo.iter`: a *value* point compared against the
            // iteration counter, which continues across a resume — so
            // `panic@ppo.iter:3` (or the legacy `ADVNET_FAULT_ITER=3`,
            // which aliases to it) crashes at iteration 3 exactly once per
            // run while armed, after that iteration's update and report
            // but before its checkpoint write.
            let _ = fault::check_value("ppo.iter", self.iteration as u64);
            let done = self.total_steps - start >= target;
            if done || self.iteration.is_multiple_of(ckpt.every) {
                let tc = TrainCheckpoint {
                    state: self.to_train_state(),
                    env: if vec_path { None } else { Some(env.snapshot()) },
                    slots: slots
                        .iter()
                        .map(|s| SlotState {
                            env: s.env.snapshot(),
                            rng: s.rng.state().to_vec(),
                            cur_obs: s.cur_obs.clone(),
                            ret_acc: s.ret_acc,
                        })
                        .collect(),
                    reports: reports.clone(),
                    start_steps: start,
                    target_steps: target,
                };
                save_train_checkpoint(&ckpt.path, &tc)?;
            }
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ActionSpace as Sp, Step};

    /// Continuous bandit: reward = −(a − target)², episode length 1.
    struct ContBandit {
        target: f64,
    }

    impl Env for ContBandit {
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_space(&self) -> Sp {
            Sp::Continuous { low: vec![-2.0], high: vec![2.0] }
        }
        fn reset(&mut self, _rng: &mut StdRng) -> Vec<f64> {
            vec![0.0]
        }
        fn step(&mut self, action: &Action, _rng: &mut StdRng) -> Step {
            let a = self.action_space().clip(action.vector())[0];
            Step { obs: vec![0.0], reward: -(a - self.target) * (a - self.target), done: true }
        }
    }

    /// Discrete bandit with per-arm payoffs.
    struct DiscBandit {
        payoffs: Vec<f64>,
    }

    impl Env for DiscBandit {
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_space(&self) -> Sp {
            Sp::Discrete { n: self.payoffs.len() }
        }
        fn reset(&mut self, _rng: &mut StdRng) -> Vec<f64> {
            vec![0.0]
        }
        fn step(&mut self, action: &Action, _rng: &mut StdRng) -> Step {
            Step { obs: vec![0.0], reward: self.payoffs[action.index()], done: true }
        }
    }

    #[test]
    fn mode_batch_bit_identical_to_per_sample_mode() {
        let mut rng = StdRng::seed_from_u64(17);
        let obs: Vec<Vec<f64>> =
            (0..9).map(|i| (0..4).map(|j| ((i * 4 + j) as f64).sin()).collect()).collect();
        let m = nn::Matrix::from_vec(9, 4, obs.concat());

        let cat = PolicyKind::Categorical(CategoricalPolicy::new(&[4, 8, 5], &mut rng));
        let batched = cat.mode_batch(&m);
        for (i, o) in obs.iter().enumerate() {
            assert_eq!(batched[i].index(), cat.mode(o).index(), "categorical row {i}");
        }

        let gauss = PolicyKind::Gaussian(GaussianPolicy::new(&[4, 8, 2], 0.5, &mut rng));
        let batched = gauss.mode_batch(&m);
        for (i, o) in obs.iter().enumerate() {
            assert_eq!(batched[i].vector(), gauss.mode(o).vector(), "gaussian row {i}");
        }
    }

    /// Observation-tracking: reward = −(a − obs)²; a new random obs each step;
    /// requires the policy to actually use its input.
    struct Tracker {
        cur: f64,
        t: usize,
    }

    impl Env for Tracker {
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_space(&self) -> Sp {
            Sp::Continuous { low: vec![-2.0], high: vec![2.0] }
        }
        fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
            use rand::Rng;
            self.t = 0;
            self.cur = rng.gen_range(-1.0..1.0);
            vec![self.cur]
        }
        fn step(&mut self, action: &Action, rng: &mut StdRng) -> Step {
            use rand::Rng;
            let a = self.action_space().clip(action.vector())[0];
            let r = -(a - self.cur) * (a - self.cur);
            self.t += 1;
            self.cur = rng.gen_range(-1.0..1.0);
            Step { obs: vec![self.cur], reward: r, done: self.t >= 16 }
        }
    }

    fn small_cfg(seed: u64) -> PpoConfig {
        PpoConfig {
            n_steps: 256,
            minibatch_size: 64,
            epochs: 6,
            lr: 3e-3,
            ent_coef: 0.001,
            seed,
            ..PpoConfig::default()
        }
    }

    #[test]
    fn ppo_solves_continuous_bandit() {
        let mut env = ContBandit { target: 0.7 };
        let mut ppo = Ppo::new_gaussian(1, 1, &[8], 0.6, small_cfg(1));
        ppo.train(&mut env, 20_000);
        let obs = ppo.normalize_obs(&[0.0]);
        let a = ppo.policy.mode(&obs).vector()[0];
        assert!((a - 0.7).abs() < 0.15, "learned action {a}, want ≈0.7");
    }

    #[test]
    fn ppo_solves_discrete_bandit() {
        let mut env = DiscBandit { payoffs: vec![0.0, 1.0, 0.2] };
        let mut ppo = Ppo::new_categorical(1, 3, &[8], small_cfg(2));
        ppo.train(&mut env, 10_000);
        let obs = ppo.normalize_obs(&[0.0]);
        assert_eq!(ppo.policy.mode(&obs).index(), 1);
    }

    #[test]
    fn ppo_tracks_observations() {
        let mut env = Tracker { cur: 0.0, t: 0 };
        let mut ppo = Ppo::new_gaussian(1, 1, &[16], 0.5, small_cfg(3));
        let reports = ppo.train(&mut env, 60_000);
        // Check the policy maps obs ≈ action across the range.
        let mut worst: f64 = 0.0;
        for &target in &[-0.8, -0.3, 0.0, 0.4, 0.9] {
            let obs = ppo.normalize_obs(&[target]);
            let a = ppo.policy.mode(&obs).vector()[0].clamp(-2.0, 2.0);
            worst = worst.max((a - target).abs());
        }
        assert!(worst < 0.3, "worst tracking error {worst}");
        // and training must have improved the step reward substantially
        let first = reports.first().unwrap().mean_step_reward;
        let last = reports.last().unwrap().mean_step_reward;
        assert!(last > first, "no improvement: {first} -> {last}");
        assert!(last > -0.05, "final step reward {last}");
    }

    #[test]
    fn ppo_reports_episodes() {
        let mut env = DiscBandit { payoffs: vec![0.5, 0.5] };
        let mut ppo = Ppo::new_categorical(1, 2, &[4], small_cfg(4));
        let reports = ppo.train(&mut env, 256);
        assert_eq!(reports.len(), 1);
        // episode length 1 → every step completes an episode
        assert_eq!(reports[0].episodes_completed, 256);
        assert!((reports[0].mean_episode_reward - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ppo_is_deterministic_given_seed() {
        let run = || {
            let mut env = ContBandit { target: -0.4 };
            let mut ppo = Ppo::new_gaussian(1, 1, &[4], 0.5, small_cfg(9));
            ppo.train(&mut env, 2048);
            ppo.policy.mode(&ppo.normalize_obs(&[0.0])).vector()[0]
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reports_export_to_csv() {
        let mut env = DiscBandit { payoffs: vec![0.1, 0.9] };
        let mut ppo = Ppo::new_categorical(1, 2, &[4], small_cfg(8));
        let reports = ppo.train(&mut env, 512);
        let dir = std::env::temp_dir().join("ppo-report-csv");
        let path = dir.join("curve.csv");
        save_reports_csv(&reports, &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("iteration,total_steps"));
        assert_eq!(body.lines().count(), reports.len() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "minibatch_size must be in 1..=n_steps")]
    fn config_validation_rejects_oversized_minibatch() {
        let cfg = PpoConfig { n_steps: 32, minibatch_size: 64, ..PpoConfig::default() };
        let _ = Ppo::new_categorical(1, 2, &[4], cfg);
    }

    /// Emits a NaN reward on exactly one step (the `poison_at`-th overall),
    /// then behaves like a bandit.
    #[derive(Clone)]
    struct PoisonOnce {
        steps: usize,
        poison_at: usize,
    }

    impl Env for PoisonOnce {
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_space(&self) -> Sp {
            Sp::Continuous { low: vec![-2.0], high: vec![2.0] }
        }
        fn reset(&mut self, _rng: &mut StdRng) -> Vec<f64> {
            vec![0.0]
        }
        fn step(&mut self, action: &Action, _rng: &mut StdRng) -> Step {
            self.steps += 1;
            let a = self.action_space().clip(action.vector())[0];
            let reward =
                if self.steps == self.poison_at { f64::NAN } else { -(a - 0.5) * (a - 0.5) };
            Step { obs: vec![0.0], reward, done: true }
        }
    }

    /// Rewards so large the value loss overflows to infinity, driving the
    /// gradient norm non-finite — the classic divergence the guard exists
    /// for. Only reachable with `normalize_reward: false`.
    #[derive(Clone)]
    struct Exploder;

    impl Env for Exploder {
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_space(&self) -> Sp {
            Sp::Continuous { low: vec![-2.0], high: vec![2.0] }
        }
        fn reset(&mut self, _rng: &mut StdRng) -> Vec<f64> {
            vec![0.0]
        }
        fn step(&mut self, _action: &Action, _rng: &mut StdRng) -> Step {
            Step { obs: vec![0.0], reward: 1e200, done: true }
        }
    }

    #[test]
    fn guard_skips_nan_poisoned_update_and_recovers() {
        // One NaN reward mid-run: the poisoned iteration's update is
        // skipped (NaN losses), everything else proceeds normally.
        let mut env = PoisonOnce { steps: 0, poison_at: 300 };
        let mut ppo = Ppo::new_gaussian(1, 1, &[4], 0.5, small_cfg(11));
        let reports = ppo.try_train(&mut env, 4 * 256).expect("guard should absorb one NaN");
        assert_eq!(reports.len(), 4);
        // step 300 falls in iteration 2 (steps 257..=512)
        assert!(reports[1].policy_loss.is_nan(), "poisoned update must be skipped");
        assert_eq!(reports[1].guard_trips, 1);
        assert_eq!(reports[3].guard_trips, 1, "no further trips");
        assert!(reports[3].policy_loss.is_finite());
        assert!(ppo.policy.net().all_finite() && ppo.value.net.all_finite());
    }

    #[test]
    fn guard_rolls_back_diverged_update() {
        let cfg = PpoConfig { normalize_reward: false, ..small_cfg(12) };
        let mut env = Exploder;
        let mut ppo = Ppo::new_gaussian(1, 1, &[4], 0.5, cfg);
        let before = serde_json::to_string(&ppo.policy).unwrap();
        let report = ppo.try_train_iteration(&mut env).expect("one trip is within budget");
        assert!(report.policy_loss.is_nan());
        assert_eq!(report.guard_trips, 1);
        // the diverged update must have been undone bit-exactly
        assert_eq!(serde_json::to_string(&ppo.policy).unwrap(), before);
        assert!(ppo.value.net.all_finite());
    }

    #[test]
    fn guard_exhaustion_fails_with_structured_report() {
        let cfg = PpoConfig { normalize_reward: false, guard_max_trips: 2, ..small_cfg(13) };
        let mut env = Exploder;
        let mut ppo = Ppo::new_gaussian(1, 1, &[4], 0.5, cfg);
        match ppo.try_train(&mut env, 10 * 256) {
            Err(TrainError::Diverged(r)) => {
                assert_eq!(r.trips, 3, "budget of 2 + the fatal trip");
                assert!(r.lr_scale < 0.2, "LR backed off each trip: {}", r.lr_scale);
                assert!(r.reason.contains("non-finite"), "{}", r.reason);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn vec_worker_panic_is_retried_deterministically() {
        use std::sync::atomic::{AtomicBool, Ordering};
        static TRIPPED: AtomicBool = AtomicBool::new(false);

        /// Tracker whose clone in slot 1 panics once (process-global
        /// latch), modelling a transient worker fault.
        #[derive(Clone)]
        struct Flaky {
            inner_target: f64,
            t: usize,
            armed: bool,
        }

        impl Env for Flaky {
            fn obs_dim(&self) -> usize {
                1
            }
            fn action_space(&self) -> Sp {
                Sp::Continuous { low: vec![-2.0], high: vec![2.0] }
            }
            fn reset(&mut self, _rng: &mut StdRng) -> Vec<f64> {
                self.t = 0;
                vec![0.0]
            }
            fn step(&mut self, action: &Action, _rng: &mut StdRng) -> Step {
                self.t += 1;
                if self.armed && self.t == 3 && !TRIPPED.swap(true, Ordering::SeqCst) {
                    panic!("transient worker fault");
                }
                let a = self.action_space().clip(action.vector())[0];
                Step {
                    obs: vec![0.0],
                    reward: -(a - self.inner_target) * (a - self.inner_target),
                    done: self.t >= 4,
                }
            }
        }

        let run = |armed: bool| {
            let cfg = PpoConfig { n_envs: 2, ..small_cfg(14) };
            let mut env = Flaky { inner_target: 0.3, t: 0, armed };
            let mut ppo = Ppo::new_gaussian(1, 1, &[4], 0.5, cfg);
            let reports = ppo.try_train_vec(&mut env, 2 * 256).expect("retry absorbs the fault");
            (serde_json::to_string(&ppo.policy).unwrap(), reports.len())
        };
        let clean = run(false);
        let faulted = run(true);
        assert!(TRIPPED.load(Ordering::SeqCst), "the injected fault should have fired");
        assert_eq!(clean, faulted, "retried run must merge identically to a clean run");
    }

    #[test]
    fn vec_worker_panic_exhaustion_is_structured() {
        /// Panics deterministically in slot-clone steps — retries cannot
        /// help, so the error must surface as `TrainError::Worker`.
        #[derive(Clone)]
        struct AlwaysPanics;

        impl Env for AlwaysPanics {
            fn obs_dim(&self) -> usize {
                1
            }
            fn action_space(&self) -> Sp {
                Sp::Discrete { n: 2 }
            }
            fn reset(&mut self, _rng: &mut StdRng) -> Vec<f64> {
                vec![0.0]
            }
            fn step(&mut self, _action: &Action, _rng: &mut StdRng) -> Step {
                panic!("deterministic env bug");
            }
        }

        let cfg = PpoConfig { n_envs: 2, worker_retries: 1, ..small_cfg(15) };
        let mut env = AlwaysPanics;
        let mut ppo = Ppo::new_categorical(1, 2, &[4], cfg);
        match ppo.try_train_vec(&mut env, 256) {
            Err(TrainError::Worker(e)) => {
                assert_eq!(e.attempts, 2);
                assert!(e.message.contains("deterministic env bug"), "{}", e.message);
            }
            other => panic!("expected Worker error, got {other:?}"),
        }
    }

    #[test]
    fn save_checkpoint_resume_from_roundtrip() {
        let dir = std::env::temp_dir().join("ppo-save-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.ckpt");
        std::fs::remove_file(&path).ok();

        // Reference: 6 uninterrupted iterations.
        let mut env = Tracker { cur: 0.0, t: 0 };
        let mut full = Ppo::new_gaussian(1, 1, &[4], 0.5, small_cfg(16));
        full.train(&mut env, 6 * 256);

        // Interrupted: 3 iterations, checkpoint, resume in a fresh trainer,
        // 3 more. Tracker state rides in `cur_obs`, so the pause point is
        // fully captured by the trainer state plus the env's own fields —
        // which a fresh Tracker reproduces because `cur` is re-drawn from
        // the checkpointed RNG on reset... except mid-episode: carry the
        // env over, as a paused-and-resumed process would via Snapshot.
        let mut env2 = Tracker { cur: 0.0, t: 0 };
        let mut first = Ppo::new_gaussian(1, 1, &[4], 0.5, small_cfg(16));
        first.train(&mut env2, 3 * 256);
        first.save_checkpoint(&path).unwrap();
        let mut resumed = Ppo::resume_from(&path).unwrap();
        resumed.train(&mut env2, 3 * 256);

        assert_eq!(
            serde_json::to_string(&resumed.to_train_state()).unwrap(),
            serde_json::to_string(&full.to_train_state()).unwrap(),
            "resumed trainer must be bit-identical to the uninterrupted one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_config_drift() {
        let dir = std::env::temp_dir().join("ppo-cfg-drift-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drift.ckpt");
        let ppo = Ppo::new_categorical(1, 2, &[4], small_cfg(17));
        ppo.save_checkpoint(&path).unwrap();
        let mut other = Ppo::new_categorical(1, 2, &[4], small_cfg(99));
        let state = load_train_checkpoint(&path).unwrap().state;
        match other.restore_train_state(&state) {
            Err(TrainError::Mismatch(msg)) => assert!(msg.contains("PpoConfig"), "{msg}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn entropy_decreases_with_training() {
        let mut env = DiscBandit { payoffs: vec![0.0, 1.0] };
        let mut ppo = Ppo::new_categorical(1, 2, &[4], small_cfg(5));
        let reports = ppo.train(&mut env, 20_000);
        let early = reports.first().unwrap().entropy;
        let late = reports.last().unwrap().entropy;
        assert!(late < early, "entropy should fall as the arm is learned: {early} -> {late}");
    }
}
