//! Summary statistics over traces — used by tests, the experiment harness,
//! and EXPERIMENTS.md reporting.

use crate::Trace;
use serde::{Deserialize, Serialize};

/// Duration-weighted summary of a trace's bandwidth process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStats {
    pub mean_bandwidth: f64,
    pub std_bandwidth: f64,
    pub min_bandwidth: f64,
    pub max_bandwidth: f64,
    pub mean_latency_ms: f64,
    pub mean_loss: f64,
    pub duration_s: f64,
    /// Mean absolute bandwidth change between consecutive segments — the
    /// "non-smoothness" the adversary's reward penalizes.
    pub mean_bw_jump: f64,
}

impl TraceStats {
    pub fn of(trace: &Trace) -> Self {
        let total: f64 = trace.duration_s();
        let wmean = |f: &dyn Fn(&crate::Segment) -> f64| -> f64 {
            trace.segments.iter().map(|s| f(s) * s.duration_s).sum::<f64>() / total
        };
        let mean_bw = wmean(&|s| s.bandwidth_mbps);
        let var_bw = wmean(&|s| (s.bandwidth_mbps - mean_bw).powi(2));
        let jumps: Vec<f64> = trace
            .segments
            .windows(2)
            .map(|w| (w[1].bandwidth_mbps - w[0].bandwidth_mbps).abs())
            .collect();
        TraceStats {
            mean_bandwidth: mean_bw,
            std_bandwidth: var_bw.sqrt(),
            min_bandwidth: trace
                .segments
                .iter()
                .map(|s| s.bandwidth_mbps)
                .fold(f64::INFINITY, f64::min),
            max_bandwidth: trace
                .segments
                .iter()
                .map(|s| s.bandwidth_mbps)
                .fold(f64::NEG_INFINITY, f64::max),
            mean_latency_ms: wmean(&|s| s.latency_ms),
            mean_loss: wmean(&|s| s.loss_rate),
            duration_s: total,
            mean_bw_jump: if jumps.is_empty() {
                0.0
            } else {
                jumps.iter().sum::<f64>() / jumps.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segment;

    #[test]
    fn stats_of_constant_trace() {
        let t = Trace::new("c", vec![Segment::bw(10.0, 3.0, 50.0)]);
        let s = TraceStats::of(&t);
        assert_eq!(s.mean_bandwidth, 3.0);
        assert_eq!(s.std_bandwidth, 0.0);
        assert_eq!(s.min_bandwidth, 3.0);
        assert_eq!(s.max_bandwidth, 3.0);
        assert_eq!(s.mean_bw_jump, 0.0);
        assert_eq!(s.mean_latency_ms, 50.0);
    }

    #[test]
    fn stats_weighted_by_duration() {
        let t = Trace::new("w", vec![Segment::bw(1.0, 1.0, 0.0), Segment::bw(3.0, 5.0, 0.0)]);
        let s = TraceStats::of(&t);
        assert!((s.mean_bandwidth - 4.0).abs() < 1e-12);
        assert_eq!(s.mean_bw_jump, 4.0);
    }

    #[test]
    fn loss_and_latency_aggregate() {
        let t = Trace::new(
            "l",
            vec![
                Segment { duration_s: 1.0, bandwidth_mbps: 1.0, latency_ms: 20.0, loss_rate: 0.0 },
                Segment { duration_s: 1.0, bandwidth_mbps: 1.0, latency_ms: 40.0, loss_rate: 0.1 },
            ],
        );
        let s = TraceStats::of(&t);
        assert!((s.mean_latency_ms - 30.0).abs() < 1e-12);
        assert!((s.mean_loss - 0.05).abs() < 1e-12);
    }
}
