//! JSON persistence for traces and trace sets.
//!
//! The adversarial framework's main artifact is a set of traces; writing
//! them to disk makes the paper's key reproducibility claim concrete:
//! "simply re-run a trace produced by the adversary".

use crate::Trace;
use std::fs;
use std::io;
use std::path::Path;

/// Save a set of traces as pretty-printed JSON.
pub fn save_traces(path: impl AsRef<Path>, traces: &[Trace]) -> io::Result<()> {
    let json = serde_json::to_string_pretty(traces)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, json)
}

/// Load a set of traces saved by [`save_traces`]. Every trace is validated.
pub fn load_traces(path: impl AsRef<Path>) -> io::Result<Vec<Trace>> {
    let json = fs::read_to_string(path)?;
    let traces: Vec<Trace> =
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    for t in &traces {
        t.validate();
    }
    Ok(traces)
}

/// Write a simple CSV of `(series name, x, y)` rows — the format every
/// experiment binary uses for figure data.
pub fn write_csv_series(
    path: impl AsRef<Path>,
    header: &str,
    rows: &[(String, f64, f64)],
) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 1);
    out.push_str(header);
    out.push('\n');
    for (name, x, y) in rows {
        out.push_str(&format!("{name},{x},{y}\n"));
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Segment, Trace};

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("traces-io-test");
        let path = dir.join("set.json");
        let traces = vec![
            Trace::new("a", vec![Segment::bw(1.0, 2.0, 30.0)]),
            Trace::new(
                "b",
                vec![Segment {
                    duration_s: 0.03,
                    bandwidth_mbps: 10.0,
                    latency_ms: 20.0,
                    loss_rate: 0.05,
                }],
            ),
        ];
        save_traces(&path, &traces).unwrap();
        let back = load_traces(&path).unwrap();
        assert_eq!(traces, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("traces-io-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(load_traces(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_series_written() {
        let dir = std::env::temp_dir().join("traces-io-test-csv");
        let path = dir.join("fig.csv");
        write_csv_series(
            &path,
            "series,x,y",
            &[("qoe".to_string(), 1.0, 2.5), ("qoe".to_string(), 2.0, 2.6)],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.starts_with("series,x,y\n"));
        assert!(s.contains("qoe,1,2.5"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
