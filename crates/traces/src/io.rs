//! JSON persistence for traces and trace sets.
//!
//! The adversarial framework's main artifact is a set of traces; writing
//! them to disk makes the paper's key reproducibility claim concrete:
//! "simply re-run a trace produced by the adversary".

use crate::Trace;
use std::fs;
use std::io;
use std::path::Path;

/// Save a set of traces as pretty-printed JSON.
pub fn save_traces(path: impl AsRef<Path>, traces: &[Trace]) -> io::Result<()> {
    let json = serde_json::to_string_pretty(traces)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, json)
}

/// Load a set of traces saved by [`save_traces`]. Every trace is validated;
/// a malformed file yields a descriptive [`io::ErrorKind::InvalidData`]
/// error naming the file and the offending trace/segment instead of
/// panicking.
pub fn load_traces(path: impl AsRef<Path>) -> io::Result<Vec<Trace>> {
    let path = path.as_ref();
    // Fault point `traces.load`: `panic@traces.load:<n>` crashes the nth
    // trace-set load of the process (e.g. to kill a bench run while it
    // reads its corpus).
    let _ = fault::check("traces.load");
    let json = fs::read_to_string(path)?;
    let traces: Vec<Trace> = serde_json::from_str(&json).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a valid trace set: {e}", path.display()),
        )
    })?;
    for t in &traces {
        t.try_validate().map_err(|msg| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {msg}", path.display()))
        })?;
    }
    Ok(traces)
}

/// Outcome of [`load_traces_dir`]: the traces that loaded plus an
/// account of what was skipped, so bench manifests can record the skip
/// count instead of it scrolling by on stderr.
#[derive(Debug, Clone, PartialEq)]
pub struct DirLoad {
    /// All traces from the loadable files, in file-name order.
    pub traces: Vec<Trace>,
    /// `.json` files skipped as malformed.
    pub skipped: usize,
    /// The first skipped file's error, verbatim.
    pub first_error: Option<String>,
}

/// Load every `.json` trace set in a directory, in file-name order.
///
/// A single malformed file does not abort the load: it is skipped, the
/// remaining files are still read, and one summary line on stderr covers
/// all skips (N loaded, M skipped, first error) instead of a warning per
/// file. The skip count and first error also come back in [`DirLoad`]
/// for the caller to record. Only I/O failures on the directory itself
/// (or finding *no* loadable traces at all) are errors, so a corpus
/// survives one bad member.
pub fn load_traces_dir(dir: impl AsRef<Path>) -> io::Result<DirLoad> {
    let dir = dir.as_ref();
    let mut files: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();

    let mut traces = Vec::new();
    let mut skipped = 0usize;
    let mut first_error = None;
    for path in &files {
        match load_traces(path) {
            Ok(mut set) => traces.append(&mut set),
            Err(e) => {
                skipped += 1;
                if first_error.is_none() {
                    first_error = Some(e.to_string());
                }
            }
        }
    }
    if traces.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: no loadable traces ({} of {} file(s) malformed{})",
                dir.display(),
                skipped,
                files.len(),
                first_error.as_deref().map(|e| format!("; first error: {e}")).unwrap_or_default()
            ),
        ));
    }
    if skipped > 0 {
        eprintln!(
            "warning: {}: loaded {} trace(s) from {} file(s), skipped {} malformed (first error: {})",
            dir.display(),
            traces.len(),
            files.len() - skipped,
            skipped,
            first_error.as_deref().unwrap_or("unknown"),
        );
    }
    Ok(DirLoad { traces, skipped, first_error })
}

/// Write a simple CSV of `(series name, x, y)` rows — the format every
/// experiment binary uses for figure data.
pub fn write_csv_series(
    path: impl AsRef<Path>,
    header: &str,
    rows: &[(String, f64, f64)],
) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 1);
    out.push_str(header);
    out.push('\n');
    for (name, x, y) in rows {
        out.push_str(&format!("{name},{x},{y}\n"));
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Segment, Trace};

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("traces-io-test");
        let path = dir.join("set.json");
        let traces = vec![
            Trace::new("a", vec![Segment::bw(1.0, 2.0, 30.0)]),
            Trace::new(
                "b",
                vec![Segment {
                    duration_s: 0.03,
                    bandwidth_mbps: 10.0,
                    latency_ms: 20.0,
                    loss_rate: 0.05,
                }],
            ),
        ];
        save_traces(&path, &traces).unwrap();
        let back = load_traces(&path).unwrap();
        assert_eq!(traces, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("traces-io-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json").unwrap();
        let err = load_traces(&path).unwrap_err();
        assert!(err.to_string().contains("bad.json"), "error names the file: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_nonphysical_traces_with_context() {
        let dir = std::env::temp_dir().join("traces-io-test-nan");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nan.json");
        // Hand-written JSON: Trace::new would panic before we could save it.
        std::fs::write(
            &path,
            r#"[{"name":"poison","segments":[{"duration_s":1.0,"bandwidth_mbps":null,"latency_ms":0.0,"loss_rate":0.0}]}]"#,
        )
        .unwrap();
        let err = load_traces(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("nan.json"), "{msg}");
        assert!(msg.contains("poison"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_load_skips_malformed_files() {
        let dir = std::env::temp_dir().join("traces-io-test-dir");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let good = vec![Trace::new("good", vec![Segment::bw(1.0, 2.0, 30.0)])];
        save_traces(dir.join("a_good.json"), &good).unwrap();
        std::fs::write(dir.join("b_broken.json"), "{{{").unwrap();
        std::fs::write(
            dir.join("c_negative.json"),
            r#"[{"name":"neg","segments":[{"duration_s":1.0,"bandwidth_mbps":-1.0,"latency_ms":0.0,"loss_rate":0.0}]}]"#,
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let loaded = load_traces_dir(&dir).unwrap();
        assert_eq!(loaded.traces, good, "good file survives its malformed neighbours");
        assert_eq!(loaded.skipped, 2, "both malformed .json files counted");
        let first = loaded.first_error.expect("first error recorded");
        assert!(first.contains("b_broken.json"), "file-name order: {first}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_load_with_nothing_loadable_is_an_error() {
        let dir = std::env::temp_dir().join("traces-io-test-dir-empty");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("only.json"), "not json").unwrap();
        let err = load_traces_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("no loadable traces"), "{err}");
        assert!(load_traces_dir(dir.join("does-not-exist")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_series_written() {
        let dir = std::env::temp_dir().join("traces-io-test-csv");
        let path = dir.join("fig.csv");
        write_csv_series(
            &path,
            "series,x,y",
            &[("qoe".to_string(), 1.0, 2.5), ("qoe".to_string(), 2.0, 2.6)],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.starts_with("series,x,y\n"));
        assert!(s.contains("qoe,1,2.5"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
