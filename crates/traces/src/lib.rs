//! Network traces: the common data format of the adversarial framework.
//!
//! A *trace* is a time-ordered list of network conditions — bandwidth,
//! latency, loss — exactly as the paper defines it ("a time-ordered list of
//! network conditions like bandwidth, latency and loss rate"). Traces are
//! what the adversary outputs, what protocols are replayed against, and what
//! training corpora are made of.
//!
//! The paper trains and tests on two public datasets we cannot ship:
//! the FCC "Measuring Broadband America" traces and the Norway 3G/HSDPA
//! commute traces. [`gen`] provides synthetic generators reproducing their
//! gross statistics (see DESIGN.md §5 for the substitution argument);
//! [`io`] reads/writes trace sets as JSON so generated corpora and
//! adversarial traces can be persisted and replayed.

pub mod cursor;
pub mod gen;
pub mod io;
pub mod stats;

pub use cursor::TraceCursor;
pub use gen::{fcc_like, hsdpa_like, random_abr_trace, random_cc_trace, GenConfig};
pub use stats::TraceStats;

use serde::{Deserialize, Serialize};

/// One piecewise-constant span of network conditions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// How long these conditions hold, in seconds.
    pub duration_s: f64,
    /// Link bandwidth in Mbit/s.
    pub bandwidth_mbps: f64,
    /// One-way propagation latency in milliseconds.
    pub latency_ms: f64,
    /// Independent random loss probability in `[0, 1]`.
    pub loss_rate: f64,
}

impl Segment {
    /// Constant-conditions segment with zero loss, convenience for ABR
    /// traces where only bandwidth varies.
    pub fn bw(duration_s: f64, bandwidth_mbps: f64, latency_ms: f64) -> Self {
        Segment { duration_s, bandwidth_mbps, latency_ms, loss_rate: 0.0 }
    }
}

/// A named time-ordered list of [`Segment`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub name: String,
    pub segments: Vec<Segment>,
}

impl Trace {
    pub fn new(name: impl Into<String>, segments: Vec<Segment>) -> Self {
        let t = Trace { name: name.into(), segments };
        t.validate();
        t
    }

    /// Total duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.segments.iter().map(|s| s.duration_s).sum()
    }

    /// Panics if any segment is non-physical (negative duration/bandwidth,
    /// loss outside `[0, 1]`).
    pub fn validate(&self) {
        assert!(!self.segments.is_empty(), "trace {:?} has no segments", self.name);
        for (i, s) in self.segments.iter().enumerate() {
            assert!(s.duration_s > 0.0, "trace {:?} segment {i}: non-positive duration", self.name);
            assert!(
                s.bandwidth_mbps > 0.0,
                "trace {:?} segment {i}: non-positive bandwidth",
                self.name
            );
            assert!(s.latency_ms >= 0.0, "trace {:?} segment {i}: negative latency", self.name);
            assert!(
                (0.0..=1.0).contains(&s.loss_rate),
                "trace {:?} segment {i}: loss outside [0,1]",
                self.name
            );
        }
    }

    /// The bandwidth in effect at time `t` seconds from the start. Times
    /// past the end wrap around (traces are replayed cyclically, as in the
    /// Pensieve simulator).
    pub fn bandwidth_at(&self, t: f64) -> f64 {
        let total = self.duration_s();
        let mut t = t % total;
        if t < 0.0 {
            t += total;
        }
        for s in &self.segments {
            if t < s.duration_s {
                return s.bandwidth_mbps;
            }
            t -= s.duration_s;
        }
        self.segments.last().expect("validated non-empty").bandwidth_mbps
    }

    /// Mean bandwidth weighted by segment duration.
    pub fn mean_bandwidth(&self) -> f64 {
        let total = self.duration_s();
        self.segments.iter().map(|s| s.bandwidth_mbps * s.duration_s).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Trace {
        Trace::new("t", vec![Segment::bw(2.0, 1.0, 40.0), Segment::bw(3.0, 4.0, 40.0)])
    }

    #[test]
    fn duration_and_mean() {
        let t = simple();
        assert!((t.duration_s() - 5.0).abs() < 1e-12);
        assert!((t.mean_bandwidth() - (2.0 * 1.0 + 3.0 * 4.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_lookup_and_wrap() {
        let t = simple();
        assert_eq!(t.bandwidth_at(0.0), 1.0);
        assert_eq!(t.bandwidth_at(1.99), 1.0);
        assert_eq!(t.bandwidth_at(2.01), 4.0);
        assert_eq!(t.bandwidth_at(5.5), 1.0, "wraps cyclically");
    }

    #[test]
    #[should_panic(expected = "non-positive bandwidth")]
    fn validation_rejects_zero_bandwidth() {
        Trace::new("bad", vec![Segment::bw(1.0, 0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "loss outside")]
    fn validation_rejects_bad_loss() {
        Trace::new(
            "bad",
            vec![Segment { duration_s: 1.0, bandwidth_mbps: 1.0, latency_ms: 0.0, loss_rate: 1.5 }],
        );
    }
}
