//! Network traces: the common data format of the adversarial framework.
//!
//! A *trace* is a time-ordered list of network conditions — bandwidth,
//! latency, loss — exactly as the paper defines it ("a time-ordered list of
//! network conditions like bandwidth, latency and loss rate"). Traces are
//! what the adversary outputs, what protocols are replayed against, and what
//! training corpora are made of.
//!
//! The paper trains and tests on two public datasets we cannot ship:
//! the FCC "Measuring Broadband America" traces and the Norway 3G/HSDPA
//! commute traces. [`gen`] provides synthetic generators reproducing their
//! gross statistics (see DESIGN.md §5 for the substitution argument);
//! [`io`] reads/writes trace sets as JSON so generated corpora and
//! adversarial traces can be persisted and replayed.

pub mod cursor;
pub mod gen;
pub mod io;
pub mod stats;

pub use cursor::TraceCursor;
pub use gen::{
    adversarial_like, fcc_like, hsdpa_like, random_abr_trace, random_cc_trace, GenConfig,
    TraceFamily, TraceStream,
};
pub use stats::TraceStats;

use serde::{Deserialize, Serialize};

/// FNV-1a 64 offset basis (the same constants `rl::ckpt::fnv1a64` and
/// `telemetry::fnv1a64` use; kept local so `traces` stays a leaf crate).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Feed `bytes` into a running FNV-1a 64 state.
fn fnv1a64_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One piecewise-constant span of network conditions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// How long these conditions hold, in seconds.
    pub duration_s: f64,
    /// Link bandwidth in Mbit/s.
    pub bandwidth_mbps: f64,
    /// One-way propagation latency in milliseconds.
    pub latency_ms: f64,
    /// Independent random loss probability in `[0, 1]`.
    pub loss_rate: f64,
}

impl Segment {
    /// Constant-conditions segment with zero loss, convenience for ABR
    /// traces where only bandwidth varies.
    pub fn bw(duration_s: f64, bandwidth_mbps: f64, latency_ms: f64) -> Self {
        Segment { duration_s, bandwidth_mbps, latency_ms, loss_rate: 0.0 }
    }
}

/// A named time-ordered list of [`Segment`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub name: String,
    pub segments: Vec<Segment>,
}

impl Trace {
    pub fn new(name: impl Into<String>, segments: Vec<Segment>) -> Self {
        let t = Trace { name: name.into(), segments };
        t.validate();
        t
    }

    /// Total duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.segments.iter().map(|s| s.duration_s).sum()
    }

    /// Panics if any segment is non-physical (negative duration/bandwidth,
    /// loss outside `[0, 1]`). See [`Trace::try_validate`] for the
    /// non-panicking variant used when loading untrusted files.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            panic!("{msg}");
        }
    }

    /// Check every segment for physical plausibility, returning a
    /// descriptive error naming the trace and offending segment. Rejects
    /// empty traces, non-finite values anywhere, non-positive durations
    /// and bandwidths, negative latencies, and loss outside `[0, 1]`.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err(format!("trace {:?} has no segments", self.name));
        }
        let seg_err = |i: usize, what: &str, v: f64| {
            Err(format!("trace {:?} segment {i}: {what} ({v})", self.name))
        };
        for (i, s) in self.segments.iter().enumerate() {
            if !s.duration_s.is_finite() {
                return seg_err(i, "non-finite duration", s.duration_s);
            }
            if s.duration_s <= 0.0 {
                return seg_err(i, "non-positive duration", s.duration_s);
            }
            if !s.bandwidth_mbps.is_finite() {
                return seg_err(i, "non-finite bandwidth", s.bandwidth_mbps);
            }
            if s.bandwidth_mbps <= 0.0 {
                return seg_err(i, "non-positive bandwidth", s.bandwidth_mbps);
            }
            if !s.latency_ms.is_finite() {
                return seg_err(i, "non-finite latency", s.latency_ms);
            }
            if s.latency_ms < 0.0 {
                return seg_err(i, "negative latency", s.latency_ms);
            }
            if !s.loss_rate.is_finite() {
                return seg_err(i, "non-finite loss rate", s.loss_rate);
            }
            if !(0.0..=1.0).contains(&s.loss_rate) {
                return seg_err(i, "loss outside [0,1]", s.loss_rate);
            }
        }
        Ok(())
    }

    /// Stable FNV-1a 64 hash of the trace **content**: every segment's
    /// four fields as little-endian `f64` bit patterns, in order. The
    /// name is deliberately excluded — two traces describing identical
    /// network conditions hash equally no matter what they were called,
    /// which is what pool deduplication and evaluation-cache keys want.
    ///
    /// Same algorithm and constants as the telemetry manifest / `rl::ckpt`
    /// checksums (FNV-1a 64), so one hash discipline covers the whole
    /// workspace; stable across runs, hosts, and compiler versions
    /// because it is defined on the `f64` bit patterns, never on any
    /// serialized text form.
    pub fn content_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for s in &self.segments {
            for v in [s.duration_s, s.bandwidth_mbps, s.latency_ms, s.loss_rate] {
                h = fnv1a64_update(h, &v.to_bits().to_le_bytes());
            }
        }
        h
    }

    /// The bandwidth in effect at time `t` seconds from the start. Times
    /// past the end wrap around (traces are replayed cyclically, as in the
    /// Pensieve simulator).
    pub fn bandwidth_at(&self, t: f64) -> f64 {
        let total = self.duration_s();
        let mut t = t % total;
        if t < 0.0 {
            t += total;
        }
        for s in &self.segments {
            if t < s.duration_s {
                return s.bandwidth_mbps;
            }
            t -= s.duration_s;
        }
        self.segments.last().expect("validated non-empty").bandwidth_mbps
    }

    /// Mean bandwidth weighted by segment duration.
    pub fn mean_bandwidth(&self) -> f64 {
        let total = self.duration_s();
        self.segments.iter().map(|s| s.bandwidth_mbps * s.duration_s).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Trace {
        Trace::new("t", vec![Segment::bw(2.0, 1.0, 40.0), Segment::bw(3.0, 4.0, 40.0)])
    }

    #[test]
    fn duration_and_mean() {
        let t = simple();
        assert!((t.duration_s() - 5.0).abs() < 1e-12);
        assert!((t.mean_bandwidth() - (2.0 * 1.0 + 3.0 * 4.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_lookup_and_wrap() {
        let t = simple();
        assert_eq!(t.bandwidth_at(0.0), 1.0);
        assert_eq!(t.bandwidth_at(1.99), 1.0);
        assert_eq!(t.bandwidth_at(2.01), 4.0);
        assert_eq!(t.bandwidth_at(5.5), 1.0, "wraps cyclically");
    }

    #[test]
    #[should_panic(expected = "non-positive bandwidth")]
    fn validation_rejects_zero_bandwidth() {
        Trace::new("bad", vec![Segment::bw(1.0, 0.0, 0.0)]);
    }

    #[test]
    fn try_validate_names_the_offending_segment() {
        let t = Trace {
            name: "n".into(),
            segments: vec![Segment::bw(1.0, 2.0, 10.0), Segment::bw(1.0, f64::NAN, 10.0)],
        };
        let msg = t.try_validate().unwrap_err();
        assert!(msg.contains("segment 1"), "{msg}");
        assert!(msg.contains("non-finite bandwidth"), "{msg}");

        let t = Trace { name: "n".into(), segments: vec![] };
        assert!(t.try_validate().unwrap_err().contains("no segments"));

        let t = Trace {
            name: "n".into(),
            segments: vec![Segment {
                duration_s: f64::INFINITY,
                bandwidth_mbps: 1.0,
                latency_ms: 0.0,
                loss_rate: 0.0,
            }],
        };
        assert!(t.try_validate().unwrap_err().contains("non-finite duration"));

        let t = Trace { name: "n".into(), segments: vec![Segment::bw(1.0, -3.0, 10.0)] };
        assert!(t.try_validate().unwrap_err().contains("non-positive bandwidth"));

        assert!(simple().try_validate().is_ok());
    }

    #[test]
    fn content_hash_ignores_names_and_sees_every_field() {
        let a = simple();
        let mut renamed = a.clone();
        renamed.name = "completely-different".into();
        assert_eq!(a.content_hash(), renamed.content_hash(), "name must not affect the hash");
        assert_eq!(a.content_hash(), a.content_hash(), "pure function of the segments");

        // every field perturbation must change the hash
        for field in 0..4 {
            let mut t = a.clone();
            let s = &mut t.segments[1];
            match field {
                0 => s.duration_s += 0.5,
                1 => s.bandwidth_mbps += 0.5,
                2 => s.latency_ms += 0.5,
                _ => s.loss_rate += 0.5,
            }
            assert_ne!(a.content_hash(), t.content_hash(), "field {field} not hashed");
        }
        // segment order matters (it changes what the trace describes)
        let mut swapped = a.clone();
        swapped.segments.swap(0, 1);
        assert_ne!(a.content_hash(), swapped.content_hash());
    }

    #[test]
    fn content_hash_uses_fnv1a64_over_bit_patterns() {
        // Cross-check against the published FNV-1a 64 algorithm applied
        // to the little-endian f64 bit patterns by hand.
        let t = Trace::new("x", vec![Segment::bw(1.0, 2.0, 3.0)]);
        let mut bytes = Vec::new();
        for v in [1.0f64, 2.0, 3.0, 0.0] {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(t.content_hash(), fnv1a64_update(FNV_OFFSET, &bytes));
        // and the FNV-1a reference vectors for the helper itself
        assert_eq!(fnv1a64_update(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64_update(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64_update(FNV_OFFSET, b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    #[should_panic(expected = "loss outside")]
    fn validation_rejects_bad_loss() {
        Trace::new(
            "bad",
            vec![Segment { duration_s: 1.0, bandwidth_mbps: 1.0, latency_ms: 0.0, loss_rate: 1.5 }],
        );
    }
}
