//! A cursor that walks a trace in wall-clock order, integrating downloads
//! over piecewise-constant bandwidth. This is the mechanism the ABR player
//! uses to compute chunk download times when replaying dataset traces
//! (exactly as the Pensieve simulator walks its bandwidth files).

use crate::Trace;

/// Position within a (cyclically replayed) trace.
///
/// The cursor owns a copy of the trace (traces are small) so that stateful
/// sessions — e.g. an RL training environment that replays a corpus — need
/// no self-referential borrows.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    trace: Trace,
    /// Current segment index.
    idx: usize,
    /// Seconds already consumed inside the current segment.
    offset_s: f64,
    /// Total wall-clock seconds advanced since construction.
    elapsed_s: f64,
}

impl TraceCursor {
    /// Cursor at the start of the trace.
    pub fn new(trace: Trace) -> Self {
        trace.validate();
        TraceCursor { trace, idx: 0, offset_s: 0.0, elapsed_s: 0.0 }
    }

    /// Cursor starting `start_s` seconds into the trace (wrapping), as the
    /// Pensieve simulator does when it picks a random starting point.
    pub fn starting_at(trace: Trace, start_s: f64) -> Self {
        let dur = trace.duration_s().max(f64::MIN_POSITIVE);
        let mut c = Self::new(trace);
        c.advance_time(start_s.rem_euclid(dur));
        c.elapsed_s = 0.0;
        c
    }

    /// Bandwidth (Mbit/s) at the cursor.
    pub fn bandwidth_mbps(&self) -> f64 {
        self.trace.segments[self.idx].bandwidth_mbps
    }

    /// One-way latency (ms) at the cursor.
    pub fn latency_ms(&self) -> f64 {
        self.trace.segments[self.idx].latency_ms
    }

    /// Loss rate at the cursor.
    pub fn loss_rate(&self) -> f64 {
        self.trace.segments[self.idx].loss_rate
    }

    /// Total seconds advanced so far.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Seconds remaining in the current segment.
    fn remaining_in_segment(&self) -> f64 {
        self.trace.segments[self.idx].duration_s - self.offset_s
    }

    fn step_segment(&mut self) {
        self.idx = (self.idx + 1) % self.trace.segments.len();
        self.offset_s = 0.0;
    }

    /// Advance the cursor by `dt` wall-clock seconds (e.g. playback sleep).
    pub fn advance_time(&mut self, dt: f64) {
        assert!(dt >= 0.0, "cannot advance time backwards");
        let mut left = dt;
        self.elapsed_s += dt;
        loop {
            let rem = self.remaining_in_segment();
            if left < rem {
                self.offset_s += left;
                return;
            }
            left -= rem;
            self.step_segment();
        }
    }

    /// Download `bytes` at the trace's bandwidth starting now; advances the
    /// cursor by the transfer duration and returns that duration in seconds.
    pub fn download(&mut self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "cannot download negative bytes");
        let mut remaining_bits = bytes * 8.0;
        let mut time = 0.0;
        while remaining_bits > 0.0 {
            let rate_bps = self.bandwidth_mbps() * 1e6;
            let rem_s = self.remaining_in_segment();
            let capacity_bits = rate_bps * rem_s;
            if remaining_bits <= capacity_bits {
                let dt = remaining_bits / rate_bps;
                self.offset_s += dt;
                time += dt;
                self.elapsed_s += dt;
                remaining_bits = 0.0;
            } else {
                remaining_bits -= capacity_bits;
                time += rem_s;
                self.elapsed_s += rem_s;
                self.step_segment();
            }
        }
        time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segment;

    fn trace() -> Trace {
        // 2 s at 8 Mbit/s, then 2 s at 2 Mbit/s
        Trace::new("t", vec![Segment::bw(2.0, 8.0, 40.0), Segment::bw(2.0, 2.0, 40.0)])
    }

    #[test]
    fn download_within_one_segment() {
        let t = trace();
        let mut c = TraceCursor::new(t);
        // 1 MB = 8 Mbit at 8 Mbit/s -> 1 s
        let dt = c.download(1_000_000.0);
        assert!((dt - 1.0).abs() < 1e-9);
        assert_eq!(c.bandwidth_mbps(), 8.0);
    }

    #[test]
    fn download_spans_segments() {
        let t = trace();
        let mut c = TraceCursor::new(t);
        // 3 MB = 24 Mbit: 16 Mbit in first 2 s, remaining 8 Mbit at 2 Mbit/s -> 4 s. Total 6 s
        // (wraps after segment 2: 2 s at 2 Mbit/s gives 4 Mbit, rest at 8 again)
        // 24 = 16 (2 s @8) + 4 (2 s @2) + 4 (0.5 s @8) -> 4.5 s
        let dt = c.download(3_000_000.0);
        assert!((dt - 4.5).abs() < 1e-9, "dt = {dt}");
        assert_eq!(c.bandwidth_mbps(), 8.0);
    }

    #[test]
    fn advance_time_wraps() {
        let t = trace();
        let mut c = TraceCursor::new(t);
        c.advance_time(3.0);
        assert_eq!(c.bandwidth_mbps(), 2.0);
        c.advance_time(1.0);
        assert_eq!(c.bandwidth_mbps(), 8.0, "wrapped to the first segment");
        assert!((c.elapsed_s() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn starting_offset() {
        let t = trace();
        let c = TraceCursor::starting_at(t.clone(), 2.5);
        assert_eq!(c.bandwidth_mbps(), 2.0);
        assert_eq!(c.elapsed_s(), 0.0, "elapsed time is measured from the start point");
        let c2 = TraceCursor::starting_at(t, 6.5); // wraps: 6.5 mod 4 = 2.5
        assert_eq!(c2.bandwidth_mbps(), 2.0);
    }

    #[test]
    fn zero_byte_download_is_instant() {
        let t = trace();
        let mut c = TraceCursor::new(t);
        assert_eq!(c.download(0.0), 0.0);
    }

    #[test]
    fn download_equals_ideal_time_on_constant_trace() {
        let t = Trace::new("c", vec![Segment::bw(100.0, 3.0, 0.0)]);
        let mut c = TraceCursor::new(t);
        let dt = c.download(750_000.0); // 6 Mbit at 3 Mbit/s
        assert!((dt - 2.0).abs() < 1e-9);
    }
}
